//! Listener binding with `SO_REUSEADDR` — the one place this
//! workspace talks to the kernel past what `std` exposes.
//!
//! A restarted collector must rebind the *same* address its workers
//! originally joined ([`crate::tcp`], `docs/cluster.md`). When the
//! previous collector died hard (SIGKILL, OOM), its accepted sockets
//! linger in `FIN_WAIT`/`TIME_WAIT` with the listener's local port,
//! and a plain [`TcpListener::bind`] fails with `AddrInUse` for up to
//! a minute — longer than any reasonable worker reconnect budget.
//! `SO_REUSEADDR` tells the kernel those moribund sockets do not
//! block a fresh listener, which is exactly the restart-in-place
//! semantics the crash–resume runbook promises.
//!
//! `std` offers no way to set a socket option *before* `bind`, so on
//! Linux this module creates the socket itself through four C calls
//! (`socket`, `setsockopt`, `bind`, `listen`) declared directly —
//! the workspace takes no external crates, and the C library is
//! already linked. The raw descriptor is wrapped in an [`OwnedFd`]
//! immediately after creation so every early return closes it. On
//! non-Linux targets (where the constant values differ) the function
//! falls back to the plain `std` bind.

#![allow(unsafe_code)]

use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};

/// Binds a TCP listener with `SO_REUSEADDR` set, trying every address
/// `addr` resolves to and returning the last error if none binds.
pub fn bind_reuseaddr(addr: &str) -> io::Result<TcpListener> {
    let mut last_err = None;
    for sockaddr in addr.to_socket_addrs()? {
        match bind_one(&sockaddr) {
            Ok(listener) => return Ok(listener),
            Err(err) => last_err = Some(err),
        }
    }
    Err(last_err.unwrap_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            "listen address resolved to no socket addresses",
        )
    }))
}

#[cfg(not(target_os = "linux"))]
fn bind_one(sockaddr: &SocketAddr) -> io::Result<TcpListener> {
    TcpListener::bind(sockaddr)
}

#[cfg(target_os = "linux")]
fn bind_one(sockaddr: &SocketAddr) -> io::Result<TcpListener> {
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};

    const AF_INET: i32 = 2;
    const AF_INET6: i32 = 10;
    const SOCK_STREAM: i32 = 1;
    const SOCK_CLOEXEC: i32 = 0x8_0000;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;
    const BACKLOG: i32 = 128;

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const i32, len: u32) -> i32;
        fn bind(fd: i32, addr: *const u8, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
    }

    /// `struct sockaddr_in` (16 bytes). `family` is host order; `port`
    /// and `addr` are big-endian byte arrays, so there is no padding
    /// and no endianness cast to get wrong.
    #[repr(C)]
    struct SockaddrIn {
        family: u16,
        port: [u8; 2],
        addr: [u8; 4],
        zero: [u8; 8],
    }

    /// `struct sockaddr_in6` (28 bytes).
    #[repr(C)]
    struct SockaddrIn6 {
        family: u16,
        port: [u8; 2],
        flowinfo: u32,
        addr: [u8; 16],
        scope_id: u32,
    }

    fn check(ret: i32) -> io::Result<()> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }

    let domain = match sockaddr {
        SocketAddr::V4(_) => AF_INET,
        SocketAddr::V6(_) => AF_INET6,
    };
    // SAFETY: plain syscall; a negative return is checked below and
    // a valid descriptor is immediately owned (closed on every path).
    let raw: RawFd = unsafe { socket(domain, SOCK_STREAM | SOCK_CLOEXEC, 0) };
    check(raw)?;
    // SAFETY: `raw` is a freshly created, unowned, valid descriptor.
    let fd: OwnedFd = unsafe { OwnedFd::from_raw_fd(raw) };

    let one: i32 = 1;
    // SAFETY: `&one` outlives the call and the length matches.
    check(unsafe {
        setsockopt(
            fd.as_raw_fd(),
            SOL_SOCKET,
            SO_REUSEADDR,
            &one,
            std::mem::size_of::<i32>() as u32,
        )
    })?;

    match sockaddr {
        SocketAddr::V4(v4) => {
            let sin = SockaddrIn {
                family: AF_INET as u16,
                port: v4.port().to_be_bytes(),
                addr: v4.ip().octets(),
                zero: [0; 8],
            };
            // SAFETY: `sin` is a valid, correctly sized sockaddr_in
            // that outlives the call.
            check(unsafe {
                bind(
                    fd.as_raw_fd(),
                    (&sin as *const SockaddrIn).cast(),
                    std::mem::size_of::<SockaddrIn>() as u32,
                )
            })?;
        }
        SocketAddr::V6(v6) => {
            let sin6 = SockaddrIn6 {
                family: AF_INET6 as u16,
                port: v6.port().to_be_bytes(),
                flowinfo: v6.flowinfo(),
                addr: v6.ip().octets(),
                scope_id: v6.scope_id(),
            };
            // SAFETY: `sin6` is a valid, correctly sized sockaddr_in6
            // that outlives the call.
            check(unsafe {
                bind(
                    fd.as_raw_fd(),
                    (&sin6 as *const SockaddrIn6).cast(),
                    std::mem::size_of::<SockaddrIn6>() as u32,
                )
            })?;
        }
    }
    // SAFETY: `fd` is a bound socket descriptor.
    check(unsafe { listen(fd.as_raw_fd(), BACKLOG) })?;
    Ok(TcpListener::from(fd))
}

#[cfg(test)]
mod tests {
    use super::bind_reuseaddr;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    #[test]
    fn binds_resolves_and_accepts() {
        let listener = bind_reuseaddr("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        assert_ne!(addr.port(), 0);
        let client = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(b"ping").unwrap();
        });
        let (mut conn, _) = listener.accept().unwrap();
        let mut buf = [0u8; 4];
        conn.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        client.join().unwrap();
    }

    /// The crash–resume regression: a dead collector's accepted
    /// socket still holds the listener's port (the peer has not seen
    /// the death yet), and the restarted listener must bind the same
    /// port anyway. Without `SO_REUSEADDR` this rebind fails with
    /// `AddrInUse` until the old socket drains out of `FIN_WAIT`.
    #[test]
    fn rebinds_port_while_old_connection_lingers() {
        let listener = bind_reuseaddr("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (conn, _) = listener.accept().unwrap();
        // The "crash": the collector's sockets close while the worker
        // end stays open, leaving the port in FIN_WAIT.
        drop(conn);
        drop(listener);
        let relisten = bind_reuseaddr(&addr.to_string()).unwrap();
        assert_eq!(relisten.local_addr().unwrap().port(), addr.port());
        drop(client);
    }

    #[test]
    fn unresolvable_address_is_an_error() {
        assert!(bind_reuseaddr("definitely-not-a-host:0").is_err());
    }
}
