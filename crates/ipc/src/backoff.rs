//! Seeded exponential backoff with jitter — the one retry policy both
//! socket backends share.
//!
//! A [`ReconnectPolicy`] is pure data (bounded attempts, base/max
//! delay, per-attempt dial timeout); [`Backoff`] turns it into the
//! deterministic delay schedule for one link: delay *k* is
//! `min(base * 2^k, max)` scaled by a jitter factor in `[0.5, 1.0)`
//! drawn from a splitmix64 hash of `(seed, attempt)` — never the wall
//! clock, so the same seed replays the same schedule on every run and
//! both backends. Used by the Unix-socket `connect_with_retry`, the
//! TCP join dial, and the TCP worker's automatic reconnect.

use std::time::Duration;

/// Mixes a 64-bit value (the splitmix64 finalizer) — the jitter hash,
/// also used to derive collector session epochs.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The retry policy for dialing (and re-dialing) a collector.
///
/// All parameters are exposed on `ParmoncBuilder`
/// (`reconnect_attempts`, `reconnect_base_delay`,
/// `reconnect_max_delay`, `reconnect_attempt_timeout`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconnectPolicy {
    /// Maximum dial attempts before the link is given up for good.
    pub attempts: u32,
    /// Delay before the second attempt; doubles per attempt.
    pub base_delay: Duration,
    /// Ceiling on the (pre-jitter) delay.
    pub max_delay: Duration,
    /// Timeout for each individual dial attempt.
    pub attempt_timeout: Duration,
}

impl Default for ReconnectPolicy {
    /// 10 attempts, 25 ms doubling to a 1 s ceiling, 2 s per dial —
    /// rides out a collector restart of a few seconds without holding
    /// a dead run open for long.
    fn default() -> Self {
        Self {
            attempts: 10,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_secs(1),
            attempt_timeout: Duration::from_secs(2),
        }
    }
}

/// The deterministic delay schedule for one link under a
/// [`ReconnectPolicy`].
#[derive(Debug, Clone)]
pub struct Backoff {
    policy: ReconnectPolicy,
    seed: u64,
    attempt: u32,
}

impl Backoff {
    /// A fresh schedule. `seed` identifies the link (workers use their
    /// rank) so concurrent links do not retry in lock-step.
    #[must_use]
    pub fn new(policy: ReconnectPolicy, seed: u64) -> Self {
        Self {
            policy,
            seed,
            attempt: 0,
        }
    }

    /// Attempts made so far (i.e. how many times [`Self::next_delay`]
    /// was consulted).
    #[must_use]
    pub fn attempts_made(&self) -> u32 {
        self.attempt
    }

    /// The delay to sleep before the *next* attempt, or `None` when
    /// the attempt budget is exhausted. The first call (attempt 0)
    /// returns `Duration::ZERO`: the first dial is immediate.
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.attempt >= self.policy.attempts {
            return None;
        }
        let attempt = self.attempt;
        self.attempt += 1;
        if attempt == 0 {
            return Some(Duration::ZERO);
        }
        let exp = (attempt - 1).min(32);
        let raw = self
            .policy
            .base_delay
            .saturating_mul(1u32 << exp.min(31))
            .min(self.policy.max_delay);
        // Jitter in [0.5, 1.0): half the nominal delay is always kept
        // so the schedule still spreads load, fully deterministically.
        let h = splitmix64(self.seed ^ (u64::from(attempt) << 32));
        let jitter = 0.5 + (h >> 11) as f64 / (1u64 << 53) as f64 / 2.0;
        Some(raw.mul_f64(jitter))
    }
}

/// Dials with the policy's schedule: `dial(attempt)` is called up to
/// `policy.attempts` times, sleeping the jittered delay between
/// attempts. Returns the first success, or the last error once the
/// budget is spent.
///
/// # Errors
///
/// The error of the final failed attempt.
pub fn retry<T>(
    policy: ReconnectPolicy,
    seed: u64,
    mut dial: impl FnMut(u32) -> std::io::Result<T>,
) -> std::io::Result<T> {
    let mut backoff = Backoff::new(policy, seed);
    let mut last_err = None;
    while let Some(delay) = backoff.next_delay() {
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        match dial(backoff.attempts_made() - 1) {
            Ok(value) => return Ok(value),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::TimedOut,
            "reconnect policy allows zero attempts",
        )
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> ReconnectPolicy {
        ReconnectPolicy {
            attempts: 6,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(40),
            attempt_timeout: Duration::from_millis(100),
        }
    }

    #[test]
    fn schedule_is_deterministic_and_bounded() {
        let collect = || {
            let mut b = Backoff::new(policy(), 3);
            let mut delays = Vec::new();
            while let Some(d) = b.next_delay() {
                delays.push(d);
            }
            delays
        };
        let a = collect();
        let b = collect();
        assert_eq!(a, b, "same seed must replay the same schedule");
        assert_eq!(a.len(), 6, "attempt budget respected");
        assert_eq!(a[0], Duration::ZERO, "first dial is immediate");
        for (k, d) in a.iter().enumerate().skip(1) {
            let nominal = Duration::from_millis(10)
                .saturating_mul(1 << (k as u32 - 1))
                .min(Duration::from_millis(40));
            assert!(
                *d >= nominal.mul_f64(0.5) && *d < nominal,
                "delay {k}: {d:?}"
            );
        }
        // A different seed jitters differently somewhere.
        let mut other = Backoff::new(policy(), 4);
        let other: Vec<_> = std::iter::from_fn(|| other.next_delay()).collect();
        assert_ne!(a, other);
    }

    #[test]
    fn retry_returns_first_success_or_last_error() {
        let fast = ReconnectPolicy {
            attempts: 4,
            base_delay: Duration::from_micros(10),
            max_delay: Duration::from_micros(10),
            attempt_timeout: Duration::from_millis(1),
        };
        let mut calls = 0;
        let ok: std::io::Result<u32> = retry(fast, 0, |attempt| {
            calls += 1;
            if attempt == 2 {
                Ok(99)
            } else {
                Err(std::io::Error::other("nope"))
            }
        });
        assert_eq!(ok.unwrap(), 99);
        assert_eq!(calls, 3);

        let err: std::io::Result<u32> =
            retry(fast, 0, |_| Err(std::io::Error::other("always down")));
        assert_eq!(err.unwrap_err().to_string(), "always down");
    }
}
