//! The multi-host TCP backend: one collector listening on a socket
//! address, remote workers dialing in — with *elastic* membership and
//! automatic recovery on both sides of every link.
//!
//! Unlike the Unix-socket backend, the world is not built by spawning:
//! [`TcpCollectorTransport::listen`] binds a listener and returns
//! immediately with zero workers connected. Each logical worker rank
//! is a *lease*: a dialing worker completes the versioned
//! join/grant handshake (`docs/wire-protocol.md`) and is dealt the
//! lowest untouched rank — which is exactly an untouched leapfrog
//! stream range plus its share of the realization budget. Because
//! every rank's streams and quota are a pure function of the run
//! configuration, a worker that joins mid-run computes precisely what
//! a fixed-membership worker would have, and the estimates stay
//! bit-identical. Ranks whose budget the collector has already
//! reassigned (after declaring them lost) are *retired* via
//! [`parmonc_mpi::Transport::retire_rank`] and never leased again —
//! leasing one would double-count the reassigned realizations.
//!
//! **Resilience.** Three mechanisms make a broken link survivable
//! without perturbing a single estimate bit:
//!
//! * **Worker reconnect** — when a send fails, [`TcpWorkerTransport`]
//!   re-dials the collector on the seeded exponential-backoff schedule
//!   of its [`ReconnectPolicy`] and re-attaches with a
//!   [`Rejoin`] handshake that names its rank and the session
//!   *epoch* from the original grant, then retries the failed frame.
//! * **Sequence numbers** — every envelope a worker sends carries a
//!   monotonic per-rank sequence number, and the retried frame reuses
//!   the number of the failed send; the collector admits each number
//!   at most once ([`crate::admit_seq`]), so a frame that in fact
//!   arrived before the break is dropped on replay — exactly-once
//!   delivery over any reconnect schedule.
//! * **Collector resume** — [`ListenOptions::resume`] re-arms a
//!   restarted collector from a persisted [`LeaseSnapshot`]: the
//!   original epoch is re-announced, previously leased ranks stay
//!   reserved for their [`Rejoin`]-ing workers, and per-rank sequence
//!   dedup state carries over. Workers from a *different* run (a
//!   stale rejoin against a fresh collector) are refused with
//!   [`RejectCode::EpochMismatch`].
//!
//! Connection health is split between two layers, on purpose:
//!
//! * **writes** carry a per-connection timeout (`io_timeout`), so a
//!   wedged peer turns a send into [`MpiError::Disconnected`] instead
//!   of blocking the collector loop;
//! * **reads** never time a peer out. A blocked reader polls with a
//!   short kernel receive timeout (`PatientReader` below) purely so
//!   teardown can interrupt it; judging *silence* is the job of the
//!   run's heartbeat-based liveness plane, which sees the same
//!   evidence on every backend.
//!
//! The *physical* wiring is the same star as the other backends: every
//! connection runs between a worker and rank 0, and a connection speaks
//! only for the rank it was leased (frames claiming another source are
//! dropped). The *logical* collection topology may be a tree
//! ([`parmonc_mpi::Topology::Tree`]): each grant carries the worker's
//! collection parent, worker sends addressed to a rank other than 0 are
//! wrapped as [`TAG_IPC_ROUTE`] frames, and the collector forwards the
//! inner frame over the destination's live connection — after dedup, so
//! exactly-once survives reconnect replays.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parmonc_faults::FaultHandle;
use parmonc_mpi::bytes::Bytes;
use parmonc_mpi::envelope::{Envelope, Tag};
use parmonc_mpi::error::MpiError;
use parmonc_mpi::pool::BufferPool;
use parmonc_mpi::transport::Transport;
use parmonc_obs::{EventKind, Monitor, SpanEmitter, SpanPhase};

use crate::backoff::{splitmix64, Backoff, ReconnectPolicy};
use crate::faulty::FaultyStream;
use crate::frame::{
    decode_route, encode_route, read_frame, write_frame, write_frame_seq, ClockProbe, ClockReply,
    ClockSync, Frame, Grant, JoinRequest, Reject, RejectCode, Rejoin, FRAME_HEADER_LEN,
    TAG_IPC_ROUTE, TAG_TCP_CLOCK, TAG_TCP_CLOCK_PROBE, TAG_TCP_CLOCK_REPLY, TAG_TCP_GRANT,
    TAG_TCP_JOIN, TAG_TCP_REJECT, TAG_TCP_REJOIN, TCP_MAGIC, TCP_PROTOCOL_VERSION,
};
use crate::link::{
    pump_frames, ForwardSink, InboxStats, LinkClock, LinkHooks, Mailbox, SendGate, WireTelemetry,
};

/// How often a blocked reader wakes to check the stop flag — the
/// kernel receive timeout under [`PatientReader`].
const READ_POLL: Duration = Duration::from_millis(50);

/// How long the acceptor sleeps between polls of the non-blocking
/// listener.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// How often a monitored worker refreshes its clock-offset estimate by
/// piggybacking a [`TAG_TCP_CLOCK_PROBE`] on an outgoing send. Clock
/// traffic never feeds the estimates, so the cadence is a trace-quality
/// knob, not a correctness one.
const CLOCK_SYNC_INTERVAL_S: f64 = 2.0;

/// A fresh, non-zero session epoch for a newly armed collector. Drawn
/// from the wall clock and pid (like the Unix backend's spawn token),
/// which never feeds the estimates — bit-identity is unaffected.
fn fresh_epoch() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    splitmix64(nanos ^ (u64::from(std::process::id()) << 32)).max(1)
}

/// A [`Read`] wrapper for sockets with a short `SO_RCVTIMEO`: receive
/// timeouts are retried (a kernel timeout consumes no bytes, so frame
/// decoding never sees a torn header) until the stop flag is raised,
/// at which point reads report a clean EOF. Dead-peer detection is
/// deliberately *not* done here — silence is judged by the run's
/// liveness plane on heartbeat evidence, not by the transport.
#[derive(Debug)]
struct PatientReader {
    inner: TcpStream,
    stop: Arc<AtomicBool>,
}

impl Read for PatientReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            if self.stop.load(Ordering::Relaxed) {
                return Ok(0);
            }
            match self.inner.read(buf) {
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) => {}
                other => return other,
            }
        }
    }
}

/// The persistable image of a collector's lease table: everything a
/// restarted collector needs to take over an interrupted run's
/// membership — the session epoch its workers will [`Rejoin`] with,
/// which ranks were ever leased or retired, and the last admitted
/// sequence number per rank (so dedup survives the restart).
///
/// Produced by [`TcpCollectorTransport::snapshot`] (or the
/// [`Transport::membership_snapshot`] hook), persisted by the runner
/// alongside the checkpoint, and fed back via
/// [`ListenOptions::resume`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseSnapshot {
    /// The session epoch announced in every grant.
    pub epoch: u64,
    /// World size including the collector.
    pub size: usize,
    /// Per rank (index `rank - 1`): ever leased?
    pub ever_leased: Vec<bool>,
    /// Per rank: budget reassigned, never lease again?
    pub retired: Vec<bool>,
    /// Per rank: highest admitted sequence number.
    pub last_seqs: Vec<u64>,
}

impl LeaseSnapshot {
    /// Serializes to the line-oriented text format persisted next to
    /// the run's checkpoint.
    #[must_use]
    pub fn encode(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "parmonc-leases v1");
        let _ = writeln!(out, "epoch {:016x}", self.epoch);
        let _ = writeln!(out, "size {}", self.size);
        for i in 0..self.size.saturating_sub(1) {
            let _ = writeln!(
                out,
                "rank {} {} {} {}",
                i + 1,
                u8::from(self.ever_leased[i]),
                u8::from(self.retired[i]),
                self.last_seqs[i]
            );
        }
        out
    }

    /// Parses the text format back; `None` on any malformation (a
    /// truncated lease table must fail loudly, not resume half a
    /// membership).
    #[must_use]
    pub fn decode(text: &str) -> Option<Self> {
        let mut lines = text.lines();
        if lines.next()? != "parmonc-leases v1" {
            return None;
        }
        let epoch = u64::from_str_radix(lines.next()?.strip_prefix("epoch ")?, 16).ok()?;
        let size: usize = lines.next()?.strip_prefix("size ")?.parse().ok()?;
        let workers = size.checked_sub(1)?;
        let mut ever_leased = vec![false; workers];
        let mut retired = vec![false; workers];
        let mut last_seqs = vec![0u64; workers];
        for i in 0..workers {
            let line = lines.next()?;
            let mut f = line.strip_prefix("rank ")?.split(' ');
            let rank: usize = f.next()?.parse().ok()?;
            if rank != i + 1 {
                return None;
            }
            ever_leased[i] = match f.next()? {
                "0" => false,
                "1" => true,
                _ => return None,
            };
            retired[i] = match f.next()? {
                "0" => false,
                "1" => true,
                _ => return None,
            };
            last_seqs[i] = f.next()?.parse().ok()?;
            if f.next().is_some() {
                return None;
            }
        }
        if lines.next().is_some() {
            return None;
        }
        Some(Self {
            epoch,
            size,
            ever_leased,
            retired,
            last_seqs,
        })
    }
}

/// The collector's rank-lease table.
#[derive(Debug)]
struct LeaseState {
    /// Write halves indexed by `rank - 1`; `None` while the rank is
    /// unleased or after its connection dropped.
    writers: Vec<Option<Arc<Mutex<TcpStream>>>>,
    /// Ranks that have been leased at least once. Fresh joiners are
    /// dealt never-touched ranks first: a rank whose worker already
    /// completed frees its slot on disconnect, and handing that slot
    /// to the *next* joiner (instead of the lowest untouched one)
    /// would make the joiner redo a finished stream range while a
    /// genuinely untouched range starves.
    ever_leased: Vec<bool>,
    /// Ranks whose budget the collector reassigned; never leased again.
    retired: Vec<bool>,
    /// Per-slot connection generation, bumped on every writer install.
    /// A reader thread frees its slot on exit only if the generation
    /// still matches — a stale reader outliving a rejoin must not free
    /// the *new* connection's writer.
    generation: Vec<u64>,
    /// Per-rank highest admitted sequence number, shared with the
    /// rank's reader threads across reconnects (and restored from a
    /// [`LeaseSnapshot`] across collector restarts).
    last_seqs: Vec<Arc<AtomicU64>>,
    /// Per-rank wire counters. They live beside the lease — not the
    /// connection — so frames and dials accumulate across reconnects
    /// and the end-of-run `wire_stats` event covers the rank's whole
    /// history on this collector.
    wire: Vec<Arc<WireTelemetry>>,
    /// Per-rank clock-offset estimators, same lifetime as the wire
    /// counters: a rejoining worker updates the estimate in place and
    /// the monotone floor keeps the rank's corrected event stream from
    /// running backwards across the break.
    clocks: Vec<Arc<LinkClock>>,
}

impl LeaseState {
    /// Leases the lowest never-yet-leased rank to `writer`, falling
    /// back to the lowest dropped rank (a reconnect redoing the same
    /// streams is idempotent under replace-then-sum), or `None` when
    /// every rank is either connected or retired. Returns the rank and
    /// the new connection generation.
    fn lease(&mut self, writer: Arc<Mutex<TcpStream>>) -> Option<(usize, u64)> {
        let free = |&(_, (w, &retired)): &(usize, (&Option<_>, &bool))| -> bool {
            w.is_none() && !retired
        };
        let slot = self
            .writers
            .iter()
            .zip(&self.retired)
            .enumerate()
            .filter(free)
            .find(|&(i, _)| !self.ever_leased[i])
            .map(|(i, _)| i)
            .or_else(|| {
                self.writers
                    .iter()
                    .zip(&self.retired)
                    .enumerate()
                    .find(free)
                    .map(|(i, _)| i)
            })?;
        if self.ever_leased[slot] {
            // A fresh joiner (a new worker incarnation — crash-restart
            // has no rank/epoch to Rejoin with) is taking over a
            // dropped rank. Its sequence numbers restart at 1, so the
            // old incarnation's dedup high-water mark must not swallow
            // its heartbeats and subtotals: redoing the range is
            // idempotent under replace-then-sum, and dedup is only
            // needed *within* one incarnation's rejoin replays.
            self.last_seqs[slot].store(0, Ordering::Relaxed);
        }
        self.writers[slot] = Some(writer);
        self.ever_leased[slot] = true;
        self.generation[slot] += 1;
        Some((slot + 1, self.generation[slot]))
    }

    /// Re-attaches a [`Rejoin`]ing worker to the rank it already
    /// holds, replacing (and hanging up) any half-open previous
    /// connection. The caller has validated rank bounds, epoch and
    /// digest; this refuses only never-leased and retired ranks.
    fn rejoin(&mut self, rank: usize, writer: Arc<Mutex<TcpStream>>) -> Result<u64, &'static str> {
        let i = rank - 1;
        if !self.ever_leased[i] {
            return Err("rejoin names a rank that was never leased");
        }
        if self.retired[i] {
            return Err("rank's remaining budget was reassigned after it was declared lost");
        }
        if let Some(old) = self.writers[i].take() {
            // The previous connection is half-open (the worker saw the
            // break first). Hang it up so its reader exits promptly.
            if let Ok(stream) = old.lock() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        self.writers[i] = Some(writer);
        self.generation[i] += 1;
        Ok(self.generation[i])
    }

    /// The persistable image of this table (see [`LeaseSnapshot`]).
    fn snapshot(&self, epoch: u64, size: usize) -> LeaseSnapshot {
        LeaseSnapshot {
            epoch,
            size,
            ever_leased: self.ever_leased.clone(),
            retired: self.retired.clone(),
            last_seqs: self
                .last_seqs
                .iter()
                .map(|s| s.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Best-effort atomic persistence of the lease table: encode, write a
/// temp file, fsync, rename into place. Failures are swallowed — a
/// lost write degrades a *future* crash-resume to a stale (or absent)
/// table, which the rejoin validation handles; it must never disturb
/// the running session.
///
/// Callers hold the lease lock across the snapshot *and* this write.
/// Handshake threads (admit) and the main thread (`retire_rank`) both
/// persist; without that critical section they could truncate the
/// shared temp file concurrently and rename a torn table into place,
/// or rename an older snapshot over a newer one — losing, e.g., a
/// retired bit whose rank would then be double-counted on resume.
fn persist_lease_table(path: &std::path::Path, snapshot: &LeaseSnapshot) {
    let write = || -> io::Result<()> {
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(snapshot.encode().as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    };
    let _ = write();
}

/// Configuration for [`TcpCollectorTransport::listen`].
#[derive(Debug)]
pub struct ListenOptions {
    /// The address to listen on, e.g. `0.0.0.0:7717` or `127.0.0.1:0`
    /// (port 0 picks an ephemeral port; read it back with
    /// [`TcpCollectorTransport::local_addr`]).
    pub addr: String,
    /// World size including the collector: the number of logical
    /// ranks, i.e. leases, is `size - 1`.
    pub size: usize,
    /// The run's monitor. Join/leave events and rank-0 transport
    /// events are emitted here; worker events arrive over the sockets
    /// and are re-emitted with the workers' timestamps.
    pub monitor: Monitor,
    /// The collector-side fault plane (rank 0's outgoing messages).
    pub faults: FaultHandle,
    /// Digest of the run configuration; joiners presenting a different
    /// digest are rejected (they would compute the wrong streams).
    pub config_digest: u64,
    /// Per-rank realization quotas, indexed by `rank - 1`; echoed in
    /// the grant so the worker can cross-check its own configuration.
    pub quotas: Vec<u64>,
    /// Per-connection write timeout, and the read timeout during the
    /// handshake.
    pub io_timeout: Duration,
    /// A lease table persisted by a previous incarnation of this
    /// collector: restart with the same session epoch, keep
    /// previously leased ranks reserved for their rejoining workers,
    /// and carry the sequence-number dedup state over. `None` arms a
    /// fresh session with a new epoch.
    pub resume: Option<LeaseSnapshot>,
    /// Whether span tracing is on for this run: echoed in every grant
    /// (flag bit 1) so workers wrap their phases in
    /// `span_started`/`span_ended` events. Requires a monitored run to
    /// have any effect.
    pub trace_spans: bool,
    /// Where to persist the lease table for crash-resume. When set,
    /// the table is written at bind time and re-written on every
    /// membership change — always *before* the grant that makes the
    /// change visible to a worker, so a crash can never lose a lease
    /// a worker believes it holds. `None` disables persistence.
    pub persist: Option<std::path::PathBuf>,
    /// Per-rank collection parents under the run's topology, indexed
    /// by `rank - 1`. Echoed in each grant so the worker knows where
    /// its subtotal envelopes should flow: 0 under a star (an empty
    /// vector means star for every rank), an interior relay rank under
    /// a tree. A parent that has retired is remapped to 0 at grant
    /// time, so a late joiner never routes into a hole.
    pub parents: Vec<usize>,
}

/// Everything a handshake thread needs to admit a joiner.
struct AcceptorCtx {
    stop: Arc<AtomicBool>,
    lease: Arc<Mutex<LeaseState>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    /// In-flight handshake threads (see [`accept_loop`]); joined at
    /// shutdown so no admit can race the teardown.
    handshakes: Arc<Mutex<Vec<JoinHandle<()>>>>,
    tx: Sender<Envelope>,
    monitor: Monitor,
    stats: Arc<InboxStats>,
    size: usize,
    quotas: Vec<u64>,
    config_digest: u64,
    epoch: u64,
    io_timeout: Duration,
    persist: Option<std::path::PathBuf>,
    trace_spans: bool,
    parents: Vec<usize>,
}

/// Rank 0 of a TCP world: the listener, lease table, and
/// collector-side transport.
///
/// Construction returns with *zero* workers connected; membership is
/// elastic. A logical rank that never connects is eventually declared
/// lost by the collector's liveness sweep and its budget reassigned —
/// exactly the worker-loss path — so a run completes at full volume
/// whether or not every lease is ever taken.
#[derive(Debug)]
pub struct TcpCollectorTransport {
    size: usize,
    pool: BufferPool,
    monitor: Monitor,
    gate: SendGate,
    mailbox: Mailbox,
    stats: Arc<InboxStats>,
    self_tx: Sender<Envelope>,
    lease: Arc<Mutex<LeaseState>>,
    epoch: u64,
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    handshakes: Arc<Mutex<Vec<JoinHandle<()>>>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    persist: Option<std::path::PathBuf>,
    shut_down: bool,
}

impl TcpCollectorTransport {
    /// Binds the listening socket and starts the acceptor thread.
    ///
    /// # Errors
    ///
    /// Bind/thread-spawn failures, a zero world size, a quota table
    /// that does not cover `size - 1` ranks, or a resume snapshot
    /// whose world size disagrees with the configuration.
    pub fn listen(opts: ListenOptions) -> io::Result<Self> {
        if opts.size == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "world size must be at least 1",
            ));
        }
        if opts.quotas.len() != opts.size.saturating_sub(1) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "quota table must have one entry per worker rank",
            ));
        }
        if let Some(snapshot) = &opts.resume {
            if snapshot.size != opts.size {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "lease snapshot world size disagrees with the run configuration",
                ));
            }
        }
        let listener = crate::reuse::bind_reuseaddr(opts.addr.as_str())?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let (tx, rx) = mpsc::channel();
        let stats = Arc::new(InboxStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let workers = opts.size.saturating_sub(1);
        let (epoch, ever_leased, retired, last_seqs) = match opts.resume {
            Some(s) => (
                s.epoch,
                s.ever_leased,
                s.retired,
                s.last_seqs
                    .into_iter()
                    .map(|n| Arc::new(AtomicU64::new(n)))
                    .collect(),
            ),
            None => (
                fresh_epoch(),
                vec![false; workers],
                vec![false; workers],
                (0..workers).map(|_| Arc::new(AtomicU64::new(0))).collect(),
            ),
        };
        let lease = Arc::new(Mutex::new(LeaseState {
            writers: vec![None; workers],
            ever_leased,
            retired,
            generation: vec![0; workers],
            last_seqs,
            wire: (0..workers)
                .map(|_| Arc::new(WireTelemetry::default()))
                .collect(),
            clocks: (0..workers)
                .map(|_| Arc::new(LinkClock::default()))
                .collect(),
        }));
        let readers = Arc::new(Mutex::new(Vec::new()));
        let handshakes = Arc::new(Mutex::new(Vec::new()));
        if let Some(path) = &opts.persist {
            // Capture the session epoch on disk before any worker can
            // join, so even a pre-join crash resumes the same session.
            // Like every persist, the snapshot and the write share one
            // lease-lock critical section (see [`persist_lease_table`]).
            if let Ok(l) = lease.lock() {
                persist_lease_table(path, &l.snapshot(epoch, opts.size));
            }
        }

        let ctx = Arc::new(AcceptorCtx {
            stop: Arc::clone(&stop),
            lease: Arc::clone(&lease),
            readers: Arc::clone(&readers),
            handshakes: Arc::clone(&handshakes),
            tx: tx.clone(),
            monitor: opts.monitor.clone(),
            stats: Arc::clone(&stats),
            size: opts.size,
            quotas: opts.quotas,
            config_digest: opts.config_digest,
            epoch,
            io_timeout: opts.io_timeout,
            persist: opts.persist.clone(),
            trace_spans: opts.trace_spans,
            parents: opts.parents,
        });
        let acceptor = std::thread::Builder::new()
            .name("parmonc-tcp-accept".into())
            .spawn(move || accept_loop(&listener, &ctx))?;

        Ok(Self {
            size: opts.size,
            pool: BufferPool::new(parmonc_mpi::pool::DEFAULT_POOL_CAPACITY),
            monitor: opts.monitor.clone(),
            gate: SendGate::new(0, opts.faults, opts.monitor.clone()),
            mailbox: Mailbox::new(0, rx, opts.monitor, Some(Arc::clone(&stats))),
            stats,
            self_tx: tx,
            lease,
            epoch,
            local_addr,
            stop,
            acceptor: Some(acceptor),
            handshakes,
            readers,
            persist: opts.persist,
            shut_down: false,
        })
    }

    /// The bound listening address — with port 0 in
    /// [`ListenOptions::addr`], this is where the ephemeral port is
    /// learned.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The session epoch announced in every grant: fresh for a new
    /// session, carried over from the snapshot on resume.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The current membership image, for persistence alongside the
    /// run's checkpoint (see [`LeaseSnapshot`]).
    #[must_use]
    pub fn snapshot(&self) -> LeaseSnapshot {
        let workers = self.size.saturating_sub(1);
        match self.lease.lock() {
            Ok(lease) => lease.snapshot(self.epoch, self.size),
            Err(_) => LeaseSnapshot {
                epoch: self.epoch,
                size: self.size,
                ever_leased: vec![false; workers],
                retired: vec![false; workers],
                last_seqs: vec![0; workers],
            },
        }
    }

    fn raw_send(&self, dest: usize, tag: Tag, payload: &Bytes) -> Result<(), MpiError> {
        if dest == 0 {
            self.stats.note_enqueue(&self.monitor, 0);
            return self
                .self_tx
                .send(Envelope {
                    source: 0,
                    tag,
                    payload: payload.clone(),
                })
                .map_err(|_| MpiError::Disconnected);
        }
        let (writer, wire) = {
            let lease = self.lease.lock().map_err(|_| MpiError::Disconnected)?;
            let writer = lease
                .writers
                .get(dest - 1)
                .cloned()
                .flatten()
                .ok_or(MpiError::Disconnected)?;
            (writer, Arc::clone(&lease.wire[dest - 1]))
        };
        let mut stream = writer.lock().map_err(|_| MpiError::Disconnected)?;
        write_frame(&mut *stream, 0, tag.0, payload).map_err(|_| MpiError::Disconnected)?;
        wire.count_out(FRAME_HEADER_LEN + payload.len());
        Ok(())
    }

    /// Tears the world down: force-flushes fault-delayed sends, raises
    /// the stop flag, shuts every live connection down (remote workers
    /// see EOF), and joins the acceptor and reader threads — which
    /// guarantees every forwarded worker event is in the monitor's
    /// sinks on return. Idempotent.
    ///
    /// # Errors
    ///
    /// None today; the signature reserves the right.
    pub fn shutdown(&mut self) -> io::Result<()> {
        if self.shut_down {
            return Ok(());
        }
        self.shut_down = true;
        let _ = self
            .gate
            .flush_delayed(true, &|d, t, p| self.raw_send(d, t, p));
        self.stop.store(true, Ordering::Relaxed);
        if let Ok(lease) = self.lease.lock() {
            for writer in lease.writers.iter().flatten() {
                if let Ok(stream) = writer.lock() {
                    let _ = stream.shutdown(Shutdown::Both);
                }
            }
        }
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        // With the acceptor gone no new handshake can start; joining
        // the in-flight ones (bounded by the handshake read timeout)
        // guarantees no reader is spawned after the drain below.
        let handshakes: Vec<_> = match self.handshakes.lock() {
            Ok(mut handshakes) => handshakes.drain(..).collect(),
            Err(_) => Vec::new(),
        };
        for handle in handshakes {
            let _ = handle.join();
        }
        let handles: Vec<_> = match self.readers.lock() {
            Ok(mut readers) => readers.drain(..).collect(),
            Err(_) => Vec::new(),
        };
        for handle in handles {
            let _ = handle.join();
        }
        if let Ok(mut lease) = self.lease.lock() {
            for writer in lease.writers.iter_mut() {
                *writer = None;
            }
        }
        Ok(())
    }
}

impl Drop for TcpCollectorTransport {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

impl Transport for TcpCollectorTransport {
    fn rank(&self) -> usize {
        0
    }

    fn size(&self) -> usize {
        self.size
    }

    fn pool(&self) -> &BufferPool {
        &self.pool
    }

    fn recycle(&self, payload: Bytes) {
        self.pool.recycle(payload);
    }

    fn send(&self, dest: usize, tag: Tag, payload: &[u8]) -> Result<(), MpiError> {
        self.send_bytes(dest, tag, Bytes::copy_from_slice(payload))
    }

    fn send_bytes(&self, dest: usize, tag: Tag, payload: Bytes) -> Result<(), MpiError> {
        if dest >= self.size {
            return Err(MpiError::InvalidRank {
                rank: dest,
                size: self.size,
            });
        }
        self.gate
            .send(dest, tag, payload, &|d, t, p| self.raw_send(d, t, p))
    }

    fn recv(&mut self, source: Option<usize>, tag: Option<Tag>) -> Result<Envelope, MpiError> {
        self.mailbox.recv(source, tag)
    }

    fn recv_timeout(
        &mut self,
        source: Option<usize>,
        tag: Option<Tag>,
        timeout: Duration,
    ) -> Result<Option<Envelope>, MpiError> {
        self.mailbox.recv_timeout(source, tag, timeout)
    }

    fn try_recv(&mut self, source: Option<usize>, tag: Option<Tag>) -> Option<Envelope> {
        self.mailbox.try_recv(source, tag)
    }

    fn iprobe(&mut self, source: Option<usize>, tag: Option<Tag>) -> bool {
        self.mailbox.iprobe(source, tag)
    }

    fn retire_rank(&self, rank: usize) {
        if rank == 0 || rank >= self.size {
            return;
        }
        if let Ok(mut lease) = self.lease.lock() {
            lease.retired[rank - 1] = true;
            if let Some(path) = &self.persist {
                persist_lease_table(path, &lease.snapshot(self.epoch, self.size));
            }
        }
    }

    fn membership_snapshot(&self) -> Option<String> {
        Some(self.snapshot().encode())
    }
}

/// The acceptor: polls the non-blocking listener until shutdown,
/// handing each dialing connection to a short handshake thread. The
/// handshake reads with the `io_timeout` read timeout, so running it
/// inline would let one stalled dialer block every other join — and,
/// worse, the rejoins of healthy reconnecting workers — for up to
/// `io_timeout` per such connection.
fn accept_loop(listener: &TcpListener, ctx: &Arc<AcceptorCtx>) {
    while !ctx.stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, peer)) => {
                let hs_ctx = Arc::clone(ctx);
                let spawned = std::thread::Builder::new()
                    .name("parmonc-tcp-hs".into())
                    .spawn(move || {
                        let _ = admit(stream, peer, &hs_ctx);
                    });
                // Spawn failure drops the connection — the dialer sees
                // EOF and retries on its backoff schedule.
                if let (Ok(handle), Ok(mut handshakes)) = (spawned, ctx.handshakes.lock()) {
                    // Reap finished handshakes so the vec stays bounded
                    // by the number of *concurrent* dialers, not the
                    // run's total join count.
                    let mut i = 0;
                    while i < handshakes.len() {
                        if handshakes[i].is_finished() {
                            let _ = handshakes.swap_remove(i).join();
                        } else {
                            i += 1;
                        }
                    }
                    handshakes.push(handle);
                }
            }
            // WouldBlock is the idle case; any other accept error is
            // transient on a healthy listener, so keep serving.
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Validates one dialing connection's join (or rejoin) request and,
/// on success, leases it a rank, answers with the grant, and wires up
/// its reader. Invalid requests are answered with a reject frame and
/// dropped; a failure here never disturbs the rest of the world.
fn admit(stream: TcpStream, peer: SocketAddr, ctx: &AcceptorCtx) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(ctx.io_timeout))?;
    stream.set_write_timeout(Some(ctx.io_timeout))?;
    let frame = match read_frame(&mut &stream)? {
        Some(frame) if frame.tag == TAG_TCP_JOIN || frame.tag == TAG_TCP_REJOIN => frame,
        // Silent, closed, or alien connection: drop it without reply.
        _ => return Ok(()),
    };
    // `t1` of the NTP-style offset exchange: the collector's run clock
    // at request receipt, paired with the worker's `t0_s` below.
    let t_recv_s = ctx.monitor.elapsed_s();
    // The common envelope checks, shared by join and rejoin: magic,
    // protocol version, configuration digest.
    let (magic, version, digest, t0_s, rejoin) = if frame.tag == TAG_TCP_JOIN {
        let Some(join) = JoinRequest::decode(&frame.payload) else {
            return reject(&stream, RejectCode::BadMagic, "malformed join payload");
        };
        (
            join.magic,
            join.version,
            join.config_digest,
            join.t0_s,
            None,
        )
    } else {
        let Some(rejoin) = Rejoin::decode(&frame.payload) else {
            return reject(&stream, RejectCode::BadMagic, "malformed rejoin payload");
        };
        (
            rejoin.magic,
            rejoin.version,
            rejoin.config_digest,
            rejoin.t0_s,
            Some(rejoin),
        )
    };
    if magic != TCP_MAGIC {
        return reject(
            &stream,
            RejectCode::BadMagic,
            "join frame does not open with the PMNC magic",
        );
    }
    if version != TCP_PROTOCOL_VERSION {
        return reject(
            &stream,
            RejectCode::VersionMismatch,
            &format!(
                "worker speaks wire-protocol version {version}, collector speaks {TCP_PROTOCOL_VERSION}"
            ),
        );
    }
    if digest != ctx.config_digest {
        return reject(
            &stream,
            RejectCode::ConfigMismatch,
            "run-configuration digest mismatch: this worker would compute the wrong streams",
        );
    }
    let writer = Arc::new(Mutex::new(stream.try_clone()?));
    let (rank, generation, reconnect) = match rejoin {
        None => {
            let leased = ctx
                .lease
                .lock()
                .ok()
                .and_then(|mut lease| lease.lease(Arc::clone(&writer)));
            let Some((rank, generation)) = leased else {
                return reject(
                    &stream,
                    RejectCode::BudgetExhausted,
                    "no worker rank available: every stream range is leased or its budget reassigned",
                );
            };
            (rank, generation, false)
        }
        Some(rejoin) => {
            if rejoin.epoch != ctx.epoch {
                return reject(
                    &stream,
                    RejectCode::EpochMismatch,
                    "session epoch mismatch: this lease belongs to a different collector session",
                );
            }
            let rank = rejoin.rank as usize;
            if rank == 0 || rank >= ctx.size {
                return reject(
                    &stream,
                    RejectCode::BudgetExhausted,
                    "rejoin names an impossible rank",
                );
            }
            let outcome = ctx
                .lease
                .lock()
                .map_err(|_| "lease table poisoned")
                .and_then(|mut lease| lease.rejoin(rank, Arc::clone(&writer)));
            match outcome {
                Ok(generation) => (rank, generation, true),
                Err(reason) => {
                    return reject(&stream, RejectCode::BudgetExhausted, reason);
                }
            }
        }
    };
    // Only the matching generation may free the slot: a stale reader
    // outliving a rejoin must not unhook the replacement connection.
    let release = |ctx: &AcceptorCtx| {
        if let Ok(mut lease) = ctx.lease.lock() {
            if lease.generation[rank - 1] == generation {
                lease.writers[rank - 1] = None;
            }
        }
    };
    // Persist the lease *before* the grant goes out: once the worker
    // holds a grant it will REJOIN with this rank after any crash, and
    // a restarted collector must recognize the lease.
    if let Some(path) = &ctx.persist {
        if let Ok(l) = ctx.lease.lock() {
            persist_lease_table(path, &l.snapshot(ctx.epoch, ctx.size));
        }
    }
    // The worker's collection parent under the run's topology. A
    // parent whose lease has retired is remapped to 0: that relay is
    // gone for good (its budget reassigned), so the joiner reports
    // straight to the collector instead of routing into a hole.
    let parent = {
        let configured = ctx.parents.get(rank - 1).copied().unwrap_or(0);
        let unusable = configured != 0
            && ctx
                .lease
                .lock()
                .map(|l| l.retired.get(configured - 1).copied().unwrap_or(true))
                .unwrap_or(true);
        if unusable {
            0
        } else {
            configured
        }
    };
    let grant = Grant {
        version: TCP_PROTOCOL_VERSION,
        monitor: ctx.monitor.is_enabled(),
        spans: ctx.trace_spans && ctx.monitor.is_enabled(),
        rank: rank as u32,
        size: ctx.size as u32,
        quota: ctx.quotas[rank - 1],
        parent: parent as u32,
        epoch: ctx.epoch,
        t_recv_s,
        // `t2`: sampled as late as possible before the reply hits the
        // wire, so the worker's RTT estimate excludes our lease work.
        t_reply_s: ctx.monitor.elapsed_s(),
    };
    if write_frame(&mut &stream, 0, TAG_TCP_GRANT, &grant.encode()).is_err() {
        release(ctx);
        return Ok(());
    }
    // From here on the lease holds: switch the connection to the
    // patient read discipline and start pumping.
    let reader = match stream
        .set_read_timeout(Some(READ_POLL))
        .and_then(|()| stream.try_clone())
    {
        Ok(clone) => PatientReader {
            inner: clone,
            stop: Arc::clone(&ctx.stop),
        },
        Err(_) => {
            release(ctx);
            return Ok(());
        }
    };
    let (last_seq, wire, clock) = match ctx.lease.lock() {
        Ok(lease) => (
            Arc::clone(&lease.last_seqs[rank - 1]),
            Arc::clone(&lease.wire[rank - 1]),
            Arc::clone(&lease.clocks[rank - 1]),
        ),
        Err(_) => {
            release(ctx);
            return Ok(());
        }
    };
    // Account the handshake itself on the link's wire counters.
    wire.count_in(FRAME_HEADER_LEN + frame.payload.len());
    wire.count_out(FRAME_HEADER_LEN + grant.encode().len());
    // Seed the link's offset with the crude one-way estimate
    // `t1 - t0` (it over-corrects by the uplink latency). The worker
    // closes the proper RTT-symmetric estimate from the grant and
    // reports it in a `TAG_TCP_CLOCK` frame that — by wire ordering —
    // arrives before any event it forwards, so the seed only covers
    // the handshake gap.
    clock.set_offset(t_recv_s - t0_s);
    if reconnect {
        ctx.monitor
            .emit(Some(0), EventKind::WorkerReconnected { worker: rank });
    } else {
        ctx.monitor.emit(
            Some(0),
            EventKind::WorkerJoined {
                worker: rank,
                addr: Some(peer.to_string()),
            },
        );
    }
    // Answers the worker's periodic clock probes over this link's
    // writer: `t1` at receipt, `t2` as the reply is written.
    let responder: Box<dyn Fn(&Frame) + Send> = {
        let writer = Arc::clone(&writer);
        let monitor = ctx.monitor.clone();
        let wire = Arc::clone(&wire);
        Box::new(move |frame: &Frame| {
            if frame.tag != TAG_TCP_CLOCK_PROBE {
                return;
            }
            let Some(probe) = ClockProbe::decode(&frame.payload) else {
                return;
            };
            let t1_s = monitor.elapsed_s();
            if let Ok(mut stream) = writer.lock() {
                let reply = ClockReply {
                    t0_s: probe.t0_s,
                    t1_s,
                    t2_s: monitor.elapsed_s(),
                };
                let payload = reply.encode();
                if write_frame(&mut *stream, 0, TAG_TCP_CLOCK_REPLY, &payload).is_ok() {
                    wire.count_out(FRAME_HEADER_LEN + payload.len());
                }
            }
        })
    };
    // Hub-side routing for tree topologies: a worker's send addressed
    // to its relay parent arrives here wrapped as [`TAG_IPC_ROUTE`]
    // and is forwarded over the destination's live connection with the
    // *original* source (vetted by `expect_source` before the route
    // branch, so a worker cannot spoof another rank). Runs after
    // dedup, so exactly-once survives reconnect replays. A destination
    // with no live writer (dead, or mid-rejoin) gets its frame
    // delivered to the hub's own inbox instead: the hub is the
    // collection root, so anything a relay would have forwarded is
    // absorbable directly, and the replace-then-sum fold makes the
    // duplicate against the relay's eventual copy benign. This path
    // must never block — it runs on the source connection's reader
    // thread, and stalling it would starve that worker's heartbeats
    // and get a healthy rank declared lost.
    let route: Box<dyn Fn(&Frame) + Send> = {
        let tx = ctx.tx.clone();
        let monitor = ctx.monitor.clone();
        let stats = Arc::clone(&ctx.stats);
        let lease = Arc::clone(&ctx.lease);
        let size = ctx.size;
        Box::new(move |frame: &Frame| {
            let Some((dest, tag, inner)) = decode_route(&frame.payload) else {
                return;
            };
            let dest = dest as usize;
            if dest != 0 && dest < size {
                let slot = lease.lock().ok().and_then(|l| {
                    l.writers
                        .get(dest - 1)
                        .cloned()
                        .flatten()
                        .map(|w| (w, Arc::clone(&l.wire[dest - 1])))
                });
                if let Some((writer, dest_wire)) = slot {
                    if let Ok(mut stream) = writer.lock() {
                        if write_frame(&mut *stream, frame.source, tag, inner).is_ok() {
                            dest_wire.count_out(FRAME_HEADER_LEN + inner.len());
                            return;
                        }
                    }
                }
            } else if dest >= size {
                return;
            }
            stats.note_enqueue(&monitor, 0);
            let _ = tx.send(Envelope {
                source: frame.source as usize,
                tag: Tag(tag),
                payload: Bytes::copy_from_slice(inner),
            });
        })
    };
    let spawned = std::thread::Builder::new()
        .name(format!("parmonc-tcp-w{rank}"))
        .spawn({
            let tx = ctx.tx.clone();
            let monitor = ctx.monitor.clone();
            let stats = Arc::clone(&ctx.stats);
            let lease = Arc::clone(&ctx.lease);
            move || {
                pump_frames(
                    reader,
                    tx,
                    LinkHooks {
                        monitor: monitor.clone(),
                        local_rank: 0,
                        stats: Some(stats),
                        expect_source: Some(rank as u32),
                        dedup: Some(last_seq),
                        wire: Some(Arc::clone(&wire)),
                        clock: Some(clock),
                        clock_responder: Some(responder),
                        route: Some(route),
                    },
                );
                // The connection is gone (worker exit, crash, rejoin
                // replacement, or shutdown). If this is still the
                // rank's *current* connection, surface the departure
                // and free the lease so a reconnecting worker can take
                // the rank back — the cumulative replace-then-sum
                // averaging makes a redo of the same streams
                // idempotent. A stale connection (generation moved on:
                // the worker already rejoined) stays silent — the
                // reconnect event told that story. The collector-side
                // wire totals go out first, so a trace always pairs a
                // departure with the link's final accounting.
                if let Ok(mut l) = lease.lock() {
                    if l.generation[rank - 1] == generation {
                        l.writers[rank - 1] = None;
                        drop(l);
                        monitor.emit(Some(0), wire.to_event(rank, 0));
                        monitor.emit(Some(0), EventKind::WorkerLeft { worker: rank });
                    }
                }
            }
        });
    match spawned {
        Ok(handle) => {
            if let Ok(mut readers) = ctx.readers.lock() {
                readers.push(handle);
            }
        }
        Err(_) => release(ctx),
    }
    Ok(())
}

/// Answers a refused join with a reject frame and closes the
/// connection.
fn reject(stream: &TcpStream, code: RejectCode, reason: &str) -> io::Result<()> {
    let payload = Reject {
        code,
        reason: reason.to_string(),
    }
    .encode();
    let _ = write_frame(&mut &*stream, 0, TAG_TCP_REJECT, &payload);
    let _ = stream.shutdown(Shutdown::Both);
    Ok(())
}

/// Configuration for [`TcpWorkerTransport::join`].
#[derive(Debug)]
pub struct JoinOptions {
    /// The collector's listening address, e.g. `collector-host:7717`.
    pub addr: String,
    /// Digest of this worker's run configuration; must match the
    /// collector's or the join is rejected.
    pub config_digest: u64,
    /// The worker-side fault plane; also drives the deterministic
    /// net-fault injection on this worker's outbound link.
    pub faults: FaultHandle,
    /// Connect timeout, write timeout, and the read timeout during the
    /// handshake.
    pub io_timeout: Duration,
    /// The seeded backoff schedule for the initial dial and every
    /// automatic reconnect after a broken connection.
    pub reconnect: ReconnectPolicy,
    /// Deterministic skew (seconds, may be negative) added to this
    /// worker's local event clock — a test/demo knob that models
    /// unsynchronized hosts so the collector-side alignment has
    /// something to correct. Zero in production. Never feeds the
    /// estimates, only timestamps.
    pub clock_skew_s: f64,
}

/// How one dial-and-handshake attempt failed: transiently (worth
/// retrying on the backoff schedule) or permanently (the collector
/// answered with a reject — retrying cannot change its mind).
enum HandshakeError {
    Transient(io::Error),
    Permanent(io::Error),
}

/// Resolves and dials `addr`, trying each resolved address once.
fn dial(addr: &str, timeout: Duration) -> io::Result<TcpStream> {
    let mut last_err = None;
    for candidate in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&candidate, timeout) {
            Ok(stream) => return Ok(stream),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or_else(|| {
        io::Error::new(
            io::ErrorKind::AddrNotAvailable,
            "collector address resolved to nothing",
        )
    }))
}

/// Reads and classifies the collector's handshake reply.
fn read_grant(stream: &TcpStream) -> Result<Grant, HandshakeError> {
    let reply = read_frame(&mut &*stream)
        .map_err(HandshakeError::Transient)?
        .ok_or_else(|| {
            HandshakeError::Transient(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "collector closed the connection during the handshake",
            ))
        })?;
    match reply.tag {
        TAG_TCP_GRANT => Grant::decode(&reply.payload).ok_or_else(|| {
            HandshakeError::Transient(io::Error::new(
                io::ErrorKind::InvalidData,
                "malformed grant payload",
            ))
        }),
        TAG_TCP_REJECT => {
            let message = match Reject::decode(&reply.payload) {
                Some(r) => format!("collector rejected the join ({:?}): {}", r.code, r.reason),
                None => "collector rejected the join".to_string(),
            };
            Err(HandshakeError::Permanent(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                message,
            )))
        }
        _ => Err(HandshakeError::Transient(io::Error::new(
            io::ErrorKind::InvalidData,
            "unexpected handshake reply",
        ))),
    }
}

/// Builds the worker-side answer to a [`TAG_TCP_CLOCK_REPLY`]: close
/// the four-timestamp exchange with a local `t3` sample and report the
/// fresh offset estimate back to the collector. The report is written
/// through the *inner* stream ([`FaultyStream::get_mut`]) so clock
/// traffic never consumes a scripted frame ordinal — safe because the
/// writer lock guarantees the stream sits at a frame boundary — and is
/// skipped entirely while the link is severed (the next rejoin grant
/// re-syncs instead).
fn clock_reply_responder(
    writer: Arc<Mutex<FaultyStream<TcpStream>>>,
    wire: Arc<WireTelemetry>,
    rank: usize,
    local_now: impl Fn() -> f64 + Send + 'static,
) -> Box<dyn Fn(&Frame) + Send> {
    Box::new(move |frame: &Frame| {
        if frame.tag != TAG_TCP_CLOCK_REPLY {
            return;
        }
        let Some(reply) = ClockReply::decode(&frame.payload) else {
            return;
        };
        let t3_s = local_now();
        let sync = ClockSync::estimate(reply.t0_s, reply.t1_s, reply.t2_s, t3_s);
        if let Ok(mut stream) = writer.lock() {
            if stream.is_severed() {
                return;
            }
            let payload = sync.encode();
            if write_frame(stream.get_mut(), rank as u32, TAG_TCP_CLOCK, &payload).is_ok() {
                wire.count_out(FRAME_HEADER_LEN + payload.len());
            }
        }
    })
}

/// A remote worker's end of a TCP world: dials the collector,
/// completes the handshake, and speaks for exactly the rank it was
/// leased. A broken connection does not kill the worker — sends
/// transparently re-dial on the seeded [`ReconnectPolicy`] schedule,
/// re-attach with a [`Rejoin`] handshake, and retry the failed frame
/// under its original sequence number (so the collector's dedup keeps
/// delivery exactly-once).
#[derive(Debug)]
pub struct TcpWorkerTransport {
    rank: usize,
    size: usize,
    quota: u64,
    /// The collection parent the grant assigned: 0 under a star,
    /// possibly an interior relay rank under a tree.
    parent: usize,
    pool: BufferPool,
    monitor: Monitor,
    gate: SendGate,
    mailbox: Mailbox,
    writer: Arc<Mutex<FaultyStream<TcpStream>>>,
    stop: Arc<AtomicBool>,
    reader: Mutex<Option<JoinHandle<()>>>,
    /// Readers orphaned by reconnects; they exit on their own once
    /// their dead socket drains, and are joined at drop.
    stale_readers: Mutex<Vec<JoinHandle<()>>>,
    /// Kept so reconnect can respawn readers feeding the same inbox.
    tx: Sender<Envelope>,
    stats: Arc<InboxStats>,
    addr: String,
    config_digest: u64,
    epoch: u64,
    io_timeout: Duration,
    reconnect: ReconnectPolicy,
    faults: FaultHandle,
    next_seq: AtomicU64,
    /// This side's wire counters; flushed as a `wire_stats` event
    /// (link 0: the uplink to the collector) at drop.
    wire: Arc<WireTelemetry>,
    /// Span emitter for this worker's phases; enabled by grant flag
    /// bit 1 on monitored runs, inert otherwise.
    spans: SpanEmitter,
    /// The instant the local event clock started — shared by the
    /// monitor and every handshake/probe timestamp, so `t0`/`t3`
    /// samples and event stamps are on one clock.
    clock_epoch: Instant,
    /// The deterministic skew from [`JoinOptions::clock_skew_s`].
    skew_s: f64,
    /// `f64` bits of the local clock at the last offset exchange
    /// (handshake, rejoin, or probe) — the re-sync throttle.
    last_sync: AtomicU64,
    /// Reconnect spans measured while the writer lock was held; the
    /// forwarding sink needs that same lock, so they are drained into
    /// the monitor only after it is released (see `raw_send`/`drop`).
    pending_spans: Mutex<Vec<(f64, f64)>>,
}

impl TcpWorkerTransport {
    /// Dials the collector (on the reconnect policy's backoff
    /// schedule) and completes the join/grant handshake.
    ///
    /// # Errors
    ///
    /// Resolution/connection failures after the dial budget is spent,
    /// handshake I/O errors, a malformed reply — or a reject frame,
    /// surfaced as [`io::ErrorKind::ConnectionRefused`] with the
    /// collector's reason in the message.
    pub fn join(opts: JoinOptions) -> io::Result<Self> {
        let dial_timeout = opts.reconnect.attempt_timeout.min(opts.io_timeout);
        // The backoff seed identifies the link, but the rank is not
        // known until the grant — seed the initial dial per process
        // and per join instead, so a fleet of workers dialing a
        // not-yet-up collector does not retry in lock-step. (Backoff
        // timing never feeds the estimates, so a non-deterministic
        // seed cannot perturb a bit.)
        static DIAL_NONCE: AtomicU64 = AtomicU64::new(0);
        let dial_seed = splitmix64(
            (u64::from(std::process::id()) << 32) ^ DIAL_NONCE.fetch_add(1, Ordering::Relaxed),
        );
        // The local event clock starts *before* the dial: the
        // handshake's `t0`/`t3` samples and every later event stamp
        // must come off one clock, or the offset exchange would
        // correct the wrong thing.
        let clock_epoch = Instant::now();
        let skew_s = opts.clock_skew_s;
        let local_now = move || clock_epoch.elapsed().as_secs_f64() + skew_s;
        let stream = crate::backoff::retry(opts.reconnect, dial_seed, |_| {
            dial(&opts.addr, dial_timeout)
        })?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(opts.io_timeout))?;
        stream.set_write_timeout(Some(opts.io_timeout))?;
        let wire = Arc::new(WireTelemetry::default());
        let mut request = JoinRequest::new(opts.config_digest);
        request.t0_s = local_now();
        let t0_s = request.t0_s;
        write_frame(&mut &stream, 0, TAG_TCP_JOIN, &request.encode())?;
        wire.count_out(FRAME_HEADER_LEN + request.encode().len());
        let grant = match read_grant(&stream) {
            Ok(grant) => grant,
            Err(HandshakeError::Transient(e) | HandshakeError::Permanent(e)) => return Err(e),
        };
        let t3_s = local_now();
        wire.count_in(FRAME_HEADER_LEN + grant.encode().len());
        let rank = grant.rank as usize;
        let size = grant.size as usize;
        if rank == 0 || rank >= size {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "grant leased an impossible rank",
            ));
        }
        // A parent outside the world (or naming ourselves) is treated
        // as star rather than rejected: collection degrades, estimates
        // are unaffected.
        let parent = match grant.parent as usize {
            p if p < size && p != rank => p,
            _ => 0,
        };
        // Close the RTT-symmetric offset estimate and report it before
        // any event frame: written on the bare stream (pre fault-plane
        // wrap) so clock traffic never consumes a scripted frame
        // ordinal, and ordered ahead of every forwarded event by the
        // wire itself.
        let sync = ClockSync::estimate(t0_s, grant.t_recv_s, grant.t_reply_s, t3_s);
        if grant.monitor {
            let payload = sync.encode();
            write_frame(&mut &stream, rank as u32, TAG_TCP_CLOCK, &payload)?;
            wire.count_out(FRAME_HEADER_LEN + payload.len());
        }
        stream.set_read_timeout(Some(READ_POLL))?;
        let writer = Arc::new(Mutex::new(FaultyStream::new(
            stream.try_clone()?,
            rank,
            opts.faults.clone(),
        )));
        let monitor = if grant.monitor {
            Monitor::new_skewed_from(
                clock_epoch,
                vec![Box::new(ForwardSink::new(
                    Arc::clone(&writer),
                    rank,
                    Arc::clone(&wire),
                ))],
                skew_s,
            )
        } else {
            Monitor::disabled()
        };
        let spans = SpanEmitter::new(&monitor, rank, grant.spans);
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(InboxStats::default());
        let (tx, rx) = mpsc::channel();
        let patient = PatientReader {
            inner: stream,
            stop: Arc::clone(&stop),
        };
        let thread_monitor = monitor.clone();
        let thread_stats = Arc::clone(&stats);
        let thread_tx = tx.clone();
        let responder =
            clock_reply_responder(Arc::clone(&writer), Arc::clone(&wire), rank, local_now);
        let thread_wire = Arc::clone(&wire);
        let reader = std::thread::Builder::new()
            .name(format!("parmonc-tcp-r{rank}"))
            .spawn(move || {
                pump_frames(
                    patient,
                    thread_tx,
                    LinkHooks {
                        monitor: thread_monitor,
                        local_rank: rank,
                        stats: Some(thread_stats),
                        // Routed frames carry the *origin* rank (a
                        // relay receives its children's subtotals via
                        // the hub), so any source is acceptable here.
                        expect_source: None,
                        dedup: None,
                        wire: Some(thread_wire),
                        clock: None,
                        clock_responder: Some(responder),
                        route: None,
                    },
                );
            })?;
        Ok(Self {
            rank,
            size,
            quota: grant.quota,
            parent,
            pool: BufferPool::new(parmonc_mpi::pool::DEFAULT_POOL_CAPACITY),
            monitor: monitor.clone(),
            gate: SendGate::new(rank, opts.faults.clone(), monitor),
            mailbox: Mailbox::new(rank, rx, Monitor::disabled(), Some(stats.clone())),
            writer,
            stop,
            reader: Mutex::new(Some(reader)),
            stale_readers: Mutex::new(Vec::new()),
            tx,
            stats,
            addr: opts.addr,
            config_digest: opts.config_digest,
            epoch: grant.epoch,
            io_timeout: opts.io_timeout,
            reconnect: opts.reconnect,
            faults: opts.faults,
            next_seq: AtomicU64::new(0),
            wire,
            spans,
            clock_epoch,
            skew_s,
            last_sync: AtomicU64::new(t3_s.to_bits()),
            pending_spans: Mutex::new(Vec::new()),
        })
    }

    /// The worker's monitor: enabled (forwarding over the socket) when
    /// the collector's run is monitored, disabled otherwise.
    #[must_use]
    pub fn monitor(&self) -> Monitor {
        self.monitor.clone()
    }

    /// The realization quota the grant promised for this rank; callers
    /// cross-check it against their own configuration before
    /// computing.
    #[must_use]
    pub fn granted_quota(&self) -> u64 {
        self.quota
    }

    /// The collection parent the grant assigned under the run's
    /// topology: 0 under a star (the default), an interior relay rank
    /// under a tree. Workers emit their subtotal envelopes toward this
    /// rank and fall back to 0 if it goes away.
    #[must_use]
    pub fn granted_parent(&self) -> usize {
        self.parent
    }

    /// The session epoch from the grant; a resumed collector
    /// re-announces the same epoch, anything else refuses our rejoin.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Re-establishes the link after a broken send, with the writer
    /// lock held (so concurrent senders queue behind the recovery
    /// instead of racing it): hang up the old socket, re-dial on the
    /// seeded backoff schedule — each attempt first consulting the
    /// fault plane's partition veto — re-attach with a rejoin
    /// handshake, swap the stream under the [`FaultyStream`], and
    /// respawn the reader.
    fn reconnect_locked(&self, stream: &mut FaultyStream<TcpStream>) -> io::Result<()> {
        if self.stop.load(Ordering::Relaxed) {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "transport is shutting down",
            ));
        }
        // The recovery is timed here but reported later: the span
        // would be forwarded through the very writer lock this method
        // holds, so it is queued and drained once the lock is free.
        let span_start_s = self.local_now();
        // Hang the old connection up explicitly: when only the fault
        // plane broke the link, the kernel socket is still healthy and
        // the collector would otherwise keep the half-open connection
        // (and our rank's writer slot) alive.
        let _ = stream.get_ref().shutdown(Shutdown::Both);
        let mut backoff = Backoff::new(self.reconnect, self.rank as u64);
        let mut last_err: Option<io::Error> = None;
        loop {
            let Some(delay) = backoff.next_delay() else {
                return Err(last_err.unwrap_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::TimedOut,
                        "reconnect attempt budget exhausted",
                    )
                }));
            };
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
            if self.faults.on_reconnect_attempt(self.rank) {
                last_err = Some(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    "reconnect attempt vetoed by the scripted partition",
                ));
                continue;
            }
            let dial_timeout = self.reconnect.attempt_timeout.min(self.io_timeout);
            self.wire.count_dial();
            let candidate = match dial(&self.addr, dial_timeout) {
                Ok(s) => s,
                Err(e) => {
                    last_err = Some(e);
                    continue;
                }
            };
            let configured = candidate
                .set_nodelay(true)
                .and_then(|()| candidate.set_read_timeout(Some(self.io_timeout)))
                .and_then(|()| candidate.set_write_timeout(Some(self.io_timeout)));
            if let Err(e) = configured {
                last_err = Some(e);
                continue;
            }
            let mut rejoin = Rejoin::new(self.config_digest, self.epoch, self.rank as u32);
            rejoin.t0_s = self.local_now();
            if let Err(e) = write_frame(&mut &candidate, 0, TAG_TCP_REJOIN, &rejoin.encode()) {
                last_err = Some(e);
                continue;
            }
            self.wire
                .count_out(FRAME_HEADER_LEN + rejoin.encode().len());
            let grant = match read_grant(&candidate) {
                Ok(grant) => grant,
                // A reject is final: the collector will answer every
                // retry the same way (wrong epoch, retired rank, ...).
                Err(HandshakeError::Permanent(e)) => return Err(e),
                Err(HandshakeError::Transient(e)) => {
                    last_err = Some(e);
                    continue;
                }
            };
            let t3_s = self.local_now();
            self.wire.count_in(FRAME_HEADER_LEN + grant.encode().len());
            if grant.rank as usize != self.rank || grant.epoch != self.epoch {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "rejoin grant does not match the original lease",
                ));
            }
            // The rejoin grant doubles as a fresh offset exchange —
            // reported on the bare candidate (pre fault-plane wrap),
            // ahead of any replayed event frame.
            if self.monitor.is_enabled() {
                let sync = ClockSync::estimate(rejoin.t0_s, grant.t_recv_s, grant.t_reply_s, t3_s);
                let payload = sync.encode();
                if let Err(e) =
                    write_frame(&mut &candidate, self.rank as u32, TAG_TCP_CLOCK, &payload)
                {
                    last_err = Some(e);
                    continue;
                }
                self.wire.count_out(FRAME_HEADER_LEN + payload.len());
                self.last_sync.store(t3_s.to_bits(), Ordering::Relaxed);
            }
            let prepared = candidate
                .set_read_timeout(Some(READ_POLL))
                .and_then(|()| candidate.try_clone());
            let write_half = match prepared {
                Ok(clone) => clone,
                Err(e) => {
                    last_err = Some(e);
                    continue;
                }
            };
            // The link is back. The old reader exits on its own (its
            // socket is shut down); joining it here could deadlock —
            // it may be blocked forwarding an event through the very
            // writer lock we hold — so it is parked for drop instead.
            stream.replace(write_half);
            let patient = PatientReader {
                inner: candidate,
                stop: Arc::clone(&self.stop),
            };
            let thread_monitor = self.monitor.clone();
            let thread_stats = Arc::clone(&self.stats);
            let thread_tx = self.tx.clone();
            let rank = self.rank;
            let clock_epoch = self.clock_epoch;
            let skew_s = self.skew_s;
            let responder = clock_reply_responder(
                Arc::clone(&self.writer),
                Arc::clone(&self.wire),
                rank,
                move || clock_epoch.elapsed().as_secs_f64() + skew_s,
            );
            let thread_wire = Arc::clone(&self.wire);
            let spawned = std::thread::Builder::new()
                .name(format!("parmonc-tcp-r{rank}"))
                .spawn(move || {
                    pump_frames(
                        patient,
                        thread_tx,
                        LinkHooks {
                            monitor: thread_monitor,
                            local_rank: rank,
                            stats: Some(thread_stats),
                            // Any source: routed frames carry the
                            // origin rank (see the join-time reader).
                            expect_source: None,
                            dedup: None,
                            wire: Some(thread_wire),
                            clock: None,
                            clock_responder: Some(responder),
                            route: None,
                        },
                    );
                });
            match spawned {
                Ok(handle) => {
                    if let Ok(mut slot) = self.reader.lock() {
                        let old = slot.replace(handle);
                        if let (Some(old), Ok(mut stale)) = (old, self.stale_readers.lock()) {
                            stale.push(old);
                        }
                    }
                }
                Err(e) => {
                    last_err = Some(e);
                    continue;
                }
            }
            if self.spans.is_enabled() {
                if let Ok(mut pending) = self.pending_spans.lock() {
                    pending.push((span_start_s, self.local_now()));
                }
            }
            return Ok(());
        }
    }

    fn raw_send(&self, dest: usize, tag: Tag, payload: &Bytes) -> Result<(), MpiError> {
        if dest >= self.size {
            return Err(MpiError::Disconnected);
        }
        // The physical link always runs to the hub. A send addressed
        // to any other rank (a tree worker emitting to its relay
        // parent) is wrapped as a routed frame; the collector unwraps
        // it past dedup and forwards the inner frame, so the route
        // consumes a sequence number exactly like a direct send.
        let (wire_tag, wrapped);
        let on_wire: &[u8] = if dest == 0 {
            wire_tag = tag.0;
            payload
        } else {
            wrapped = encode_route(dest as u32, tag.0, payload);
            wire_tag = TAG_IPC_ROUTE;
            &wrapped
        };
        let result = {
            let mut stream = self.writer.lock().map_err(|_| MpiError::Disconnected)?;
            // One sequence number per *logical* send, assigned under the
            // writer lock so wire order always matches sequence order — a
            // lower number written later would be dropped by the
            // collector's dedup as a "replay" that never arrived. A retry
            // after reconnect reuses the number, so the collector can
            // recognize a replay of a frame that actually arrived before
            // the link broke.
            let seq = self.next_seq.fetch_add(1, Ordering::Relaxed) + 1;
            let sent = if write_frame_seq(&mut *stream, self.rank as u32, wire_tag, seq, on_wire)
                .is_ok()
            {
                Ok(())
            } else if self.reconnect_locked(&mut stream).is_err() {
                Err(MpiError::Disconnected)
            } else {
                write_frame_seq(&mut *stream, self.rank as u32, wire_tag, seq, on_wire)
                    .map_err(|_| MpiError::Disconnected)
            };
            if sent.is_ok() {
                self.wire.count_out(FRAME_HEADER_LEN + on_wire.len());
                self.maybe_probe(&mut stream);
            }
            sent
        };
        // Reconnect spans are measured under the writer lock but
        // forwarded through it — drain them only now that it is free.
        self.flush_pending_spans();
        result
    }

    /// The worker's local event clock: seconds since the transport
    /// started dialing, plus the configured deterministic skew.
    fn local_now(&self) -> f64 {
        self.clock_epoch.elapsed().as_secs_f64() + self.skew_s
    }

    /// Piggybacks a clock probe on an outgoing send when the last
    /// offset exchange is older than [`CLOCK_SYNC_INTERVAL_S`]. The
    /// probe is written through the inner stream so clock traffic
    /// never consumes a scripted fault ordinal, and skipped while the
    /// link is severed — the rejoin grant re-syncs instead.
    fn maybe_probe(&self, stream: &mut FaultyStream<TcpStream>) {
        if !self.monitor.is_enabled() || stream.is_severed() {
            return;
        }
        let now_s = self.local_now();
        if now_s - f64::from_bits(self.last_sync.load(Ordering::Relaxed)) < CLOCK_SYNC_INTERVAL_S {
            return;
        }
        let payload = ClockProbe { t0_s: now_s }.encode();
        let written = write_frame(
            stream.get_mut(),
            self.rank as u32,
            TAG_TCP_CLOCK_PROBE,
            &payload,
        );
        if written.is_ok() {
            self.wire.count_out(FRAME_HEADER_LEN + payload.len());
            self.last_sync.store(now_s.to_bits(), Ordering::Relaxed);
        }
    }

    /// Drains reconnect spans measured under the writer lock into the
    /// monitor. Never called while the lock is held — the forwarding
    /// sink needs it.
    fn flush_pending_spans(&self) {
        if !self.spans.is_enabled() {
            return;
        }
        let drained: Vec<(f64, f64)> = match self.pending_spans.lock() {
            Ok(mut pending) => pending.drain(..).collect(),
            Err(_) => return,
        };
        for (start_s, end_s) in drained {
            self.spans.closed_at(SpanPhase::Reconnect, start_s, end_s);
        }
    }

    /// The worker's span emitter: live when the grant's span flag was
    /// set on a monitored run, inert otherwise.
    #[must_use]
    pub fn spans(&self) -> SpanEmitter {
        self.spans.clone()
    }
}

impl Drop for TcpWorkerTransport {
    fn drop(&mut self) {
        // Raise the stop flag first so a dead collector cannot make
        // the delayed-send flush spin through a reconnect schedule at
        // teardown; on a live link the flush still delivers — a
        // delayed message is late, never lost. Then hang up, which
        // unblocks our reader and tells the collector we left.
        self.stop.store(true, Ordering::Relaxed);
        let _ = self
            .gate
            .flush_delayed(true, &|d, t, p| self.raw_send(d, t, p));
        self.flush_pending_spans();
        // The uplink's final accounting, forwarded while the socket is
        // still up: frames and bytes both ways, reconnect dials, and
        // any forwarded events the sink had to drop on the floor. Sent
        // best-effort — if the link is already dead the collector's
        // own side of the accounting still tells the story.
        if self.monitor.is_enabled() {
            self.monitor.emit(
                Some(self.rank),
                self.wire.to_event(0, self.monitor.dropped_events()),
            );
        }
        if let Ok(stream) = self.writer.lock() {
            let _ = stream.get_ref().shutdown(Shutdown::Both);
        }
        if let Ok(mut slot) = self.reader.lock() {
            if let Some(handle) = slot.take() {
                let _ = handle.join();
            }
        }
        if let Ok(mut stale) = self.stale_readers.lock() {
            for handle in stale.drain(..) {
                let _ = handle.join();
            }
        }
    }
}

impl Transport for TcpWorkerTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn pool(&self) -> &BufferPool {
        &self.pool
    }

    fn recycle(&self, payload: Bytes) {
        self.pool.recycle(payload);
    }

    fn send(&self, dest: usize, tag: Tag, payload: &[u8]) -> Result<(), MpiError> {
        self.send_bytes(dest, tag, Bytes::copy_from_slice(payload))
    }

    fn send_bytes(&self, dest: usize, tag: Tag, payload: Bytes) -> Result<(), MpiError> {
        if dest >= self.size {
            return Err(MpiError::InvalidRank {
                rank: dest,
                size: self.size,
            });
        }
        self.gate
            .send(dest, tag, payload, &|d, t, p| self.raw_send(d, t, p))
    }

    fn recv(&mut self, source: Option<usize>, tag: Option<Tag>) -> Result<Envelope, MpiError> {
        self.mailbox.recv(source, tag)
    }

    fn recv_timeout(
        &mut self,
        source: Option<usize>,
        tag: Option<Tag>,
        timeout: Duration,
    ) -> Result<Option<Envelope>, MpiError> {
        self.mailbox.recv_timeout(source, tag, timeout)
    }

    fn try_recv(&mut self, source: Option<usize>, tag: Option<Tag>) -> Option<Envelope> {
        self.mailbox.try_recv(source, tag)
    }

    fn iprobe(&mut self, source: Option<usize>, tag: Option<Tag>) -> bool {
        self.mailbox.iprobe(source, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parmonc_faults::FaultPlan;
    use std::time::Instant;

    const TIMEOUT: Duration = Duration::from_secs(5);

    fn collector(size: usize, quotas: Vec<u64>) -> TcpCollectorTransport {
        collector_with(size, quotas, None)
    }

    fn collector_with(
        size: usize,
        quotas: Vec<u64>,
        resume: Option<LeaseSnapshot>,
    ) -> TcpCollectorTransport {
        TcpCollectorTransport::listen(ListenOptions {
            addr: "127.0.0.1:0".into(),
            size,
            monitor: Monitor::disabled(),
            faults: FaultHandle::disabled(),
            config_digest: 42,
            quotas,
            io_timeout: TIMEOUT,
            resume,
            persist: None,
            trace_spans: false,
            parents: Vec::new(),
        })
        .expect("listen on loopback")
    }

    fn join(addr: String, digest: u64) -> io::Result<TcpWorkerTransport> {
        join_with(addr, digest, FaultHandle::disabled())
    }

    fn join_with(addr: String, digest: u64, faults: FaultHandle) -> io::Result<TcpWorkerTransport> {
        TcpWorkerTransport::join(JoinOptions {
            addr,
            config_digest: digest,
            faults,
            io_timeout: TIMEOUT,
            reconnect: ReconnectPolicy {
                attempts: 3,
                base_delay: Duration::from_millis(5),
                max_delay: Duration::from_millis(20),
                attempt_timeout: TIMEOUT,
            },
            clock_skew_s: 0.0,
        })
    }

    /// Dials a raw join frame and returns the decoded reject.
    fn raw_join_reject(addr: SocketAddr, request: &JoinRequest) -> Reject {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(TIMEOUT)).unwrap();
        write_frame(&mut stream, 0, TAG_TCP_JOIN, &request.encode()).unwrap();
        let reply = read_frame(&mut &stream).unwrap().expect("a reply frame");
        assert_eq!(reply.tag, TAG_TCP_REJECT);
        Reject::decode(&reply.payload).expect("well-formed reject")
    }

    /// Dials a raw join and returns the open stream plus the grant.
    fn raw_join(addr: SocketAddr) -> (TcpStream, Grant) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(TIMEOUT)).unwrap();
        write_frame(&mut stream, 0, TAG_TCP_JOIN, &JoinRequest::new(42).encode()).unwrap();
        let reply = read_frame(&mut &stream).unwrap().expect("a reply frame");
        assert_eq!(reply.tag, TAG_TCP_GRANT);
        let grant = Grant::decode(&reply.payload).expect("well-formed grant");
        (stream, grant)
    }

    /// Dials a raw rejoin and returns the raw reply frame.
    fn raw_rejoin(addr: SocketAddr, rejoin: &Rejoin) -> crate::frame::Frame {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(TIMEOUT)).unwrap();
        write_frame(&mut stream, 0, TAG_TCP_REJOIN, &rejoin.encode()).unwrap();
        read_frame(&mut &stream).unwrap().expect("a reply frame")
    }

    #[test]
    fn grants_a_lease_and_round_trips_envelopes() {
        let mut collector = collector(2, vec![125]);
        let addr = collector.local_addr().to_string();
        let epoch = collector.epoch();
        let worker_side = std::thread::spawn(move || {
            let mut worker = join(addr, 42).expect("join succeeds");
            assert_eq!(worker.rank(), 1);
            assert_eq!(worker.size(), 2);
            assert_eq!(worker.granted_quota(), 125);
            assert_eq!(worker.epoch(), epoch);
            worker.send(0, Tag(7), b"subtotal").unwrap();
            let env = worker.recv(Some(0), Some(Tag(9))).unwrap();
            assert_eq!(&env.payload[..], b"ack");
        });
        let env = collector.recv(Some(1), Some(Tag(7))).unwrap();
        assert_eq!(env.source, 1);
        assert_eq!(&env.payload[..], b"subtotal");
        collector.send(1, Tag(9), b"ack").unwrap();
        worker_side.join().unwrap();
        collector.shutdown().unwrap();
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let mut collector = collector(2, vec![10]);
        let mut request = JoinRequest::new(42);
        request.magic = 0x0BAD_CAFE;
        let reject = raw_join_reject(collector.local_addr(), &request);
        assert_eq!(reject.code, RejectCode::BadMagic);
        collector.shutdown().unwrap();
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut collector = collector(2, vec![10]);
        let mut request = JoinRequest::new(42);
        request.version = TCP_PROTOCOL_VERSION + 1;
        let reject = raw_join_reject(collector.local_addr(), &request);
        assert_eq!(reject.code, RejectCode::VersionMismatch);
        assert!(reject.reason.contains("version"), "{}", reject.reason);
        collector.shutdown().unwrap();
    }

    #[test]
    fn config_digest_mismatch_is_rejected_with_the_reason() {
        let mut collector = collector(2, vec![10]);
        let err = join(collector.local_addr().to_string(), 43).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
        assert!(err.to_string().contains("digest"), "{err}");
        collector.shutdown().unwrap();
    }

    #[test]
    fn exhausted_budget_rejects_the_joiner_cleanly() {
        let mut collector = collector(2, vec![10]);
        let addr = collector.local_addr();
        // Retiring the only worker rank models "budget already
        // reassigned": the late joiner must be refused, not leased a
        // double-counted stream range.
        collector.retire_rank(1);
        let reject = raw_join_reject(addr, &JoinRequest::new(42));
        assert_eq!(reject.code, RejectCode::BudgetExhausted);
        collector.shutdown().unwrap();
    }

    #[test]
    fn dropped_connection_frees_the_rank_for_a_reconnect() {
        let mut collector = collector(2, vec![10]);
        let addr = collector.local_addr().to_string();
        let first = join(addr.clone(), 42).expect("first join");
        assert_eq!(first.rank(), 1);
        drop(first);
        // The collector notices the hang-up within the read poll and
        // releases the lease; a fresh worker then gets the same rank.
        let deadline = Instant::now() + TIMEOUT;
        loop {
            match join(addr.clone(), 42) {
                Ok(second) => {
                    assert_eq!(second.rank(), 1);
                    break;
                }
                Err(e) => {
                    assert!(Instant::now() < deadline, "lease never freed: {e}");
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
        collector.shutdown().unwrap();
    }

    #[test]
    fn rejoin_regrants_the_rank_and_dedups_replayed_sequences() {
        let mut collector = collector(2, vec![10]);
        let addr = collector.local_addr();
        let (mut first, grant) = raw_join(addr);
        assert_eq!(grant.rank, 1);
        write_frame_seq(&mut first, 1, 7, 1, b"one").unwrap();
        write_frame_seq(&mut first, 1, 7, 2, b"two").unwrap();
        assert_eq!(
            &collector.recv(Some(1), Some(Tag(7))).unwrap().payload[..],
            b"one"
        );
        assert_eq!(
            &collector.recv(Some(1), Some(Tag(7))).unwrap().payload[..],
            b"two"
        );
        first.shutdown(Shutdown::Both).unwrap();

        // Rejoin with the granted epoch: same rank comes back, and a
        // replay of seq 2 (which already arrived) is dropped while the
        // fresh seq 3 is delivered — exactly-once across the break.
        let mut second = TcpStream::connect(addr).unwrap();
        second.set_read_timeout(Some(TIMEOUT)).unwrap();
        let rejoin = Rejoin::new(42, grant.epoch, 1);
        write_frame(&mut second, 0, TAG_TCP_REJOIN, &rejoin.encode()).unwrap();
        let reply = read_frame(&mut &second).unwrap().expect("a reply frame");
        assert_eq!(reply.tag, TAG_TCP_GRANT);
        let regrant = Grant::decode(&reply.payload).unwrap();
        assert_eq!(regrant.rank, 1);
        assert_eq!(regrant.epoch, grant.epoch);
        write_frame_seq(&mut second, 1, 7, 2, b"two").unwrap();
        write_frame_seq(&mut second, 1, 7, 3, b"three").unwrap();
        let env = collector.recv(Some(1), Some(Tag(7))).unwrap();
        assert_eq!(
            &env.payload[..],
            b"three",
            "replayed seq 2 must be deduplicated"
        );
        collector.shutdown().unwrap();
    }

    #[test]
    fn fresh_joiner_on_a_dropped_rank_starts_with_clean_dedup_state() {
        // A crash-restarted worker cannot Rejoin (its rank and epoch
        // died with the old process), so it comes back as a *fresh*
        // joiner and its sequence numbers restart at 1. Leasing it the
        // dropped rank must reset the dedup high-water mark, or every
        // frame the new incarnation sends — heartbeats and subtotals
        // alike — would be silently dropped as a replay of the old one.
        let mut collector = collector(2, vec![10]);
        let addr = collector.local_addr();
        let (mut first, grant) = raw_join(addr);
        assert_eq!(grant.rank, 1);
        write_frame_seq(&mut first, 1, 7, 1, b"one").unwrap();
        write_frame_seq(&mut first, 1, 7, 2, b"two").unwrap();
        for _ in 0..2 {
            collector.recv(Some(1), Some(Tag(7))).unwrap();
        }
        first.shutdown(Shutdown::Both).unwrap();
        drop(first);

        // Wait for the collector to free the lease, then join fresh.
        let deadline = Instant::now() + TIMEOUT;
        let (mut second, regrant) = loop {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.set_read_timeout(Some(TIMEOUT)).unwrap();
            write_frame(&mut stream, 0, TAG_TCP_JOIN, &JoinRequest::new(42).encode()).unwrap();
            let reply = read_frame(&mut &stream).unwrap().expect("a reply frame");
            if reply.tag == TAG_TCP_GRANT {
                break (stream, Grant::decode(&reply.payload).unwrap());
            }
            assert!(Instant::now() < deadline, "lease never freed");
            std::thread::sleep(Duration::from_millis(20));
        };
        assert_eq!(regrant.rank, 1);
        // The new incarnation's seq 1 must be admitted, not swallowed
        // by the old incarnation's high-water mark of 2.
        write_frame_seq(&mut second, 1, 7, 1, b"reborn").unwrap();
        let env = collector
            .recv_timeout(Some(1), Some(Tag(7)), TIMEOUT)
            .unwrap()
            .expect("the fresh incarnation's first frame must be admitted");
        assert_eq!(&env.payload[..], b"reborn");
        collector.shutdown().unwrap();
    }

    #[test]
    fn a_stalled_dialer_does_not_block_other_joins() {
        // A connection that completes TCP accept but never sends its
        // join frame must not wedge admission for the full handshake
        // read timeout: the handshake runs on a per-connection thread,
        // so a healthy joiner (or a rejoining worker) gets through
        // immediately.
        let mut collector = collector(2, vec![10]);
        let addr = collector.local_addr();
        let stalled = TcpStream::connect(addr).unwrap();
        // Give the acceptor time to take the stalled connection first.
        std::thread::sleep(Duration::from_millis(50));
        let started = Instant::now();
        let worker = join(addr.to_string(), 42).expect("join succeeds");
        assert!(
            started.elapsed() < TIMEOUT / 2,
            "healthy join was blocked behind the stalled dialer"
        );
        assert_eq!(worker.rank(), 1);
        drop(stalled);
        drop(worker);
        collector.shutdown().unwrap();
    }

    #[test]
    fn rejoin_with_the_wrong_epoch_is_rejected() {
        let mut collector = collector(2, vec![10]);
        let addr = collector.local_addr();
        let (_stream, grant) = raw_join(addr);
        let reply = raw_rejoin(addr, &Rejoin::new(42, grant.epoch.wrapping_add(1), 1));
        assert_eq!(reply.tag, TAG_TCP_REJECT);
        let reject = Reject::decode(&reply.payload).unwrap();
        assert_eq!(reject.code, RejectCode::EpochMismatch);
        assert!(reject.reason.contains("epoch"), "{}", reject.reason);
        collector.shutdown().unwrap();
    }

    #[test]
    fn rejoin_of_a_never_leased_rank_is_rejected() {
        let mut collector = collector(3, vec![5, 5]);
        let addr = collector.local_addr();
        let reply = raw_rejoin(addr, &Rejoin::new(42, collector.epoch(), 2));
        assert_eq!(reply.tag, TAG_TCP_REJECT);
        let reject = Reject::decode(&reply.payload).unwrap();
        assert_eq!(reject.code, RejectCode::BudgetExhausted);
        assert!(reject.reason.contains("never leased"), "{}", reject.reason);
        collector.shutdown().unwrap();
    }

    #[test]
    fn lease_snapshot_round_trips_and_resume_preserves_the_session() {
        let mut first = collector(3, vec![5, 5]);
        let addr = first.local_addr();
        let (_stream, grant) = raw_join(addr);
        assert_eq!(grant.rank, 1);
        let snapshot = first.snapshot();
        assert_eq!(snapshot.epoch, first.epoch());
        assert_eq!(snapshot.ever_leased, vec![true, false]);
        assert_eq!(
            LeaseSnapshot::decode(&snapshot.encode()),
            Some(snapshot.clone())
        );
        first.shutdown().unwrap();

        // A restarted collector armed with the snapshot announces the
        // same epoch and lets the leased rank rejoin — while a fresh
        // join is dealt the still-untouched rank 2, not rank 1.
        let mut second = collector_with(3, vec![5, 5], Some(snapshot));
        assert_eq!(second.epoch(), grant.epoch);
        let addr2 = second.local_addr();
        let reply = raw_rejoin(addr2, &Rejoin::new(42, grant.epoch, 1));
        assert_eq!(reply.tag, TAG_TCP_GRANT);
        assert_eq!(Grant::decode(&reply.payload).unwrap().rank, 1);
        let (_join2, grant2) = raw_join(addr2);
        assert_eq!(grant2.rank, 2, "fresh joiners get untouched ranks");
        second.shutdown().unwrap();
    }

    #[test]
    fn lease_table_is_persisted_before_each_grant() {
        let dir =
            std::env::temp_dir().join(format!("parmonc-lease-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("leases.dat");
        let mut collector = TcpCollectorTransport::listen(ListenOptions {
            addr: "127.0.0.1:0".into(),
            size: 3,
            monitor: Monitor::disabled(),
            faults: FaultHandle::disabled(),
            config_digest: 42,
            quotas: vec![5, 5],
            io_timeout: TIMEOUT,
            resume: None,
            persist: Some(path.clone()),
            trace_spans: false,
            parents: Vec::new(),
        })
        .expect("listen on loopback");
        // The session epoch hits disk at bind time, before any join.
        let snapshot =
            LeaseSnapshot::decode(&std::fs::read_to_string(&path).unwrap()).expect("valid table");
        assert_eq!(snapshot.epoch, collector.epoch());
        assert_eq!(snapshot.ever_leased, vec![false, false]);
        // By the time a worker holds its grant, the lease is durable:
        // persist happens strictly before the grant frame is written.
        let (_stream, grant) = raw_join(collector.local_addr());
        let snapshot = LeaseSnapshot::decode(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert!(snapshot.ever_leased[grant.rank as usize - 1]);
        // Retirement (budget reassignment) is persisted too.
        collector.retire_rank(2);
        let snapshot = LeaseSnapshot::decode(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(snapshot.retired, vec![false, true]);
        collector.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_lease_snapshots_fail_to_decode() {
        let good = LeaseSnapshot {
            epoch: 7,
            size: 3,
            ever_leased: vec![true, false],
            retired: vec![false, true],
            last_seqs: vec![12, 0],
        };
        let text = good.encode();
        assert_eq!(LeaseSnapshot::decode(&text), Some(good));
        assert_eq!(LeaseSnapshot::decode(""), None);
        assert_eq!(LeaseSnapshot::decode("parmonc-leases v1\n"), None);
        let truncated = text.lines().take(3).collect::<Vec<_>>().join("\n");
        assert_eq!(LeaseSnapshot::decode(&truncated), None);
        let padded = format!("{text}extra\n");
        assert_eq!(LeaseSnapshot::decode(&padded), None);
    }

    #[test]
    fn routed_frames_reach_a_relay_through_the_hub() {
        // Tree topology at the transport level: rank 2's grant names
        // rank 1 as its collection parent, and a send addressed to
        // rank 1 travels worker 2 -> hub -> worker 1 with the origin
        // rank preserved.
        let mut collector = TcpCollectorTransport::listen(ListenOptions {
            addr: "127.0.0.1:0".into(),
            size: 3,
            monitor: Monitor::disabled(),
            faults: FaultHandle::disabled(),
            config_digest: 42,
            quotas: vec![5, 5],
            io_timeout: TIMEOUT,
            resume: None,
            persist: None,
            trace_spans: false,
            parents: vec![0, 1],
        })
        .expect("listen on loopback");
        let addr = collector.local_addr().to_string();
        let mut relay = join(addr.clone(), 42).expect("rank 1 joins");
        assert_eq!(relay.granted_parent(), 0, "rank 1 reports to the collector");
        let sender = join(addr, 42).expect("rank 2 joins");
        assert_eq!(sender.granted_parent(), 1, "rank 2 reports to the relay");
        sender.send(1, Tag(7), b"uphill").unwrap();
        let env = relay
            .recv(None, Some(Tag(7)))
            .expect("routed frame arrives");
        assert_eq!(env.source, 2, "the origin rank survives the hop");
        assert_eq!(&env.payload[..], b"uphill");
        // A retired parent is remapped to 0 at grant time, so a late
        // (re)joiner never routes into a hole.
        collector.retire_rank(1);
        collector.shutdown().unwrap();
    }

    #[test]
    fn worker_transport_survives_a_scripted_severance() {
        // The fault plane severs rank 1's link after 2 frames; the
        // worker transport must reconnect on its own and every
        // envelope must arrive exactly once.
        let mut collector = collector(2, vec![10]);
        let addr = collector.local_addr().to_string();
        let faults = FaultPlan::new(9).sever_connection(1, 2).build();
        let worker_side = std::thread::spawn(move || {
            let worker = join_with(addr, 42, faults).expect("join succeeds");
            for i in 0..5u8 {
                worker
                    .send(0, Tag(7), &[i])
                    .expect("send survives the severance");
            }
        });
        let mut got = Vec::new();
        for _ in 0..5 {
            let env = collector.recv(Some(1), Some(Tag(7))).unwrap();
            got.push(env.payload[0]);
        }
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        worker_side.join().unwrap();
        collector.shutdown().unwrap();
    }

    #[test]
    fn scripted_partition_blocks_reconnects_until_it_lifts() {
        // Sever after 1 frame, then veto the first 2 reconnect
        // attempts: the worker still gets through on the third.
        let mut collector = collector(2, vec![10]);
        let addr = collector.local_addr().to_string();
        let faults = FaultPlan::new(9)
            .sever_connection(1, 1)
            .partition(&[1], 1, 2)
            .build();
        let worker_side = std::thread::spawn(move || {
            let worker = TcpWorkerTransport::join(JoinOptions {
                addr,
                config_digest: 42,
                faults,
                io_timeout: TIMEOUT,
                reconnect: ReconnectPolicy {
                    attempts: 6,
                    base_delay: Duration::from_millis(2),
                    max_delay: Duration::from_millis(8),
                    attempt_timeout: TIMEOUT,
                },
                clock_skew_s: 0.0,
            })
            .expect("join succeeds");
            worker.send(0, Tag(7), b"before").unwrap();
            worker
                .send(0, Tag(7), b"after")
                .expect("send rides out the partition");
        });
        assert_eq!(
            &collector.recv(Some(1), Some(Tag(7))).unwrap().payload[..],
            b"before"
        );
        assert_eq!(
            &collector.recv(Some(1), Some(Tag(7))).unwrap().payload[..],
            b"after"
        );
        worker_side.join().unwrap();
        collector.shutdown().unwrap();
    }
}
