//! The multi-host TCP backend: one collector listening on a socket
//! address, remote workers dialing in — with *elastic* membership.
//!
//! Unlike the Unix-socket backend, the world is not built by spawning:
//! [`TcpCollectorTransport::listen`] binds a listener and returns
//! immediately with zero workers connected. Each logical worker rank
//! is a *lease*: a dialing worker completes the versioned
//! join/grant handshake (`docs/wire-protocol.md`) and is dealt the
//! lowest untouched rank — which is exactly an untouched leapfrog
//! stream range plus its share of the realization budget. Because
//! every rank's streams and quota are a pure function of the run
//! configuration, a worker that joins mid-run computes precisely what
//! a fixed-membership worker would have, and the estimates stay
//! bit-identical. Ranks whose budget the collector has already
//! reassigned (after declaring them lost) are *retired* via
//! [`parmonc_mpi::Transport::retire_rank`] and never leased again —
//! leasing one would double-count the reassigned realizations.
//!
//! Connection health is split between two layers, on purpose:
//!
//! * **writes** carry a per-connection timeout (`io_timeout`), so a
//!   wedged peer turns a send into [`MpiError::Disconnected`] instead
//!   of blocking the collector loop;
//! * **reads** never time a peer out. A blocked reader polls with a
//!   short kernel receive timeout (`PatientReader` below) purely so
//!   teardown can interrupt it; judging *silence* is the job of the
//!   run's heartbeat-based liveness plane, which sees the same
//!   evidence on every backend.
//!
//! The topology is the same star as the other backends: workers talk
//! only to rank 0, and a connection speaks only for the rank it was
//! leased (frames claiming another source are dropped).

use std::io::{self, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use parmonc_faults::FaultHandle;
use parmonc_mpi::bytes::Bytes;
use parmonc_mpi::envelope::{Envelope, Tag};
use parmonc_mpi::error::MpiError;
use parmonc_mpi::pool::BufferPool;
use parmonc_mpi::transport::Transport;
use parmonc_obs::{EventKind, Monitor};

use crate::frame::{
    read_frame, write_frame, Grant, JoinRequest, Reject, RejectCode, TAG_TCP_GRANT, TAG_TCP_JOIN,
    TAG_TCP_REJECT, TCP_MAGIC, TCP_PROTOCOL_VERSION,
};
use crate::link::{pump_frames, ForwardSink, InboxStats, Mailbox, SendGate};

/// How often a blocked reader wakes to check the stop flag — the
/// kernel receive timeout under [`PatientReader`].
const READ_POLL: Duration = Duration::from_millis(50);

/// How long the acceptor sleeps between polls of the non-blocking
/// listener.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// A [`Read`] wrapper for sockets with a short `SO_RCVTIMEO`: receive
/// timeouts are retried (a kernel timeout consumes no bytes, so frame
/// decoding never sees a torn header) until the stop flag is raised,
/// at which point reads report a clean EOF. Dead-peer detection is
/// deliberately *not* done here — silence is judged by the run's
/// liveness plane on heartbeat evidence, not by the transport.
#[derive(Debug)]
struct PatientReader {
    inner: TcpStream,
    stop: Arc<AtomicBool>,
}

impl Read for PatientReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            if self.stop.load(Ordering::Relaxed) {
                return Ok(0);
            }
            match self.inner.read(buf) {
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) => {}
                other => return other,
            }
        }
    }
}

/// The collector's rank-lease table.
#[derive(Debug)]
struct LeaseState {
    /// Write halves indexed by `rank - 1`; `None` while the rank is
    /// unleased or after its connection dropped.
    writers: Vec<Option<Arc<Mutex<TcpStream>>>>,
    /// Ranks that have been leased at least once. Fresh joiners are
    /// dealt never-touched ranks first: a rank whose worker already
    /// completed frees its slot on disconnect, and handing that slot
    /// to the *next* joiner (instead of the lowest untouched one)
    /// would make the joiner redo a finished stream range while a
    /// genuinely untouched range starves.
    ever_leased: Vec<bool>,
    /// Ranks whose budget the collector reassigned; never leased again.
    retired: Vec<bool>,
}

impl LeaseState {
    /// Leases the lowest never-yet-leased rank to `writer`, falling
    /// back to the lowest dropped rank (a reconnect redoing the same
    /// streams is idempotent under replace-then-sum), or `None` when
    /// every rank is either connected or retired.
    fn lease(&mut self, writer: Arc<Mutex<TcpStream>>) -> Option<usize> {
        let free = |&(_, (w, &retired)): &(usize, (&Option<_>, &bool))| -> bool {
            w.is_none() && !retired
        };
        let slot = self
            .writers
            .iter()
            .zip(&self.retired)
            .enumerate()
            .filter(free)
            .find(|&(i, _)| !self.ever_leased[i])
            .map(|(i, _)| i)
            .or_else(|| {
                self.writers
                    .iter()
                    .zip(&self.retired)
                    .enumerate()
                    .find(free)
                    .map(|(i, _)| i)
            })?;
        self.writers[slot] = Some(writer);
        self.ever_leased[slot] = true;
        Some(slot + 1)
    }
}

/// Configuration for [`TcpCollectorTransport::listen`].
#[derive(Debug)]
pub struct ListenOptions {
    /// The address to listen on, e.g. `0.0.0.0:7717` or `127.0.0.1:0`
    /// (port 0 picks an ephemeral port; read it back with
    /// [`TcpCollectorTransport::local_addr`]).
    pub addr: String,
    /// World size including the collector: the number of logical
    /// ranks, i.e. leases, is `size - 1`.
    pub size: usize,
    /// The run's monitor. Join/leave events and rank-0 transport
    /// events are emitted here; worker events arrive over the sockets
    /// and are re-emitted with the workers' timestamps.
    pub monitor: Monitor,
    /// The collector-side fault plane (rank 0's outgoing messages).
    pub faults: FaultHandle,
    /// Digest of the run configuration; joiners presenting a different
    /// digest are rejected (they would compute the wrong streams).
    pub config_digest: u64,
    /// Per-rank realization quotas, indexed by `rank - 1`; echoed in
    /// the grant so the worker can cross-check its own configuration.
    pub quotas: Vec<u64>,
    /// Per-connection write timeout, and the read timeout during the
    /// handshake.
    pub io_timeout: Duration,
}

/// Everything the acceptor thread needs to admit a joiner.
struct AcceptorCtx {
    stop: Arc<AtomicBool>,
    lease: Arc<Mutex<LeaseState>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    tx: Sender<Envelope>,
    monitor: Monitor,
    stats: Arc<InboxStats>,
    size: usize,
    quotas: Vec<u64>,
    config_digest: u64,
    io_timeout: Duration,
}

/// Rank 0 of a TCP world: the listener, lease table, and
/// collector-side transport.
///
/// Construction returns with *zero* workers connected; membership is
/// elastic. A logical rank that never connects is eventually declared
/// lost by the collector's liveness sweep and its budget reassigned —
/// exactly the worker-loss path — so a run completes at full volume
/// whether or not every lease is ever taken.
#[derive(Debug)]
pub struct TcpCollectorTransport {
    size: usize,
    pool: BufferPool,
    monitor: Monitor,
    gate: SendGate,
    mailbox: Mailbox,
    stats: Arc<InboxStats>,
    self_tx: Sender<Envelope>,
    lease: Arc<Mutex<LeaseState>>,
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    shut_down: bool,
}

impl TcpCollectorTransport {
    /// Binds the listening socket and starts the acceptor thread.
    ///
    /// # Errors
    ///
    /// Bind/thread-spawn failures, a zero world size, or a quota table
    /// that does not cover `size - 1` ranks.
    pub fn listen(opts: ListenOptions) -> io::Result<Self> {
        if opts.size == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "world size must be at least 1",
            ));
        }
        if opts.quotas.len() != opts.size.saturating_sub(1) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "quota table must have one entry per worker rank",
            ));
        }
        let listener = TcpListener::bind(opts.addr.as_str())?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let (tx, rx) = mpsc::channel();
        let stats = Arc::new(InboxStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let workers = opts.size.saturating_sub(1);
        let lease = Arc::new(Mutex::new(LeaseState {
            writers: vec![None; workers],
            ever_leased: vec![false; workers],
            retired: vec![false; workers],
        }));
        let readers = Arc::new(Mutex::new(Vec::new()));

        let ctx = AcceptorCtx {
            stop: Arc::clone(&stop),
            lease: Arc::clone(&lease),
            readers: Arc::clone(&readers),
            tx: tx.clone(),
            monitor: opts.monitor.clone(),
            stats: Arc::clone(&stats),
            size: opts.size,
            quotas: opts.quotas,
            config_digest: opts.config_digest,
            io_timeout: opts.io_timeout,
        };
        let acceptor = std::thread::Builder::new()
            .name("parmonc-tcp-accept".into())
            .spawn(move || accept_loop(&listener, &ctx))?;

        Ok(Self {
            size: opts.size,
            pool: BufferPool::new(parmonc_mpi::pool::DEFAULT_POOL_CAPACITY),
            monitor: opts.monitor.clone(),
            gate: SendGate::new(0, opts.faults, opts.monitor.clone()),
            mailbox: Mailbox::new(0, rx, opts.monitor, Some(Arc::clone(&stats))),
            stats,
            self_tx: tx,
            lease,
            local_addr,
            stop,
            acceptor: Some(acceptor),
            readers,
            shut_down: false,
        })
    }

    /// The bound listening address — with port 0 in
    /// [`ListenOptions::addr`], this is where the ephemeral port is
    /// learned.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    fn raw_send(&self, dest: usize, tag: Tag, payload: &Bytes) -> Result<(), MpiError> {
        if dest == 0 {
            self.stats.note_enqueue(&self.monitor, 0);
            return self
                .self_tx
                .send(Envelope {
                    source: 0,
                    tag,
                    payload: payload.clone(),
                })
                .map_err(|_| MpiError::Disconnected);
        }
        let writer = {
            let lease = self.lease.lock().map_err(|_| MpiError::Disconnected)?;
            lease
                .writers
                .get(dest - 1)
                .cloned()
                .flatten()
                .ok_or(MpiError::Disconnected)?
        };
        let mut stream = writer.lock().map_err(|_| MpiError::Disconnected)?;
        write_frame(&mut *stream, 0, tag.0, payload).map_err(|_| MpiError::Disconnected)
    }

    /// Tears the world down: force-flushes fault-delayed sends, raises
    /// the stop flag, shuts every live connection down (remote workers
    /// see EOF), and joins the acceptor and reader threads — which
    /// guarantees every forwarded worker event is in the monitor's
    /// sinks on return. Idempotent.
    ///
    /// # Errors
    ///
    /// None today; the signature reserves the right.
    pub fn shutdown(&mut self) -> io::Result<()> {
        if self.shut_down {
            return Ok(());
        }
        self.shut_down = true;
        let _ = self
            .gate
            .flush_delayed(true, &|d, t, p| self.raw_send(d, t, p));
        self.stop.store(true, Ordering::Relaxed);
        if let Ok(lease) = self.lease.lock() {
            for writer in lease.writers.iter().flatten() {
                if let Ok(stream) = writer.lock() {
                    let _ = stream.shutdown(Shutdown::Both);
                }
            }
        }
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        let handles: Vec<_> = match self.readers.lock() {
            Ok(mut readers) => readers.drain(..).collect(),
            Err(_) => Vec::new(),
        };
        for handle in handles {
            let _ = handle.join();
        }
        if let Ok(mut lease) = self.lease.lock() {
            for writer in lease.writers.iter_mut() {
                *writer = None;
            }
        }
        Ok(())
    }
}

impl Drop for TcpCollectorTransport {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

impl Transport for TcpCollectorTransport {
    fn rank(&self) -> usize {
        0
    }

    fn size(&self) -> usize {
        self.size
    }

    fn pool(&self) -> &BufferPool {
        &self.pool
    }

    fn recycle(&self, payload: Bytes) {
        self.pool.recycle(payload);
    }

    fn send(&self, dest: usize, tag: Tag, payload: &[u8]) -> Result<(), MpiError> {
        self.send_bytes(dest, tag, Bytes::copy_from_slice(payload))
    }

    fn send_bytes(&self, dest: usize, tag: Tag, payload: Bytes) -> Result<(), MpiError> {
        if dest >= self.size {
            return Err(MpiError::InvalidRank {
                rank: dest,
                size: self.size,
            });
        }
        self.gate
            .send(dest, tag, payload, &|d, t, p| self.raw_send(d, t, p))
    }

    fn recv(&mut self, source: Option<usize>, tag: Option<Tag>) -> Result<Envelope, MpiError> {
        self.mailbox.recv(source, tag)
    }

    fn recv_timeout(
        &mut self,
        source: Option<usize>,
        tag: Option<Tag>,
        timeout: Duration,
    ) -> Result<Option<Envelope>, MpiError> {
        self.mailbox.recv_timeout(source, tag, timeout)
    }

    fn try_recv(&mut self, source: Option<usize>, tag: Option<Tag>) -> Option<Envelope> {
        self.mailbox.try_recv(source, tag)
    }

    fn iprobe(&mut self, source: Option<usize>, tag: Option<Tag>) -> bool {
        self.mailbox.iprobe(source, tag)
    }

    fn retire_rank(&self, rank: usize) {
        if rank == 0 || rank >= self.size {
            return;
        }
        if let Ok(mut lease) = self.lease.lock() {
            lease.retired[rank - 1] = true;
        }
    }
}

/// The acceptor: polls the non-blocking listener until shutdown,
/// admitting (or rejecting) each dialing worker.
fn accept_loop(listener: &TcpListener, ctx: &AcceptorCtx) {
    while !ctx.stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, peer)) => {
                let _ = admit(stream, peer, ctx);
            }
            // WouldBlock is the idle case; any other accept error is
            // transient on a healthy listener, so keep serving.
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Validates one dialing connection's join request and, on success,
/// leases it a rank, answers with the grant, and wires up its reader.
/// Invalid joins are answered with a reject frame and dropped; a
/// failure here never disturbs the rest of the world.
fn admit(stream: TcpStream, peer: SocketAddr, ctx: &AcceptorCtx) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(ctx.io_timeout))?;
    stream.set_write_timeout(Some(ctx.io_timeout))?;
    let frame = match read_frame(&mut &stream)? {
        Some(frame) if frame.tag == TAG_TCP_JOIN => frame,
        // Silent, closed, or alien connection: drop it without reply.
        _ => return Ok(()),
    };
    let join = match JoinRequest::decode(&frame.payload) {
        Some(join) => join,
        None => {
            return reject(&stream, RejectCode::BadMagic, "malformed join payload");
        }
    };
    if join.magic != TCP_MAGIC {
        return reject(
            &stream,
            RejectCode::BadMagic,
            "join frame does not open with the PMNC magic",
        );
    }
    if join.version != TCP_PROTOCOL_VERSION {
        return reject(
            &stream,
            RejectCode::VersionMismatch,
            &format!(
                "worker speaks wire-protocol version {}, collector speaks {}",
                join.version, TCP_PROTOCOL_VERSION
            ),
        );
    }
    if join.config_digest != ctx.config_digest {
        return reject(
            &stream,
            RejectCode::ConfigMismatch,
            "run-configuration digest mismatch: this worker would compute the wrong streams",
        );
    }
    let writer = Arc::new(Mutex::new(stream.try_clone()?));
    let leased = ctx
        .lease
        .lock()
        .ok()
        .and_then(|mut lease| lease.lease(Arc::clone(&writer)));
    let Some(rank) = leased else {
        return reject(
            &stream,
            RejectCode::BudgetExhausted,
            "no worker rank available: every stream range is leased or its budget reassigned",
        );
    };
    let release = |ctx: &AcceptorCtx| {
        if let Ok(mut lease) = ctx.lease.lock() {
            lease.writers[rank - 1] = None;
        }
    };
    let grant = Grant {
        version: TCP_PROTOCOL_VERSION,
        monitor: ctx.monitor.is_enabled(),
        rank: rank as u32,
        size: ctx.size as u32,
        quota: ctx.quotas[rank - 1],
    };
    if write_frame(&mut &stream, 0, TAG_TCP_GRANT, &grant.encode()).is_err() {
        release(ctx);
        return Ok(());
    }
    // From here on the lease holds: switch the connection to the
    // patient read discipline and start pumping.
    let reader = match stream
        .set_read_timeout(Some(READ_POLL))
        .and_then(|()| stream.try_clone())
    {
        Ok(clone) => PatientReader {
            inner: clone,
            stop: Arc::clone(&ctx.stop),
        },
        Err(_) => {
            release(ctx);
            return Ok(());
        }
    };
    ctx.monitor.emit(
        Some(0),
        EventKind::WorkerJoined {
            worker: rank,
            addr: Some(peer.to_string()),
        },
    );
    let spawned = std::thread::Builder::new()
        .name(format!("parmonc-tcp-w{rank}"))
        .spawn({
            let tx = ctx.tx.clone();
            let monitor = ctx.monitor.clone();
            let stats = Arc::clone(&ctx.stats);
            let lease = Arc::clone(&ctx.lease);
            move || {
                pump_frames(
                    reader,
                    tx,
                    monitor.clone(),
                    0,
                    Some(stats),
                    Some(rank as u32),
                );
                // The connection is gone (worker exit, crash, or
                // shutdown): surface the departure and free the lease so
                // a reconnecting worker can take the rank back — the
                // cumulative replace-then-sum averaging makes a redo of
                // the same streams idempotent.
                monitor.emit(Some(0), EventKind::WorkerLeft { worker: rank });
                if let Ok(mut l) = lease.lock() {
                    l.writers[rank - 1] = None;
                }
            }
        });
    match spawned {
        Ok(handle) => {
            if let Ok(mut readers) = ctx.readers.lock() {
                readers.push(handle);
            }
        }
        Err(_) => release(ctx),
    }
    Ok(())
}

/// Answers a refused join with a reject frame and closes the
/// connection.
fn reject(stream: &TcpStream, code: RejectCode, reason: &str) -> io::Result<()> {
    let payload = Reject {
        code,
        reason: reason.to_string(),
    }
    .encode();
    let _ = write_frame(&mut &*stream, 0, TAG_TCP_REJECT, &payload);
    let _ = stream.shutdown(Shutdown::Both);
    Ok(())
}

/// Configuration for [`TcpWorkerTransport::join`].
#[derive(Debug)]
pub struct JoinOptions {
    /// The collector's listening address, e.g. `collector-host:7717`.
    pub addr: String,
    /// Digest of this worker's run configuration; must match the
    /// collector's or the join is rejected.
    pub config_digest: u64,
    /// The worker-side fault plane.
    pub faults: FaultHandle,
    /// Connect timeout, write timeout, and the read timeout during the
    /// handshake.
    pub io_timeout: Duration,
}

/// A remote worker's end of a TCP world: dials the collector,
/// completes the handshake, and speaks for exactly the rank it was
/// leased.
#[derive(Debug)]
pub struct TcpWorkerTransport {
    rank: usize,
    size: usize,
    quota: u64,
    pool: BufferPool,
    monitor: Monitor,
    gate: SendGate,
    mailbox: Mailbox,
    writer: Arc<Mutex<TcpStream>>,
    stop: Arc<AtomicBool>,
    reader: Option<JoinHandle<()>>,
}

impl TcpWorkerTransport {
    /// Dials the collector and completes the join/grant handshake.
    ///
    /// # Errors
    ///
    /// Resolution/connection failures, handshake I/O errors, a
    /// malformed reply — or a reject frame, surfaced as
    /// [`io::ErrorKind::ConnectionRefused`] with the collector's
    /// reason in the message.
    pub fn join(opts: JoinOptions) -> io::Result<Self> {
        let mut last_err = None;
        let mut stream = None;
        for addr in opts.addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&addr, opts.io_timeout) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) => last_err = Some(e),
            }
        }
        let mut stream = stream.ok_or_else(|| {
            last_err.unwrap_or_else(|| {
                io::Error::new(
                    io::ErrorKind::AddrNotAvailable,
                    "collector address resolved to nothing",
                )
            })
        })?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(opts.io_timeout))?;
        stream.set_write_timeout(Some(opts.io_timeout))?;
        write_frame(
            &mut stream,
            0,
            TAG_TCP_JOIN,
            &JoinRequest::new(opts.config_digest).encode(),
        )?;
        let reply = read_frame(&mut &stream)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "collector closed the connection during the handshake",
            )
        })?;
        let grant = match reply.tag {
            TAG_TCP_GRANT => Grant::decode(&reply.payload).ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, "malformed grant payload")
            })?,
            TAG_TCP_REJECT => {
                let message = match Reject::decode(&reply.payload) {
                    Some(r) => format!("collector rejected the join ({:?}): {}", r.code, r.reason),
                    None => "collector rejected the join".to_string(),
                };
                return Err(io::Error::new(io::ErrorKind::ConnectionRefused, message));
            }
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "unexpected handshake reply",
                ))
            }
        };
        let rank = grant.rank as usize;
        let size = grant.size as usize;
        if rank == 0 || rank >= size {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "grant leased an impossible rank",
            ));
        }
        stream.set_read_timeout(Some(READ_POLL))?;
        let writer = Arc::new(Mutex::new(stream.try_clone()?));
        let monitor = if grant.monitor {
            Monitor::new(vec![Box::new(ForwardSink::new(Arc::clone(&writer), rank))])
        } else {
            Monitor::disabled()
        };
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(InboxStats::default());
        let (tx, rx) = mpsc::channel();
        let patient = PatientReader {
            inner: stream,
            stop: Arc::clone(&stop),
        };
        let thread_monitor = monitor.clone();
        let thread_stats = Arc::clone(&stats);
        let reader = std::thread::Builder::new()
            .name(format!("parmonc-tcp-r{rank}"))
            .spawn(move || {
                pump_frames(
                    patient,
                    tx,
                    thread_monitor,
                    rank,
                    Some(thread_stats),
                    Some(0),
                );
            })?;
        Ok(Self {
            rank,
            size,
            quota: grant.quota,
            pool: BufferPool::new(parmonc_mpi::pool::DEFAULT_POOL_CAPACITY),
            monitor: monitor.clone(),
            gate: SendGate::new(rank, opts.faults, monitor),
            mailbox: Mailbox::new(rank, rx, Monitor::disabled(), Some(stats)),
            writer,
            stop,
            reader: Some(reader),
        })
    }

    /// The worker's monitor: enabled (forwarding over the socket) when
    /// the collector's run is monitored, disabled otherwise.
    #[must_use]
    pub fn monitor(&self) -> Monitor {
        self.monitor.clone()
    }

    /// The realization quota the grant promised for this rank; callers
    /// cross-check it against their own configuration before
    /// computing.
    #[must_use]
    pub fn granted_quota(&self) -> u64 {
        self.quota
    }

    fn raw_send(&self, dest: usize, tag: Tag, payload: &Bytes) -> Result<(), MpiError> {
        if dest != 0 {
            // Star topology, same as the other backends.
            return Err(MpiError::Disconnected);
        }
        let mut stream = self.writer.lock().map_err(|_| MpiError::Disconnected)?;
        write_frame(&mut *stream, self.rank as u32, tag.0, payload)
            .map_err(|_| MpiError::Disconnected)
    }
}

impl Drop for TcpWorkerTransport {
    fn drop(&mut self) {
        // A delayed message is late, never lost — then hang up, which
        // unblocks our reader and tells the collector we left.
        let _ = self
            .gate
            .flush_delayed(true, &|d, t, p| self.raw_send(d, t, p));
        self.stop.store(true, Ordering::Relaxed);
        if let Ok(stream) = self.writer.lock() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        if let Some(handle) = self.reader.take() {
            let _ = handle.join();
        }
    }
}

impl Transport for TcpWorkerTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn pool(&self) -> &BufferPool {
        &self.pool
    }

    fn recycle(&self, payload: Bytes) {
        self.pool.recycle(payload);
    }

    fn send(&self, dest: usize, tag: Tag, payload: &[u8]) -> Result<(), MpiError> {
        self.send_bytes(dest, tag, Bytes::copy_from_slice(payload))
    }

    fn send_bytes(&self, dest: usize, tag: Tag, payload: Bytes) -> Result<(), MpiError> {
        if dest >= self.size {
            return Err(MpiError::InvalidRank {
                rank: dest,
                size: self.size,
            });
        }
        self.gate
            .send(dest, tag, payload, &|d, t, p| self.raw_send(d, t, p))
    }

    fn recv(&mut self, source: Option<usize>, tag: Option<Tag>) -> Result<Envelope, MpiError> {
        self.mailbox.recv(source, tag)
    }

    fn recv_timeout(
        &mut self,
        source: Option<usize>,
        tag: Option<Tag>,
        timeout: Duration,
    ) -> Result<Option<Envelope>, MpiError> {
        self.mailbox.recv_timeout(source, tag, timeout)
    }

    fn try_recv(&mut self, source: Option<usize>, tag: Option<Tag>) -> Option<Envelope> {
        self.mailbox.try_recv(source, tag)
    }

    fn iprobe(&mut self, source: Option<usize>, tag: Option<Tag>) -> bool {
        self.mailbox.iprobe(source, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    const TIMEOUT: Duration = Duration::from_secs(5);

    fn collector(size: usize, quotas: Vec<u64>) -> TcpCollectorTransport {
        TcpCollectorTransport::listen(ListenOptions {
            addr: "127.0.0.1:0".into(),
            size,
            monitor: Monitor::disabled(),
            faults: FaultHandle::disabled(),
            config_digest: 42,
            quotas,
            io_timeout: TIMEOUT,
        })
        .expect("listen on loopback")
    }

    fn join(addr: String, digest: u64) -> io::Result<TcpWorkerTransport> {
        TcpWorkerTransport::join(JoinOptions {
            addr,
            config_digest: digest,
            faults: FaultHandle::disabled(),
            io_timeout: TIMEOUT,
        })
    }

    /// Dials a raw join frame and returns the decoded reject.
    fn raw_join_reject(addr: SocketAddr, request: &JoinRequest) -> Reject {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(TIMEOUT)).unwrap();
        write_frame(&mut stream, 0, TAG_TCP_JOIN, &request.encode()).unwrap();
        let reply = read_frame(&mut &stream).unwrap().expect("a reply frame");
        assert_eq!(reply.tag, TAG_TCP_REJECT);
        Reject::decode(&reply.payload).expect("well-formed reject")
    }

    #[test]
    fn grants_a_lease_and_round_trips_envelopes() {
        let mut collector = collector(2, vec![125]);
        let addr = collector.local_addr().to_string();
        let worker_side = std::thread::spawn(move || {
            let mut worker = join(addr, 42).expect("join succeeds");
            assert_eq!(worker.rank(), 1);
            assert_eq!(worker.size(), 2);
            assert_eq!(worker.granted_quota(), 125);
            worker.send(0, Tag(7), b"subtotal").unwrap();
            let env = worker.recv(Some(0), Some(Tag(9))).unwrap();
            assert_eq!(&env.payload[..], b"ack");
        });
        let env = collector.recv(Some(1), Some(Tag(7))).unwrap();
        assert_eq!(env.source, 1);
        assert_eq!(&env.payload[..], b"subtotal");
        collector.send(1, Tag(9), b"ack").unwrap();
        worker_side.join().unwrap();
        collector.shutdown().unwrap();
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let mut collector = collector(2, vec![10]);
        let mut request = JoinRequest::new(42);
        request.magic = 0x0BAD_CAFE;
        let reject = raw_join_reject(collector.local_addr(), &request);
        assert_eq!(reject.code, RejectCode::BadMagic);
        collector.shutdown().unwrap();
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut collector = collector(2, vec![10]);
        let mut request = JoinRequest::new(42);
        request.version = TCP_PROTOCOL_VERSION + 1;
        let reject = raw_join_reject(collector.local_addr(), &request);
        assert_eq!(reject.code, RejectCode::VersionMismatch);
        assert!(reject.reason.contains("version"), "{}", reject.reason);
        collector.shutdown().unwrap();
    }

    #[test]
    fn config_digest_mismatch_is_rejected_with_the_reason() {
        let mut collector = collector(2, vec![10]);
        let err = join(collector.local_addr().to_string(), 43).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
        assert!(err.to_string().contains("digest"), "{err}");
        collector.shutdown().unwrap();
    }

    #[test]
    fn exhausted_budget_rejects_the_joiner_cleanly() {
        let mut collector = collector(2, vec![10]);
        let addr = collector.local_addr();
        // Retiring the only worker rank models "budget already
        // reassigned": the late joiner must be refused, not leased a
        // double-counted stream range.
        collector.retire_rank(1);
        let reject = raw_join_reject(addr, &JoinRequest::new(42));
        assert_eq!(reject.code, RejectCode::BudgetExhausted);
        collector.shutdown().unwrap();
    }

    #[test]
    fn dropped_connection_frees_the_rank_for_a_reconnect() {
        let mut collector = collector(2, vec![10]);
        let addr = collector.local_addr().to_string();
        let first = join(addr.clone(), 42).expect("first join");
        assert_eq!(first.rank(), 1);
        drop(first);
        // The collector notices the hang-up within the read poll and
        // releases the lease; a fresh worker then gets the same rank.
        let deadline = Instant::now() + TIMEOUT;
        loop {
            match join(addr.clone(), 42) {
                Ok(second) => {
                    assert_eq!(second.rank(), 1);
                    break;
                }
                Err(e) => {
                    assert!(Instant::now() < deadline, "lease never freed: {e}");
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
        collector.shutdown().unwrap();
    }
}
