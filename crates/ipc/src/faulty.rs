//! Deterministic network-fault injection under the frame codec.
//!
//! [`FaultyStream`] wraps a worker's outbound stream to the collector
//! and consults the fault plane once per frame boundary: a scripted
//! `sever_connection` breaks the link before the frame's first byte,
//! `stall_link` sleeps before delivering it, and `tear_frame` writes
//! only the header plus half the payload before breaking — exactly the
//! torn frame the collector's reader must reject. The wrapper tracks
//! frame boundaries by parsing the same 20-byte header the codec
//! writes, so it works identically under the TCP and Unix-socket
//! backends, and the frame ordinals live in the shared
//! [`FaultHandle`] so a plan replays bit-identically across backends.
//!
//! When the plan scripts nothing for this link (including the disabled
//! handle), every write is a straight passthrough after one boolean
//! check — the property the `bound_net_fault_plane_overhead_pct`
//! bench gate enforces.

use std::io::{self, Write};

use parmonc_faults::{FaultHandle, NetAction};

use crate::frame::FRAME_HEADER_LEN;

fn broken_pipe() -> io::Error {
    io::Error::new(
        io::ErrorKind::BrokenPipe,
        "connection severed by the fault plane",
    )
}

/// A write-side stream wrapper injecting scripted network faults at
/// frame boundaries. See the module docs.
#[derive(Debug)]
pub struct FaultyStream<S> {
    inner: S,
    rank: usize,
    faults: FaultHandle,
    /// Whether any net rule targets this link — false short-circuits
    /// the whole state machine.
    active: bool,
    /// The current connection is broken; every write fails until
    /// [`Self::replace`] installs a fresh stream.
    severed: bool,
    /// Bytes of the current frame seen so far (0 = at a boundary).
    pos: usize,
    /// Total frame size once the header is parsed.
    frame_total: Option<usize>,
    /// The current frame is scripted to tear.
    torn: bool,
    /// Byte offset after which the scripted tear breaks the connection
    /// (`usize::MAX` until a torn frame's header reveals the length —
    /// and always for intact frames, which are emitted whole).
    tear_at: usize,
    /// Header bytes of the current frame, accumulated for parsing.
    header: [u8; FRAME_HEADER_LEN],
}

impl<S: Write> FaultyStream<S> {
    /// Wraps `inner` as worker `rank`'s link to the collector.
    pub fn new(inner: S, rank: usize, faults: FaultHandle) -> Self {
        let active = faults.targets_link(rank);
        Self {
            inner,
            rank,
            faults,
            active,
            severed: false,
            pos: 0,
            frame_total: None,
            torn: false,
            tear_at: usize::MAX,
            header: [0u8; FRAME_HEADER_LEN],
        }
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// The wrapped stream, mutably.
    pub fn get_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// True if the fault plane broke this connection.
    pub fn is_severed(&self) -> bool {
        self.severed
    }

    /// Installs a fresh stream after a reconnect: clears the severed
    /// flag and resets to a frame boundary. Frame ordinals continue
    /// from where the link left off (they live in the fault handle).
    pub fn replace(&mut self, inner: S) {
        self.inner = inner;
        self.severed = false;
        self.pos = 0;
        self.frame_total = None;
        self.torn = false;
        self.tear_at = usize::MAX;
    }
}

impl<S: Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if !self.active {
            return self.inner.write(buf);
        }
        if self.severed {
            return Err(broken_pipe());
        }
        if buf.is_empty() {
            return Ok(0);
        }
        if self.pos == 0 {
            // A new frame begins: decide its fate once.
            self.torn = false;
            self.tear_at = usize::MAX;
            match self.faults.on_frame(self.rank) {
                NetAction::Deliver => {}
                NetAction::Stall { millis } => {
                    std::thread::sleep(std::time::Duration::from_millis(millis));
                }
                NetAction::Sever => {
                    self.severed = true;
                    return Err(broken_pipe());
                }
                NetAction::Tear => self.torn = true,
            }
        }
        // Consume at most up to the end of the header (so we can parse
        // the length) or of the frame.
        let take = if self.pos < FRAME_HEADER_LEN {
            let n = buf.len().min(FRAME_HEADER_LEN - self.pos);
            self.header[self.pos..self.pos + n].copy_from_slice(&buf[..n]);
            n
        } else {
            let total = self.frame_total.expect("header parsed");
            buf.len().min(total - self.pos)
        };
        if self.pos + take == FRAME_HEADER_LEN {
            let len = u32::from_le_bytes(self.header[16..20].try_into().expect("4 bytes")) as usize;
            self.frame_total = Some(FRAME_HEADER_LEN + len);
            if self.torn {
                self.tear_at = FRAME_HEADER_LEN + len / 2;
            }
        }
        // Emit only the bytes before the tear point (everything, on an
        // intact frame).
        let emit = take.min(self.tear_at.saturating_sub(self.pos));
        if emit > 0 {
            self.inner.write_all(&buf[..emit])?;
        }
        self.pos += take;
        if self.torn && self.frame_total.is_some() && self.pos >= self.tear_at {
            let _ = self.inner.flush();
            self.severed = true;
            return Err(broken_pipe());
        }
        if self.frame_total == Some(self.pos) {
            self.pos = 0;
            self.frame_total = None;
        }
        Ok(take)
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.severed {
            return Err(broken_pipe());
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{read_frame, write_frame_seq};
    use parmonc_faults::FaultPlan;

    fn frames(bytes: &[u8]) -> Vec<(u32, u64, Vec<u8>)> {
        let mut r = bytes;
        let mut out = Vec::new();
        while let Ok(Some(f)) = read_frame(&mut r) {
            out.push((f.tag, f.seq, f.payload));
        }
        out
    }

    #[test]
    fn passthrough_when_link_untargeted() {
        // An enabled handle whose rules target a different rank.
        let faults = FaultPlan::new(1).sever_connection(2, 0).build();
        let mut s = FaultyStream::new(Vec::new(), 1, faults);
        assert!(!s.active);
        write_frame_seq(&mut s, 1, 7, 1, b"data").unwrap();
        assert_eq!(frames(s.get_ref()), vec![(7, 1, b"data".to_vec())]);
    }

    #[test]
    fn sever_breaks_at_the_scripted_frame() {
        let faults = FaultPlan::new(1).sever_connection(1, 2).build();
        let mut s = FaultyStream::new(Vec::new(), 1, faults);
        write_frame_seq(&mut s, 1, 7, 1, b"one").unwrap();
        write_frame_seq(&mut s, 1, 7, 2, b"two").unwrap();
        let err = write_frame_seq(&mut s, 1, 7, 3, b"three").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert!(s.is_severed());
        // Nothing of the severed frame reached the wire.
        assert_eq!(frames(s.get_ref()).len(), 2);
        // Every later write fails until the stream is replaced.
        assert!(write_frame_seq(&mut s, 1, 7, 3, b"three").is_err());
        s.replace(Vec::new());
        write_frame_seq(&mut s, 1, 7, 3, b"three").unwrap();
        assert_eq!(frames(s.get_ref()), vec![(7, 3, b"three".to_vec())]);
    }

    #[test]
    fn tear_writes_half_the_payload_then_breaks() {
        let faults = FaultPlan::new(1).tear_frame(1, 1).build();
        let mut s = FaultyStream::new(Vec::new(), 1, faults);
        write_frame_seq(&mut s, 1, 7, 1, b"intact").unwrap();
        let err = write_frame_seq(&mut s, 1, 7, 2, b"12345678").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        // The wire holds one whole frame plus a torn one: full header,
        // half payload.
        let wire = s.get_ref().clone();
        let first_len = FRAME_HEADER_LEN + b"intact".len();
        assert_eq!(wire.len(), first_len + FRAME_HEADER_LEN + 4);
        let mut r = &wire[..];
        assert!(read_frame(&mut r).unwrap().is_some());
        let torn = read_frame(&mut r).unwrap_err();
        assert_eq!(torn.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn stall_delivers_the_frame_intact() {
        let faults = FaultPlan::new(1).stall_link(1, 1, 1).build();
        let mut s = FaultyStream::new(Vec::new(), 1, faults);
        write_frame_seq(&mut s, 1, 7, 1, b"late").unwrap();
        write_frame_seq(&mut s, 1, 7, 2, b"ontime").unwrap();
        assert_eq!(
            frames(s.get_ref()),
            vec![(7, 1, b"late".to_vec()), (7, 2, b"ontime".to_vec())]
        );
    }

    #[test]
    fn byte_at_a_time_writes_track_frame_boundaries() {
        let faults = FaultPlan::new(1).sever_connection(1, 1).build();
        let mut buf = Vec::new();
        write_frame_seq(&mut buf, 1, 7, 1, b"drip").unwrap();
        let mut s = FaultyStream::new(Vec::new(), 1, faults);
        for b in &buf {
            s.write_all(std::slice::from_ref(b)).unwrap();
        }
        assert_eq!(frames(s.get_ref()), vec![(7, 1, b"drip".to_vec())]);
        // The next frame is the scripted severance.
        assert!(s.write_all(&buf).is_err());
    }
}
