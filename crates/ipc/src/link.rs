//! Shared plumbing for both ends of a socket world: the matching
//! mailbox, queue-depth accounting, the fault-gated send path, and
//! the monitor-event forwarding sink.

use std::cell::RefCell;
use std::io::{BufReader, Read, Write};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use parmonc_faults::{FaultHandle, FaultKind, SendAction};
use parmonc_mpi::bytes::Bytes;
use parmonc_mpi::envelope::{Envelope, Tag};
use parmonc_mpi::error::MpiError;
use parmonc_obs::{Event, EventKind, EventSink, Monitor};

use crate::frame::{
    read_frame, write_frame, ClockSync, Frame, FRAME_HEADER_LEN, TAG_IPC_EVENT, TAG_IPC_HELLO,
    TAG_TCP_CLOCK, TAG_TCP_CLOCK_PROBE, TAG_TCP_CLOCK_REPLY,
};

/// Per-link wire counters, shared between the link's reader thread and
/// its write path. The counters survive reconnects (they live beside
/// the lease, not the connection) and are folded into one `wire_stats`
/// event when the link finally tears down.
#[derive(Debug, Default)]
pub(crate) struct WireTelemetry {
    frames_in: AtomicU64,
    bytes_in: AtomicU64,
    frames_out: AtomicU64,
    bytes_out: AtomicU64,
    dials: AtomicU64,
    dedup_dropped: AtomicU64,
}

impl WireTelemetry {
    /// Counts one inbound frame of `bytes` total wire bytes.
    pub(crate) fn count_in(&self, bytes: usize) {
        self.frames_in.fetch_add(1, Ordering::Relaxed);
        self.bytes_in.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Counts one outbound frame of `bytes` total wire bytes.
    pub(crate) fn count_out(&self, bytes: usize) {
        self.frames_out.fetch_add(1, Ordering::Relaxed);
        self.bytes_out.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Counts one reconnect dial attempt.
    pub(crate) fn count_dial(&self) {
        self.dials.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one sequenced frame dropped as a reconnect replay.
    pub(crate) fn count_dedup_drop(&self) {
        self.dedup_dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// The end-of-link `wire_stats` event for this side of link
    /// `link`, carrying `events_dropped` forwarded-event losses.
    pub(crate) fn to_event(&self, link: usize, events_dropped: u64) -> EventKind {
        EventKind::WireStats {
            link,
            frames_in: self.frames_in.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            dials: self.dials.load(Ordering::Relaxed),
            dedup_dropped: self.dedup_dropped.load(Ordering::Relaxed),
            events_dropped,
        }
    }
}

/// The collector-side clock state of one worker link: the current
/// offset estimate (`collector_clock − worker_clock`, reported by the
/// worker over [`TAG_TCP_CLOCK`]) and the monotone floor of the
/// corrected timestamps already emitted for the link. Re-syncs may
/// move the offset backwards; clamping to the floor keeps each link's
/// re-emitted stream monotone across them.
#[derive(Debug, Default)]
pub(crate) struct LinkClock {
    /// `f64` bits of the current offset estimate.
    offset_bits: AtomicU64,
    /// `f64` bits of the last corrected timestamp emitted. Only the
    /// link's single reader thread normalizes, so a plain load/store
    /// (no CAS loop) is race-free.
    floor_bits: AtomicU64,
}

impl LinkClock {
    /// Installs a fresh offset estimate (handshake or re-sync).
    pub(crate) fn set_offset(&self, offset_s: f64) {
        self.offset_bits
            .store(offset_s.to_bits(), Ordering::Relaxed);
    }

    /// The current offset estimate.
    pub(crate) fn offset(&self) -> f64 {
        f64::from_bits(self.offset_bits.load(Ordering::Relaxed))
    }

    /// Maps a worker-local timestamp onto the collector's run clock:
    /// `raw + offset`, clamped to never run backwards on this link.
    /// Called only from the link's reader thread.
    pub(crate) fn normalize(&self, raw_s: f64) -> f64 {
        let floor = f64::from_bits(self.floor_bits.load(Ordering::Relaxed));
        let corrected = (raw_s + self.offset()).max(floor);
        self.floor_bits
            .store(corrected.to_bits(), Ordering::Relaxed);
        corrected
    }
}

/// Queue-depth counters for one rank's inbox, mirroring the
/// `ChannelStats` accounting of the thread substrate: the reader
/// thread bumps the depth as frames arrive, the consuming loop drops
/// it on delivery, and a new maximum emits `queue_high_water`.
#[derive(Debug, Default)]
pub(crate) struct InboxStats {
    depth: AtomicUsize,
    high_water: AtomicU64,
}

impl InboxStats {
    /// Counts an arriving message; emits `queue_high_water` on a new
    /// maximum (attributed to `rank`, whose inbox this is).
    pub(crate) fn note_enqueue(&self, monitor: &Monitor, rank: usize) {
        let depth = self.depth.fetch_add(1, Ordering::Relaxed) as u64 + 1;
        let prev = self.high_water.fetch_max(depth, Ordering::Relaxed);
        if depth > prev {
            monitor.emit(Some(rank), EventKind::QueueHighWater { depth });
        }
    }

    /// Counts a delivery; returns the remaining depth.
    fn note_delivery(&self) -> u64 {
        self.depth.fetch_sub(1, Ordering::Relaxed).saturating_sub(1) as u64
    }
}

/// The receive half shared by both transports: an mpsc inbox fed by
/// reader threads, plus the MPI-style pending buffer for messages
/// that arrived but did not match the active source/tag filter.
/// Matching semantics are identical to `parmonc_mpi::Communicator`.
#[derive(Debug)]
pub(crate) struct Mailbox {
    rank: usize,
    inbox: Receiver<Envelope>,
    pending: std::collections::VecDeque<Envelope>,
    monitor: Monitor,
    stats: Option<Arc<InboxStats>>,
}

impl Mailbox {
    pub(crate) fn new(
        rank: usize,
        inbox: Receiver<Envelope>,
        monitor: Monitor,
        stats: Option<Arc<InboxStats>>,
    ) -> Self {
        Self {
            rank,
            inbox,
            pending: std::collections::VecDeque::new(),
            monitor,
            stats,
        }
    }

    fn matches(env: &Envelope, source: Option<usize>, tag: Option<Tag>) -> bool {
        source.is_none_or(|s| env.source == s) && tag.is_none_or(|t| env.tag == t)
    }

    fn take_pending(&mut self, source: Option<usize>, tag: Option<Tag>) -> Option<Envelope> {
        let idx = self
            .pending
            .iter()
            .position(|e| Self::matches(e, source, tag))?;
        self.pending.remove(idx)
    }

    fn note_delivery(&self, env: &Envelope) {
        if let Some(stats) = &self.stats {
            let depth = stats.note_delivery();
            self.monitor.emit(
                Some(self.rank),
                EventKind::MessageReceived {
                    source: env.source,
                    tag: env.tag.0,
                    bytes: env.payload.len() as u64,
                    queue_depth: depth,
                },
            );
        }
    }

    pub(crate) fn recv(
        &mut self,
        source: Option<usize>,
        tag: Option<Tag>,
    ) -> Result<Envelope, MpiError> {
        if let Some(env) = self.take_pending(source, tag) {
            return Ok(env);
        }
        loop {
            let env = self.inbox.recv().map_err(|_| MpiError::Disconnected)?;
            self.note_delivery(&env);
            if Self::matches(&env, source, tag) {
                return Ok(env);
            }
            self.pending.push_back(env);
        }
    }

    pub(crate) fn recv_timeout(
        &mut self,
        source: Option<usize>,
        tag: Option<Tag>,
        timeout: Duration,
    ) -> Result<Option<Envelope>, MpiError> {
        if let Some(env) = self.take_pending(source, tag) {
            return Ok(Some(env));
        }
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            match self.inbox.recv_timeout(remaining) {
                Ok(env) => {
                    self.note_delivery(&env);
                    if Self::matches(&env, source, tag) {
                        return Ok(Some(env));
                    }
                    self.pending.push_back(env);
                }
                Err(RecvTimeoutError::Timeout) => return Ok(None),
                Err(RecvTimeoutError::Disconnected) => return Err(MpiError::Disconnected),
            }
        }
    }

    pub(crate) fn try_recv(&mut self, source: Option<usize>, tag: Option<Tag>) -> Option<Envelope> {
        if let Some(env) = self.take_pending(source, tag) {
            return Some(env);
        }
        loop {
            match self.inbox.try_recv() {
                Ok(env) => {
                    self.note_delivery(&env);
                    if Self::matches(&env, source, tag) {
                        return Some(env);
                    }
                    self.pending.push_back(env);
                }
                Err(TryRecvError::Empty | TryRecvError::Disconnected) => return None,
            }
        }
    }

    pub(crate) fn iprobe(&mut self, source: Option<usize>, tag: Option<Tag>) -> bool {
        if self.pending.iter().any(|e| Self::matches(e, source, tag)) {
            return true;
        }
        while let Ok(env) = self.inbox.try_recv() {
            self.note_delivery(&env);
            self.pending.push_back(env);
        }
        self.pending.iter().any(|e| Self::matches(e, source, tag))
    }
}

/// A message the fault plane is holding back on this side of the
/// socket (same aging discipline as the thread substrate).
#[derive(Debug)]
struct DelayedSend {
    remaining: u32,
    dest: usize,
    tag: Tag,
    payload: Bytes,
}

/// The fault-gated send path, shared by parent and worker sides: the
/// deterministic fault plane may deliver, drop, duplicate or hold a
/// message, with the identical observable semantics of
/// `Communicator::send_bytes`. The raw delivery (socket frame or
/// in-process enqueue) is supplied by the caller.
#[derive(Debug)]
pub(crate) struct SendGate {
    rank: usize,
    faults: FaultHandle,
    monitor: Monitor,
    delayed: RefCell<Vec<DelayedSend>>,
}

impl SendGate {
    pub(crate) fn new(rank: usize, faults: FaultHandle, monitor: Monitor) -> Self {
        Self {
            rank,
            faults,
            monitor,
            delayed: RefCell::new(Vec::new()),
        }
    }

    fn deliver(
        &self,
        dest: usize,
        tag: Tag,
        payload: &Bytes,
        raw: &dyn Fn(usize, Tag, &Bytes) -> Result<(), MpiError>,
    ) -> Result<(), MpiError> {
        raw(dest, tag, payload)?;
        self.monitor.emit(
            Some(self.rank),
            EventKind::MessageSent {
                dest,
                tag: tag.0,
                bytes: payload.len() as u64,
            },
        );
        Ok(())
    }

    fn note_fault(&self, kind: FaultKind, seq: u64) {
        self.monitor.emit(
            Some(self.rank),
            EventKind::FaultInjected {
                fault: kind.as_str().to_string(),
                detail: Some(seq),
            },
        );
    }

    pub(crate) fn send(
        &self,
        dest: usize,
        tag: Tag,
        payload: Bytes,
        raw: &dyn Fn(usize, Tag, &Bytes) -> Result<(), MpiError>,
    ) -> Result<(), MpiError> {
        if !self.faults.is_enabled() {
            return self.deliver(dest, tag, &payload, raw);
        }
        self.flush_delayed(false, raw)?;
        let (seq, action) = self.faults.on_send(self.rank, dest, tag.0);
        match action {
            SendAction::Deliver => self.deliver(dest, tag, &payload, raw),
            SendAction::Drop => {
                self.note_fault(FaultKind::MessageDrop, seq);
                Ok(())
            }
            SendAction::Duplicate => {
                self.note_fault(FaultKind::MessageDuplicate, seq);
                self.deliver(dest, tag, &payload, raw)?;
                self.deliver(dest, tag, &payload, raw)
            }
            SendAction::Delay { hold_sends } => {
                self.note_fault(FaultKind::MessageDelay, seq);
                if hold_sends == 0 {
                    return self.deliver(dest, tag, &payload, raw);
                }
                self.delayed.borrow_mut().push(DelayedSend {
                    remaining: hold_sends,
                    dest,
                    tag,
                    payload,
                });
                Ok(())
            }
        }
    }

    /// Ages held-back messages by one send and delivers the due ones
    /// (with `force`, everything — the teardown path, so a delayed
    /// message is late, never lost).
    pub(crate) fn flush_delayed(
        &self,
        force: bool,
        raw: &dyn Fn(usize, Tag, &Bytes) -> Result<(), MpiError>,
    ) -> Result<(), MpiError> {
        if self.delayed.borrow().is_empty() {
            return Ok(());
        }
        let due: Vec<DelayedSend> = {
            let mut held = self.delayed.borrow_mut();
            if !force {
                for entry in held.iter_mut() {
                    entry.remaining = entry.remaining.saturating_sub(1);
                }
            }
            let mut due = Vec::new();
            let mut i = 0;
            while i < held.len() {
                if force || held[i].remaining == 0 {
                    due.push(held.remove(i));
                } else {
                    i += 1;
                }
            }
            due
        };
        for entry in due {
            self.deliver(entry.dest, entry.tag, &entry.payload, raw)?;
        }
        Ok(())
    }
}

/// An [`EventSink`] that serializes every event as a
/// [`TAG_IPC_EVENT`] frame over the worker's socket (Unix or TCP),
/// for the parent to re-emit into the run's real monitor with the
/// child's timestamps. Write failures are counted, not propagated — a
/// dying parent must not turn monitoring into a worker crash.
#[derive(Debug)]
pub(crate) struct ForwardSink<W> {
    writer: Arc<Mutex<W>>,
    rank: usize,
    wire: Arc<WireTelemetry>,
    dropped: AtomicU64,
}

impl<W: Write + Send> ForwardSink<W> {
    pub(crate) fn new(writer: Arc<Mutex<W>>, rank: usize, wire: Arc<WireTelemetry>) -> Self {
        Self {
            writer,
            rank,
            wire,
            dropped: AtomicU64::new(0),
        }
    }
}

impl<W: Write + Send> EventSink for ForwardSink<W> {
    fn record(&self, event: &Event) {
        let line = event.to_json_line();
        let failed = match self.writer.lock() {
            Ok(mut stream) => write_frame(
                &mut *stream,
                self.rank as u32,
                TAG_IPC_EVENT,
                line.as_bytes(),
            )
            .is_err(),
            Err(_) => true,
        };
        if failed {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            self.wire.count_out(FRAME_HEADER_LEN + line.len());
        }
    }

    fn dropped_events(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// Sequence-number admission for one link: returns whether a frame
/// with sequence number `seq` is *new* and should be delivered, while
/// recording it as seen. `seq == 0` marks unsequenced traffic
/// (protocol frames, forwarded events) and is always admitted;
/// otherwise a frame is admitted exactly when its number is strictly
/// greater than every number seen so far.
///
/// This is the collector-side half of exactly-once delivery over
/// reconnects: workers number each logical send once and retry a
/// failed frame under the *same* number, so a replay that in fact
/// reached the collector before the link broke is recognized and
/// dropped here. Admission is idempotent — replaying any prefix of a
/// link's traffic, in any interleaving of duplicates, admits each
/// number at most once.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::AtomicU64;
/// let last = AtomicU64::new(0);
/// assert!(parmonc_ipc::admit_seq(&last, 1));
/// assert!(!parmonc_ipc::admit_seq(&last, 1)); // duplicate replay
/// assert!(parmonc_ipc::admit_seq(&last, 2));
/// assert!(parmonc_ipc::admit_seq(&last, 0)); // unsequenced: always
/// ```
pub fn admit_seq(last_seq: &AtomicU64, seq: u64) -> bool {
    seq == 0 || last_seq.fetch_max(seq, Ordering::AcqRel) < seq
}

/// Everything one link's reader thread needs besides the stream and
/// the inbox: the monitor it re-emits into, its identity, and the
/// optional per-link planes (depth stats, source vetting, dedup, wire
/// telemetry, clock alignment).
pub(crate) struct LinkHooks {
    /// The run monitor forwarded events are re-emitted into.
    pub monitor: Monitor,
    /// The rank whose inbox this reader feeds (attribution for
    /// queue-depth and torn-frame events).
    pub local_rank: usize,
    /// Queue-depth accounting, if the inbox is monitored.
    pub stats: Option<Arc<InboxStats>>,
    /// Frames whose source field names any other rank are dropped — a
    /// connection speaks for exactly the rank it was leased, so a
    /// misbehaving peer cannot inject envelopes attributed to someone
    /// else (the child side of the Unix backend passes `None`: the
    /// parent is rank 0 and frames need no vetting).
    pub expect_source: Option<u32>,
    /// Sequenced frames already admitted once (per [`admit_seq`]) are
    /// dropped — the exactly-once guarantee under reconnect replay.
    pub dedup: Option<Arc<AtomicU64>>,
    /// Per-link wire counters (frames/bytes in, dedup drops).
    pub wire: Option<Arc<WireTelemetry>>,
    /// Collector-side clock alignment: [`TAG_TCP_CLOCK`] frames update
    /// the offset, and forwarded events are re-emitted on the
    /// corrected run clock with the raw stamp preserved.
    pub clock: Option<Arc<LinkClock>>,
    /// Answers the clock frames that need the link's *writer*: a
    /// [`TAG_TCP_CLOCK_PROBE`] (collector side replies with the
    /// receipt/reply timestamps) or a [`TAG_TCP_CLOCK_REPLY`] (worker
    /// side closes the estimate and reports it back).
    pub clock_responder: Option<FrameHook>,
    /// Hub-side forwarding of [`crate::frame::TAG_IPC_ROUTE`] frames:
    /// the socket substrates are physically a star, so worker-to-worker
    /// traffic (tree collection topologies) is wrapped for the hub,
    /// which unwraps and re-sends the inner frame to its destination
    /// with the original source. Invoked *after* dedup, so routed
    /// frames keep the link's exactly-once guarantee. Hubless readers
    /// leave this `None` and routed frames are dropped.
    pub route: Option<FrameHook>,
}

/// A reader-thread callback handed one decoded [`Frame`]; see
/// [`LinkHooks::clock_responder`] and [`LinkHooks::route`].
pub type FrameHook = Box<dyn Fn(&Frame) + Send>;

impl std::fmt::Debug for LinkHooks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LinkHooks")
            .field("local_rank", &self.local_rank)
            .field("expect_source", &self.expect_source)
            .finish_non_exhaustive()
    }
}

impl LinkHooks {
    /// Hooks with every optional plane off — the bare reader.
    pub(crate) fn bare(monitor: Monitor, local_rank: usize) -> Self {
        Self {
            monitor,
            local_rank,
            stats: None,
            expect_source: None,
            dedup: None,
            wire: None,
            clock: None,
            clock_responder: None,
            route: None,
        }
    }
}

/// Pumps frames off one socket into the mpsc inbox until EOF or
/// error. [`TAG_IPC_EVENT`] frames are decoded and re-emitted into
/// the monitor with the child's timestamp (corrected onto the run
/// clock when the link is clock-aligned) instead of being enqueued;
/// stray hello frames are ignored, clock frames are handled per the
/// hooks. Exits when the peer closes or the receiving side has
/// dropped its inbox; a mid-frame EOF (the peer died, or the fault
/// plane tore the frame, mid-write) is surfaced as a `torn_frame`
/// monitor event instead of a silent drop.
pub(crate) fn pump_frames(stream: impl Read, tx: Sender<Envelope>, hooks: LinkHooks) {
    let LinkHooks {
        monitor,
        local_rank,
        stats,
        expect_source,
        dedup,
        wire,
        clock,
        clock_responder,
        route,
    } = hooks;
    let mut reader = BufReader::new(stream);
    loop {
        match read_frame(&mut reader) {
            Ok(Some(frame)) => {
                if let Some(wire) = &wire {
                    wire.count_in(FRAME_HEADER_LEN + frame.payload.len());
                }
                if expect_source.is_some_and(|s| frame.source != s) {
                    continue;
                }
                if frame.tag == TAG_IPC_EVENT {
                    if let Ok(text) = std::str::from_utf8(&frame.payload) {
                        if let Ok(event) = parmonc_obs::schema::parse_line(text) {
                            match &clock {
                                Some(clock) => monitor.emit_aligned(
                                    clock.normalize(event.time_s),
                                    Some(event.time_s),
                                    event.rank,
                                    event.kind,
                                ),
                                None => monitor.emit_at(event.time_s, event.rank, event.kind),
                            }
                        }
                    }
                    continue;
                }
                if frame.tag == TAG_IPC_HELLO {
                    continue;
                }
                if frame.tag == TAG_TCP_CLOCK {
                    if let (Some(clock), Some(sync)) = (&clock, ClockSync::decode(&frame.payload)) {
                        clock.set_offset(sync.offset_s);
                    }
                    continue;
                }
                if frame.tag == TAG_TCP_CLOCK_PROBE || frame.tag == TAG_TCP_CLOCK_REPLY {
                    if let Some(respond) = &clock_responder {
                        respond(&frame);
                    }
                    continue;
                }
                if let Some(last) = &dedup {
                    if !admit_seq(last, frame.seq) {
                        // A replay of a frame that already made it
                        // through before the link broke.
                        if let Some(wire) = &wire {
                            wire.count_dedup_drop();
                        }
                        continue;
                    }
                }
                if frame.tag == crate::frame::TAG_IPC_ROUTE {
                    // Past dedup: a routed frame is forwarded at most
                    // once even across reconnect replays.
                    if let Some(route) = &route {
                        route(&frame);
                    }
                    continue;
                }
                if let Some(stats) = &stats {
                    stats.note_enqueue(&monitor, local_rank);
                }
                let env = Envelope {
                    source: frame.source as usize,
                    tag: Tag(frame.tag),
                    payload: Bytes::from(frame.payload),
                };
                if tx.send(env).is_err() {
                    return;
                }
            }
            Ok(None) => return,
            Err(e) => {
                if e.kind() == std::io::ErrorKind::UnexpectedEof {
                    // The stream died mid-frame: a real peer crash
                    // mid-write, or a scripted `tear_frame`. The
                    // partial frame was never delivered.
                    monitor.emit(
                        Some(local_rank),
                        EventKind::TornFrame {
                            source: expect_source.unwrap_or_default() as usize,
                        },
                    );
                }
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backoff::splitmix64;

    /// Property: over *any* seeded schedule of reconnect replays and
    /// duplications, [`admit_seq`] admits exactly the strictly-rising
    /// running maxima of the delivered sequence — each number at most
    /// once, in increasing order. A collector that *replaces* its
    /// per-rank state with every admitted cumulative frame therefore
    /// always ends at the latest state, bit-identical to a
    /// duplicate-free delivery; the replay schedule cannot perturb a
    /// single estimate. 256 seeds, each simulating a link that keeps
    /// breaking and replaying from arbitrary earlier frames (harsher
    /// than the real transport, which only retries the failed frame
    /// onward).
    #[test]
    fn admit_seq_is_idempotent_under_seeded_replay_schedules() {
        const TOP: u64 = 64;
        for seed in 0..256u64 {
            // Generate the wire as seen by the collector: the worker
            // climbs 1..=TOP, but a seeded 1-in-8 "break" rewinds it
            // to some earlier frame, duplicating the range in between.
            let mut wire = Vec::new();
            let mut next = 1u64;
            let mut tick = 0u64;
            while next <= TOP {
                wire.push(next);
                let h = splitmix64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(tick));
                tick += 1;
                assert!(tick < 100_000, "seed {seed}: schedule never converged");
                if h.is_multiple_of(8) {
                    next = 1 + (h / 8) % next;
                } else {
                    next += 1;
                }
            }

            // What dedup must admit: the strictly-rising running maxima.
            let mut expected = Vec::new();
            let mut hi = 0u64;
            for &s in &wire {
                if s > hi {
                    hi = s;
                    expected.push(s);
                }
            }

            let last = AtomicU64::new(0);
            let mut admitted = Vec::new();
            let mut latest = 0u64;
            for &seq in &wire {
                if admit_seq(&last, seq) {
                    admitted.push(seq);
                    // The collector's absorb: replace, never sum.
                    latest = seq;
                }
            }
            assert_eq!(admitted, expected, "seed {seed}");
            assert!(
                admitted.windows(2).all(|w| w[0] < w[1]),
                "seed {seed}: replay admitted out of order: {admitted:?}"
            );
            assert_eq!(
                latest, TOP,
                "seed {seed}: final state must be the newest frame"
            );
            // Unsequenced frames (seq 0) bypass dedup entirely.
            assert!(admit_seq(&last, 0) && admit_seq(&last, 0));
        }
    }
}
