//! The two ends of the multi-process socket world.
//!
//! [`ProcessTransport`] is rank 0: it binds a Unix-domain listening
//! socket, re-executes the current binary once per worker rank (with
//! the `PARMONC_WORKER_*` environment set and [`WORKER_FLAG`] on the
//! argv), verifies each worker's hello handshake, and then speaks the
//! same envelope protocol the in-process substrate speaks over
//! channels. [`ChildTransport`] is the worker side: it connects back
//! to the parent's socket and exchanges length-prefixed frames, with
//! its monitor events forwarded over the same stream.
//!
//! The *physical* world is a star: every worker socket connects only
//! to rank 0. Logical worker-to-worker sends (the tree collection
//! topologies route subtotals through relay ranks) are wrapped as
//! [`crate::frame::TAG_IPC_ROUTE`] frames; the hub unwraps them after
//! dedup and forwards the inner frame to the destination's socket with
//! the original source, so a relay receives exactly what a direct link
//! would have delivered. A routed frame whose destination has no live
//! connection is dropped after a brief retry — subtotals are
//! cumulative, so the next emission heals the loss, and the liveness
//! plane reparents children of dead relays.

use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parmonc_faults::FaultHandle;
use parmonc_mpi::bytes::Bytes;
use parmonc_mpi::envelope::{Envelope, Tag};
use parmonc_mpi::error::MpiError;
use parmonc_mpi::pool::BufferPool;
use parmonc_mpi::transport::Transport;
use parmonc_obs::Monitor;

use crate::backoff::{self, ReconnectPolicy};
use crate::faulty::FaultyStream;
use crate::frame::{
    decode_route, encode_route, read_frame, write_frame, FRAME_HEADER_LEN, TAG_IPC_HELLO,
    TAG_IPC_ROUTE,
};
use crate::link::{
    pump_frames, ForwardSink, InboxStats, LinkHooks, Mailbox, SendGate, WireTelemetry,
};
use crate::worker::{WorkerInfo, WORKER_FLAG};

/// How long the parent waits for all workers to connect and present a
/// valid hello before declaring the spawn failed.
const ACCEPT_DEADLINE: Duration = Duration::from_secs(30);

/// How long the parent waits for workers to exit on their own during
/// [`ProcessTransport::shutdown`] before killing them.
const EXIT_DEADLINE: Duration = Duration::from_secs(10);

/// The hub's writer slots, shared between the transport's own send
/// path and the reader threads' route hooks; `None` slots are ranks
/// whose connection has not been accepted (or has been shut down).
type WriterSlots = Arc<Mutex<Vec<Option<Arc<Mutex<UnixStream>>>>>>;

/// Distinguishes concurrent worlds spawned by one process (tests spawn
/// several); combined with the pid this makes the socket directory
/// unique.
static SPAWN_NONCE: AtomicU64 = AtomicU64::new(0);

/// Configuration for [`ProcessTransport::spawn`].
#[derive(Debug)]
pub struct SpawnOptions {
    /// World size including the parent (rank 0); `size - 1` worker
    /// processes are spawned.
    pub size: usize,
    /// The run's monitor. Rank 0's transport events are emitted here
    /// directly; worker events arrive over the sockets and are
    /// re-emitted here with the workers' timestamps.
    pub monitor: Monitor,
    /// The parent-side fault plane (rank 0's outgoing messages).
    /// Workers build their own handle from the same seeded plan, which
    /// behaves identically because fault sequence counters are
    /// per-channel.
    pub faults: FaultHandle,
    /// Arguments for the re-executed binary, excluding the program
    /// name. `None` inherits this process's own arguments (minus any
    /// existing [`WORKER_FLAG`]) and appends [`WORKER_FLAG`] as a
    /// visible `ps`-greppable marker — right for CLI binaries, whose
    /// parsers strip the flag again. Test harnesses must instead pass
    /// the libtest filter that reaches the spawning test function
    /// (e.g. `["my_test_fn", "--exact"]`); explicit arguments are used
    /// verbatim, *without* the marker, because libtest rejects unknown
    /// flags. Worker detection is carried by the environment
    /// ([`crate::worker_env`]), not by the flag.
    pub worker_args: Option<Vec<String>>,
    /// Whether span tracing is on for this run: carried to each worker
    /// in its environment so worker loops wrap their phases in
    /// `span_started`/`span_ended` events. Requires a monitored run to
    /// have any effect.
    pub trace_spans: bool,
    /// Parent assignment per worker rank (index `rank - 1`): the rank
    /// each worker's subtotal envelopes should flow to under the run's
    /// collection topology. Empty means a star — every worker reports
    /// straight to rank 0.
    pub parents: Vec<usize>,
}

/// Rank 0 of a multi-process world: the spawner, collector-side
/// transport, and lifecycle owner of the worker processes.
///
/// Dropping the transport (or calling [`ProcessTransport::shutdown`],
/// which is gentler) reaps every child — no orphans survive the
/// parent, even on a panic path.
#[derive(Debug)]
pub struct ProcessTransport {
    size: usize,
    pool: BufferPool,
    monitor: Monitor,
    gate: SendGate,
    mailbox: Mailbox,
    stats: Arc<InboxStats>,
    self_tx: Sender<Envelope>,
    /// Write halves to each worker, indexed by `rank - 1`, shared with
    /// the reader threads' route hooks; emptied by shutdown so late
    /// sends fail soft with `Disconnected`.
    writers: WriterSlots,
    /// Per-link wire counters, indexed by `rank - 1`; folded into the
    /// trace as one `wire_stats` event per link at shutdown.
    wire: Vec<Arc<WireTelemetry>>,
    children: Vec<Child>,
    readers: Vec<JoinHandle<()>>,
    dir: PathBuf,
    shut_down: bool,
}

impl ProcessTransport {
    /// Spawns `size - 1` worker processes by re-executing the current
    /// binary and waits for all of them to complete the hello
    /// handshake.
    ///
    /// # Errors
    ///
    /// Socket/bind/spawn failures, or a worker failing to connect with
    /// a valid token within the accept deadline (in which case all
    /// spawned children are killed before returning).
    pub fn spawn(opts: SpawnOptions) -> io::Result<Self> {
        if opts.size == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "world size must be at least 1",
            ));
        }
        let dir = std::env::temp_dir().join(format!(
            "parmonc-ipc-{}-{}",
            std::process::id(),
            SPAWN_NONCE.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir)?;
        let socket = dir.join("rank0.sock");
        let listener = UnixListener::bind(&socket)?;
        let token = spawn_token();

        let exe = std::env::current_exe()?;
        // Explicit worker_args are used verbatim (libtest filters must
        // not gain unknown flags); the inherited-argv path appends the
        // visible WORKER_FLAG marker for `ps` readability.
        let base_args: Vec<String> = match opts.worker_args.clone() {
            Some(args) => args,
            None => std::env::args()
                .skip(1)
                .filter(|a| a != WORKER_FLAG)
                .chain(std::iter::once(WORKER_FLAG.to_string()))
                .collect(),
        };

        let mut children = Vec::with_capacity(opts.size.saturating_sub(1));
        let spawn_result = (|| -> io::Result<()> {
            for rank in 1..opts.size {
                let info = WorkerInfo {
                    rank,
                    size: opts.size,
                    socket: socket.clone(),
                    token: token.clone(),
                    monitor: opts.monitor.is_enabled(),
                    spans: opts.trace_spans && opts.monitor.is_enabled(),
                    parent: opts.parents.get(rank - 1).copied().unwrap_or(0),
                };
                let mut cmd = Command::new(&exe);
                cmd.args(&base_args)
                    .stdin(Stdio::null())
                    .stdout(Stdio::null())
                    .stderr(Stdio::inherit());
                for (key, value) in info.to_env() {
                    cmd.env(key, value);
                }
                children.push(cmd.spawn()?);
            }
            Ok(())
        })();
        if let Err(e) = spawn_result {
            reap(&mut children);
            let _ = std::fs::remove_dir_all(&dir);
            return Err(e);
        }

        let (tx, rx) = mpsc::channel();
        let stats = Arc::new(InboxStats::default());
        let writers: WriterSlots = Arc::new(Mutex::new({
            let mut slots: Vec<Option<Arc<Mutex<UnixStream>>>> = Vec::new();
            slots.resize_with(opts.size.saturating_sub(1), || None);
            slots
        }));
        let wire: Vec<Arc<WireTelemetry>> = (0..opts.size.saturating_sub(1))
            .map(|_| Arc::new(WireTelemetry::default()))
            .collect();
        let mut readers = Vec::new();
        let accepted = accept_workers(
            &listener,
            &token,
            opts.size,
            &tx,
            &opts.monitor,
            &stats,
            &wire,
            &writers,
            &mut readers,
        );
        if let Err(e) = accepted {
            reap(&mut children);
            drop(tx);
            for handle in readers {
                let _ = handle.join();
            }
            let _ = std::fs::remove_dir_all(&dir);
            return Err(e);
        }

        Ok(Self {
            size: opts.size,
            pool: BufferPool::new(parmonc_mpi::pool::DEFAULT_POOL_CAPACITY),
            monitor: opts.monitor.clone(),
            gate: SendGate::new(0, opts.faults, opts.monitor.clone()),
            mailbox: Mailbox::new(0, rx, opts.monitor, Some(Arc::clone(&stats))),
            stats,
            self_tx: tx,
            writers,
            wire,
            children,
            readers,
            dir,
            shut_down: false,
        })
    }

    fn raw_send(&self, dest: usize, tag: Tag, payload: &Bytes) -> Result<(), MpiError> {
        if dest == 0 {
            self.stats.note_enqueue(&self.monitor, 0);
            return self
                .self_tx
                .send(Envelope {
                    source: 0,
                    tag,
                    payload: payload.clone(),
                })
                .map_err(|_| MpiError::Disconnected);
        }
        let writer = {
            let slots = self.writers.lock().map_err(|_| MpiError::Disconnected)?;
            slots
                .get(dest - 1)
                .and_then(Clone::clone)
                .ok_or(MpiError::Disconnected)?
        };
        let mut stream = writer.lock().map_err(|_| MpiError::Disconnected)?;
        write_frame(&mut *stream, 0, tag.0, payload).map_err(|_| MpiError::Disconnected)?;
        self.wire[dest - 1].count_out(FRAME_HEADER_LEN + payload.len());
        Ok(())
    }

    /// Tears the world down in order: force-flushes any fault-delayed
    /// sends, closes the write halves, waits for workers to exit on
    /// their own (killing any that outlive the deadline), joins the
    /// reader threads — which guarantees every forwarded worker event
    /// is in the monitor's sinks on return — and removes the socket
    /// directory. Idempotent.
    ///
    /// # Errors
    ///
    /// The first wait/kill error, after all children are reaped anyway.
    pub fn shutdown(&mut self) -> io::Result<()> {
        if self.shut_down {
            return Ok(());
        }
        self.shut_down = true;
        let _ = self
            .gate
            .flush_delayed(true, &|d, t, p| self.raw_send(d, t, p));
        if let Ok(mut slots) = self.writers.lock() {
            slots.clear();
        }
        let mut first_err = None;
        let deadline = Instant::now() + EXIT_DEADLINE;
        for child in &mut self.children {
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) => {
                        if Instant::now() >= deadline {
                            let _ = child.kill();
                            if let Err(e) = child.wait() {
                                first_err.get_or_insert(e);
                            }
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(e) => {
                        first_err.get_or_insert(e);
                        break;
                    }
                }
            }
        }
        self.children.clear();
        for handle in self.readers.drain(..) {
            let _ = handle.join();
        }
        // Every reader has drained, so the per-link totals are final —
        // including each worker's own end-of-link `wire_stats` frame.
        if self.monitor.is_enabled() {
            for (i, wire) in self.wire.iter().enumerate() {
                self.monitor.emit(Some(0), wire.to_event(i + 1, 0));
            }
        }
        let _ = std::fs::remove_dir_all(&self.dir);
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl Drop for ProcessTransport {
    fn drop(&mut self) {
        if self.shut_down {
            return;
        }
        // Unclean teardown (panic or early error): kill immediately
        // rather than waiting out the exit deadline.
        self.shut_down = true;
        if let Ok(mut slots) = self.writers.lock() {
            slots.clear();
        }
        reap(&mut self.children);
        for handle in self.readers.drain(..) {
            let _ = handle.join();
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

impl Transport for ProcessTransport {
    fn rank(&self) -> usize {
        0
    }

    fn size(&self) -> usize {
        self.size
    }

    fn pool(&self) -> &BufferPool {
        &self.pool
    }

    fn recycle(&self, payload: Bytes) {
        self.pool.recycle(payload);
    }

    fn send(&self, dest: usize, tag: Tag, payload: &[u8]) -> Result<(), MpiError> {
        self.send_bytes(dest, tag, Bytes::copy_from_slice(payload))
    }

    fn send_bytes(&self, dest: usize, tag: Tag, payload: Bytes) -> Result<(), MpiError> {
        if dest >= self.size {
            return Err(MpiError::InvalidRank {
                rank: dest,
                size: self.size,
            });
        }
        self.gate
            .send(dest, tag, payload, &|d, t, p| self.raw_send(d, t, p))
    }

    fn recv(&mut self, source: Option<usize>, tag: Option<Tag>) -> Result<Envelope, MpiError> {
        self.mailbox.recv(source, tag)
    }

    fn recv_timeout(
        &mut self,
        source: Option<usize>,
        tag: Option<Tag>,
        timeout: Duration,
    ) -> Result<Option<Envelope>, MpiError> {
        self.mailbox.recv_timeout(source, tag, timeout)
    }

    fn try_recv(&mut self, source: Option<usize>, tag: Option<Tag>) -> Option<Envelope> {
        self.mailbox.try_recv(source, tag)
    }

    fn iprobe(&mut self, source: Option<usize>, tag: Option<Tag>) -> bool {
        self.mailbox.iprobe(source, tag)
    }
}

/// A worker rank's end of the socket world.
///
/// Only rank 0 is reachable (the star topology); the worker's monitor
/// — returned by [`ChildTransport::monitor`] — forwards every event
/// over the same stream for the parent to fold into the run trace.
#[derive(Debug)]
pub struct ChildTransport {
    rank: usize,
    size: usize,
    pool: BufferPool,
    monitor: Monitor,
    gate: SendGate,
    mailbox: Mailbox,
    writer: Arc<Mutex<FaultyStream<UnixStream>>>,
    /// This side's wire counters; flushed as a `wire_stats` event
    /// (link 0: the uplink to the parent) at drop.
    wire: Arc<WireTelemetry>,
}

impl ChildTransport {
    /// Connects back to the parent's socket, sends the hello frame,
    /// and starts the reader thread.
    ///
    /// # Errors
    ///
    /// Connection or handshake-write failures.
    pub fn connect(info: &WorkerInfo, faults: FaultHandle) -> io::Result<Self> {
        let mut stream = connect_with_retry(&info.socket, info.rank as u64)?;
        write_frame(
            &mut stream,
            info.rank as u32,
            TAG_IPC_HELLO,
            info.token.as_bytes(),
        )?;
        // The hello above is pre-wrap on purpose: handshake frames do
        // not consume net-fault frame ordinals, so a seeded plan
        // replays identically on the TCP backend (whose handshake is
        // likewise unwrapped). The Unix backend has no reconnect path
        // — a scripted severance here is a permanent worker loss,
        // handled by the collector's liveness plane.
        let writer = Arc::new(Mutex::new(FaultyStream::new(
            stream.try_clone()?,
            info.rank,
            faults.clone(),
        )));
        let wire = Arc::new(WireTelemetry::default());
        wire.count_out(FRAME_HEADER_LEN + info.token.len());
        let monitor = if info.monitor {
            Monitor::new(vec![Box::new(ForwardSink::new(
                Arc::clone(&writer),
                info.rank,
                Arc::clone(&wire),
            ))])
        } else {
            Monitor::disabled()
        };
        let stats = Arc::new(InboxStats::default());
        let (tx, rx) = mpsc::channel();
        let rank = info.rank;
        let thread_monitor = monitor.clone();
        let thread_stats = Arc::clone(&stats);
        let thread_wire = Arc::clone(&wire);
        // Detached on purpose: the thread blocks in read until the
        // parent closes the stream, and a worker process exits without
        // tearing its transport down gracefully.
        std::thread::Builder::new()
            .name(format!("parmonc-ipc-r{rank}"))
            .spawn(move || {
                pump_frames(
                    stream,
                    tx,
                    LinkHooks {
                        stats: Some(thread_stats),
                        wire: Some(thread_wire),
                        ..LinkHooks::bare(thread_monitor, rank)
                    },
                )
            })?;
        Ok(Self {
            rank,
            size: info.size,
            pool: BufferPool::new(parmonc_mpi::pool::DEFAULT_POOL_CAPACITY),
            monitor: monitor.clone(),
            gate: SendGate::new(rank, faults, monitor),
            mailbox: Mailbox::new(rank, rx, Monitor::disabled(), Some(stats)),
            writer,
            wire,
        })
    }

    /// The worker's monitor: enabled (forwarding over the socket) when
    /// the parent run is monitored, disabled otherwise. The worker loop
    /// emits its heartbeat/progress events here exactly as it would on
    /// the thread substrate.
    #[must_use]
    pub fn monitor(&self) -> Monitor {
        self.monitor.clone()
    }

    fn raw_send(&self, dest: usize, tag: Tag, payload: &Bytes) -> Result<(), MpiError> {
        let mut stream = self.writer.lock().map_err(|_| MpiError::Disconnected)?;
        if dest == 0 {
            write_frame(&mut *stream, self.rank as u32, tag.0, payload)
                .map_err(|_| MpiError::Disconnected)?;
            self.wire.count_out(FRAME_HEADER_LEN + payload.len());
        } else {
            // The socket only reaches rank 0: wrap the frame and let
            // the hub route it to the destination (tree collection
            // topologies send subtotals through relay ranks).
            let wrapped = encode_route(dest as u32, tag.0, payload);
            write_frame(&mut *stream, self.rank as u32, TAG_IPC_ROUTE, &wrapped)
                .map_err(|_| MpiError::Disconnected)?;
            self.wire.count_out(FRAME_HEADER_LEN + wrapped.len());
        }
        Ok(())
    }
}

impl Drop for ChildTransport {
    fn drop(&mut self) {
        // A delayed message is late, never lost — same contract as the
        // thread substrate's Drop.
        let _ = self
            .gate
            .flush_delayed(true, &|d, t, p| self.raw_send(d, t, p));
        // This side's final wire accounting, forwarded while the
        // stream is still open so the parent folds it into the trace
        // before this worker's departure.
        if self.monitor.is_enabled() {
            self.monitor.emit(
                Some(self.rank),
                self.wire.to_event(0, self.monitor.dropped_events()),
            );
        }
    }
}

impl Transport for ChildTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn pool(&self) -> &BufferPool {
        &self.pool
    }

    fn recycle(&self, payload: Bytes) {
        self.pool.recycle(payload);
    }

    fn send(&self, dest: usize, tag: Tag, payload: &[u8]) -> Result<(), MpiError> {
        self.send_bytes(dest, tag, Bytes::copy_from_slice(payload))
    }

    fn send_bytes(&self, dest: usize, tag: Tag, payload: Bytes) -> Result<(), MpiError> {
        if dest >= self.size {
            return Err(MpiError::InvalidRank {
                rank: dest,
                size: self.size,
            });
        }
        self.gate
            .send(dest, tag, payload, &|d, t, p| self.raw_send(d, t, p))
    }

    fn recv(&mut self, source: Option<usize>, tag: Option<Tag>) -> Result<Envelope, MpiError> {
        self.mailbox.recv(source, tag)
    }

    fn recv_timeout(
        &mut self,
        source: Option<usize>,
        tag: Option<Tag>,
        timeout: Duration,
    ) -> Result<Option<Envelope>, MpiError> {
        self.mailbox.recv_timeout(source, tag, timeout)
    }

    fn try_recv(&mut self, source: Option<usize>, tag: Option<Tag>) -> Option<Envelope> {
        self.mailbox.try_recv(source, tag)
    }

    fn iprobe(&mut self, source: Option<usize>, tag: Option<Tag>) -> bool {
        self.mailbox.iprobe(source, tag)
    }
}

/// A weak-but-sufficient unique token: workers echo it back in their
/// hello so a stray local process that finds the socket path cannot
/// claim a rank. This is an anti-accident measure, not a security
/// boundary — the socket lives in a per-uid temp directory.
fn spawn_token() -> String {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    format!("{:032x}", nanos ^ (u128::from(std::process::id()) << 64))
}

fn connect_with_retry(socket: &std::path::Path, seed: u64) -> io::Result<UnixStream> {
    // The parent binds before spawning, so the first attempt should
    // succeed; retry briefly (the shared seeded backoff schedule,
    // ~2.5–5 s of nominal coverage) to absorb slow filesystem
    // visibility.
    let policy = ReconnectPolicy {
        attempts: 12,
        base_delay: Duration::from_millis(10),
        max_delay: Duration::from_secs(1),
        attempt_timeout: Duration::from_secs(5),
    };
    backoff::retry(policy, seed, |_| UnixStream::connect(socket))
}

/// Builds the hub-side route hook for one reader thread: unwraps a
/// [`TAG_IPC_ROUTE`] frame and forwards the inner frame to its
/// destination with the original source. Destination 0 is delivered
/// into the hub's own inbox; so is any frame whose destination has no
/// live connection (still in the accept window, or already gone) — the
/// hub is the collection root, so everything a relay would forward is
/// absorbable directly and the replace-then-sum fold tolerates the
/// duplicate. The hook must never block: it runs on the source
/// connection's reader thread, and stalling it would starve that
/// worker's heartbeats.
fn route_hook(
    size: usize,
    writers: &WriterSlots,
    wire: &[Arc<WireTelemetry>],
    tx: &Sender<Envelope>,
    monitor: &Monitor,
    stats: &Arc<InboxStats>,
) -> Box<dyn Fn(&crate::frame::Frame) + Send> {
    let writers = Arc::clone(writers);
    let wire = wire.to_vec();
    let tx = tx.clone();
    let monitor = monitor.clone();
    let stats = Arc::clone(stats);
    Box::new(move |frame| {
        let Some((dest, tag, inner)) = decode_route(&frame.payload) else {
            return;
        };
        let dest = dest as usize;
        if dest != 0 && dest < size {
            let writer = writers
                .lock()
                .ok()
                .and_then(|slots| slots.get(dest - 1).and_then(Clone::clone));
            if let Some(writer) = writer {
                if let Ok(mut stream) = writer.lock() {
                    if write_frame(&mut *stream, frame.source, tag, inner).is_ok() {
                        wire[dest - 1].count_out(FRAME_HEADER_LEN + inner.len());
                        return;
                    }
                }
            }
        } else if dest >= size {
            return;
        }
        stats.note_enqueue(&monitor, 0);
        let _ = tx.send(Envelope {
            source: frame.source as usize,
            tag: Tag(tag),
            payload: Bytes::copy_from_slice(inner),
        });
    })
}

/// Accepts connections until every rank `1..size` has presented a
/// valid hello; wires each accepted stream to a writer slot and a
/// reader thread.
#[allow(clippy::too_many_arguments)]
fn accept_workers(
    listener: &UnixListener,
    token: &str,
    size: usize,
    tx: &Sender<Envelope>,
    monitor: &Monitor,
    stats: &Arc<InboxStats>,
    wire: &[Arc<WireTelemetry>],
    writers: &WriterSlots,
    readers: &mut Vec<JoinHandle<()>>,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let deadline = Instant::now() + ACCEPT_DEADLINE;
    let mut connected = 0usize;
    while connected + 1 < size {
        let stream = match listener.accept() {
            Ok((stream, _addr)) => stream,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!(
                            "only {connected} of {} workers connected before the deadline",
                            size - 1
                        ),
                    ));
                }
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            Err(e) => return Err(e),
        };
        stream.set_nonblocking(false)?;
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        let hello = match read_frame(&mut &stream) {
            Ok(Some(frame)) => frame,
            Ok(None) | Err(_) => continue, // dead or silent connection: ignore it
        };
        let rank = hello.source as usize;
        let slot_taken = writers
            .lock()
            .map_err(|_| io::Error::other("writer slots poisoned"))?
            .get(rank.wrapping_sub(1))
            .is_none_or(|slot| slot.is_some());
        if hello.tag != TAG_IPC_HELLO
            || hello.payload != token.as_bytes()
            || rank == 0
            || rank >= size
            || slot_taken
        {
            continue; // imposter, stray, or duplicate: drop the stream
        }
        stream.set_read_timeout(None)?;
        writers
            .lock()
            .map_err(|_| io::Error::other("writer slots poisoned"))?[rank - 1] =
            Some(Arc::new(Mutex::new(stream.try_clone()?)));
        let link_wire = Arc::clone(&wire[rank - 1]);
        link_wire.count_in(FRAME_HEADER_LEN + hello.payload.len());
        let thread_tx = tx.clone();
        let thread_monitor = monitor.clone();
        let thread_stats = Arc::clone(stats);
        let route = route_hook(size, writers, wire, tx, monitor, stats);
        readers.push(
            std::thread::Builder::new()
                .name(format!("parmonc-ipc-w{rank}"))
                .spawn(move || {
                    pump_frames(
                        stream,
                        thread_tx,
                        LinkHooks {
                            stats: Some(thread_stats),
                            expect_source: Some(rank as u32),
                            wire: Some(link_wire),
                            route: Some(route),
                            ..LinkHooks::bare(thread_monitor, 0)
                        },
                    )
                })?,
        );
        connected += 1;
    }
    Ok(())
}

/// Kills and waits every child, ignoring errors (used on failure and
/// drop paths where the children may already be gone).
fn reap(children: &mut Vec<Child>) {
    for child in children.iter_mut() {
        let _ = child.kill();
        let _ = child.wait();
    }
    children.clear();
}
