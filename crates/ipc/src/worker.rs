//! Worker-process self-identification.
//!
//! The process backend re-executes the current binary for each worker
//! rank. The *environment* is the authoritative channel: the parent
//! sets the `PARMONC_WORKER_*` variables on each child, and the
//! runner's first action is to check [`worker_env`] and divert into
//! the worker loop ("hijack") before any of the user program's own
//! side effects can repeat. The [`WORKER_FLAG`] argument is appended
//! to the child's argv as a human-visible marker (`ps` shows it) and
//! so CLI parsers can strip it; it is not load-bearing.

use std::path::PathBuf;

/// The argv marker appended to worker processes: visible in `ps`,
/// stripped by the CLI/demo argument parsers, otherwise inert.
pub const WORKER_FLAG: &str = "--parmonc-worker";

const ENV_RANK: &str = "PARMONC_WORKER_RANK";
const ENV_SIZE: &str = "PARMONC_WORKER_SIZE";
const ENV_SOCKET: &str = "PARMONC_WORKER_SOCKET";
const ENV_TOKEN: &str = "PARMONC_WORKER_TOKEN";
const ENV_MONITOR: &str = "PARMONC_WORKER_MONITOR";
const ENV_SPANS: &str = "PARMONC_WORKER_SPANS";
const ENV_PARENT: &str = "PARMONC_WORKER_PARENT";

/// Everything a spawned worker needs to join its parent's world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerInfo {
    /// This worker's rank (1-based ranks; rank 0 is the parent).
    pub rank: usize,
    /// World size including the parent.
    pub size: usize,
    /// Path of the parent's Unix-domain listening socket.
    pub socket: PathBuf,
    /// Spawn token echoed back in the hello frame, so a stray process
    /// connecting to the socket cannot impersonate a rank.
    pub token: String,
    /// Whether the parent run is monitored — if so the worker forwards
    /// its monitor events over the socket.
    pub monitor: bool,
    /// Whether span tracing is on — if so the worker loop wraps its
    /// phases in `span_started`/`span_ended` events. Only meaningful
    /// on monitored runs.
    pub spans: bool,
    /// The rank this worker's subtotal envelopes should flow to under
    /// the run's collection topology: 0 under a star (the default),
    /// possibly an interior relay rank under a tree.
    pub parent: usize,
}

impl WorkerInfo {
    /// The environment variables to set on a spawned worker.
    #[must_use]
    pub fn to_env(&self) -> Vec<(&'static str, String)> {
        vec![
            (ENV_RANK, self.rank.to_string()),
            (ENV_SIZE, self.size.to_string()),
            (ENV_SOCKET, self.socket.display().to_string()),
            (ENV_TOKEN, self.token.clone()),
            (
                ENV_MONITOR,
                String::from(if self.monitor { "1" } else { "0" }),
            ),
            (ENV_SPANS, String::from(if self.spans { "1" } else { "0" })),
            (ENV_PARENT, self.parent.to_string()),
        ]
    }
}

/// Reads the worker environment, if this process was spawned as a
/// worker rank. Returns `None` unless *all* required variables are
/// present and well-formed.
#[must_use]
pub fn worker_env() -> Option<WorkerInfo> {
    let rank: usize = std::env::var(ENV_RANK).ok()?.parse().ok()?;
    let size: usize = std::env::var(ENV_SIZE).ok()?.parse().ok()?;
    let socket = PathBuf::from(std::env::var(ENV_SOCKET).ok()?);
    let token = std::env::var(ENV_TOKEN).ok()?;
    if rank == 0 || rank >= size {
        return None;
    }
    let monitor = std::env::var(ENV_MONITOR).ok().as_deref() == Some("1");
    let spans = std::env::var(ENV_SPANS).ok().as_deref() == Some("1");
    // Absent or malformed means star (report to the collector): spawned
    // by an older parent, or a hand-launched worker.
    let parent = std::env::var(ENV_PARENT)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&p| p < size)
        .unwrap_or(0);
    Some(WorkerInfo {
        rank,
        size,
        socket,
        token,
        monitor,
        spans,
        parent,
    })
}

/// Whether this process is a spawned worker rank. Use this to guard
/// destructive setup (removing output directories, printing banners)
/// that must only run in the parent: a worker re-executes the user
/// program's `main` up to the `run()` call, and anything before that
/// call runs again in every worker.
#[must_use]
pub fn is_worker() -> bool {
    worker_env().is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_round_trips_through_to_env() {
        let info = WorkerInfo {
            rank: 2,
            size: 4,
            socket: PathBuf::from("/tmp/parmonc-ipc-1/rank0.sock"),
            token: "deadbeef".into(),
            monitor: true,
            spans: true,
            parent: 1,
        };
        let env = info.to_env();
        assert_eq!(env.len(), 7);
        assert!(env.iter().any(|(k, v)| *k == ENV_RANK && v == "2"));
        assert!(env.iter().any(|(k, v)| *k == ENV_MONITOR && v == "1"));
        assert!(env.iter().any(|(k, v)| *k == ENV_SPANS && v == "1"));
        assert!(env.iter().any(|(k, v)| *k == ENV_PARENT && v == "1"));
    }

    // `worker_env()` itself reads real process environment; tests do
    // not mutate it (std::env::set_var is process-global and would
    // race the parallel test harness), so the parse paths are covered
    // via the integration spawn tests in `transport_conformance.rs`.
    #[test]
    fn this_test_process_is_not_a_worker() {
        assert!(!is_worker());
    }
}
