//! The wire framing for socket transport traffic.
//!
//! One frame is `[source u32][tag u32][len u32][payload]`, all
//! little-endian — the same length-prefixed envelope shape the
//! in-process substrate moves over channels, so a [`Frame`] maps 1:1
//! onto a `parmonc_mpi::Envelope`. Two tags above the collective
//! range are reserved for the transport's own protocol and never
//! surface as envelopes: the connection handshake and forwarded
//! monitor events.

use std::io::{self, Read, Write};

/// The handshake frame a worker sends right after connecting: the
/// payload is the spawn token, the source is the worker's rank.
pub const TAG_IPC_HELLO: u32 = 0xFFFF_FF00;

/// A forwarded monitor event: the payload is one schema-valid
/// `run_metrics.jsonl` line, re-emitted by the parent with the
/// child's timestamp.
pub const TAG_IPC_EVENT: u32 = 0xFFFF_FF01;

/// Upper bound on a frame payload; anything larger is a protocol
/// error, not a subtotal (the performance-test message is ~32 KB).
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Sending rank.
    pub source: u32,
    /// Message tag (user, collective, or one of the `TAG_IPC_*`
    /// protocol tags).
    pub tag: u32,
    /// The payload bytes.
    pub payload: Vec<u8>,
}

/// Writes one frame. The 12-byte header and the payload go out as two
/// `write_all` calls under the caller's stream lock, so concurrent
/// senders cannot interleave.
///
/// # Errors
///
/// Any I/O error from the underlying stream.
pub fn write_frame(w: &mut impl Write, source: u32, tag: u32, payload: &[u8]) -> io::Result<()> {
    let mut header = [0u8; 12];
    header[0..4].copy_from_slice(&source.to_le_bytes());
    header[4..8].copy_from_slice(&tag.to_le_bytes());
    header[8..12].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on a clean EOF at a frame boundary
/// (the peer closed its end after a complete message).
///
/// # Errors
///
/// An I/O error, a mid-frame EOF, or a length prefix past
/// [`MAX_FRAME_LEN`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Frame>> {
    let mut header = [0u8; 12];
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside a frame header",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let source = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    let tag = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    let len = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length prefix exceeds the protocol maximum",
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(Frame {
        source,
        tag,
        payload,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 3, 1, b"subtotal").unwrap();
        write_frame(&mut buf, 0, TAG_IPC_EVENT, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r).unwrap().unwrap(),
            Frame {
                source: 3,
                tag: 1,
                payload: b"subtotal".to_vec()
            }
        );
        assert_eq!(
            read_frame(&mut r).unwrap().unwrap(),
            Frame {
                source: 0,
                tag: TAG_IPC_EVENT,
                payload: Vec::new()
            }
        );
        // Clean EOF at a frame boundary.
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn mid_frame_eof_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, 2, b"cut").unwrap();
        // Truncated header.
        let mut r = &buf[..6];
        assert!(read_frame(&mut r).is_err());
        // Truncated payload.
        let mut r = &buf[..13];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut header = [0u8; 12];
        header[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut r = &header[..];
        assert!(read_frame(&mut r).is_err());
    }
}
