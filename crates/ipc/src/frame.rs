//! The wire framing for socket transport traffic.
//!
//! One frame is `[source u32][tag u32][seq u64][len u32][payload]`,
//! all little-endian — the same length-prefixed envelope shape the
//! in-process substrate moves over channels, so a [`Frame`] maps 1:1
//! onto a `parmonc_mpi::Envelope`. `seq` is a per-sender monotonic
//! frame sequence number (0 = unsequenced protocol traffic) that lets
//! the collector deduplicate frames replayed after a reconnect. A band
//! of tags above the collective range is reserved for the transports'
//! own protocol and never surfaces as envelopes: the connection
//! handshakes, forwarded monitor events, and the TCP
//! join/grant/reject/rejoin exchange. The full byte-level contract
//! (including a worked hexdump) is documented in
//! `docs/wire-protocol.md`.

use std::io::{self, Read, Write};

/// The handshake frame a worker sends right after connecting: the
/// payload is the spawn token, the source is the worker's rank.
pub const TAG_IPC_HELLO: u32 = 0xFFFF_FF00;

/// A forwarded monitor event: the payload is one schema-valid
/// `run_metrics.jsonl` line, re-emitted by the parent with the
/// child's timestamp.
pub const TAG_IPC_EVENT: u32 = 0xFFFF_FF01;

/// A TCP worker's join request: the first frame on a dialing
/// connection, payload = [`JoinRequest`]. The source field is 0
/// because the worker has no rank yet.
pub const TAG_TCP_JOIN: u32 = 0xFFFF_FF02;

/// The collector's acceptance of a join: payload = [`Grant`], carrying
/// the leased rank, the world size, and the rank's realization quota.
pub const TAG_TCP_GRANT: u32 = 0xFFFF_FF03;

/// The collector's refusal of a join: payload = [`Reject`] (a one-byte
/// code plus a human-readable reason). The connection is closed right
/// after this frame.
pub const TAG_TCP_REJECT: u32 = 0xFFFF_FF04;

/// A previously-granted worker re-attaching after a broken connection
/// (or to a crashed-and-restarted collector): the first frame on the
/// new connection, payload = [`Rejoin`]. Answered with [`TAG_TCP_GRANT`]
/// re-granting the same rank, or [`TAG_TCP_REJECT`].
pub const TAG_TCP_REJOIN: u32 = 0xFFFF_FF05;

/// Magic number opening every [`JoinRequest`]: the little-endian bytes
/// spell `PMNC`. A connection whose first frame does not carry it is
/// not speaking this protocol and is rejected.
pub const TCP_MAGIC: u32 = 0x434E_4D50;

/// The TCP wire-protocol version this build speaks. Bumped on any
/// incompatible change to the handshake or envelope framing; the
/// collector rejects joiners with a different version (see
/// `docs/wire-protocol.md` § version negotiation). Version 2 widened
/// the frame header with the `seq` field and added the rejoin/epoch
/// machinery.
pub const TCP_PROTOCOL_VERSION: u16 = 2;

/// The 16-byte [`TAG_TCP_JOIN`] payload:
/// `[magic u32][version u16][reserved u16][config_digest u64]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinRequest {
    /// Must equal [`TCP_MAGIC`].
    pub magic: u32,
    /// The worker's [`TCP_PROTOCOL_VERSION`].
    pub version: u16,
    /// FNV-1a digest of the run configuration fields that determine
    /// the estimate; collector and worker must agree or the worker
    /// would compute the wrong streams.
    pub config_digest: u64,
}

impl JoinRequest {
    /// A well-formed request for this build's protocol version.
    #[must_use]
    pub fn new(config_digest: u64) -> Self {
        Self {
            magic: TCP_MAGIC,
            version: TCP_PROTOCOL_VERSION,
            config_digest,
        }
    }

    /// Encodes the 16-byte payload.
    #[must_use]
    pub fn encode(&self) -> [u8; 16] {
        let mut buf = [0u8; 16];
        buf[0..4].copy_from_slice(&self.magic.to_le_bytes());
        buf[4..6].copy_from_slice(&self.version.to_le_bytes());
        // bytes 6..8 reserved, zero
        buf[8..16].copy_from_slice(&self.config_digest.to_le_bytes());
        buf
    }

    /// Decodes a payload; `None` if the length is wrong. Magic and
    /// version are *not* validated here — the collector checks them
    /// itself so it can answer with the right reject code.
    #[must_use]
    pub fn decode(payload: &[u8]) -> Option<Self> {
        if payload.len() != 16 {
            return None;
        }
        Some(Self {
            magic: u32::from_le_bytes(payload[0..4].try_into().ok()?),
            version: u16::from_le_bytes(payload[4..6].try_into().ok()?),
            config_digest: u64::from_le_bytes(payload[8..16].try_into().ok()?),
        })
    }
}

/// The 32-byte [`TAG_TCP_GRANT`] payload:
/// `[version u16][flags u16][rank u32][size u32][reserved u32][quota u64][epoch u64]`.
/// Flags bit 0 = the run is monitored (the worker should forward its
/// events).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// The collector's protocol version (equals the joiner's, or the
    /// join would have been rejected).
    pub version: u16,
    /// Whether the run is monitored.
    pub monitor: bool,
    /// The leased logical rank — the worker's leapfrog stream range.
    pub rank: u32,
    /// World size including the collector.
    pub size: u32,
    /// The realization quota of the leased rank; the worker
    /// cross-checks it against its own configuration.
    pub quota: u64,
    /// The collector's session epoch. The worker echoes it in any
    /// later [`Rejoin`]; a resumed collector keeps the epoch of the
    /// run it is completing, so only workers of *that* run re-attach.
    pub epoch: u64,
}

impl Grant {
    /// Encodes the 32-byte payload.
    #[must_use]
    pub fn encode(&self) -> [u8; 32] {
        let mut buf = [0u8; 32];
        buf[0..2].copy_from_slice(&self.version.to_le_bytes());
        buf[2..4].copy_from_slice(&u16::from(self.monitor).to_le_bytes());
        buf[4..8].copy_from_slice(&self.rank.to_le_bytes());
        buf[8..12].copy_from_slice(&self.size.to_le_bytes());
        // bytes 12..16 reserved, zero
        buf[16..24].copy_from_slice(&self.quota.to_le_bytes());
        buf[24..32].copy_from_slice(&self.epoch.to_le_bytes());
        buf
    }

    /// Decodes a payload; `None` if the length is wrong.
    #[must_use]
    pub fn decode(payload: &[u8]) -> Option<Self> {
        if payload.len() != 32 {
            return None;
        }
        let flags = u16::from_le_bytes(payload[2..4].try_into().ok()?);
        Some(Self {
            version: u16::from_le_bytes(payload[0..2].try_into().ok()?),
            monitor: flags & 1 != 0,
            rank: u32::from_le_bytes(payload[4..8].try_into().ok()?),
            size: u32::from_le_bytes(payload[8..12].try_into().ok()?),
            quota: u64::from_le_bytes(payload[16..24].try_into().ok()?),
            epoch: u64::from_le_bytes(payload[24..32].try_into().ok()?),
        })
    }
}

/// The 32-byte [`TAG_TCP_REJOIN`] payload:
/// `[magic u32][version u16][reserved u16][config_digest u64][epoch u64][rank u32][reserved u32]`.
/// Sent instead of a [`JoinRequest`] by a worker that already holds a
/// lease and is re-attaching after a broken connection or a collector
/// restart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejoin {
    /// Must equal [`TCP_MAGIC`].
    pub magic: u32,
    /// The worker's [`TCP_PROTOCOL_VERSION`].
    pub version: u16,
    /// FNV-1a digest of the run configuration (same as the original
    /// join).
    pub config_digest: u64,
    /// The session epoch from the original [`Grant`].
    pub epoch: u64,
    /// The rank the worker was leased and wants back.
    pub rank: u32,
}

impl Rejoin {
    /// A well-formed rejoin for this build's protocol version.
    #[must_use]
    pub fn new(config_digest: u64, epoch: u64, rank: u32) -> Self {
        Self {
            magic: TCP_MAGIC,
            version: TCP_PROTOCOL_VERSION,
            config_digest,
            epoch,
            rank,
        }
    }

    /// Encodes the 32-byte payload.
    #[must_use]
    pub fn encode(&self) -> [u8; 32] {
        let mut buf = [0u8; 32];
        buf[0..4].copy_from_slice(&self.magic.to_le_bytes());
        buf[4..6].copy_from_slice(&self.version.to_le_bytes());
        // bytes 6..8 reserved, zero
        buf[8..16].copy_from_slice(&self.config_digest.to_le_bytes());
        buf[16..24].copy_from_slice(&self.epoch.to_le_bytes());
        buf[24..28].copy_from_slice(&self.rank.to_le_bytes());
        // bytes 28..32 reserved, zero
        buf
    }

    /// Decodes a payload; `None` if the length is wrong. Magic,
    /// version, epoch and rank are *not* validated here — the
    /// collector checks them itself so it can answer with the right
    /// reject code.
    #[must_use]
    pub fn decode(payload: &[u8]) -> Option<Self> {
        if payload.len() != 32 {
            return None;
        }
        Some(Self {
            magic: u32::from_le_bytes(payload[0..4].try_into().ok()?),
            version: u16::from_le_bytes(payload[4..6].try_into().ok()?),
            config_digest: u64::from_le_bytes(payload[8..16].try_into().ok()?),
            epoch: u64::from_le_bytes(payload[16..24].try_into().ok()?),
            rank: u32::from_le_bytes(payload[24..28].try_into().ok()?),
        })
    }
}

/// Why a join was refused. The numeric value is the first payload byte
/// of a [`TAG_TCP_REJECT`] frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RejectCode {
    /// The join frame did not open with [`TCP_MAGIC`].
    BadMagic = 1,
    /// The worker speaks a different [`TCP_PROTOCOL_VERSION`].
    VersionMismatch = 2,
    /// No unleased, unretired worker rank remains — the realization
    /// budget is fully dealt out.
    BudgetExhausted = 3,
    /// The worker's configuration digest differs from the collector's.
    ConfigMismatch = 4,
    /// A [`Rejoin`] carried a session epoch that is not this
    /// collector's — the worker belongs to a different run.
    EpochMismatch = 5,
}

impl RejectCode {
    fn from_u8(code: u8) -> Option<Self> {
        match code {
            1 => Some(Self::BadMagic),
            2 => Some(Self::VersionMismatch),
            3 => Some(Self::BudgetExhausted),
            4 => Some(Self::ConfigMismatch),
            5 => Some(Self::EpochMismatch),
            _ => None,
        }
    }
}

/// The [`TAG_TCP_REJECT`] payload: `[code u8][reason utf-8 ...]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reject {
    /// The machine-readable refusal code.
    pub code: RejectCode,
    /// A human-readable explanation, surfaced in the worker's error.
    pub reason: String,
}

impl Reject {
    /// Encodes the variable-length payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(1 + self.reason.len());
        buf.push(self.code as u8);
        buf.extend_from_slice(self.reason.as_bytes());
        buf
    }

    /// Decodes a payload; `None` on an empty payload, an unknown code,
    /// or a non-UTF-8 reason.
    #[must_use]
    pub fn decode(payload: &[u8]) -> Option<Self> {
        let (&code, reason) = payload.split_first()?;
        Some(Self {
            code: RejectCode::from_u8(code)?,
            reason: std::str::from_utf8(reason).ok()?.to_string(),
        })
    }
}

/// Upper bound on a frame payload; anything larger is a protocol
/// error, not a subtotal (the performance-test message is ~32 KB).
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

/// The size of the fixed frame header:
/// `[source u32][tag u32][seq u64][len u32]`.
pub const FRAME_HEADER_LEN: usize = 20;

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Sending rank.
    pub source: u32,
    /// Message tag (user, collective, or one of the `TAG_IPC_*`
    /// protocol tags).
    pub tag: u32,
    /// Per-sender monotonic sequence number; 0 for unsequenced
    /// protocol frames (handshakes, forwarded monitor events).
    pub seq: u64,
    /// The payload bytes.
    pub payload: Vec<u8>,
}

/// Writes one unsequenced frame (`seq = 0`) — protocol traffic and
/// links that need no replay protection.
///
/// # Errors
///
/// Any I/O error from the underlying stream.
pub fn write_frame(w: &mut impl Write, source: u32, tag: u32, payload: &[u8]) -> io::Result<()> {
    write_frame_seq(w, source, tag, 0, payload)
}

/// Writes one frame. The 20-byte header and the payload go out as two
/// `write_all` calls under the caller's stream lock, so concurrent
/// senders cannot interleave. `seq` is the sender's monotonic frame
/// sequence number (`> 0`), or 0 for unsequenced protocol traffic.
///
/// # Errors
///
/// Any I/O error from the underlying stream.
pub fn write_frame_seq(
    w: &mut impl Write,
    source: u32,
    tag: u32,
    seq: u64,
    payload: &[u8],
) -> io::Result<()> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    header[0..4].copy_from_slice(&source.to_le_bytes());
    header[4..8].copy_from_slice(&tag.to_le_bytes());
    header[8..16].copy_from_slice(&seq.to_le_bytes());
    header[16..20].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on a clean EOF at a frame boundary
/// (the peer closed its end after a complete message).
///
/// # Errors
///
/// An I/O error, a mid-frame EOF (`ErrorKind::UnexpectedEof` — a torn
/// frame), or a length prefix past [`MAX_FRAME_LEN`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Frame>> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside a frame header",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let source = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    let tag = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    let seq = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
    let len = u32::from_le_bytes(header[16..20].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length prefix exceeds the protocol maximum",
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(Frame {
        source,
        tag,
        seq,
        payload,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame_seq(&mut buf, 3, 1, 7, b"subtotal").unwrap();
        write_frame(&mut buf, 0, TAG_IPC_EVENT, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r).unwrap().unwrap(),
            Frame {
                source: 3,
                tag: 1,
                seq: 7,
                payload: b"subtotal".to_vec()
            }
        );
        assert_eq!(
            read_frame(&mut r).unwrap().unwrap(),
            Frame {
                source: 0,
                tag: TAG_IPC_EVENT,
                seq: 0,
                payload: Vec::new()
            }
        );
        // Clean EOF at a frame boundary.
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn mid_frame_eof_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, 2, b"cut").unwrap();
        // Truncated header.
        let mut r = &buf[..6];
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // Truncated payload.
        let mut r = &buf[..FRAME_HEADER_LEN + 1];
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut header = [0u8; FRAME_HEADER_LEN];
        header[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut r = &header[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn tcp_magic_spells_pmnc_little_endian() {
        assert_eq!(&TCP_MAGIC.to_le_bytes(), b"PMNC");
    }

    #[test]
    fn join_request_round_trips() {
        let req = JoinRequest::new(0xDEAD_BEEF_0123_4567);
        let buf = req.encode();
        assert_eq!(buf.len(), 16);
        assert_eq!(&buf[0..4], b"PMNC");
        assert_eq!(JoinRequest::decode(&buf), Some(req));
        assert_eq!(JoinRequest::decode(&buf[..15]), None);
    }

    #[test]
    fn grant_round_trips_with_and_without_monitor() {
        for monitor in [false, true] {
            let grant = Grant {
                version: TCP_PROTOCOL_VERSION,
                monitor,
                rank: 3,
                size: 8,
                quota: 125_000,
                epoch: 0x0123_4567_89AB_CDEF,
            };
            let buf = grant.encode();
            assert_eq!(buf.len(), 32);
            assert_eq!(Grant::decode(&buf), Some(grant));
        }
        assert_eq!(Grant::decode(&[0u8; 24]), None);
    }

    #[test]
    fn rejoin_round_trips() {
        let rejoin = Rejoin::new(0xFEED_FACE_CAFE_BEEF, 0x1122_3344_5566_7788, 3);
        let buf = rejoin.encode();
        assert_eq!(buf.len(), 32);
        assert_eq!(&buf[0..4], b"PMNC");
        assert_eq!(Rejoin::decode(&buf), Some(rejoin));
        assert_eq!(Rejoin::decode(&buf[..31]), None);
    }

    #[test]
    fn reject_round_trips_and_validates() {
        let reject = Reject {
            code: RejectCode::BudgetExhausted,
            reason: "all stream ranges are leased".into(),
        };
        let buf = reject.encode();
        assert_eq!(buf[0], 3);
        assert_eq!(Reject::decode(&buf), Some(reject));
        assert_eq!(Reject::decode(&[]), None, "empty payload");
        assert_eq!(Reject::decode(&[9, b'x']), None, "unknown code");
        assert_eq!(Reject::decode(&[1, 0xFF, 0xFE]), None, "non-UTF-8 reason");
    }
}
