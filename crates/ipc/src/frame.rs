//! The wire framing for socket transport traffic.
//!
//! One frame is `[source u32][tag u32][seq u64][len u32][payload]`,
//! all little-endian — the same length-prefixed envelope shape the
//! in-process substrate moves over channels, so a [`Frame`] maps 1:1
//! onto a `parmonc_mpi::Envelope`. `seq` is a per-sender monotonic
//! frame sequence number (0 = unsequenced protocol traffic) that lets
//! the collector deduplicate frames replayed after a reconnect. A band
//! of tags above the collective range is reserved for the transports'
//! own protocol and never surfaces as envelopes: the connection
//! handshakes, forwarded monitor events, and the TCP
//! join/grant/reject/rejoin exchange. The full byte-level contract
//! (including a worked hexdump) is documented in
//! `docs/wire-protocol.md`.

use std::io::{self, Read, Write};

/// The handshake frame a worker sends right after connecting: the
/// payload is the spawn token, the source is the worker's rank.
pub const TAG_IPC_HELLO: u32 = 0xFFFF_FF00;

/// A forwarded monitor event: the payload is one schema-valid
/// `run_metrics.jsonl` line, re-emitted by the parent with the
/// child's timestamp.
pub const TAG_IPC_EVENT: u32 = 0xFFFF_FF01;

/// A TCP worker's join request: the first frame on a dialing
/// connection, payload = [`JoinRequest`]. The source field is 0
/// because the worker has no rank yet.
pub const TAG_TCP_JOIN: u32 = 0xFFFF_FF02;

/// The collector's acceptance of a join: payload = [`Grant`], carrying
/// the leased rank, the world size, and the rank's realization quota.
pub const TAG_TCP_GRANT: u32 = 0xFFFF_FF03;

/// The collector's refusal of a join: payload = [`Reject`] (a one-byte
/// code plus a human-readable reason). The connection is closed right
/// after this frame.
pub const TAG_TCP_REJECT: u32 = 0xFFFF_FF04;

/// A previously-granted worker re-attaching after a broken connection
/// (or to a crashed-and-restarted collector): the first frame on the
/// new connection, payload = [`Rejoin`]. Answered with [`TAG_TCP_GRANT`]
/// re-granting the same rank, or [`TAG_TCP_REJECT`].
pub const TAG_TCP_REJOIN: u32 = 0xFFFF_FF05;

/// A worker's periodic clock re-sync probe: payload = [`ClockProbe`]
/// (the worker's clock at send). The collector answers with
/// [`TAG_TCP_CLOCK_REPLY`] on the same link. Clock frames are written
/// *outside* the fault-injection wrapper — they are wall-clock-timed,
/// so letting them consume scripted frame ordinals would make seeded
/// net-fault schedules nondeterministic.
pub const TAG_TCP_CLOCK_PROBE: u32 = 0xFFFF_FF06;

/// The collector's answer to a probe: payload = [`ClockReply`] — the
/// probe's `t0` echoed back plus the collector clock at receipt and at
/// reply. The worker closes the four-timestamp NTP-style exchange and
/// reports the estimated offset with [`TAG_TCP_CLOCK`].
pub const TAG_TCP_CLOCK_REPLY: u32 = 0xFFFF_FF07;

/// A worker's offset report: payload = [`ClockSync`] — the worker's
/// RTT-symmetric estimate of `collector_clock − worker_clock` for this
/// link, which the collector applies when re-emitting the worker's
/// forwarded events onto the corrected run clock.
pub const TAG_TCP_CLOCK: u32 = 0xFFFF_FF08;

/// A frame routed *through* the hub: the socket substrates are
/// physically a star around rank 0, so when a tree
/// [`Topology`](parmonc_mpi::Topology) asks a worker to send to a rank
/// other than 0 the worker wraps the inner frame as
/// `[dest u32][inner_tag u32][inner payload...]` under this tag. The
/// hub unwraps it after dedup and forwards the inner frame to `dest`
/// with the *original* source, so the destination cannot tell the
/// message was relayed. See [`encode_route`]/[`decode_route`].
pub const TAG_IPC_ROUTE: u32 = 0xFFFF_FF09;

/// Wraps an inner frame for hub routing: `[dest u32][tag u32][payload]`.
#[must_use]
pub fn encode_route(dest: u32, inner_tag: u32, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + payload.len());
    buf.extend_from_slice(&dest.to_le_bytes());
    buf.extend_from_slice(&inner_tag.to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

/// Unwraps a [`TAG_IPC_ROUTE`] payload into `(dest, inner_tag, inner
/// payload)`; `None` if the payload is shorter than the 8-byte route
/// header.
#[must_use]
pub fn decode_route(payload: &[u8]) -> Option<(u32, u32, &[u8])> {
    if payload.len() < 8 {
        return None;
    }
    let dest = u32::from_le_bytes(payload[0..4].try_into().ok()?);
    let tag = u32::from_le_bytes(payload[4..8].try_into().ok()?);
    Some((dest, tag, &payload[8..]))
}

/// Magic number opening every [`JoinRequest`]: the little-endian bytes
/// spell `PMNC`. A connection whose first frame does not carry it is
/// not speaking this protocol and is rejected.
pub const TCP_MAGIC: u32 = 0x434E_4D50;

/// The TCP wire-protocol version this build speaks. Bumped on any
/// incompatible change to the handshake or envelope framing; the
/// collector rejects joiners with a different version (see
/// `docs/wire-protocol.md` § version negotiation). Version 2 widened
/// the frame header with the `seq` field and added the rejoin/epoch
/// machinery; version 3 widened the handshake payloads with
/// clock-alignment timestamps and added the clock tag band
/// ([`TAG_TCP_CLOCK_PROBE`]..[`TAG_TCP_CLOCK`]); version 4 gave the
/// [`Grant`] a parent-assignment field (tree collection topologies)
/// and added [`TAG_IPC_ROUTE`] hub routing.
pub const TCP_PROTOCOL_VERSION: u16 = 4;

/// The 24-byte [`TAG_TCP_JOIN`] payload:
/// `[magic u32][version u16][reserved u16][config_digest u64][t0_s f64]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinRequest {
    /// Must equal [`TCP_MAGIC`].
    pub magic: u32,
    /// The worker's [`TCP_PROTOCOL_VERSION`].
    pub version: u16,
    /// FNV-1a digest of the run configuration fields that determine
    /// the estimate; collector and worker must agree or the worker
    /// would compute the wrong streams.
    pub config_digest: u64,
    /// The worker's clock (seconds on its local event clock, skew
    /// included) at the moment this request was written — the `t0` of
    /// the NTP-style offset exchange closed by the [`Grant`].
    pub t0_s: f64,
}

impl JoinRequest {
    /// A well-formed request for this build's protocol version.
    #[must_use]
    pub fn new(config_digest: u64) -> Self {
        Self {
            magic: TCP_MAGIC,
            version: TCP_PROTOCOL_VERSION,
            config_digest,
            t0_s: 0.0,
        }
    }

    /// Encodes the 24-byte payload.
    #[must_use]
    pub fn encode(&self) -> [u8; 24] {
        let mut buf = [0u8; 24];
        buf[0..4].copy_from_slice(&self.magic.to_le_bytes());
        buf[4..6].copy_from_slice(&self.version.to_le_bytes());
        // bytes 6..8 reserved, zero
        buf[8..16].copy_from_slice(&self.config_digest.to_le_bytes());
        buf[16..24].copy_from_slice(&self.t0_s.to_le_bytes());
        buf
    }

    /// Decodes a payload; `None` if the length is wrong. Magic and
    /// version are *not* validated here — the collector checks them
    /// itself so it can answer with the right reject code.
    #[must_use]
    pub fn decode(payload: &[u8]) -> Option<Self> {
        if payload.len() != 24 {
            return None;
        }
        Some(Self {
            magic: u32::from_le_bytes(payload[0..4].try_into().ok()?),
            version: u16::from_le_bytes(payload[4..6].try_into().ok()?),
            config_digest: u64::from_le_bytes(payload[8..16].try_into().ok()?),
            t0_s: f64::from_le_bytes(payload[16..24].try_into().ok()?),
        })
    }
}

/// The 48-byte [`TAG_TCP_GRANT`] payload:
/// `[version u16][flags u16][rank u32][size u32][parent u32][quota u64][epoch u64][t_recv_s f64][t_reply_s f64]`.
/// Flags bit 0 = the run is monitored (the worker should forward its
/// events); bit 1 = span tracing is on (the worker should emit
/// `span_started`/`span_ended` events around its phases).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Grant {
    /// The collector's protocol version (equals the joiner's, or the
    /// join would have been rejected).
    pub version: u16,
    /// Whether the run is monitored.
    pub monitor: bool,
    /// Whether span tracing is enabled for this run.
    pub spans: bool,
    /// The leased logical rank — the worker's leapfrog stream range.
    pub rank: u32,
    /// World size including the collector.
    pub size: u32,
    /// The rank this worker's subtotal envelopes should flow to under
    /// the run's collection topology: 0 under a star, possibly an
    /// interior relay rank under a tree. Was a reserved zero field in
    /// protocol version 3, so the star default is wire-compatible.
    pub parent: u32,
    /// The realization quota of the leased rank; the worker
    /// cross-checks it against its own configuration.
    pub quota: u64,
    /// The collector's session epoch. The worker echoes it in any
    /// later [`Rejoin`]; a resumed collector keeps the epoch of the
    /// run it is completing, so only workers of *that* run re-attach.
    pub epoch: u64,
    /// The collector's clock when the join (or rejoin) frame was read
    /// — the `t1` of the offset exchange.
    pub t_recv_s: f64,
    /// The collector's clock when this grant was written — the `t2` of
    /// the offset exchange.
    pub t_reply_s: f64,
}

impl Grant {
    /// Encodes the 48-byte payload.
    #[must_use]
    pub fn encode(&self) -> [u8; 48] {
        let mut buf = [0u8; 48];
        buf[0..2].copy_from_slice(&self.version.to_le_bytes());
        let flags = u16::from(self.monitor) | (u16::from(self.spans) << 1);
        buf[2..4].copy_from_slice(&flags.to_le_bytes());
        buf[4..8].copy_from_slice(&self.rank.to_le_bytes());
        buf[8..12].copy_from_slice(&self.size.to_le_bytes());
        buf[12..16].copy_from_slice(&self.parent.to_le_bytes());
        buf[16..24].copy_from_slice(&self.quota.to_le_bytes());
        buf[24..32].copy_from_slice(&self.epoch.to_le_bytes());
        buf[32..40].copy_from_slice(&self.t_recv_s.to_le_bytes());
        buf[40..48].copy_from_slice(&self.t_reply_s.to_le_bytes());
        buf
    }

    /// Decodes a payload; `None` if the length is wrong.
    #[must_use]
    pub fn decode(payload: &[u8]) -> Option<Self> {
        if payload.len() != 48 {
            return None;
        }
        let flags = u16::from_le_bytes(payload[2..4].try_into().ok()?);
        Some(Self {
            version: u16::from_le_bytes(payload[0..2].try_into().ok()?),
            monitor: flags & 1 != 0,
            spans: flags & 2 != 0,
            rank: u32::from_le_bytes(payload[4..8].try_into().ok()?),
            size: u32::from_le_bytes(payload[8..12].try_into().ok()?),
            parent: u32::from_le_bytes(payload[12..16].try_into().ok()?),
            quota: u64::from_le_bytes(payload[16..24].try_into().ok()?),
            epoch: u64::from_le_bytes(payload[24..32].try_into().ok()?),
            t_recv_s: f64::from_le_bytes(payload[32..40].try_into().ok()?),
            t_reply_s: f64::from_le_bytes(payload[40..48].try_into().ok()?),
        })
    }
}

/// The 40-byte [`TAG_TCP_REJOIN`] payload:
/// `[magic u32][version u16][reserved u16][config_digest u64][epoch u64][rank u32][reserved u32][t0_s f64]`.
/// Sent instead of a [`JoinRequest`] by a worker that already holds a
/// lease and is re-attaching after a broken connection or a collector
/// restart.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rejoin {
    /// Must equal [`TCP_MAGIC`].
    pub magic: u32,
    /// The worker's [`TCP_PROTOCOL_VERSION`].
    pub version: u16,
    /// FNV-1a digest of the run configuration (same as the original
    /// join).
    pub config_digest: u64,
    /// The session epoch from the original [`Grant`].
    pub epoch: u64,
    /// The rank the worker was leased and wants back.
    pub rank: u32,
    /// The worker's clock at send — like [`JoinRequest::t0_s`], so a
    /// rejoin grant doubles as a fresh offset exchange.
    pub t0_s: f64,
}

impl Rejoin {
    /// A well-formed rejoin for this build's protocol version.
    #[must_use]
    pub fn new(config_digest: u64, epoch: u64, rank: u32) -> Self {
        Self {
            magic: TCP_MAGIC,
            version: TCP_PROTOCOL_VERSION,
            config_digest,
            epoch,
            rank,
            t0_s: 0.0,
        }
    }

    /// Encodes the 40-byte payload.
    #[must_use]
    pub fn encode(&self) -> [u8; 40] {
        let mut buf = [0u8; 40];
        buf[0..4].copy_from_slice(&self.magic.to_le_bytes());
        buf[4..6].copy_from_slice(&self.version.to_le_bytes());
        // bytes 6..8 reserved, zero
        buf[8..16].copy_from_slice(&self.config_digest.to_le_bytes());
        buf[16..24].copy_from_slice(&self.epoch.to_le_bytes());
        buf[24..28].copy_from_slice(&self.rank.to_le_bytes());
        // bytes 28..32 reserved, zero
        buf[32..40].copy_from_slice(&self.t0_s.to_le_bytes());
        buf
    }

    /// Decodes a payload; `None` if the length is wrong. Magic,
    /// version, epoch and rank are *not* validated here — the
    /// collector checks them itself so it can answer with the right
    /// reject code.
    #[must_use]
    pub fn decode(payload: &[u8]) -> Option<Self> {
        if payload.len() != 40 {
            return None;
        }
        Some(Self {
            magic: u32::from_le_bytes(payload[0..4].try_into().ok()?),
            version: u16::from_le_bytes(payload[4..6].try_into().ok()?),
            config_digest: u64::from_le_bytes(payload[8..16].try_into().ok()?),
            epoch: u64::from_le_bytes(payload[16..24].try_into().ok()?),
            rank: u32::from_le_bytes(payload[24..28].try_into().ok()?),
            t0_s: f64::from_le_bytes(payload[32..40].try_into().ok()?),
        })
    }
}

/// The 8-byte [`TAG_TCP_CLOCK_PROBE`] payload: `[t0_s f64]`, the
/// worker's clock at send.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockProbe {
    /// The worker's clock at send.
    pub t0_s: f64,
}

impl ClockProbe {
    /// Encodes the 8-byte payload.
    #[must_use]
    pub fn encode(&self) -> [u8; 8] {
        self.t0_s.to_le_bytes()
    }

    /// Decodes a payload; `None` if the length is wrong.
    #[must_use]
    pub fn decode(payload: &[u8]) -> Option<Self> {
        Some(Self {
            t0_s: f64::from_le_bytes(payload.try_into().ok()?),
        })
    }
}

/// The 24-byte [`TAG_TCP_CLOCK_REPLY`] payload:
/// `[t0_s f64][t1_s f64][t2_s f64]` — the probe's `t0` echoed back
/// (the exchange is stateless on both sides), the collector's clock at
/// probe receipt, and the collector's clock at reply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockReply {
    /// The probe's `t0_s`, echoed back.
    pub t0_s: f64,
    /// Collector clock at probe receipt.
    pub t1_s: f64,
    /// Collector clock at reply.
    pub t2_s: f64,
}

impl ClockReply {
    /// Encodes the 24-byte payload.
    #[must_use]
    pub fn encode(&self) -> [u8; 24] {
        let mut buf = [0u8; 24];
        buf[0..8].copy_from_slice(&self.t0_s.to_le_bytes());
        buf[8..16].copy_from_slice(&self.t1_s.to_le_bytes());
        buf[16..24].copy_from_slice(&self.t2_s.to_le_bytes());
        buf
    }

    /// Decodes a payload; `None` if the length is wrong.
    #[must_use]
    pub fn decode(payload: &[u8]) -> Option<Self> {
        if payload.len() != 24 {
            return None;
        }
        Some(Self {
            t0_s: f64::from_le_bytes(payload[0..8].try_into().ok()?),
            t1_s: f64::from_le_bytes(payload[8..16].try_into().ok()?),
            t2_s: f64::from_le_bytes(payload[16..24].try_into().ok()?),
        })
    }
}

/// The 16-byte [`TAG_TCP_CLOCK`] payload: `[offset_s f64][rtt_s f64]`
/// — the worker's RTT-symmetric estimate of
/// `collector_clock − worker_clock` for this link, plus the round-trip
/// time of the exchange it came from (the error bound on the
/// estimate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockSync {
    /// Estimated `collector_clock − worker_clock`.
    pub offset_s: f64,
    /// Round-trip time of the exchange behind the estimate.
    pub rtt_s: f64,
}

impl ClockSync {
    /// The standard four-timestamp offset estimate:
    /// `θ = ((t1 − t0) + (t2 − t3)) / 2`, assuming the two network legs
    /// are symmetric; the RTT (minus the collector's turnaround) bounds
    /// the error of that assumption.
    #[must_use]
    pub fn estimate(t0_s: f64, t1_s: f64, t2_s: f64, t3_s: f64) -> Self {
        Self {
            offset_s: ((t1_s - t0_s) + (t2_s - t3_s)) / 2.0,
            rtt_s: ((t3_s - t0_s) - (t2_s - t1_s)).max(0.0),
        }
    }

    /// Encodes the 16-byte payload.
    #[must_use]
    pub fn encode(&self) -> [u8; 16] {
        let mut buf = [0u8; 16];
        buf[0..8].copy_from_slice(&self.offset_s.to_le_bytes());
        buf[8..16].copy_from_slice(&self.rtt_s.to_le_bytes());
        buf
    }

    /// Decodes a payload; `None` if the length is wrong.
    #[must_use]
    pub fn decode(payload: &[u8]) -> Option<Self> {
        if payload.len() != 16 {
            return None;
        }
        Some(Self {
            offset_s: f64::from_le_bytes(payload[0..8].try_into().ok()?),
            rtt_s: f64::from_le_bytes(payload[8..16].try_into().ok()?),
        })
    }
}

/// Why a join was refused. The numeric value is the first payload byte
/// of a [`TAG_TCP_REJECT`] frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RejectCode {
    /// The join frame did not open with [`TCP_MAGIC`].
    BadMagic = 1,
    /// The worker speaks a different [`TCP_PROTOCOL_VERSION`].
    VersionMismatch = 2,
    /// No unleased, unretired worker rank remains — the realization
    /// budget is fully dealt out.
    BudgetExhausted = 3,
    /// The worker's configuration digest differs from the collector's.
    ConfigMismatch = 4,
    /// A [`Rejoin`] carried a session epoch that is not this
    /// collector's — the worker belongs to a different run.
    EpochMismatch = 5,
}

impl RejectCode {
    fn from_u8(code: u8) -> Option<Self> {
        match code {
            1 => Some(Self::BadMagic),
            2 => Some(Self::VersionMismatch),
            3 => Some(Self::BudgetExhausted),
            4 => Some(Self::ConfigMismatch),
            5 => Some(Self::EpochMismatch),
            _ => None,
        }
    }
}

/// The [`TAG_TCP_REJECT`] payload: `[code u8][reason utf-8 ...]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reject {
    /// The machine-readable refusal code.
    pub code: RejectCode,
    /// A human-readable explanation, surfaced in the worker's error.
    pub reason: String,
}

impl Reject {
    /// Encodes the variable-length payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(1 + self.reason.len());
        buf.push(self.code as u8);
        buf.extend_from_slice(self.reason.as_bytes());
        buf
    }

    /// Decodes a payload; `None` on an empty payload, an unknown code,
    /// or a non-UTF-8 reason.
    #[must_use]
    pub fn decode(payload: &[u8]) -> Option<Self> {
        let (&code, reason) = payload.split_first()?;
        Some(Self {
            code: RejectCode::from_u8(code)?,
            reason: std::str::from_utf8(reason).ok()?.to_string(),
        })
    }
}

/// Upper bound on a frame payload; anything larger is a protocol
/// error, not a subtotal (the performance-test message is ~32 KB).
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

/// The size of the fixed frame header:
/// `[source u32][tag u32][seq u64][len u32]`.
pub const FRAME_HEADER_LEN: usize = 20;

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Sending rank.
    pub source: u32,
    /// Message tag (user, collective, or one of the `TAG_IPC_*`
    /// protocol tags).
    pub tag: u32,
    /// Per-sender monotonic sequence number; 0 for unsequenced
    /// protocol frames (handshakes, forwarded monitor events).
    pub seq: u64,
    /// The payload bytes.
    pub payload: Vec<u8>,
}

/// Writes one unsequenced frame (`seq = 0`) — protocol traffic and
/// links that need no replay protection.
///
/// # Errors
///
/// Any I/O error from the underlying stream.
pub fn write_frame(w: &mut impl Write, source: u32, tag: u32, payload: &[u8]) -> io::Result<()> {
    write_frame_seq(w, source, tag, 0, payload)
}

/// Writes one frame. The 20-byte header and the payload go out as two
/// `write_all` calls under the caller's stream lock, so concurrent
/// senders cannot interleave. `seq` is the sender's monotonic frame
/// sequence number (`> 0`), or 0 for unsequenced protocol traffic.
///
/// # Errors
///
/// Any I/O error from the underlying stream.
pub fn write_frame_seq(
    w: &mut impl Write,
    source: u32,
    tag: u32,
    seq: u64,
    payload: &[u8],
) -> io::Result<()> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    header[0..4].copy_from_slice(&source.to_le_bytes());
    header[4..8].copy_from_slice(&tag.to_le_bytes());
    header[8..16].copy_from_slice(&seq.to_le_bytes());
    header[16..20].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on a clean EOF at a frame boundary
/// (the peer closed its end after a complete message).
///
/// # Errors
///
/// An I/O error, a mid-frame EOF (`ErrorKind::UnexpectedEof` — a torn
/// frame), or a length prefix past [`MAX_FRAME_LEN`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Frame>> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside a frame header",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let source = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    let tag = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    let seq = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
    let len = u32::from_le_bytes(header[16..20].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length prefix exceeds the protocol maximum",
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(Frame {
        source,
        tag,
        seq,
        payload,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame_seq(&mut buf, 3, 1, 7, b"subtotal").unwrap();
        write_frame(&mut buf, 0, TAG_IPC_EVENT, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r).unwrap().unwrap(),
            Frame {
                source: 3,
                tag: 1,
                seq: 7,
                payload: b"subtotal".to_vec()
            }
        );
        assert_eq!(
            read_frame(&mut r).unwrap().unwrap(),
            Frame {
                source: 0,
                tag: TAG_IPC_EVENT,
                seq: 0,
                payload: Vec::new()
            }
        );
        // Clean EOF at a frame boundary.
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn mid_frame_eof_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, 2, b"cut").unwrap();
        // Truncated header.
        let mut r = &buf[..6];
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // Truncated payload.
        let mut r = &buf[..FRAME_HEADER_LEN + 1];
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut header = [0u8; FRAME_HEADER_LEN];
        header[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut r = &header[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn tcp_magic_spells_pmnc_little_endian() {
        assert_eq!(&TCP_MAGIC.to_le_bytes(), b"PMNC");
    }

    #[test]
    fn join_request_round_trips() {
        let mut req = JoinRequest::new(0xDEAD_BEEF_0123_4567);
        req.t0_s = 1.25;
        let buf = req.encode();
        assert_eq!(buf.len(), 24);
        assert_eq!(&buf[0..4], b"PMNC");
        assert_eq!(JoinRequest::decode(&buf), Some(req));
        assert_eq!(JoinRequest::decode(&buf[..16]), None);
    }

    #[test]
    fn grant_round_trips_with_every_flag_combination() {
        for monitor in [false, true] {
            for spans in [false, true] {
                let grant = Grant {
                    version: TCP_PROTOCOL_VERSION,
                    monitor,
                    spans,
                    rank: 3,
                    size: 8,
                    parent: 1,
                    quota: 125_000,
                    epoch: 0x0123_4567_89AB_CDEF,
                    t_recv_s: 9.5,
                    t_reply_s: 9.625,
                };
                let buf = grant.encode();
                assert_eq!(buf.len(), 48);
                assert_eq!(Grant::decode(&buf), Some(grant));
            }
        }
        assert_eq!(Grant::decode(&[0u8; 32]), None, "v2 grants are refused");
    }

    #[test]
    fn route_wrap_round_trips_and_rejects_short_payloads() {
        let wrapped = encode_route(5, 6, b"inner-bytes");
        let (dest, tag, inner) = decode_route(&wrapped).unwrap();
        assert_eq!((dest, tag, inner), (5, 6, &b"inner-bytes"[..]));
        let empty = encode_route(2, 9, b"");
        assert_eq!(decode_route(&empty), Some((2, 9, &b""[..])));
        assert_eq!(decode_route(&wrapped[..7]), None, "truncated route header");
    }

    #[test]
    fn rejoin_round_trips() {
        let mut rejoin = Rejoin::new(0xFEED_FACE_CAFE_BEEF, 0x1122_3344_5566_7788, 3);
        rejoin.t0_s = 2.5;
        let buf = rejoin.encode();
        assert_eq!(buf.len(), 40);
        assert_eq!(&buf[0..4], b"PMNC");
        assert_eq!(Rejoin::decode(&buf), Some(rejoin));
        assert_eq!(Rejoin::decode(&buf[..32]), None);
    }

    #[test]
    fn clock_payloads_round_trip() {
        let probe = ClockProbe { t0_s: 3.5 };
        assert_eq!(ClockProbe::decode(&probe.encode()), Some(probe));
        assert_eq!(ClockProbe::decode(&[0u8; 4]), None);
        let reply = ClockReply {
            t0_s: 3.5,
            t1_s: 8.5,
            t2_s: 8.625,
        };
        assert_eq!(ClockReply::decode(&reply.encode()), Some(reply));
        assert_eq!(ClockReply::decode(&[0u8; 16]), None);
        let sync = ClockSync {
            offset_s: -4.75,
            rtt_s: 0.125,
        };
        assert_eq!(ClockSync::decode(&sync.encode()), Some(sync));
        assert_eq!(ClockSync::decode(&[0u8; 8]), None);
    }

    #[test]
    fn offset_estimate_cancels_a_pure_clock_skew() {
        // Worker clock 5 s behind the collector, symmetric 10 ms legs,
        // 2 ms collector turnaround: θ must recover exactly +5 and the
        // RTT must exclude the turnaround.
        let sync = ClockSync::estimate(1.000, 6.010, 6.012, 1.022);
        assert!((sync.offset_s - 5.0).abs() < 1e-12, "{}", sync.offset_s);
        assert!((sync.rtt_s - 0.020).abs() < 1e-12, "{}", sync.rtt_s);
    }

    #[test]
    fn reject_round_trips_and_validates() {
        let reject = Reject {
            code: RejectCode::BudgetExhausted,
            reason: "all stream ranges are leased".into(),
        };
        let buf = reject.encode();
        assert_eq!(buf[0], 3);
        assert_eq!(Reject::decode(&buf), Some(reject));
        assert_eq!(Reject::decode(&[]), None, "empty payload");
        assert_eq!(Reject::decode(&[9, b'x']), None, "unknown code");
        assert_eq!(Reject::decode(&[1, 0xFF, 0xFE]), None, "non-UTF-8 reason");
    }
}
