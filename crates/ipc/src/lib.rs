//! Socket transports for the PARMONC reproduction: multi-process over
//! Unix-domain sockets, and multi-host over TCP.
//!
//! The in-process substrate (`parmonc-mpi`) runs ranks as OS threads;
//! this crate runs them as *processes*, which is the paper's actual
//! deployment shape: every rank has its own address space and RNG
//! state, and all communication crosses a real kernel boundary. The
//! [`tcp`] module extends the same envelope framing across machine
//! boundaries, with elastic worker membership (see its module docs
//! and `docs/wire-protocol.md`).
//!
//! The world is built by re-execution, like `mpirun` without the
//! launcher: rank 0 ([`ProcessTransport::spawn`]) re-executes the
//! current binary once per worker with the `PARMONC_WORKER_*`
//! environment set; the runner's first action is to check
//! [`worker_env`] and divert into the worker loop, so the same user
//! program binary serves as both collector and workers. Messages are
//! the same length-prefixed [`parmonc_mpi::Envelope`]s the thread
//! substrate moves over channels, framed onto Unix-domain sockets
//! ([`frame`]); worker monitor events ride the same stream and are
//! re-emitted into the parent's run trace.
//!
//! Both transports implement [`parmonc_mpi::Transport`], so the
//! collector/worker code in `parmonc` is identical across substrates
//! — and because each rank completes exactly its assigned quota of
//! leapfrogged RNG streams, estimates are bit-identical to the thread
//! backend for the same configuration and seed.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod frame;
mod link;
pub mod tcp;
mod transport;
mod worker;

pub use tcp::{JoinOptions, ListenOptions, TcpCollectorTransport, TcpWorkerTransport};
pub use transport::{ChildTransport, ProcessTransport, SpawnOptions};
pub use worker::{is_worker, worker_env, WorkerInfo, WORKER_FLAG};
