//! Socket transports for the PARMONC reproduction: multi-process over
//! Unix-domain sockets, and multi-host over TCP.
//!
//! The in-process substrate (`parmonc-mpi`) runs ranks as OS threads;
//! this crate runs them as *processes*, which is the paper's actual
//! deployment shape: every rank has its own address space and RNG
//! state, and all communication crosses a real kernel boundary. The
//! [`tcp`] module extends the same envelope framing across machine
//! boundaries, with elastic worker membership (see its module docs
//! and `docs/wire-protocol.md`).
//!
//! The world is built by re-execution, like `mpirun` without the
//! launcher: rank 0 ([`ProcessTransport::spawn`]) re-executes the
//! current binary once per worker with the `PARMONC_WORKER_*`
//! environment set; the runner's first action is to check
//! [`worker_env`] and divert into the worker loop, so the same user
//! program binary serves as both collector and workers. Messages are
//! the same length-prefixed [`parmonc_mpi::Envelope`]s the thread
//! substrate moves over channels, framed onto Unix-domain sockets
//! ([`frame`]); worker monitor events ride the same stream and are
//! re-emitted into the parent's run trace.
//!
//! Both transports implement [`parmonc_mpi::Transport`], so the
//! collector/worker code in `parmonc` is identical across substrates
//! — and because each rank completes exactly its assigned quota of
//! leapfrogged RNG streams, estimates are bit-identical to the thread
//! backend for the same configuration and seed.

// `deny`, not `forbid`: `reuse` carries the workspace's only unsafe
// code — four C calls to bind the collector listener with
// `SO_REUSEADDR` (crash–resume needs the port back immediately).
#![deny(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod backoff;
pub mod faulty;
pub mod frame;
mod link;
mod reuse;
pub mod tcp;
mod transport;
mod worker;

pub use backoff::{Backoff, ReconnectPolicy};
pub use faulty::FaultyStream;
pub use link::admit_seq;
pub use reuse::bind_reuseaddr;
pub use tcp::{
    JoinOptions, LeaseSnapshot, ListenOptions, TcpCollectorTransport, TcpWorkerTransport,
};
pub use transport::{ChildTransport, ProcessTransport, SpawnOptions};
pub use worker::{is_worker, worker_env, WorkerInfo, WORKER_FLAG};
