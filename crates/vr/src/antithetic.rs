//! Antithetic variates.
//!
//! For an estimator `ζ = f(α₁, α₂, …)` of base random numbers, the
//! antithetic pair is `ζ' = f(1−α₁, 1−α₂, …)`. Both have the same
//! distribution, so `(ζ + ζ')/2` is unbiased; when `f` is monotone in
//! its inputs, `Cov(ζ, ζ') < 0` and the pair average has strictly
//! smaller variance than two independent realizations.

use parmonc_rng::UniformSource;
use parmonc_stats::ScalarAccumulator;

/// A uniform source that mirrors another: yields `1 − α` for every
/// `α` the inner source would produce.
///
/// # Examples
///
/// ```
/// use parmonc_rng::{Lcg128, UniformSource};
/// use parmonc_vr::MirrorSource;
///
/// let mut plain = Lcg128::new();
/// let mut mirror = MirrorSource::new(Lcg128::new());
/// let a = plain.next_f64();
/// let b = mirror.next_f64();
/// assert!((a + b - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct MirrorSource<S> {
    inner: S,
}

impl<S: UniformSource> MirrorSource<S> {
    /// Wraps `inner`.
    pub fn new(inner: S) -> Self {
        Self { inner }
    }

    /// Returns the wrapped source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: UniformSource> UniformSource for MirrorSource<S> {
    #[inline]
    fn next_f64(&mut self) -> f64 {
        1.0 - self.inner.next_f64()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        !self.inner.next_u64()
    }
}

/// Estimates `E[f]` with `pairs` antithetic pairs: each pair consumes
/// one stream position twice — once plain, once mirrored — and
/// contributes the pair average as a single (lower-variance)
/// realization.
///
/// The estimand function receives a `&mut dyn UniformSource` so the
/// same closure runs both legs.
pub fn antithetic_estimate<S, F>(rng: &mut S, pairs: usize, f: F) -> ScalarAccumulator
where
    S: UniformSource + Clone,
    F: Fn(&mut dyn UniformSource) -> f64,
{
    let mut acc = ScalarAccumulator::new();
    for _ in 0..pairs {
        // Fork the stream so the mirror leg replays the same positions.
        let fork = rng.clone();
        let plain = f(rng);
        let mut mirror = MirrorSource::new(fork);
        let mirrored = f(&mut mirror);
        // Advance the main stream past whatever the legs consumed the
        // most of (both legs draw the same count for deterministic f,
        // but rejection-style f may differ; resynchronize to the
        // mirror's inner position if it went further).
        // NOTE: for deterministic draw counts the two positions agree.
        acc.add(0.5 * (plain + mirrored));
    }
    acc
}

/// Plain Monte Carlo with the same budget (2·`pairs` evaluations), for
/// apples-to-apples variance comparisons in tests and benches.
pub fn plain_estimate<S, F>(rng: &mut S, evaluations: usize, f: F) -> ScalarAccumulator
where
    S: UniformSource,
    F: Fn(&mut dyn UniformSource) -> f64,
{
    let mut acc = ScalarAccumulator::new();
    for _ in 0..evaluations {
        acc.add(f(rng));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use parmonc_rng::Lcg128;

    /// E[e^U] = e − 1 ≈ 1.71828; monotone in U, so antithetic helps.
    fn exp_u(rng: &mut dyn UniformSource) -> f64 {
        rng.next_f64().exp()
    }

    #[test]
    fn mirror_source_mirrors() {
        let mut a = Lcg128::new();
        let mut b = MirrorSource::new(Lcg128::new());
        for _ in 0..1000 {
            assert!((a.next_f64() + b.next_f64() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn antithetic_is_unbiased() {
        let mut rng = Lcg128::new();
        let acc = antithetic_estimate(&mut rng, 100_000, exp_u);
        let truth = std::f64::consts::E - 1.0;
        assert!(
            (acc.mean() - truth).abs() < acc.abs_error() + 1e-3,
            "{} vs {truth}",
            acc.mean()
        );
    }

    #[test]
    fn antithetic_beats_plain_for_monotone_f() {
        // Equal budget: n pairs vs 2n plain evaluations. Compare the
        // standard error of the mean.
        let n = 100_000;
        let anti = antithetic_estimate(&mut Lcg128::new(), n, exp_u);
        let plain = plain_estimate(&mut Lcg128::new(), 2 * n, exp_u);
        let se_anti = anti.abs_error();
        let se_plain = plain.abs_error();
        // Theory: Var[(ζ+ζ')/2] per pair ≈ 0.0039 vs Var ζ/2 per two
        // plain draws ≈ 0.121: a ~5x standard-error reduction.
        assert!(
            se_anti < 0.5 * se_plain,
            "antithetic SE {se_anti} not well below plain {se_plain}"
        );
    }

    #[test]
    fn no_harm_on_symmetric_f() {
        // f symmetric around 1/2 (non-monotone): antithetic pair
        // correlation is positive here — the estimate stays unbiased.
        let f = |rng: &mut dyn UniformSource| (rng.next_f64() - 0.5).powi(2);
        let acc = antithetic_estimate(&mut Lcg128::new(), 50_000, f);
        assert!((acc.mean() - 1.0 / 12.0).abs() < 3.0 * acc.abs_error() + 1e-3);
    }

    #[test]
    fn pair_average_of_linear_f_is_exact() {
        // f(u) = u: each pair averages to exactly 1/2 — zero variance.
        let f = |rng: &mut dyn UniformSource| rng.next_f64();
        let acc = antithetic_estimate(&mut Lcg128::new(), 1_000, f);
        assert!((acc.mean() - 0.5).abs() < 1e-12);
        assert!(acc.variance() < 1e-24);
    }
}
