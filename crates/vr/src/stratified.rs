//! Stratified sampling.
//!
//! Partition `[0, 1)` into `k` equal strata and force the *first* base
//! random number of each realization into its stratum:
//! `α = (j + u)/k`. With proportional allocation (`n/k` per stratum)
//! the stratified mean is unbiased and its variance drops by the
//! between-strata variance component — large whenever `f` varies
//! systematically with its leading input.

use parmonc_rng::UniformSource;
use parmonc_stats::ScalarAccumulator;

/// A uniform source whose *next* draw is confined to stratum
/// `j` of `k` (subsequent draws pass through unchanged).
#[derive(Debug)]
struct StratumSource<'a, S: ?Sized> {
    inner: &'a mut S,
    stratum: usize,
    strata: usize,
    first: bool,
}

impl<S: UniformSource + ?Sized> UniformSource for StratumSource<'_, S> {
    fn next_f64(&mut self) -> f64 {
        let u = self.inner.next_f64();
        if self.first {
            self.first = false;
            (self.stratum as f64 + u) / self.strata as f64
        } else {
            u
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Outcome of a stratified estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct StratifiedEstimate {
    /// Overall mean (average of stratum means — equal allocation makes
    /// this the plain average of all samples).
    pub mean: f64,
    /// Standard error of the stratified mean
    /// (`sqrt(Σ_j σ_j²/(k²·n_j))`).
    pub std_error: f64,
    /// Per-stratum accumulators.
    pub strata: Vec<ScalarAccumulator>,
}

impl StratifiedEstimate {
    /// Absolute error at the paper's 3σ confidence convention.
    #[must_use]
    pub fn abs_error(&self) -> f64 {
        3.0 * self.std_error
    }
}

/// Estimates `E[f]` with `per_stratum` evaluations in each of `k`
/// strata of the leading base random number.
///
/// # Panics
///
/// Panics unless `k ≥ 2` and `per_stratum ≥ 2`.
pub fn stratified_estimate<S, F>(
    rng: &mut S,
    k: usize,
    per_stratum: usize,
    f: F,
) -> StratifiedEstimate
where
    S: UniformSource,
    F: Fn(&mut dyn UniformSource) -> f64,
{
    assert!(k >= 2, "need at least two strata");
    assert!(per_stratum >= 2, "need at least two draws per stratum");

    let mut strata = Vec::with_capacity(k);
    for j in 0..k {
        let mut acc = ScalarAccumulator::new();
        for _ in 0..per_stratum {
            let mut source = StratumSource {
                inner: rng,
                stratum: j,
                strata: k,
                first: true,
            };
            acc.add(f(&mut source));
        }
        strata.push(acc);
    }
    let mean = strata.iter().map(ScalarAccumulator::mean).sum::<f64>() / k as f64;
    let var_of_mean: f64 = strata
        .iter()
        .map(|acc| acc.variance() / (k as f64 * k as f64 * per_stratum as f64))
        .sum();
    StratifiedEstimate {
        mean,
        std_error: var_of_mean.sqrt(),
        strata,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::antithetic::plain_estimate;
    use parmonc_rng::Lcg128;

    fn exp_u(rng: &mut dyn UniformSource) -> f64 {
        rng.next_f64().exp()
    }

    #[test]
    fn unbiased_against_closed_form() {
        let est = stratified_estimate(&mut Lcg128::new(), 16, 5_000, exp_u);
        let truth = std::f64::consts::E - 1.0;
        assert!(
            (est.mean - truth).abs() <= est.abs_error() + 1e-3,
            "{} ± {}",
            est.mean,
            est.abs_error()
        );
    }

    #[test]
    fn variance_far_below_plain_for_smooth_f() {
        let n = 80_000;
        let strat = stratified_estimate(&mut Lcg128::new(), 16, n / 16, exp_u);
        let plain = plain_estimate(&mut Lcg128::new(), n, exp_u);
        let se_plain = plain.abs_error() / 3.0;
        // With 16 strata the within-stratum variance of e^U shrinks by
        // ~k² for smooth integrands.
        assert!(
            strat.std_error < 0.2 * se_plain,
            "stratified SE {} vs plain {}",
            strat.std_error,
            se_plain
        );
    }

    #[test]
    fn stratum_means_are_ordered_for_monotone_f() {
        let est = stratified_estimate(&mut Lcg128::new(), 8, 2_000, exp_u);
        for w in est.strata.windows(2) {
            assert!(w[0].mean() < w[1].mean(), "e^U is increasing");
        }
    }

    #[test]
    fn only_first_draw_is_stratified() {
        // f uses two draws; the second must remain full-range even in
        // stratum 0.
        let f = |rng: &mut dyn UniformSource| {
            let _first = rng.next_f64();
            rng.next_f64()
        };
        let est = stratified_estimate(&mut Lcg128::new(), 4, 5_000, f);
        // Mean of the *second* draw is 1/2 in every stratum.
        for acc in &est.strata {
            assert!((acc.mean() - 0.5).abs() < 0.02, "{}", acc.mean());
        }
    }

    #[test]
    fn indicator_of_stratum_boundary_is_exact() {
        // f = 1{u < 0.25} with 4 strata: stratum 0 contributes all the
        // mass, exactly; the estimator has zero variance.
        let f = |rng: &mut dyn UniformSource| f64::from(rng.next_f64() < 0.25);
        let est = stratified_estimate(&mut Lcg128::new(), 4, 100, f);
        assert!((est.mean - 0.25).abs() < 1e-12);
        assert_eq!(est.std_error, 0.0);
    }

    #[test]
    #[should_panic(expected = "two strata")]
    fn rejects_single_stratum() {
        let _ = stratified_estimate(&mut Lcg128::new(), 1, 10, exp_u);
    }
}
