//! Control variates.
//!
//! To estimate `E[f]` with a *control* `g` whose expectation `μ_g` is
//! known, use `f − β(g − μ_g)`; the variance-optimal coefficient is
//! `β* = Cov(f, g) / Var g`, estimated here from a pilot sample (kept
//! separate from the main sample so the estimator stays unbiased).

use parmonc_rng::UniformSource;
use parmonc_stats::ScalarAccumulator;

/// Result of a control-variate estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlVariateEstimate {
    /// The adjusted accumulator (over `f − β(g − μ_g)`).
    pub adjusted: ScalarAccumulator,
    /// The β coefficient estimated from the pilot sample.
    pub beta: f64,
    /// Pilot-sample correlation between `f` and `g` (diagnostic: the
    /// variance reduction factor is `1 − ρ²`).
    pub pilot_correlation: f64,
}

/// Estimates `E[f]` with control `g` (known mean `g_mean`), using
/// `pilot` draws to fit β and `main` draws for the estimate.
///
/// The closure returns `(f, g)` evaluated on the *same* underlying
/// randomness — that coupling is where the variance reduction comes
/// from.
///
/// # Panics
///
/// Panics if `pilot < 2` or `main == 0`.
pub fn control_variate_estimate<S, F>(
    rng: &mut S,
    pilot: usize,
    main: usize,
    g_mean: f64,
    fg: F,
) -> ControlVariateEstimate
where
    S: UniformSource,
    F: Fn(&mut dyn UniformSource) -> (f64, f64),
{
    assert!(pilot >= 2, "pilot sample needs at least 2 draws");
    assert!(main > 0, "main sample must be non-empty");

    // Pilot: moments of (f, g).
    let mut sf = 0.0;
    let mut sg = 0.0;
    let mut sff = 0.0;
    let mut sgg = 0.0;
    let mut sfg = 0.0;
    for _ in 0..pilot {
        let (f, g) = fg(rng);
        sf += f;
        sg += g;
        sff += f * f;
        sgg += g * g;
        sfg += f * g;
    }
    let n = pilot as f64;
    let cov = sfg / n - (sf / n) * (sg / n);
    let var_g = (sgg / n - (sg / n).powi(2)).max(0.0);
    let var_f = (sff / n - (sf / n).powi(2)).max(0.0);
    let beta = if var_g > 0.0 { cov / var_g } else { 0.0 };
    let pilot_correlation = if var_f > 0.0 && var_g > 0.0 {
        cov / (var_f * var_g).sqrt()
    } else {
        0.0
    };

    // Main: adjusted samples.
    let mut adjusted = ScalarAccumulator::new();
    for _ in 0..main {
        let (f, g) = fg(rng);
        adjusted.add(f - beta * (g - g_mean));
    }
    ControlVariateEstimate {
        adjusted,
        beta,
        pilot_correlation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::antithetic::plain_estimate;
    use parmonc_rng::Lcg128;

    /// f = e^U with control g = U (E g = 1/2, correlation ≈ 0.99).
    fn exp_with_control(rng: &mut dyn UniformSource) -> (f64, f64) {
        let u = rng.next_f64();
        (u.exp(), u)
    }

    #[test]
    fn unbiased_against_closed_form() {
        let est =
            control_variate_estimate(&mut Lcg128::new(), 2_000, 100_000, 0.5, exp_with_control);
        let truth = std::f64::consts::E - 1.0;
        assert!(
            (est.adjusted.mean() - truth).abs() <= est.adjusted.abs_error() + 1e-3,
            "{} vs {truth}",
            est.adjusted.mean()
        );
    }

    #[test]
    fn beta_matches_theory() {
        // β* = Cov(e^U, U)/Var U = (E[U e^U] − E[e^U]/2)·12
        // E[U e^U] = 1 (integration by parts), E[e^U] = e−1.
        let est = control_variate_estimate(&mut Lcg128::new(), 200_000, 1, 0.5, exp_with_control);
        let beta_star = (1.0 - (std::f64::consts::E - 1.0) / 2.0) * 12.0;
        assert!(
            (est.beta - beta_star).abs() < 0.05,
            "{} vs {beta_star}",
            est.beta
        );
        assert!(est.pilot_correlation > 0.98);
    }

    #[test]
    fn variance_is_reduced_by_one_minus_rho_squared() {
        let n = 100_000;
        let cv = control_variate_estimate(&mut Lcg128::new(), 5_000, n, 0.5, exp_with_control);
        let plain = plain_estimate(&mut Lcg128::new(), n, |rng| rng.next_f64().exp());
        let reduction = cv.adjusted.variance() / plain.variance();
        // ρ ≈ 0.9916 → 1 − ρ² ≈ 0.0167.
        assert!(
            reduction < 0.05,
            "variance ratio {reduction} not strongly reduced"
        );
    }

    #[test]
    fn useless_control_is_harmless() {
        // g independent of f: β ≈ 0, estimate unchanged in expectation.
        let fg = |rng: &mut dyn UniformSource| {
            let f = rng.next_f64().exp();
            let g = rng.next_f64(); // independent draw
            (f, g)
        };
        let est = control_variate_estimate(&mut Lcg128::new(), 20_000, 50_000, 0.5, fg);
        assert!(est.beta.abs() < 0.05, "beta {}", est.beta);
        let truth = std::f64::consts::E - 1.0;
        assert!((est.adjusted.mean() - truth).abs() < 3.0 * est.adjusted.abs_error() + 1e-3);
    }

    #[test]
    #[should_panic(expected = "pilot sample")]
    fn rejects_tiny_pilot() {
        let _ = control_variate_estimate(&mut Lcg128::new(), 1, 10, 0.5, exp_with_control);
    }
}
