//! Variance-reduction toolkit for the PARMONC reproduction.
//!
//! The paper frames Monte Carlo cost as `C(ζ) = τ_ζ · Var ζ`
//! (Section 2.2) and attacks the `τ` factor with parallelism; this
//! crate attacks the other factor with the classic variance-reduction
//! techniques a production Monte Carlo library ships:
//!
//! * [`antithetic`] — antithetic variates: pair every realization with
//!   its mirror driven by `1 − α` for each base random number;
//! * [`control`] — control variates with the optimal coefficient
//!   estimated from a pilot sample;
//! * [`stratified`] — stratified sampling of the leading base random
//!   number with proportional allocation;
//! * [`importance`] — importance sampling by exponential tilting for
//!   normal tail events.
//!
//! Every estimator returns a [`parmonc_stats::ScalarAccumulator`]-style
//! summary so error bars come out of the same machinery as the rest of
//! the library, and every technique's test suite asserts both
//! *unbiasedness* (agreement with a closed form within 3σ) and an
//! *actual variance reduction* against the plain estimator.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod antithetic;
pub mod control;
pub mod importance;
pub mod stratified;

pub use antithetic::{antithetic_estimate, MirrorSource};
pub use control::control_variate_estimate;
pub use importance::normal_tail_probability;
pub use stratified::stratified_estimate;
