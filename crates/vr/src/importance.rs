//! Importance sampling by exponential tilting, demonstrated on normal
//! tail probabilities — the canonical rare-event setting where plain
//! Monte Carlo needs `1/P` samples per hit.
//!
//! To estimate `P(Z > a)` for `Z ~ N(0, 1)`, sample from the tilted
//! density `N(a, 1)` and weight by the likelihood ratio
//! `φ(z)/φ_a(z) = exp(a²/2 − a·z)`; the weighted indicator is unbiased
//! and its relative variance stays bounded as `a` grows.

use parmonc_rng::distributions::standard_normal;
use parmonc_rng::UniformSource;
use parmonc_stats::ScalarAccumulator;

/// Estimates `P(Z > a)` by exponential tilting with `n` samples.
///
/// # Panics
///
/// Panics unless `n ≥ 2`.
pub fn normal_tail_probability<S>(rng: &mut S, a: f64, n: usize) -> ScalarAccumulator
where
    S: UniformSource + ?Sized,
{
    assert!(n >= 2, "need at least two samples");
    let mut acc = ScalarAccumulator::new();
    for _ in 0..n {
        let z = a + standard_normal(rng); // sample from N(a, 1)
        let weight = (0.5 * a * a - a * z).exp();
        acc.add(if z > a { weight } else { 0.0 });
    }
    acc
}

/// Plain-Monte-Carlo tail estimate (for the comparison tests).
pub fn normal_tail_plain<S>(rng: &mut S, a: f64, n: usize) -> ScalarAccumulator
where
    S: UniformSource + ?Sized,
{
    let mut acc = ScalarAccumulator::new();
    for _ in 0..n {
        acc.add(f64::from(standard_normal(rng) > a));
    }
    acc
}

/// Reference value of `P(Z > a)` via the complementary error function
/// (Abramowitz–Stegun rational approximation; relative accuracy is
/// ample down to the probabilities these tests touch).
#[must_use]
pub fn normal_tail_exact(a: f64) -> f64 {
    0.5 * erfc(a / core::f64::consts::SQRT_2)
}

fn erfc(x: f64) -> f64 {
    // A&S 7.1.26 on erf, complemented; for the moderate x used here
    // cancellation is not a concern.
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let ax = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * ax);
    let poly = (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736)
        * t
        + 0.254_829_592)
        * t;
    let erf_abs = 1.0 - poly * (-ax * ax).exp();
    if sign > 0.0 {
        poly * (-ax * ax).exp()
    } else {
        1.0 + erf_abs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parmonc_rng::Lcg128;

    #[test]
    fn exact_reference_values() {
        assert!((normal_tail_exact(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_tail_exact(1.96) - 0.025).abs() < 1e-4);
        assert!((normal_tail_exact(4.0) - 3.167e-5).abs() < 1e-7);
    }

    #[test]
    fn tilted_estimator_is_unbiased_at_moderate_a() {
        let mut rng = Lcg128::new();
        for a in [1.0, 2.0, 3.0] {
            let acc = normal_tail_probability(&mut rng, a, 200_000);
            let exact = normal_tail_exact(a);
            assert!(
                (acc.mean() - exact).abs() <= acc.abs_error() + 1e-7,
                "a={a}: {} ± {} vs {exact}",
                acc.mean(),
                acc.abs_error()
            );
        }
    }

    #[test]
    fn rare_event_estimated_where_plain_mc_sees_nothing() {
        // P(Z > 5) ≈ 2.87e-7: plain MC with 10^5 samples almost surely
        // records zero hits; tilting nails it with the same budget.
        let mut rng = Lcg128::new();
        let a = 5.0;
        let plain = normal_tail_plain(&mut rng, a, 100_000);
        assert_eq!(plain.mean(), 0.0, "plain MC must miss the event");

        let tilted = normal_tail_probability(&mut rng, a, 100_000);
        let exact = normal_tail_exact(a);
        assert!(
            (tilted.mean() - exact).abs() < 0.1 * exact,
            "{} vs {exact}",
            tilted.mean()
        );
    }

    #[test]
    fn relative_error_stays_bounded_as_a_grows() {
        let mut rng = Lcg128::new();
        let mut previous_rel = f64::INFINITY;
        for a in [2.0f64, 3.0, 4.0] {
            let acc = normal_tail_probability(&mut rng, a, 200_000);
            let rel = acc.abs_error() / acc.mean();
            // Tilted relative error degrades only mildly with a —
            // nothing like the exp(a²/2)-ish blow-up of plain MC.
            assert!(rel < 0.05, "a={a}: rel err {rel}");
            // and does not explode between consecutive a.
            assert!(rel < 10.0 * previous_rel);
            previous_rel = rel;
        }
    }

    #[test]
    fn variance_advantage_over_plain_at_a2() {
        // At a = 2 both estimators work; compare standard errors at
        // equal n.
        let n = 200_000;
        let plain = normal_tail_plain(&mut Lcg128::new(), 2.0, n);
        let tilted = normal_tail_probability(&mut Lcg128::new(), 2.0, n);
        assert!(
            tilted.abs_error() < 0.5 * plain.abs_error(),
            "tilted {} vs plain {}",
            tilted.abs_error(),
            plain.abs_error()
        );
    }

    #[test]
    #[should_panic(expected = "two samples")]
    fn rejects_tiny_sample() {
        let _ = normal_tail_probability(&mut Lcg128::new(), 1.0, 1);
    }
}
