//! Estimator costs (DESIGN.md ablation #4): raw-sum accumulation vs
//! Welford, matrix add/merge at the paper's 1000×2 shape, and summary
//! extraction.

use parmonc_bench::harness::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use parmonc_rng::Lcg128;
use parmonc_stats::running::WelfordAccumulator;
use parmonc_stats::{MatrixAccumulator, ScalarAccumulator};

fn bench_scalar_accumulation(c: &mut Criterion) {
    let mut rng = Lcg128::new();
    let data: Vec<f64> = (0..10_000).map(|_| rng.next_f64()).collect();

    let mut group = c.benchmark_group("scalar_add");
    group.throughput(Throughput::Elements(data.len() as u64));
    group.bench_function("raw_sums", |b| {
        b.iter(|| {
            let mut acc = ScalarAccumulator::new();
            for &x in &data {
                acc.add(x);
            }
            black_box(acc.mean())
        })
    });
    group.bench_function("welford", |b| {
        b.iter(|| {
            let mut acc = WelfordAccumulator::new();
            for &x in &data {
                acc.add(x);
            }
            black_box(acc.mean())
        })
    });
    group.finish();
}

fn bench_matrix_paper_shape(c: &mut Criterion) {
    // The performance test's realization: a 1000×2 matrix.
    let mut rng = Lcg128::new();
    let realization: Vec<f64> = (0..2000).map(|_| rng.next_f64()).collect();

    let mut group = c.benchmark_group("matrix_1000x2");
    group.bench_function("add_realization", |b| {
        let mut acc = MatrixAccumulator::new(1000, 2).unwrap();
        b.iter(|| acc.add(black_box(&realization)).unwrap())
    });
    group.bench_function("merge", |b| {
        let mut left = MatrixAccumulator::new(1000, 2).unwrap();
        left.add(&realization).unwrap();
        let mut right = MatrixAccumulator::new(1000, 2).unwrap();
        right.add(&realization).unwrap();
        b.iter(|| {
            let mut l = left.clone();
            l.merge(black_box(&right)).unwrap();
            black_box(l.count())
        })
    });
    group.bench_function("summary", |b| {
        let mut acc = MatrixAccumulator::new(1000, 2).unwrap();
        for _ in 0..100 {
            acc.add(&realization).unwrap();
        }
        b.iter(|| black_box(acc.summary().eps_max))
    });
    group.finish();
}

criterion_group!(benches, bench_scalar_accumulation, bench_matrix_paper_shape);
criterion_main!(benches);
