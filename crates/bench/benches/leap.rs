//! Jump-ahead costs (DESIGN.md ablation #2): binary-exponentiation
//! leaps vs sequential stepping, and full stream-creation cost.

use parmonc_bench::harness::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use parmonc_rng::{Lcg128, StreamHierarchy, StreamId};

fn bench_jump_vs_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("advance_n_steps");
    for exp in [8u32, 16, 20] {
        let n = 1u128 << exp;
        group.bench_with_input(BenchmarkId::new("jump", exp), &n, |b, &n| {
            b.iter(|| {
                let mut rng = Lcg128::new();
                rng.jump(black_box(n));
                black_box(rng.state())
            })
        });
        group.bench_with_input(BenchmarkId::new("step", exp), &n, |b, &n| {
            b.iter(|| {
                let mut rng = Lcg128::new();
                for _ in 0..n {
                    rng.next_raw();
                }
                black_box(rng.state())
            })
        });
    }
    group.finish();
}

fn bench_jump_large_exponents(c: &mut Criterion) {
    // Leaps at the hierarchy's own scale — only reachable by
    // exponentiation.
    let mut group = c.benchmark_group("jump_large");
    for exp in [43u32, 98, 115] {
        group.bench_with_input(BenchmarkId::from_parameter(exp), &exp, |b, &exp| {
            b.iter(|| {
                let mut rng = Lcg128::new();
                rng.jump(black_box(1u128 << exp));
                black_box(rng.state())
            })
        });
    }
    group.finish();
}

fn bench_stream_creation(c: &mut Criterion) {
    let hierarchy = StreamHierarchy::default();
    c.bench_function("realization_stream_creation", |b| {
        let mut r = 0u64;
        b.iter(|| {
            r = (r + 1) % (1 << 20);
            black_box(
                hierarchy
                    .realization_stream(StreamId::new(1, 3, r))
                    .expect("within capacity"),
            )
        })
    });
}

criterion_group!(
    benches,
    bench_jump_vs_step,
    bench_jump_large_exponents,
    bench_stream_creation
);
criterion_main!(benches);
