//! RNG throughput: the PARMONC 128-bit generator (native `u128` and
//! paper-faithful 64-bit-limb paths — DESIGN.md ablation #1) against
//! the 40-bit LCG the paper cites, xorshift64* and splitmix64.

use parmonc_bench::harness::{
    black_box, criterion_group, criterion_main, median_of, record_metric, Criterion, Throughput,
};
use parmonc_rng::baseline::{Lcg40, SplitMix64, XorShift64Star};
use parmonc_rng::limbs::{limb_step, U128Limbs};
use parmonc_rng::{Lcg128, StreamHierarchy, StreamId, UniformSource, DEFAULT_MULTIPLIER};

const BATCH: u64 = 10_000;

/// Streams positioned per iteration of the stream-setup benches.
const STREAMS: u64 = 1_000;

fn bench_f64_sources(c: &mut Criterion) {
    let mut group = c.benchmark_group("next_f64");
    group.throughput(Throughput::Elements(BATCH));

    group.bench_function("lcg128_u128", |b| {
        let mut rng = Lcg128::new();
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..BATCH {
                acc += rng.next_f64();
            }
            black_box(acc)
        })
    });

    group.bench_function("lcg128_limbs", |b| {
        // The paper's 64-bit-arithmetic implementation strategy.
        let a = U128Limbs::from_u128(DEFAULT_MULTIPLIER);
        let mut u = U128Limbs::from_u128(1);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..BATCH {
                u = limb_step(u, a);
                acc += ((u.to_u128() >> 75) as u64 as f64 + 0.5) / (1u64 << 53) as f64;
            }
            black_box(acc)
        })
    });

    group.bench_function("lcg40_paper_baseline", |b| {
        let mut rng = Lcg40::new();
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..BATCH {
                acc += rng.next_f64();
            }
            black_box(acc)
        })
    });

    group.bench_function("xorshift64star", |b| {
        let mut rng = XorShift64Star::new(0xDEAD_BEEF);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..BATCH {
                acc += rng.next_f64();
            }
            black_box(acc)
        })
    });

    group.bench_function("splitmix64", |b| {
        let mut rng = SplitMix64::new(42);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..BATCH {
                acc += rng.next_f64();
            }
            black_box(acc)
        })
    });

    group.finish();
}

/// The hot-path batched draw against the scalar loop it replaces —
/// same generator, bitwise-identical output. The 2-lane fill keeps the
/// multiply pipeline busy by construction; the scalar slice loop relies
/// on LLVM reassociating the wrapping-mul recurrence to get the same
/// effect, so the measured ratio hovers near 1 (see
/// docs/performance.md) — the metric guards against either path
/// regressing badly relative to the other.
fn bench_batched_fill(c: &mut Criterion) {
    let mut group = c.benchmark_group("fill_f64");
    group.throughput(Throughput::Elements(BATCH));

    group.bench_function("scalar_loop", |b| {
        let mut rng = Lcg128::new();
        let mut buf = vec![0.0f64; BATCH as usize];
        b.iter(|| {
            for d in buf.iter_mut() {
                *d = rng.next_f64();
            }
            black_box(buf[buf.len() - 1])
        })
    });

    group.bench_function("batched", |b| {
        let mut rng = Lcg128::new();
        let mut buf = vec![0.0f64; BATCH as usize];
        b.iter(|| {
            rng.fill_f64(&mut buf);
            black_box(buf[buf.len() - 1])
        })
    });

    group.finish();
    if let (Some(scalar), Some(batched)) = (
        median_of("fill_f64/scalar_loop"),
        median_of("fill_f64/batched"),
    ) {
        record_metric("ratio_fill_f64_speedup", scalar / batched);
        record_metric("draws_per_s_fill_f64", BATCH as f64 / batched);
    }
}

/// Positioning the next realization stream: a fresh three-modpow
/// `realization_stream` per realization against the incremental
/// `StreamCursor` (one 128-bit multiply per advance).
fn bench_stream_setup(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_setup");
    group.throughput(Throughput::Elements(STREAMS));

    group.bench_function("modpow_per_realization", |b| {
        let h = StreamHierarchy::default();
        let mut r = 0u64;
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..STREAMS {
                let mut s = h
                    .realization_stream(StreamId::new(1, 0, r))
                    .expect("within capacity");
                acc += s.next_f64();
                r += 1;
            }
            black_box(acc)
        })
    });

    group.bench_function("cursor_incremental", |b| {
        let h = StreamHierarchy::default();
        let mut cursor = h.cursor(StreamId::new(1, 0, 0)).expect("within capacity");
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..STREAMS {
                let mut s = cursor.next_stream().expect("within capacity");
                acc += s.next_f64();
            }
            black_box(acc)
        })
    });

    group.finish();
    if let (Some(modpow), Some(cursor)) = (
        median_of("stream_setup/modpow_per_realization"),
        median_of("stream_setup/cursor_incremental"),
    ) {
        record_metric("ratio_cursor_stream_speedup", modpow / cursor);
    }
}

fn bench_normal_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("normal_pair");
    group.throughput(Throughput::Elements(BATCH));
    group.bench_function("box_muller_pair", |b| {
        let mut rng = Lcg128::new();
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..BATCH / 2 {
                let (z1, z2) = parmonc_rng::distributions::standard_normal_pair(&mut rng);
                acc += z1 + z2;
            }
            black_box(acc)
        })
    });
    group.bench_function("polar", |b| {
        let mut rng = Lcg128::new();
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..BATCH {
                acc += parmonc_rng::distributions::standard_normal_polar(&mut rng);
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_f64_sources,
    bench_batched_fill,
    bench_stream_setup,
    bench_normal_sampling
);
criterion_main!(benches);
