//! RNG throughput: the PARMONC 128-bit generator (native `u128` and
//! paper-faithful 64-bit-limb paths — DESIGN.md ablation #1) against
//! the 40-bit LCG the paper cites, xorshift64* and splitmix64.

use parmonc_bench::harness::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use parmonc_rng::baseline::{Lcg40, SplitMix64, XorShift64Star};
use parmonc_rng::limbs::{limb_step, U128Limbs};
use parmonc_rng::{Lcg128, UniformSource, DEFAULT_MULTIPLIER};

const BATCH: u64 = 10_000;

fn bench_f64_sources(c: &mut Criterion) {
    let mut group = c.benchmark_group("next_f64");
    group.throughput(Throughput::Elements(BATCH));

    group.bench_function("lcg128_u128", |b| {
        let mut rng = Lcg128::new();
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..BATCH {
                acc += rng.next_f64();
            }
            black_box(acc)
        })
    });

    group.bench_function("lcg128_limbs", |b| {
        // The paper's 64-bit-arithmetic implementation strategy.
        let a = U128Limbs::from_u128(DEFAULT_MULTIPLIER);
        let mut u = U128Limbs::from_u128(1);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..BATCH {
                u = limb_step(u, a);
                acc += ((u.to_u128() >> 75) as u64 as f64 + 0.5) / (1u64 << 53) as f64;
            }
            black_box(acc)
        })
    });

    group.bench_function("lcg40_paper_baseline", |b| {
        let mut rng = Lcg40::new();
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..BATCH {
                acc += rng.next_f64();
            }
            black_box(acc)
        })
    });

    group.bench_function("xorshift64star", |b| {
        let mut rng = XorShift64Star::new(0xDEAD_BEEF);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..BATCH {
                acc += rng.next_f64();
            }
            black_box(acc)
        })
    });

    group.bench_function("splitmix64", |b| {
        let mut rng = SplitMix64::new(42);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..BATCH {
                acc += rng.next_f64();
            }
            black_box(acc)
        })
    });

    group.finish();
}

fn bench_normal_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("normal_pair");
    group.throughput(Throughput::Elements(BATCH));
    group.bench_function("box_muller_pair", |b| {
        let mut rng = Lcg128::new();
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..BATCH / 2 {
                let (z1, z2) = parmonc_rng::distributions::standard_normal_pair(&mut rng);
                acc += z1 + z2;
            }
            black_box(acc)
        })
    });
    group.bench_function("polar", |b| {
        let mut rng = Lcg128::new();
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..BATCH {
                acc += parmonc_rng::distributions::standard_normal_polar(&mut rng);
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_f64_sources, bench_normal_sampling);
criterion_main!(benches);
