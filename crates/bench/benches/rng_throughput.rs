//! RNG throughput: the PARMONC 128-bit generator (native `u128` and
//! paper-faithful 64-bit-limb paths — DESIGN.md ablation #1) against
//! the 40-bit LCG the paper cites, xorshift64* and splitmix64.

use parmonc_bench::harness::{
    black_box, criterion_group, criterion_main, median_of, record_metric, Criterion, Throughput,
};
use parmonc_rng::baseline::{Lcg40, SplitMix64, XorShift64Star};
use parmonc_rng::limbs::{limb_step, U128Limbs};
use parmonc_rng::{Lcg128, StreamHierarchy, StreamId, UniformSource, DEFAULT_MULTIPLIER};

const BATCH: u64 = 10_000;

/// Streams positioned per iteration of the stream-setup benches.
const STREAMS: u64 = 1_000;

fn bench_f64_sources(c: &mut Criterion) {
    let mut group = c.benchmark_group("next_f64");
    group.throughput(Throughput::Elements(BATCH));

    group.bench_function("lcg128_u128", |b| {
        let mut rng = Lcg128::new();
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..BATCH {
                acc += rng.next_f64();
            }
            black_box(acc)
        })
    });

    group.bench_function("lcg128_limbs", |b| {
        // The paper's 64-bit-arithmetic implementation strategy. The
        // top 53 bits come straight from the high limb (`high53`), not
        // from reassembling the u128 and shifting across the limb
        // boundary — that reassembly was pure measurement overhead.
        let a = U128Limbs::from_u128(DEFAULT_MULTIPLIER);
        let mut u = U128Limbs::from_u128(1);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..BATCH {
                u = limb_step(u, a);
                acc += (u.high53() as f64 + 0.5) / (1u64 << 53) as f64;
            }
            black_box(acc)
        })
    });

    group.bench_function("lcg40_paper_baseline", |b| {
        let mut rng = Lcg40::new();
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..BATCH {
                acc += rng.next_f64();
            }
            black_box(acc)
        })
    });

    group.bench_function("xorshift64star", |b| {
        let mut rng = XorShift64Star::new(0xDEAD_BEEF);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..BATCH {
                acc += rng.next_f64();
            }
            black_box(acc)
        })
    });

    group.bench_function("splitmix64", |b| {
        let mut rng = SplitMix64::new(42);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..BATCH {
                acc += rng.next_f64();
            }
            black_box(acc)
        })
    });

    group.finish();
}

/// The hot-path batched draw against the scalar loop it replaces —
/// same generator, bitwise-identical output. `fill_f64` drains the
/// 8-lane portable engine (multiplier-port throughput) and, with the
/// `simd` feature on an AVX-512 IFMA CPU, a 16-lane 52-bit-limb kernel
/// that beats even that bound. The `ratio_fill_f64_speedup` gate is
/// recorded only when the SIMD kernel is live — the portable engine
/// lands at scalar-loop parity by design (LLVM reassociates the scalar
/// recurrence into the same pipelined shape; see docs/performance.md),
/// so a >2 gate would be dishonest there.
fn bench_batched_fill(c: &mut Criterion) {
    let mut group = c.benchmark_group("fill_f64");
    group.throughput(Throughput::Elements(BATCH));

    group.bench_function("scalar_loop", |b| {
        let mut rng = Lcg128::new();
        let mut buf = vec![0.0f64; BATCH as usize];
        b.iter(|| {
            for d in buf.iter_mut() {
                *d = rng.next_f64();
            }
            black_box(buf[buf.len() - 1])
        })
    });

    group.bench_function("batched", |b| {
        let mut rng = Lcg128::new();
        let mut buf = vec![0.0f64; BATCH as usize];
        b.iter(|| {
            rng.fill_f64(&mut buf);
            black_box(buf[buf.len() - 1])
        })
    });

    group.bench_function("lanes8_portable", |b| {
        // The portable engine in isolation (informational: what
        // `fill_f64` falls back to without AVX-512 IFMA).
        let mut lanes = parmonc_rng::LaneLcg128x8::from_generator(&Lcg128::new());
        let mut buf = vec![0.0f64; BATCH as usize];
        b.iter(|| {
            lanes.fill_f64(&mut buf);
            black_box(buf[buf.len() - 1])
        })
    });

    group.finish();
    if let (Some(scalar), Some(batched)) = (
        median_of("fill_f64/scalar_loop"),
        median_of("fill_f64/batched"),
    ) {
        if parmonc_rng::simd_fill_active() {
            record_metric("ratio_fill_f64_speedup", scalar / batched);
        }
        record_metric("draws_per_s_fill_f64", BATCH as f64 / batched);
    }
}

/// Stream addressing by jump: the precomputed-table walk
/// (`stream_state`) against the three naive binary exponentiations it
/// replaced. Scattered addresses across all three hierarchy levels so
/// the exponents exercise realistic byte patterns.
fn bench_stream_jump(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_jump");
    // Fewer addresses than the other groups: one modpow pass over the
    // whole set must fit a reduced-iteration (PARMONC_BENCH_FAST)
    // sample window several times over, or the smoke-run ratio gets
    // noisy.
    const JUMPS: u64 = 250;
    group.throughput(Throughput::Elements(JUMPS));

    let h = StreamHierarchy::default();
    let (le, lp, lr) = h.leap_multipliers();
    // Realization indices span the level's full 2^55 capacity: the
    // paper's operating regime is billions-and-up of realizations, and
    // the modpow cost grows with the index's bit length while the table
    // walk only adds bytes.
    let ids: Vec<StreamId> = (0..JUMPS)
        .map(|k| {
            StreamId::new(
                (k * 7919) % (1 << 10),
                (k * 104_729) % (1 << 17),
                (k.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % (1 << 55),
            )
        })
        .collect();

    group.bench_function("modpow", |b| {
        // The pre-table implementation: one modpow per level per id.
        b.iter(|| {
            let mut acc = 0u128;
            for id in &ids {
                let e = parmonc_rng::multiplier::modpow(le, u128::from(id.experiment));
                let p = parmonc_rng::multiplier::modpow(lp, u128::from(id.processor));
                let r = parmonc_rng::multiplier::modpow(lr, u128::from(id.realization));
                acc ^= e.wrapping_mul(p).wrapping_mul(r);
            }
            black_box(acc)
        })
    });

    group.bench_function("table_lookup", |b| {
        b.iter(|| {
            let mut acc = 0u128;
            for id in &ids {
                acc ^= h.stream_state(*id).expect("within capacity");
            }
            black_box(acc)
        })
    });

    group.finish();
    if let (Some(modpow), Some(table)) = (
        median_of("stream_jump/modpow"),
        median_of("stream_jump/table_lookup"),
    ) {
        record_metric("ratio_stream_jump_speedup", modpow / table);
    }
}

/// Positioning the next realization stream: a fresh from-scratch
/// `realization_stream` (jump-table walk) per realization against the
/// incremental `StreamCursor` (one 128-bit multiply per advance).
fn bench_stream_setup(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_setup");
    group.throughput(Throughput::Elements(STREAMS));

    group.bench_function("from_scratch_per_realization", |b| {
        let h = StreamHierarchy::default();
        let mut r = 0u64;
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..STREAMS {
                let mut s = h
                    .realization_stream(StreamId::new(1, 0, r))
                    .expect("within capacity");
                acc += s.next_f64();
                r += 1;
            }
            black_box(acc)
        })
    });

    group.bench_function("cursor_incremental", |b| {
        let h = StreamHierarchy::default();
        let mut cursor = h.cursor(StreamId::new(1, 0, 0)).expect("within capacity");
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..STREAMS {
                let mut s = cursor.next_stream().expect("within capacity");
                acc += s.next_f64();
            }
            black_box(acc)
        })
    });

    group.finish();
    if let (Some(scratch), Some(cursor)) = (
        median_of("stream_setup/from_scratch_per_realization"),
        median_of("stream_setup/cursor_incremental"),
    ) {
        record_metric("ratio_cursor_stream_speedup", scratch / cursor);
    }
}

fn bench_normal_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("normal_pair");
    group.throughput(Throughput::Elements(BATCH));
    group.bench_function("box_muller_pair", |b| {
        let mut rng = Lcg128::new();
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..BATCH / 2 {
                let (z1, z2) = parmonc_rng::distributions::standard_normal_pair(&mut rng);
                acc += z1 + z2;
            }
            black_box(acc)
        })
    });
    group.bench_function("polar", |b| {
        let mut rng = Lcg128::new();
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..BATCH {
                acc += parmonc_rng::distributions::standard_normal_polar(&mut rng);
            }
            black_box(acc)
        })
    });
    group.bench_function("batched_fill", |b| {
        // Box–Muller over the batched uniform fill — bitwise identical
        // to box_muller_pair, uniforms drawn through the lane engine.
        let mut rng = Lcg128::new();
        let mut buf = vec![0.0f64; BATCH as usize];
        b.iter(|| {
            parmonc_rng::distributions::fill_standard_normal(&mut rng, &mut buf);
            black_box(buf[buf.len() - 1])
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_f64_sources,
    bench_batched_fill,
    bench_stream_setup,
    bench_stream_jump,
    bench_normal_sampling
);
criterion_main!(benches);
