//! Figure 2 as a Criterion target: each panel's full sweep on the
//! discrete-event model, so `cargo bench` regenerates every figure of
//! the paper's evaluation. The `T_comp` values themselves are printed
//! by the `fig2_sim` binary; here Criterion tracks the cost of the
//! regeneration itself and pins the shape assertion.

use parmonc_bench::harness::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use parmonc_simcluster::figure2::{panel_series, Panel};
use parmonc_simcluster::{simulate, ClusterConfig};

fn bench_panels(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure2_panel");
    for panel in Panel::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(panel.letter()),
            &panel,
            |b, &panel| {
                b.iter(|| {
                    let series = panel_series(black_box(panel));
                    // Shape assertion: every curve pair scales by its
                    // processor ratio within 7% (the paper's "direct
                    // proportion" claim).
                    for w in series.windows(2) {
                        let ratio_m = w[1].processors as f64 / w[0].processors as f64;
                        for (i, &(_, t_small)) in w[0].points.iter().enumerate() {
                            let ratio_t = t_small / w[1].points[i].1;
                            assert!(
                                (ratio_t - ratio_m).abs() < 0.07 * ratio_m,
                                "panel {} deviates from linear speedup",
                                panel.letter()
                            );
                        }
                    }
                    black_box(series)
                })
            },
        );
    }
    group.finish();
}

fn bench_single_point(c: &mut Criterion) {
    // The heaviest single configuration: M = 512, L = 75 000.
    c.bench_function("simulate_m512_l75000", |b| {
        let config = ClusterConfig::paper_testbed(512);
        b.iter(|| black_box(simulate(&config, 75_000).t_comp))
    });
}

criterion_group!(benches, bench_panels, bench_single_point);
criterion_main!(benches);
