//! Transport overhead: running the same workload with ranks as OS
//! processes over Unix-domain sockets (`Transport::Processes`), or as
//! remote workers over loopback TCP (`Transport::Tcp`), must stay
//! within a bounded wall-time overhead of the thread backend. The
//! measured overheads are recorded as
//! `bound_process_transport_overhead_pct` and
//! `bound_tcp_transport_overhead_pct` so `hotpath_compare` gates them
//! against the committed ceilings in `BENCH_hotpath.json`.
//!
//! # Re-execution discipline
//!
//! The process backend re-executes *this bench binary* once per worker,
//! so the very first `run()` call reached by the binary must be a
//! process-backend run with exactly the configuration every process
//! arm uses: a re-executed worker diverts into the worker loop inside
//! that first call and never reaches the thread arms. For the same
//! reason the process arm's output directory is deterministic (no PID
//! suffix) and only the parent wipes it.

use std::io::Write;
use std::path::Path;
use std::time::Instant;

use parmonc::ipc::FaultyStream;
use parmonc::prelude::{Exchange, NetOptions, Parmonc, RealizeFn, Transport};
use parmonc_bench::harness::{
    black_box, criterion_group, criterion_main, fast_mode, record_metric, Criterion,
};
use parmonc_bench::ScaledDiffusion;
use parmonc_faults::FaultHandle;

/// One full run of the laptop-scale diffusion workload on the given
/// transport; returns wall seconds (setup + spawn + ranks + final
/// save). Both arms share one configuration so their estimates — and
/// the work measured — are identical; only the substrate differs.
fn run_once(transport: Transport, dir: &Path) -> f64 {
    let workload = ScaledDiffusion::new(40);
    let scheme = workload.scheme().clone();
    let volume = if fast_mode() { 150 } else { 600 };
    if !parmonc::ipc::is_worker() {
        let _ = std::fs::remove_dir_all(dir);
    }
    let started = Instant::now();
    let report = Parmonc::builder(ScaledDiffusion::POINTS, 2)
        .max_sample_volume(volume)
        .processors(2)
        .exchange(Exchange::EveryRealization)
        .transport(transport)
        .output_dir(dir)
        .run(RealizeFn::new(move |rng, out| {
            scheme.realize_into(rng, out)
        }))
        .unwrap();
    let elapsed = started.elapsed().as_secs_f64();
    assert_eq!(report.new_volume, volume);
    let _ = std::fs::remove_dir_all(dir);
    elapsed
}

/// One full run over loopback TCP: a collector listening on an
/// ephemeral port plus one in-process worker thread dialing it — the
/// real wire conversation (handshake, framing, heartbeats), only the
/// remote host is simulated. Returns wall seconds including the
/// listener setup and the worker's address discovery.
fn run_once_tcp(dir: &Path, worker_dir: &Path) -> f64 {
    let workload = ScaledDiffusion::new(40);
    let volume = if fast_mode() { 150 } else { 600 };
    let _ = std::fs::remove_dir_all(dir);
    let _ = std::fs::remove_dir_all(worker_dir);
    let builder = |out: &Path| {
        let scheme = workload.scheme().clone();
        (
            Parmonc::builder(ScaledDiffusion::POINTS, 2)
                .max_sample_volume(volume)
                .processors(2)
                .exchange(Exchange::EveryRealization)
                .output_dir(out),
            RealizeFn::new(move |rng, out: &mut [f64]| scheme.realize_into(rng, out)),
        )
    };
    let started = Instant::now();
    let collector = {
        let (b, realize) = builder(dir);
        std::thread::spawn(move || {
            b.net(NetOptions::listen("127.0.0.1:0"))
                .run(realize)
                .unwrap()
        })
    };
    let addr_path = dir.join("parmonc_data").join("collector.addr");
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&addr_path) {
            let addr = text.trim().to_string();
            if !addr.is_empty() {
                break addr;
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    };
    let (b, realize) = builder(worker_dir);
    b.net(NetOptions::join(addr)).run_worker(realize).unwrap();
    let report = collector.join().unwrap();
    let elapsed = started.elapsed().as_secs_f64();
    assert_eq!(report.new_volume, volume);
    let _ = std::fs::remove_dir_all(dir);
    let _ = std::fs::remove_dir_all(worker_dir);
    elapsed
}

/// The fastest observed run — the noise-robust estimator for a
/// deterministic workload (noise only ever adds time).
fn minimum(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

fn bench_transport_overhead(_c: &mut Criterion) {
    // Deterministic: re-executed workers must rebuild this exact path.
    let proc_dir = std::env::temp_dir().join("parmonc-bench-transport-processes");
    let thread_dir = std::env::temp_dir().join(format!(
        "parmonc-bench-transport-threads-{}",
        std::process::id()
    ));
    let tcp_dir = std::env::temp_dir().join(format!(
        "parmonc-bench-transport-tcp-{}",
        std::process::id()
    ));
    let tcp_worker_dir = std::env::temp_dir().join(format!(
        "parmonc-bench-transport-tcp-worker-{}",
        std::process::id()
    ));

    // Warmup — and the mandatory first run() of the binary (see module
    // docs): workers spawned by *any* process run divert here.
    let _ = black_box(run_once(Transport::Processes, &proc_dir));

    // Interleaved triples, process arm first in each (a worker must
    // never reach a thread run), so slow machine-load drift hits every
    // arm equally.
    let samples: usize = if fast_mode() { 5 } else { 11 };
    let mut processes = Vec::with_capacity(samples);
    let mut tcp = Vec::with_capacity(samples);
    let mut threads = Vec::with_capacity(samples);
    for _ in 0..samples {
        processes.push(run_once(Transport::Processes, &proc_dir));
        tcp.push(run_once_tcp(&tcp_dir, &tcp_worker_dir));
        threads.push(run_once(Transport::Threads, &thread_dir));
    }
    let proc_min = minimum(&processes);
    let tcp_min = minimum(&tcp);
    let thread_min = minimum(&threads);
    let proc_overhead = (proc_min - thread_min) / thread_min;
    let tcp_overhead = (tcp_min - thread_min) / thread_min;
    println!(
        "transport_overhead: threads {thread_min:.4} s, processes {proc_min:.4} s \
         ({:.2}%), tcp {tcp_min:.4} s ({:.2}%)",
        proc_overhead * 100.0,
        tcp_overhead * 100.0
    );
    record_metric(
        "bound_process_transport_overhead_pct",
        proc_overhead * 100.0,
    );
    record_metric("bound_tcp_transport_overhead_pct", tcp_overhead * 100.0);

    // Net-fault-plane guard: every worker's outbound link rides a
    // [`FaultyStream`] even when nothing is scripted, and the disabled
    // wrapper must be one boolean check per write. Charge the *entire*
    // wrapped write (not just the delta over a bare write — strictly
    // conservative) twice per realization, and bound it against the
    // TCP arm's measured per-realization wall cost.
    let mut faulty = FaultyStream::new(std::io::sink(), 1, FaultHandle::disabled());
    let frame = [0u8; 148];
    let iters: u64 = if fast_mode() { 400_000 } else { 4_000_000 };
    let mut per_write = f64::INFINITY;
    for _ in 0..9 {
        let started = Instant::now();
        for _ in 0..iters {
            faulty.write_all(black_box(&frame)).unwrap();
        }
        per_write = per_write.min(started.elapsed().as_secs_f64() / iters as f64);
    }
    let volume = if fast_mode() { 150 } else { 600 };
    let net_overhead = 2.0 * per_write / (tcp_min / volume as f64);
    println!(
        "net_fault_plane: disabled wrapped write {:.2} ns, 2x-budget ratio {:.4}%",
        per_write * 1e9,
        net_overhead * 100.0
    );
    record_metric("bound_net_fault_plane_overhead_pct", net_overhead * 100.0);
}

criterion_group!(benches, bench_transport_overhead);
criterion_main!(benches);
