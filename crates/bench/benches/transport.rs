//! Process-transport overhead: running the same workload with ranks as
//! OS processes over Unix-domain sockets (`Transport::Processes`) must
//! stay within a bounded wall-time overhead of the thread backend.
//! The measured overhead is recorded as
//! `bound_process_transport_overhead_pct` so `hotpath_compare` gates it
//! against the committed ceiling in `BENCH_hotpath.json`.
//!
//! # Re-execution discipline
//!
//! The process backend re-executes *this bench binary* once per worker,
//! so the very first `run()` call reached by the binary must be a
//! process-backend run with exactly the configuration every process
//! arm uses: a re-executed worker diverts into the worker loop inside
//! that first call and never reaches the thread arms. For the same
//! reason the process arm's output directory is deterministic (no PID
//! suffix) and only the parent wipes it.

use std::path::Path;
use std::time::Instant;

use parmonc::prelude::{Exchange, Parmonc, RealizeFn, Transport};
use parmonc_bench::harness::{
    black_box, criterion_group, criterion_main, fast_mode, record_metric, Criterion,
};
use parmonc_bench::ScaledDiffusion;

/// One full run of the laptop-scale diffusion workload on the given
/// transport; returns wall seconds (setup + spawn + ranks + final
/// save). Both arms share one configuration so their estimates — and
/// the work measured — are identical; only the substrate differs.
fn run_once(transport: Transport, dir: &Path) -> f64 {
    let workload = ScaledDiffusion::new(40);
    let scheme = workload.scheme().clone();
    let volume = if fast_mode() { 150 } else { 600 };
    if !parmonc::ipc::is_worker() {
        let _ = std::fs::remove_dir_all(dir);
    }
    let started = Instant::now();
    let report = Parmonc::builder(ScaledDiffusion::POINTS, 2)
        .max_sample_volume(volume)
        .processors(2)
        .exchange(Exchange::EveryRealization)
        .transport(transport)
        .output_dir(dir)
        .run(RealizeFn::new(move |rng, out| {
            scheme.realize_into(rng, out)
        }))
        .unwrap();
    let elapsed = started.elapsed().as_secs_f64();
    assert_eq!(report.new_volume, volume);
    let _ = std::fs::remove_dir_all(dir);
    elapsed
}

/// The fastest observed run — the noise-robust estimator for a
/// deterministic workload (noise only ever adds time).
fn minimum(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

fn bench_transport_overhead(_c: &mut Criterion) {
    // Deterministic: re-executed workers must rebuild this exact path.
    let proc_dir = std::env::temp_dir().join("parmonc-bench-transport-processes");
    let thread_dir = std::env::temp_dir().join(format!(
        "parmonc-bench-transport-threads-{}",
        std::process::id()
    ));

    // Warmup — and the mandatory first run() of the binary (see module
    // docs): workers spawned by *any* process run divert here.
    let _ = black_box(run_once(Transport::Processes, &proc_dir));

    // Interleaved pairs, process arm first in each (a worker must never
    // reach a thread run), so slow machine-load drift hits both arms
    // equally.
    let samples: usize = if fast_mode() { 5 } else { 11 };
    let mut processes = Vec::with_capacity(samples);
    let mut threads = Vec::with_capacity(samples);
    for _ in 0..samples {
        processes.push(run_once(Transport::Processes, &proc_dir));
        threads.push(run_once(Transport::Threads, &thread_dir));
    }
    let proc_min = minimum(&processes);
    let thread_min = minimum(&threads);
    let overhead = (proc_min - thread_min) / thread_min;
    println!(
        "transport_overhead: threads {thread_min:.4} s, processes {proc_min:.4} s, \
         overhead {:.2}%",
        overhead * 100.0
    );
    record_metric("bound_process_transport_overhead_pct", overhead * 100.0);
}

criterion_group!(benches, bench_transport_overhead);
criterion_main!(benches);
