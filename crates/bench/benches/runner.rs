//! End-to-end runner overhead: a full PARMONC run (spawn ranks,
//! simulate, exchange, average, write files) per iteration, for cheap
//! and for matrix-valued realizations, in both exchange modes.
//!
//! The interesting number is the per-realization overhead the runtime
//! adds on top of the user routine — the quantity the paper's
//! Section 2.2 argues is negligible.

use parmonc::{Exchange, Parmonc, RealizeFn};
use parmonc_bench::harness::{
    black_box, criterion_group, criterion_main, median_of, record_metric, BenchmarkId, Criterion,
    Throughput,
};

fn bench_full_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_run");
    group.sample_size(10);

    for (mode, name) in [
        (Exchange::Periodic, "periodic"),
        (Exchange::EveryRealization, "strict"),
    ] {
        group.throughput(Throughput::Elements(2_000));
        group.bench_with_input(
            BenchmarkId::new("scalar_l2000_m2", name),
            &mode,
            |b, &mode| {
                let mut round = 0u32;
                b.iter(|| {
                    round += 1;
                    let dir = std::env::temp_dir().join(format!(
                        "parmonc-bench-run-{name}-{}-{round}",
                        std::process::id()
                    ));
                    let _ = std::fs::remove_dir_all(&dir);
                    let report = Parmonc::builder(1, 1)
                        .max_sample_volume(2_000)
                        .processors(2)
                        .exchange(mode)
                        .output_dir(&dir)
                        .run(RealizeFn::new(|rng, out| out[0] = rng.next_f64()))
                        .unwrap();
                    let _ = std::fs::remove_dir_all(&dir);
                    black_box(report.summary.means[0])
                })
            },
        );
    }

    // A 10x larger strict run: the difference against l2000 isolates
    // the *marginal* per-realization cost from the fixed per-run cost
    // (directory setup and the fsync-backed result writes), which the
    // small run is dominated by.
    group.throughput(Throughput::Elements(20_000));
    group.bench_function("scalar_l20000_m2_strict", |b| {
        let mut round = 0u32;
        b.iter(|| {
            round += 1;
            let dir = std::env::temp_dir().join(format!(
                "parmonc-bench-run-l20k-{}-{round}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let report = Parmonc::builder(1, 1)
                .max_sample_volume(20_000)
                .processors(2)
                .exchange(Exchange::EveryRealization)
                .output_dir(&dir)
                .run(RealizeFn::new(|rng, out| out[0] = rng.next_f64()))
                .unwrap();
            let _ = std::fs::remove_dir_all(&dir);
            black_box(report.summary.means[0])
        })
    });

    // The paper's 1000x2 matrix shape, fewer realizations.
    group.throughput(Throughput::Elements(200));
    group.bench_function("matrix_1000x2_l200_m2", |b| {
        let mut round = 0u32;
        b.iter(|| {
            round += 1;
            let dir = std::env::temp_dir().join(format!(
                "parmonc-bench-run-matrix-{}-{round}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let report = Parmonc::builder(1000, 2)
                .max_sample_volume(200)
                .processors(2)
                .exchange(Exchange::EveryRealization)
                .output_dir(&dir)
                .run(RealizeFn::new(|rng, out| {
                    for o in out.iter_mut() {
                        *o = rng.next_f64();
                    }
                }))
                .unwrap();
            let _ = std::fs::remove_dir_all(&dir);
            black_box(report.summary.eps_max)
        })
    });

    group.finish();

    // Per-realization runtime overhead, the paper's headline quantity,
    // in nanoseconds. Absolute times, so informational (not gated):
    // the regression gate is the within-run `ratio_*` metrics.
    for (key, id, realizations) in [
        (
            "hotpath_ns_per_realization_strict",
            "full_run/scalar_l2000_m2/strict",
            2_000.0,
        ),
        (
            "hotpath_ns_per_realization_periodic",
            "full_run/scalar_l2000_m2/periodic",
            2_000.0,
        ),
        (
            "hotpath_ns_per_realization_matrix",
            "full_run/matrix_1000x2_l200_m2",
            200.0,
        ),
    ] {
        if let Some(median) = median_of(id) {
            record_metric(key, median / realizations * 1e9);
        }
    }

    // Marginal per-realization overhead: fixed per-run cost cancels in
    // the l20000 − l2000 difference. This is the number to compare
    // against the `pre_pr/` keys in BENCH_hotpath.json.
    if let (Some(small), Some(large)) = (
        median_of("full_run/scalar_l2000_m2/strict"),
        median_of("full_run/scalar_l20000_m2_strict"),
    ) {
        record_metric(
            "hotpath_marginal_ns_per_realization_strict",
            (large - small) / 18_000.0 * 1e9,
        );
    }
}

criterion_group!(benches, bench_full_runs);
criterion_main!(benches);
