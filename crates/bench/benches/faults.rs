//! Fault-plane overhead guard: when no fault plan is attached, every
//! hot path consults a *disabled* [`parmonc_faults::FaultHandle`] — a
//! null check — before doing its real work. The acceptance criterion
//! for the fault-injection layer is that a faultless run pays less
//! than 1% for these consults. The guard measures the consults in
//! isolation, measures the per-realization wall cost of a real run in
//! the most consult-heavy regime (per-realization exchange, where
//! every realization triggers a message send, a receive, and a worker
//! file write), and bounds the ratio with a generous multiple of
//! consults per realization.

use std::path::Path;
use std::time::Instant;

use parmonc::{Exchange, Parmonc, RealizeFn};
use parmonc_bench::harness::{black_box, criterion_group, criterion_main, Criterion};
use parmonc_faults::FaultHandle;
use parmonc_mpi::{Tag, World};

/// Fastest observed seconds per call over `reps` timed batches — the
/// minimum converges on the true cost under one-sided timing noise.
fn secs_per_call(iters: u64, reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() / iters as f64);
    }
    best
}

fn bench_disabled_plane(c: &mut Criterion) {
    let handle = FaultHandle::disabled();
    let path = Path::new("checkpoint.dat");

    let mut group = c.benchmark_group("disabled_plane");
    group.sample_size(7);
    group.bench_function("on_send", |b| {
        b.iter(|| black_box(&handle).on_send(1, 0, 1))
    });
    group.bench_function("crash_after", |b| {
        b.iter(|| black_box(&handle).crash_after(1))
    });
    group.bench_function("on_write", |b| {
        b.iter(|| black_box(&handle).on_write(black_box(path)))
    });
    group.finish();

    // The real work the per-message consult rides on: one send plus one
    // receive through the channel substrate (which itself already
    // consults the same disabled handle internally).
    let mut comms = World::communicators(2).unwrap();
    let payload = [0u8; 64];
    let mut send_recv = c.benchmark_group("substrate");
    send_recv.sample_size(7);
    send_recv.bench_function("send_recv_64B", |b| {
        b.iter(|| {
            comms[1].send(0, Tag(1), &payload).unwrap();
            comms[0].try_recv(None, None).expect("message in flight")
        })
    });
    send_recv.finish();

    // The <1% guard. One realization in the per-realization exchange
    // regime consults the disabled plane about five times (worker
    // crash check, control poll, subtotal send, worker-file write;
    // collector receive); two full triples — six consults — is a
    // conservative per-realization budget.
    let consult = secs_per_call(4_000_000, 9, || {
        black_box(black_box(&handle).on_send(1, 0, 1));
        black_box(black_box(&handle).crash_after(1));
        black_box(black_box(&handle).on_write(black_box(path)));
    });

    const VOLUME: u64 = 4_000;
    let dir = std::env::temp_dir().join(format!("parmonc-bench-faults-{}", std::process::id()));
    let mut per_realization = f64::INFINITY;
    for _ in 0..5 {
        let _ = std::fs::remove_dir_all(&dir);
        let started = Instant::now();
        let report = Parmonc::builder(1, 1)
            .max_sample_volume(VOLUME)
            .processors(2)
            .exchange(Exchange::EveryRealization)
            .output_dir(&dir)
            .run(RealizeFn::new(|rng, out| {
                for o in out.iter_mut() {
                    *o = rng.next_f64();
                }
            }))
            .unwrap();
        assert_eq!(report.new_volume, VOLUME);
        per_realization = per_realization.min(started.elapsed().as_secs_f64() / VOLUME as f64);
    }
    let _ = std::fs::remove_dir_all(&dir);

    let overhead = 2.0 * consult / per_realization;
    println!(
        "disabled_plane_overhead: consult triple {:.2} ns, realization {:.2} µs, \
         2x-budget ratio {:.4}%",
        consult * 1e9,
        per_realization * 1e6,
        overhead * 100.0
    );
    assert!(
        overhead < 0.01,
        "disabled fault plane must cost <1% of a faultless run, got {:.4}%",
        overhead * 100.0
    );
}

criterion_group!(benches, bench_disabled_plane);
criterion_main!(benches);
