//! Message-passing substrate costs: subtotal encode/decode at the
//! paper's message size, point-to-point round trip, the gather
//! pattern the collector runs, and — via a counting global allocator —
//! the bytes allocated per subtotal emit on the clone-encode path the
//! runner used to take versus the pooled borrowed-encode path it takes
//! now.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use parmonc::messages::Subtotal;
use parmonc_bench::harness::{
    black_box, criterion_group, criterion_main, record_metric, Criterion, Throughput,
};
use parmonc_mpi::{BufferPool, Tag, World};
use parmonc_stats::MatrixAccumulator;

/// Counts every byte requested from the allocator; deallocations are
/// deliberately not subtracted — the metric is allocation *traffic*
/// per operation, which is what the hot path must avoid.
struct CountingAlloc;

static ALLOCATED: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter is a relaxed
// atomic side effect.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATED.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Bytes allocated while running `f`.
fn alloc_bytes_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATED.load(Ordering::Relaxed);
    f();
    ALLOCATED.load(Ordering::Relaxed) - before
}

fn paper_subtotal() -> Subtotal {
    let mut acc = MatrixAccumulator::new(1000, 2).unwrap();
    acc.add(&vec![0.5; 2000]).unwrap();
    Subtotal {
        acc,
        compute_seconds: 7.7,
    }
}

fn bench_codec(c: &mut Criterion) {
    let subtotal = paper_subtotal();
    let encoded = subtotal.encode();

    let mut group = c.benchmark_group("subtotal_codec");
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode_1000x2", |b| b.iter(|| black_box(subtotal.encode())));
    group.bench_function("decode_1000x2", |b| {
        b.iter(|| black_box(Subtotal::decode(encoded.clone()).unwrap()))
    });
    group.finish();
}

fn bench_ping_pong(c: &mut Criterion) {
    c.bench_function("ping_pong_120kb", |b| {
        b.iter(|| {
            let payload = paper_subtotal().encode();
            let results = World::run(2, move |comm| {
                if comm.rank() == 0 {
                    comm.send_bytes(1, Tag(1), payload.clone())?;
                    let back = comm.recv(Some(1), Some(Tag(2)))?;
                    Ok(back.len())
                } else {
                    let msg = comm.recv(Some(0), Some(Tag(1)))?;
                    comm.send_bytes(0, Tag(2), msg.payload)?;
                    Ok(0)
                }
            })
            .unwrap();
            black_box(results)
        })
    });
}

fn bench_gather_pattern(c: &mut Criterion) {
    // 8 workers each send 16 subtotal messages to rank 0 — a burst of
    // the collector's steady-state load.
    c.bench_function("collector_gather_8x16", |b| {
        b.iter(|| {
            let results = World::run(9, |comm| {
                if comm.rank() == 0 {
                    let mut bytes = 0usize;
                    for _ in 0..8 * 16 {
                        bytes += comm.recv(None, None)?.len();
                    }
                    Ok(bytes)
                } else {
                    let payload = paper_subtotal().encode();
                    for _ in 0..16 {
                        comm.send_bytes(0, Tag(1), payload.clone())?;
                    }
                    Ok(0)
                }
            })
            .unwrap();
            black_box(results)
        })
    });
}

/// Not a timing bench: measures allocator traffic per subtotal emit at
/// the paper's 1000×2 message size, on the old clone-then-encode path
/// and on the pooled borrowed-encode path, and records both as gated
/// `alloc_*` metrics (deterministic, so the tolerance only absorbs
/// allocator-metadata drift).
fn bench_emit_alloc(c: &mut Criterion) {
    let sub = paper_subtotal();
    const EMITS: u64 = 100;

    // Old path: clone the accumulator into a Subtotal, encode, drop.
    let clone_bytes = alloc_bytes_during(|| {
        for _ in 0..EMITS {
            let snapshot = Subtotal {
                acc: sub.acc.clone(),
                compute_seconds: sub.compute_seconds,
            };
            black_box(snapshot.encode());
        }
    }) / EMITS;

    // New path: encode straight from the borrowed accumulator into a
    // recycled pool buffer; the "receiver" recycles after decoding.
    let pool = BufferPool::default();
    let mut slot = Some(paper_subtotal());
    // One unmeasured warm-up cycle seeds the pool and the decode slot,
    // so the measured figure is the steady state.
    let payload = Subtotal::encode_state_pooled(&sub.acc, sub.compute_seconds, &pool);
    Subtotal::decode_into(&payload, &mut slot).unwrap();
    pool.recycle(payload);
    let pooled_bytes = alloc_bytes_during(|| {
        for _ in 0..EMITS {
            let payload = Subtotal::encode_state_pooled(&sub.acc, sub.compute_seconds, &pool);
            Subtotal::decode_into(&payload, &mut slot).unwrap();
            black_box(pool.recycle(payload));
        }
    }) / EMITS;

    println!("emit_alloc/clone_encode                  {clone_bytes} B/emit");
    println!("emit_alloc/pooled_borrowed               {pooled_bytes} B/emit");
    record_metric("alloc_bytes_per_emit_clone", clone_bytes as f64);
    record_metric("alloc_bytes_per_emit_pooled", pooled_bytes as f64);
    if pooled_bytes > 0 {
        record_metric(
            "ratio_emit_alloc_reduction",
            clone_bytes as f64 / pooled_bytes as f64,
        );
    }
    let _ = c;
}

criterion_group!(
    benches,
    bench_codec,
    bench_ping_pong,
    bench_gather_pattern,
    bench_emit_alloc
);
criterion_main!(benches);
