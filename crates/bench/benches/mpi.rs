//! Message-passing substrate costs: subtotal encode/decode at the
//! paper's message size, point-to-point round trip, and the gather
//! pattern the collector runs.

use parmonc::messages::Subtotal;
use parmonc_bench::harness::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use parmonc_mpi::{Tag, World};
use parmonc_stats::MatrixAccumulator;

fn paper_subtotal() -> Subtotal {
    let mut acc = MatrixAccumulator::new(1000, 2).unwrap();
    acc.add(&vec![0.5; 2000]).unwrap();
    Subtotal {
        acc,
        compute_seconds: 7.7,
    }
}

fn bench_codec(c: &mut Criterion) {
    let subtotal = paper_subtotal();
    let encoded = subtotal.encode();

    let mut group = c.benchmark_group("subtotal_codec");
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode_1000x2", |b| b.iter(|| black_box(subtotal.encode())));
    group.bench_function("decode_1000x2", |b| {
        b.iter(|| black_box(Subtotal::decode(encoded.clone()).unwrap()))
    });
    group.finish();
}

fn bench_ping_pong(c: &mut Criterion) {
    c.bench_function("ping_pong_120kb", |b| {
        b.iter(|| {
            let payload = paper_subtotal().encode();
            let results = World::run(2, move |comm| {
                if comm.rank() == 0 {
                    comm.send_bytes(1, Tag(1), payload.clone())?;
                    let back = comm.recv(Some(1), Some(Tag(2)))?;
                    Ok(back.len())
                } else {
                    let msg = comm.recv(Some(0), Some(Tag(1)))?;
                    comm.send_bytes(0, Tag(2), msg.payload)?;
                    Ok(0)
                }
            })
            .unwrap();
            black_box(results)
        })
    });
}

fn bench_gather_pattern(c: &mut Criterion) {
    // 8 workers each send 16 subtotal messages to rank 0 — a burst of
    // the collector's steady-state load.
    c.bench_function("collector_gather_8x16", |b| {
        b.iter(|| {
            let results = World::run(9, |comm| {
                if comm.rank() == 0 {
                    let mut bytes = 0usize;
                    for _ in 0..8 * 16 {
                        bytes += comm.recv(None, None)?.len();
                    }
                    Ok(bytes)
                } else {
                    let payload = paper_subtotal().encode();
                    for _ in 0..16 {
                        comm.send_bytes(0, Tag(1), payload.clone())?;
                    }
                    Ok(0)
                }
            })
            .unwrap();
            black_box(results)
        })
    });
}

criterion_group!(benches, bench_codec, bench_ping_pong, bench_gather_pattern);
criterion_main!(benches);
