//! Message-passing substrate costs: subtotal encode/decode at the
//! paper's message size, point-to-point round trip, the gather
//! pattern the collector runs, and — via a counting global allocator —
//! the bytes allocated per subtotal emit on the clone-encode path the
//! runner used to take versus the pooled borrowed-encode path it takes
//! now.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use parmonc::messages::Subtotal;
use parmonc_bench::harness::{
    black_box, criterion_group, criterion_main, fast_mode, record_metric, Criterion, Throughput,
};
use parmonc_mpi::collective::{barrier, gather_plan};
use parmonc_mpi::{BufferPool, CollectionPlan, Tag, Topology, World};
use parmonc_stats::MatrixAccumulator;

/// Counts every byte requested from the allocator; deallocations are
/// deliberately not subtracted — the metric is allocation *traffic*
/// per operation, which is what the hot path must avoid.
struct CountingAlloc;

static ALLOCATED: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter is a relaxed
// atomic side effect.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATED.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Bytes allocated while running `f`.
fn alloc_bytes_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATED.load(Ordering::Relaxed);
    f();
    ALLOCATED.load(Ordering::Relaxed) - before
}

fn paper_subtotal() -> Subtotal {
    let mut acc = MatrixAccumulator::new(1000, 2).unwrap();
    acc.add(&vec![0.5; 2000]).unwrap();
    Subtotal {
        acc,
        compute_seconds: 7.7,
    }
}

fn bench_codec(c: &mut Criterion) {
    let subtotal = paper_subtotal();
    let encoded = subtotal.encode();

    let mut group = c.benchmark_group("subtotal_codec");
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode_1000x2", |b| b.iter(|| black_box(subtotal.encode())));
    group.bench_function("decode_1000x2", |b| {
        b.iter(|| black_box(Subtotal::decode(encoded.clone()).unwrap()))
    });
    group.finish();
}

fn bench_ping_pong(c: &mut Criterion) {
    c.bench_function("ping_pong_120kb", |b| {
        b.iter(|| {
            let payload = paper_subtotal().encode();
            let results = World::run(2, move |comm| {
                if comm.rank() == 0 {
                    comm.send_bytes(1, Tag(1), payload.clone())?;
                    let back = comm.recv(Some(1), Some(Tag(2)))?;
                    Ok(back.len())
                } else {
                    let msg = comm.recv(Some(0), Some(Tag(1)))?;
                    comm.send_bytes(0, Tag(2), msg.payload)?;
                    Ok(0)
                }
            })
            .unwrap();
            black_box(results)
        })
    });
}

fn bench_gather_pattern(c: &mut Criterion) {
    // 8 workers each send 16 subtotal messages to rank 0 — a burst of
    // the collector's steady-state load.
    c.bench_function("collector_gather_8x16", |b| {
        b.iter(|| {
            let results = World::run(9, |comm| {
                if comm.rank() == 0 {
                    let mut bytes = 0usize;
                    for _ in 0..8 * 16 {
                        bytes += comm.recv(None, None)?.len();
                    }
                    Ok(bytes)
                } else {
                    let payload = paper_subtotal().encode();
                    for _ in 0..16 {
                        comm.send_bytes(0, Tag(1), payload.clone())?;
                    }
                    Ok(0)
                }
            })
            .unwrap();
            black_box(results)
        })
    });
}

/// Wall seconds the *root* spends inside `rounds` back-to-back gathers
/// over a world of `size` ranks collecting along `topology`. A barrier
/// first, so thread-spawn cost stays outside the timed window; the
/// root's elapsed time is the collection critical path — under a star
/// it receives (and contends with) `size - 1` senders per round, under
/// a tree only its direct children, with the merge fan-in parallelized
/// across the relay ranks.
fn timed_gathers(size: usize, topology: Topology, rounds: usize) -> f64 {
    let results = World::run(size, move |comm| {
        let plan = CollectionPlan::new(topology, 0, comm.size());
        let value = [comm.rank() as f64, 1.0, 0.5, -0.5];
        barrier(comm)?;
        let started = Instant::now();
        for _ in 0..rounds {
            black_box(gather_plan(comm, &plan, &value)?);
        }
        Ok(started.elapsed().as_secs_f64())
    })
    .unwrap();
    results
        .into_iter()
        .next()
        .expect("world has a rank 0")
        .expect("gather succeeds")
}

/// The collector-side scaling claim behind the tree topology: at
/// m = 512 simulated ranks, collecting over a k-ary tree must beat the
/// rank-0 star by at least the committed `ratio_tree_collect_speedup`
/// (the star's root handles every sender itself; the tree bounds its
/// fan-in by the arity). Smaller worlds are printed for the scaling
/// curve but only the 512-rank ratio is gated — at m = 8 the tree's
/// extra hop can even lose, and should.
fn bench_gather_scaling(c: &mut Criterion) {
    let rounds = if fast_mode() { 8 } else { 24 };
    let mut ratio_at_512 = None;
    for &m in &[8usize, 64, 512] {
        // Alternate arms to spread machine-load drift across both.
        let mut star = f64::INFINITY;
        let mut tree = f64::INFINITY;
        for _ in 0..3 {
            star = star.min(timed_gathers(m, Topology::Star, rounds));
            tree = tree.min(timed_gathers(m, Topology::Tree { arity: 8 }, rounds));
        }
        let ratio = star / tree;
        println!("gather_scaling/m{m}: star {star:.6} s, tree(8) {tree:.6} s, speedup {ratio:.2}x");
        record_metric(&format!("gather_scaling/star_m{m}"), star / rounds as f64);
        record_metric(&format!("gather_scaling/tree_m{m}"), tree / rounds as f64);
        if m == 512 {
            ratio_at_512 = Some(ratio);
        }
    }
    record_metric(
        "ratio_tree_collect_speedup",
        ratio_at_512.expect("512-rank arm ran"),
    );
    let _ = c;
}

/// Not a timing bench: measures allocator traffic per subtotal emit at
/// the paper's 1000×2 message size, on the old clone-then-encode path
/// and on the pooled borrowed-encode path, and records both as gated
/// `alloc_*` metrics (deterministic, so the tolerance only absorbs
/// allocator-metadata drift).
fn bench_emit_alloc(c: &mut Criterion) {
    let sub = paper_subtotal();
    const EMITS: u64 = 100;

    // Old path: clone the accumulator into a Subtotal, encode, drop.
    let clone_bytes = alloc_bytes_during(|| {
        for _ in 0..EMITS {
            let snapshot = Subtotal {
                acc: sub.acc.clone(),
                compute_seconds: sub.compute_seconds,
            };
            black_box(snapshot.encode());
        }
    }) / EMITS;

    // New path: encode straight from the borrowed accumulator into a
    // recycled pool buffer; the "receiver" recycles after decoding.
    let pool = BufferPool::default();
    let mut slot = Some(paper_subtotal());
    // One unmeasured warm-up cycle seeds the pool and the decode slot,
    // so the measured figure is the steady state.
    let payload = Subtotal::encode_state_pooled(&sub.acc, sub.compute_seconds, &pool);
    Subtotal::decode_into(&payload, &mut slot).unwrap();
    pool.recycle(payload);
    let pooled_bytes = alloc_bytes_during(|| {
        for _ in 0..EMITS {
            let payload = Subtotal::encode_state_pooled(&sub.acc, sub.compute_seconds, &pool);
            Subtotal::decode_into(&payload, &mut slot).unwrap();
            black_box(pool.recycle(payload));
        }
    }) / EMITS;

    println!("emit_alloc/clone_encode                  {clone_bytes} B/emit");
    println!("emit_alloc/pooled_borrowed               {pooled_bytes} B/emit");
    record_metric("alloc_bytes_per_emit_clone", clone_bytes as f64);
    record_metric("alloc_bytes_per_emit_pooled", pooled_bytes as f64);
    if pooled_bytes > 0 {
        record_metric(
            "ratio_emit_alloc_reduction",
            clone_bytes as f64 / pooled_bytes as f64,
        );
    }
    let _ = c;
}

criterion_group!(
    benches,
    bench_codec,
    bench_ping_pong,
    bench_gather_pattern,
    bench_gather_scaling,
    bench_emit_alloc
);
criterion_main!(benches);
