//! Monitor overhead: the acceptance criterion for the observability
//! layer is that a monitored run (events streaming to the jsonl file,
//! the in-memory summary sink and the metrics plane) costs less than
//! 2% wall time over the identical unmonitored run. This bench
//! measures both paths on the laptop-scale diffusion workload and
//! certifies the budget at two tiers:
//!
//! * **Full mode** hard-asserts the <2% bound on the fastest run of
//!   each arm — the precise claim, needing full-length runs on a
//!   reasonably quiet machine.
//! * **Every mode** records the median of per-pair overheads as
//!   `bound_metrics_plane_overhead_pct`, which `hotpath_compare`
//!   gates against the committed smoke ceiling (4%) in
//!   `BENCH_hotpath.json`. The ceiling is wider than the policy bound
//!   because a reduced-iteration (`PARMONC_BENCH_FAST`) wall-clock
//!   differential on a shared CI runner has a noise floor of a few
//!   percent — the gate is a tripwire for gross regressions (an
//!   accidentally hot event plane), not the certification itself.
//!
//! The span-tracing plane gets the same treatment on top: a traced run
//! (monitor + causal spans around every phase) against the plain
//! monitored run, recorded as `bound_trace_plane_overhead_pct` and
//! held to the same <2% policy bound in full mode.

use std::path::Path;
use std::time::Instant;

use parmonc::{Exchange, Parmonc, RealizeFn};
use parmonc_bench::harness::{
    black_box, criterion_group, criterion_main, fast_mode, record_metric, Criterion,
};
use parmonc_bench::ScaledDiffusion;

/// Which observability planes a measured run carries.
#[derive(Clone, Copy, PartialEq)]
enum Arm {
    /// No monitor at all.
    Plain,
    /// Monitor (jsonl + summary + metrics sinks), no span tracing.
    Monitored,
    /// Monitor plus the causal-span tracing plane.
    Traced,
}

/// One full run of the Section 4 performance program at laptop scale;
/// returns the wall seconds of the whole run (setup + ranks + final
/// save).
fn run_once(arm: Arm, dir: &Path) -> f64 {
    // 40 Euler steps per output point ≈ 1 s per run: long enough that
    // the few-millisecond scheduler jitter at the noise floor is well
    // under the 2% bound being certified. Fast mode halves the volume
    // — a shorter run than that and the jitter floor alone reads as
    // several percent, which flakes the smoke gate.
    let workload = ScaledDiffusion::new(40);
    let scheme = workload.scheme().clone();
    let volume = if fast_mode() { 300 } else { 600 };
    let _ = std::fs::remove_dir_all(dir);
    let mut builder = Parmonc::builder(ScaledDiffusion::POINTS, 2)
        .max_sample_volume(volume)
        .processors(2)
        .exchange(Exchange::EveryRealization)
        .output_dir(dir);
    if arm != Arm::Plain {
        builder = builder.monitor();
    }
    if arm == Arm::Traced {
        builder = builder.trace_spans();
    }
    let started = Instant::now();
    let report = builder
        .run(RealizeFn::new(move |rng, out| {
            scheme.realize_into(rng, out)
        }))
        .unwrap();
    let elapsed = started.elapsed().as_secs_f64();
    assert_eq!(report.monitor.is_some(), arm != Arm::Plain);
    let _ = std::fs::remove_dir_all(dir);
    elapsed
}

/// The fastest observed run: the noise-robust estimator for a
/// deterministic workload — every noise source (scheduler preemption,
/// page cache, turbo states) only ever *adds* time, so the minimum
/// converges on the true cost.
fn minimum(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Interleaved paired measurement of `heavy` over `light`, alternating
/// order so slow drift in machine load hits both arms equally. Returns
/// `(light_min, heavy_min, min_overhead, pair_median_overhead)`.
///
/// The pair median is the gated metric: the two runs of a pair execute
/// back to back, so load drift on a shared machine mostly cancels
/// within a pair, and the median discards pairs a load burst straddled.
/// The min-vs-min estimator compares runs from different time windows
/// and needs a quiet machine (it backs the full-mode hard asserts,
/// where sample counts and run lengths make it reliable).
fn paired_overhead(light: Arm, heavy: Arm, samples: usize, dir: &Path) -> (f64, f64, f64, f64) {
    let mut lo = Vec::with_capacity(samples);
    let mut hi = Vec::with_capacity(samples);
    let mut pair_overheads = Vec::with_capacity(samples);
    for i in 0..samples {
        let (l, h) = if i % 2 == 0 {
            let l = run_once(light, dir);
            let h = run_once(heavy, dir);
            (l, h)
        } else {
            let h = run_once(heavy, dir);
            let l = run_once(light, dir);
            (l, h)
        };
        lo.push(l);
        hi.push(h);
        pair_overheads.push((h - l) / l);
    }
    let lo_min = minimum(&lo);
    let hi_min = minimum(&hi);
    pair_overheads.sort_by(|a, b| a.total_cmp(b));
    let pair_median = pair_overheads[pair_overheads.len() / 2];
    (lo_min, hi_min, (hi_min - lo_min) / lo_min, pair_median)
}

fn bench_monitor_overhead(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("parmonc-bench-monitor-{}", std::process::id()));

    let mut group = c.benchmark_group("full_run");
    group.sample_size(5);
    group.bench_function("unmonitored", |b| {
        b.iter(|| black_box(run_once(Arm::Plain, &dir)))
    });
    group.bench_function("monitored", |b| {
        b.iter(|| black_box(run_once(Arm::Monitored, &dir)))
    });
    group.finish();

    // The <2% acceptance bound for the monitor itself.
    let samples: usize = if fast_mode() { 9 } else { 13 };
    let (off_min, on_min, overhead, pair_median) =
        paired_overhead(Arm::Plain, Arm::Monitored, samples, &dir);
    println!(
        "monitor_overhead: unmonitored {off_min:.4} s, monitored {on_min:.4} s, \
         overhead {:.2}% (paired median {:.2}%)",
        overhead * 100.0,
        pair_median * 100.0
    );
    record_metric("bound_metrics_plane_overhead_pct", pair_median * 100.0);
    // The hard assert only runs at full sample counts; the fast-mode
    // measurement still feeds the (tolerance-widened) hotpath gate.
    assert!(
        fast_mode() || overhead < 0.02,
        "monitored run must cost <2% over unmonitored, got {:.2}%",
        overhead * 100.0
    );

    // Same program for the span-tracing plane: traced (monitor +
    // spans) over plain monitored, so the differential isolates what
    // the spans themselves cost.
    let (mon_min, traced_min, trace_overhead, trace_pair_median) =
        paired_overhead(Arm::Monitored, Arm::Traced, samples, &dir);
    println!(
        "trace_plane_overhead: monitored {mon_min:.4} s, traced {traced_min:.4} s, \
         overhead {:.2}% (paired median {:.2}%)",
        trace_overhead * 100.0,
        trace_pair_median * 100.0
    );
    record_metric("bound_trace_plane_overhead_pct", trace_pair_median * 100.0);
    assert!(
        fast_mode() || trace_overhead < 0.02,
        "traced run must cost <2% over monitored, got {:.2}%",
        trace_overhead * 100.0
    );
}

criterion_group!(benches, bench_monitor_overhead);
criterion_main!(benches);
