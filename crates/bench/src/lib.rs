//! Shared helpers for the benchmark harnesses.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod harness;
pub mod hotpath;

use std::time::Duration;

use parmonc::{Exchange, Parmonc, ParmoncError, RealizeFn};
use parmonc_sde::{EulerScheme, OutputGrid, PaperDiffusion};

/// A laptop-scale version of the paper's diffusion workload: same
/// 2-D linear SDE and 1000×2 output matrix, but a coarser mesh so one
/// realization costs milliseconds instead of 7.7 s.
///
/// `steps_per_point` plays the paper's `stride = 10^5`; with the
/// default 20 the realization costs ≈ 20 000 Euler steps.
#[derive(Debug, Clone)]
pub struct ScaledDiffusion {
    scheme: EulerScheme<PaperDiffusion>,
}

impl ScaledDiffusion {
    /// Output rows (the paper's 1000 time points).
    pub const POINTS: usize = 1000;

    /// Creates the workload with the given per-point stride.
    #[must_use]
    pub fn new(steps_per_point: usize) -> Self {
        // Keep the final time at 100 like the paper: h = 0.1/stride.
        let h = 0.1 / steps_per_point as f64;
        Self {
            scheme: EulerScheme::new(
                PaperDiffusion::default(),
                h,
                OutputGrid::new(Self::POINTS, steps_per_point),
            ),
        }
    }

    /// The underlying scheme.
    #[must_use]
    pub fn scheme(&self) -> &EulerScheme<PaperDiffusion> {
        &self.scheme
    }
}

/// Runs the paper's performance-test program (the Section 4 listing)
/// at laptop scale, optionally with the run monitor attached, and
/// returns the full report.
///
/// # Errors
///
/// Propagates runner errors.
pub fn run_diffusion_threads_report(
    l: u64,
    processors: usize,
    steps_per_point: usize,
    output_dir: &std::path::Path,
    monitor: bool,
) -> Result<parmonc::RunReport, ParmoncError> {
    let workload = ScaledDiffusion::new(steps_per_point);
    let scheme = workload.scheme().clone();
    let difftraj = RealizeFn::new(move |rng, out| scheme.realize_into(rng, out));
    let mut builder = Parmonc::builder(ScaledDiffusion::POINTS, 2)
        .max_sample_volume(l)
        .processors(processors)
        .exchange(Exchange::EveryRealization)
        .averaging_period(Duration::ZERO)
        .output_dir(output_dir);
    if monitor {
        builder = builder.monitor();
    }
    builder.run(difftraj)
}

/// Runs the paper's performance-test program (the Section 4 listing)
/// at laptop scale and returns `(T_comp_seconds, mean_tau_seconds)`.
///
/// # Errors
///
/// Propagates runner errors.
pub fn run_diffusion_threads(
    l: u64,
    processors: usize,
    steps_per_point: usize,
    output_dir: &std::path::Path,
) -> Result<(f64, f64), ParmoncError> {
    let report = run_diffusion_threads_report(l, processors, steps_per_point, output_dir, false)?;
    Ok((
        report.elapsed.as_secs_f64(),
        report.mean_time_per_realization,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_diffusion_shape() {
        let w = ScaledDiffusion::new(5);
        assert_eq!(w.scheme().grid().points, 1000);
        assert_eq!(w.scheme().grid().total_steps(), 5000);
        // Final time stays 100 like the paper.
        let t_end = w.scheme().grid().time(999, w.scheme().h());
        assert!((t_end - 100.0).abs() < 1e-9);
    }

    #[test]
    fn thread_harness_runs() {
        let dir = std::env::temp_dir().join(format!("parmonc-benchlib-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (t_comp, tau) = run_diffusion_threads(8, 2, 2, &dir).unwrap();
        assert!(t_comp > 0.0);
        assert!(tau > 0.0);
    }
}
