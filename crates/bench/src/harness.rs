//! A minimal, dependency-free stand-in for the `criterion` benchmark
//! harness, covering the subset of its API the benches in `benches/`
//! use: groups, throughput annotations, parameterized IDs and the
//! `criterion_group!`/`criterion_main!` entry points.
//!
//! Results print one line per benchmark — median, minimum and maximum
//! time per iteration over the sample set, plus derived throughput —
//! rather than criterion's statistical report. The wire format is
//! deliberately grep-friendly:
//!
//! ```text
//! next_f64/lcg128_u128     time: [12.1 µs 12.3 µs 13.0 µs]  813.0 Melem/s
//! ```
//!
//! # Machine-readable output
//!
//! Every benchmark's median (seconds per iteration) is also recorded
//! in an in-process metric registry under its full id, and benches can
//! add derived metrics (ratios, per-element costs, allocation counts)
//! with [`record_metric`]. When the `PARMONC_BENCH_JSON` environment
//! variable names a file, [`write_json_if_requested`] (called by
//! [`criterion_main!`] after all groups ran) merges the registry into
//! that file as a flat JSON object — the input of the
//! `hotpath_compare` regression checker. Setting `PARMONC_BENCH_FAST`
//! shrinks sample sizes and calibration targets so CI smoke runs
//! finish in seconds.

use std::collections::BTreeMap;
use std::fmt::Display;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How many samples a benchmark collects unless overridden with
/// [`BenchmarkGroup::sample_size`].
const DEFAULT_SAMPLE_SIZE: usize = 12;

/// Calibration target: iteration counts double until one sample takes
/// at least this long, so timer resolution never dominates.
const MIN_SAMPLE_TIME: Duration = Duration::from_millis(5);

/// [`MIN_SAMPLE_TIME`] under `PARMONC_BENCH_FAST` — noisier numbers,
/// but the smoke job only checks coarse within-run ratios.
const FAST_SAMPLE_TIME: Duration = Duration::from_micros(500);

/// Sample-size cap under `PARMONC_BENCH_FAST`.
const FAST_SAMPLE_SIZE: usize = 3;

/// Whether `PARMONC_BENCH_FAST` is set: reduced iteration counts for
/// CI smoke runs.
#[must_use]
pub fn fast_mode() -> bool {
    std::env::var_os("PARMONC_BENCH_FAST").is_some()
}

fn metrics() -> &'static Mutex<BTreeMap<String, f64>> {
    static METRICS: OnceLock<Mutex<BTreeMap<String, f64>>> = OnceLock::new();
    METRICS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Records a named metric for the JSON report. Benches use this for
/// derived quantities — speedup ratios (`ratio_*` keys, checked by
/// `hotpath_compare` as higher-is-better), allocation counts
/// (`alloc_*` keys, lower-is-better) and per-element costs. Non-finite
/// values are dropped (they would not be representable in JSON).
pub fn record_metric(key: &str, value: f64) {
    if value.is_finite() {
        metrics()
            .lock()
            .expect("metric registry lock poisoned")
            .insert(key.to_string(), value);
    }
}

/// The recorded median seconds-per-iteration of an already-run
/// benchmark, by its full id (`group/function[/param]`). Lets a bench
/// derive ratio metrics between its own benchmarks.
#[must_use]
pub fn median_of(id: &str) -> Option<f64> {
    metrics()
        .lock()
        .expect("metric registry lock poisoned")
        .get(id)
        .copied()
}

/// Serializes the metric registry as a flat JSON object, keys sorted.
fn metrics_to_json(map: &BTreeMap<String, f64>) -> String {
    let mut out = String::from("{\n");
    let mut first = true;
    for (k, v) in map {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!("  \"{k}\": {v:e}"));
    }
    out.push_str("\n}\n");
    out
}

/// If `PARMONC_BENCH_JSON` names a file, merges the metric registry
/// into it (existing keys from other bench binaries are kept; keys
/// recorded by this process win). Called automatically at the end of
/// [`criterion_main!`]'s generated `main`.
pub fn write_json_if_requested() {
    let Some(path) = std::env::var_os("PARMONC_BENCH_JSON") else {
        return;
    };
    let mut merged: BTreeMap<String, f64> = std::fs::read_to_string(&path)
        .ok()
        .map(|s| crate::hotpath::parse_flat_json(&s).into_iter().collect())
        .unwrap_or_default();
    merged.extend(
        metrics()
            .lock()
            .expect("metric registry lock poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), *v)),
    );
    if let Err(e) = std::fs::write(&path, metrics_to_json(&merged)) {
        eprintln!("warning: could not write {}: {e}", path.to_string_lossy());
    }
}

/// Units a benchmark processes per iteration, for derived throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Logical elements per iteration.
    Elements(u64),
}

/// A benchmark identifier, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered
    /// `function/param`.
    pub fn new(function: impl Display, param: impl Display) -> Self {
        Self {
            id: format!("{function}/{param}"),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(param: impl Display) -> Self {
        Self {
            id: param.to_string(),
        }
    }
}

/// The per-benchmark timing driver handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`, preventing the result from being
    /// optimized away.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.2} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.2} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

fn format_rate(units_per_sec: f64, suffix: &str) -> String {
    if units_per_sec >= 1e9 {
        format!("{:.2} G{suffix}/s", units_per_sec / 1e9)
    } else if units_per_sec >= 1e6 {
        format!("{:.2} M{suffix}/s", units_per_sec / 1e6)
    } else if units_per_sec >= 1e3 {
        format!("{:.2} K{suffix}/s", units_per_sec / 1e3)
    } else {
        format!("{units_per_sec:.1} {suffix}/s")
    }
}

/// Runs one benchmark: calibrates an iteration count, collects
/// samples, prints a summary line. Returns the median seconds per
/// iteration.
fn run_benchmark(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) -> f64 {
    let (min_sample_time, sample_size) = if fast_mode() {
        (FAST_SAMPLE_TIME, sample_size.min(FAST_SAMPLE_SIZE))
    } else {
        (MIN_SAMPLE_TIME, sample_size)
    };
    // Calibration doubles the iteration count until one sample is
    // long enough to time reliably; the first run also warms caches.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= min_sample_time || iters >= 1 << 22 {
            break;
        }
        iters *= 2;
    }

    let mut per_iter: Vec<f64> = (0..sample_size.max(1))
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];

    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!("  {}", format_rate(n as f64 / median, "B"))
        }
        Some(Throughput::Elements(n)) => {
            format!("  {}", format_rate(n as f64 / median, "elem"))
        }
        None => String::new(),
    };
    println!(
        "{id:<40} time: [{} {} {}]{rate}",
        format_time(min),
        format_time(median),
        format_time(max),
    );
    record_metric(id, median);
    median
}

/// The harness entry point, created by [`criterion_group!`] and passed
/// to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(id, DEFAULT_SAMPLE_SIZE, None, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput/sample
/// settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the per-iteration throughput used for derived rates; it
    /// applies to benchmarks registered after the call.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        run_benchmark(&full, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(&full, self.sample_size, self.throughput, &mut |b| {
            f(b, input);
        });
        self
    }

    /// Ends the group (kept for criterion API compatibility).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a group runner, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::harness::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running each group, mirroring criterion's macro of
/// the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::harness::write_json_if_requested();
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("jump", 16).id, "jump/16");
        assert_eq!(BenchmarkId::from_parameter("a").id, "a");
    }

    #[test]
    fn run_benchmark_reports_sane_median() {
        let mut calls = 0u64;
        let median = run_benchmark("noop", 3, None, &mut |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            });
        });
        assert!(median > 0.0 && median < 1.0);
        assert!(calls > 0);
    }

    #[test]
    fn formatting_covers_magnitudes() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" µs"));
        assert!(format_time(2e-9).ends_with(" ns"));
        assert!(format_rate(2e9, "B").contains("GB/s"));
        assert!(format_rate(2e6, "elem").contains("Melem/s"));
        assert!(format_rate(2e3, "B").contains("KB/s"));
        assert!(format_rate(2.0, "B").contains("B/s"));
    }
}
