//! Regenerates the paper's Figure 2 (all four panels) on the
//! discrete-event cluster model, plus the ablations DESIGN.md calls
//! out.
//!
//! ```text
//! fig2_sim                 # all four panels
//! fig2_sim --panel c       # one panel
//! fig2_sim --efficiency    # speedup/efficiency table for M = 1..512
//! fig2_sim --ablation      # tiny-tau and perpass sweeps
//! fig2_sim --trace out.jsonl [volume]   # monitored run, jsonl trace
//! ```

use std::process::ExitCode;

use parmonc_obs::{JsonlSink, Monitor};
use parmonc_simcluster::figure2::{panel_series, render_panel, Panel};
use parmonc_simcluster::hybrid::{compare_quota_modes, NodeClass};
use parmonc_simcluster::{simulate, simulate_monitored, ClusterConfig, ExchangePolicy};

fn panels(filter: Option<char>) {
    for panel in Panel::ALL {
        if filter.is_none_or(|c| c == panel.letter()) {
            println!("{}", render_panel(panel));
        }
    }
}

fn efficiency_table() {
    println!("speedup under strictest exchange (send after every realization)");
    println!("tau = 7.7 s, 120 KB messages, L = 75000");
    println!(
        "{:>5} {:>14} {:>10} {:>12}",
        "M", "T_comp (s)", "speedup", "efficiency"
    );
    let l = 75_000;
    let t1 = simulate(&ClusterConfig::paper_testbed(1), l).t_comp;
    for m in [1usize, 8, 16, 32, 64, 128, 256, 512] {
        let r = simulate(&ClusterConfig::paper_testbed(m), l);
        println!(
            "{m:>5} {:>14.1} {:>10.1} {:>11.1}%",
            r.t_comp,
            t1 / r.t_comp,
            100.0 * t1 / r.t_comp / m as f64
        );
    }
}

fn ablation() {
    println!("ablation 1: shrinking tau under per-realization exchange (M = 64, L = 64000)");
    println!("{:>12} {:>14} {:>10}", "tau (s)", "T_comp (s)", "speedup");
    for tau in [7.7, 0.77, 0.077, 0.0077, 0.0008] {
        let mut c = ClusterConfig::paper_testbed(64);
        c.realization_seconds = tau;
        let mut c1 = c.clone();
        c1.processors = 1;
        let t1 = simulate(&c1, 64_000).t_comp;
        let tm = simulate(&c, 64_000).t_comp;
        println!("{tau:>12.4} {tm:>14.2} {:>10.1}", t1 / tm);
    }
    println!();
    println!("ablation 2: periodic exchange (perpass) rescues tiny tau (tau = 0.0008 s)");
    println!(
        "{:>16} {:>14} {:>10} {:>10}",
        "perpass (s)", "T_comp (s)", "speedup", "messages"
    );
    let mut c = ClusterConfig::paper_testbed(64);
    c.realization_seconds = 0.0008;
    let mut c1 = c.clone();
    c1.processors = 1;
    let t1 = simulate(&c1, 64_000).t_comp;
    {
        let r = simulate(&c, 64_000);
        println!(
            "{:>16} {:>14.2} {:>10.1} {:>10}",
            "every realiz.",
            r.t_comp,
            t1 / r.t_comp,
            r.messages
        );
    }
    for period in [0.01, 0.1, 1.0, 10.0] {
        let mut cp = c.clone();
        cp.exchange = ExchangePolicy::Periodic { period };
        let r = simulate(&cp, 64_000);
        println!(
            "{period:>16.2} {:>14.2} {:>10.1} {:>10}",
            r.t_comp,
            t1 / r.t_comp,
            r.messages
        );
    }
}

fn hybrid() {
    // The paper's conclusion: adapt PARMONC to GPU / hybrid clusters.
    println!("hybrid clusters (paper Section 5 future work): 8 CPU nodes + N GPU nodes,");
    println!("GPU = 40x a CPU node, L = 65600, per-realization exchange");
    println!(
        "{:>6} {:>10} {:>16} {:>17} {:>10}",
        "GPUs", "ideal", "uniform quota", "weighted quota", "recovered"
    );
    for gpus in [1usize, 4, 8, 16] {
        let classes = [NodeClass::new(8, 1.0), NodeClass::new(gpus, 40.0)];
        let cmp = compare_quota_modes(&classes, 65_600);
        println!(
            "{gpus:>6} {:>9.0}x {:>15.1}x {:>16.1}x {:>9.0}%",
            cmp.total_speed,
            cmp.uniform_speedup(),
            cmp.weighted_speedup(),
            100.0 * cmp.weighted_speedup() / cmp.total_speed
        );
    }
    println!("\n(uniform static quotas idle the GPUs behind the slowest CPU share;");
    println!(" speed-weighted static quotas recover near-ideal efficiency with no");
    println!(" dynamic load balancing — the PARMONC design carries over.)");
}

/// `--trace out.jsonl [volume]`: a monitored virtual-time run of the
/// paper's 4-processor testbed, writing the event trace for post-hoc
/// analysis with `parmonc-trace` (the CI trace-analysis step compares
/// it against a real-thread run of the same volume).
fn write_trace(path: &str, volume: u64) -> Result<(), String> {
    let sink = JsonlSink::create(path).map_err(|e| format!("creating {path}: {e}"))?;
    let monitor = Monitor::new(vec![Box::new(sink)]);
    let run = simulate_monitored(&ClusterConfig::paper_testbed(4), volume, &monitor);
    if monitor.flush() > 0 {
        return Err(format!("dropped trace lines while writing {path}"));
    }
    println!(
        "simulated {volume} realizations on 4 virtual processors (T_comp {:.1} s); trace in {path}",
        run.result.t_comp
    );
    Ok(())
}

fn check_shape() -> bool {
    // The acceptance criterion recorded in EXPERIMENTS.md: adjacent
    // curves in every panel scale by their processor ratio within 7%.
    let mut ok = true;
    for panel in Panel::ALL {
        let series = panel_series(panel);
        for w in series.windows(2) {
            let ratio_m = w[1].processors as f64 / w[0].processors as f64;
            for (i, &(_, t_small)) in w[0].points.iter().enumerate() {
                let ratio_t = t_small / w[1].points[i].1;
                if (ratio_t - ratio_m).abs() > 0.07 * ratio_m {
                    ok = false;
                }
            }
        }
    }
    ok
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => {
            panels(None);
            efficiency_table();
        }
        Some("--panel") => {
            let Some(letter) = args.get(1).and_then(|s| s.chars().next()) else {
                eprintln!("usage: fig2_sim --panel <a|b|c|d>");
                return ExitCode::FAILURE;
            };
            panels(Some(letter));
        }
        Some("--efficiency") => efficiency_table(),
        Some("--ablation") => ablation(),
        Some("--hybrid") => hybrid(),
        Some("--trace") => {
            let Some(path) = args.get(1) else {
                eprintln!("usage: fig2_sim --trace <out.jsonl> [volume]");
                return ExitCode::FAILURE;
            };
            let volume = match args.get(2) {
                Some(v) => match v.parse::<u64>() {
                    Ok(n) => n,
                    Err(_) => {
                        eprintln!("volume must be an integer, got {v:?}");
                        return ExitCode::FAILURE;
                    }
                },
                None => 20_000,
            };
            return match write_trace(path, volume) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("fig2_sim: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        Some(other) => {
            eprintln!("unknown option {other:?}");
            eprintln!(
                "usage: fig2_sim [--panel <a|b|c|d> | --efficiency | --ablation | --hybrid | --trace <out.jsonl> [volume]]"
            );
            return ExitCode::FAILURE;
        }
    }
    if check_shape() {
        println!("\nshape check: linear speedup holds in all four panels (within 7%)");
        ExitCode::SUCCESS
    } else {
        println!("\nshape check FAILED: some curve deviates from linear speedup");
        ExitCode::FAILURE
    }
}
