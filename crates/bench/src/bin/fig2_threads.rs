//! The paper's performance test on *real threads* at laptop scale.
//!
//! Runs the Section 4 diffusion workload through the actual
//! `parmonc::runner` (per-realization exchange, collector on rank 0)
//! with τ scaled down to milliseconds, and reports `T_comp(L)` per
//! processor count — the thread-level twin of `fig2_sim`.
//!
//! On a host with ≥ M cores the series reproduces the paper's linear
//! speedup; on fewer cores (including the single-core CI box this
//! repository was built on) threads time-share and the expected shape
//! is instead *constant total throughput* — T_comp ≈ L · τ regardless
//! of M — which certifies that the runner's exchange machinery adds no
//! measurable overhead even when every realization triggers a message.
//!
//! ```text
//! fig2_threads [max_procs] [l_per_proc] [steps_per_point] [--monitor]
//! ```
//!
//! With `--monitor`, each run records the observability trace
//! (`monitor/run_metrics.jsonl` under its results directory) and the
//! largest-M run's monitor summary table is printed after the series.

use std::process::ExitCode;

use parmonc_bench::run_diffusion_threads_report;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let before = args.len();
    args.retain(|a| a != "--monitor");
    let monitor = args.len() < before;
    let max_procs: usize = args.first().map_or(8, |s| s.parse().unwrap_or(8));
    let l_per_proc: u64 = args.get(1).map_or(64, |s| s.parse().unwrap_or(64));
    let steps: usize = args.get(2).map_or(20, |s| s.parse().unwrap_or(20));

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("fig2 thread harness: diffusion workload, 1000x2 matrices,");
    println!(
        "{steps} Euler steps per output point, per-realization exchange; host has {cores} core(s)"
    );
    println!(
        "{:>5} {:>8} {:>12} {:>14} {:>16}",
        "M", "L", "T_comp (s)", "tau (s)", "L*tau/T (thru)"
    );

    let mut m = 1usize;
    let mut failed = false;
    let mut last_summary = None;
    while m <= max_procs {
        let l = l_per_proc * m as u64;
        let dir =
            std::env::temp_dir().join(format!("parmonc-fig2-threads-{}-m{m}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        match run_diffusion_threads_report(l, m, steps, &dir, monitor) {
            Ok(report) => {
                let t_comp = report.elapsed.as_secs_f64();
                let tau = report.mean_time_per_realization;
                let throughput = l as f64 * tau / t_comp;
                println!("{m:>5} {l:>8} {t_comp:>12.3} {tau:>14.6} {throughput:>16.2}");
                last_summary = report.monitor;
            }
            Err(e) => {
                eprintln!("M = {m}: {e}");
                failed = true;
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
        m *= 2;
    }
    if let Some(summary) = last_summary {
        println!("\nmonitor summary of the largest-M run:");
        println!("{}", summary.render_table());
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!(
            "\ninterpretation: with >= M cores, T_comp stays flat as M and L grow together\n\
             (linear speedup); on this {cores}-core host the weak-scaling throughput column\n\
             (ideal = M x cores-limited) certifies exchange overhead stays negligible."
        );
        ExitCode::SUCCESS
    }
}
