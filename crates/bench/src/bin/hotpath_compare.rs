//! Compares a freshly generated bench metric file against the
//! committed baseline and fails (exit 1) on hot-path regressions.
//!
//! ```text
//! hotpath_compare <baseline.json> <current.json> [tolerance] [--waive k1,k2]
//! ```
//!
//! Only `ratio_*` (higher is better), `alloc_*` and `bound_*` (lower
//! is better) keys gate; any current `ratio_*_speedup` key below 1.0
//! fails outright. Raw timing keys are machine-dependent and
//! informational. The default tolerance is 25%.
//!
//! `--waive` removes named keys from both files before comparison —
//! for build configurations where a gate is known not to apply (e.g.
//! waiving `ratio_fill_f64_speedup` on the no-SIMD CI leg, where the
//! portable fill is at parity by design). Waivers are printed so they
//! stay visible in CI logs.

use std::process::ExitCode;

use parmonc_bench::hotpath::{compare, parse_flat_json, DEFAULT_TOLERANCE};

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().collect();
    let mut waived: Vec<String> = Vec::new();
    if let Some(pos) = args.iter().position(|a| a == "--waive") {
        let Some(list) = args.get(pos + 1) else {
            eprintln!("--waive needs a comma-separated key list");
            return ExitCode::from(2);
        };
        waived = list
            .split(',')
            .map(str::trim)
            .filter(|k| !k.is_empty())
            .map(String::from)
            .collect();
        args.drain(pos..=pos + 1);
    }
    let (Some(baseline_path), Some(current_path)) = (args.get(1), args.get(2)) else {
        eprintln!(
            "usage: hotpath_compare <baseline.json> <current.json> [tolerance] [--waive k1,k2]"
        );
        return ExitCode::from(2);
    };
    let tolerance = match args.get(3) {
        Some(t) => match t.parse::<f64>() {
            Ok(v) if v > 0.0 && v < 1.0 => v,
            _ => {
                eprintln!("tolerance must be a fraction in (0, 1), got {t}");
                return ExitCode::from(2);
            }
        },
        None => DEFAULT_TOLERANCE,
    };

    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(text) => Some(parse_flat_json(&text)),
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            None
        }
    };
    let (Some(mut baseline), Some(mut current)) = (read(baseline_path), read(current_path)) else {
        return ExitCode::from(2);
    };
    if !waived.is_empty() {
        baseline.retain(|(k, _)| !waived.contains(k));
        current.retain(|(k, _)| !waived.contains(k));
        for k in &waived {
            println!("WAIVED {k}: excluded from this comparison");
        }
    }

    let is_gated =
        |k: &str| k.starts_with("ratio_") || k.starts_with("alloc_") || k.starts_with("bound_");
    let gated = baseline.iter().filter(|(k, _)| is_gated(k)).count();
    let regressions = compare(&baseline, &current, tolerance);
    println!(
        "hotpath_compare: {gated} gated metric(s), tolerance {:.0}%",
        tolerance * 100.0
    );
    for (key, base) in baseline.iter().filter(|(k, _)| is_gated(k)) {
        let now = current.iter().find(|(k, _)| k == key).map(|(_, v)| *v);
        match now {
            Some(v) => println!("  {key}: baseline {base:.4e}, current {v:.4e}"),
            None => println!("  {key}: baseline {base:.4e}, current MISSING"),
        }
    }
    if regressions.is_empty() {
        println!("OK: no hot-path regressions");
        return ExitCode::SUCCESS;
    }
    for r in &regressions {
        if r.current.is_nan() {
            eprintln!("REGRESSION {}: missing from current run", r.key);
        } else {
            eprintln!(
                "REGRESSION {}: baseline {:.4e} -> current {:.4e}",
                r.key, r.baseline, r.current
            );
        }
    }
    ExitCode::FAILURE
}
