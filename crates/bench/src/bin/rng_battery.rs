//! Runs the statistical battery against the PARMONC generator (and the
//! paper-cited 40-bit LCG for contrast) and prints the period facts of
//! Section 2.4.
//!
//! ```text
//! rng_battery [--thorough]
//! ```

use std::process::ExitCode;

use parmonc_rng::baseline::Lcg40;
use parmonc_rng::multiplier::{order_exponent, DEFAULT_MULTIPLIER, PERIOD_EXPONENT};
use parmonc_rng::{Lcg128, LeapConfig, StreamHierarchy};
use parmonc_rngtest::battery::{run_battery, run_cross_stream_battery, Scale};

fn main() -> ExitCode {
    let thorough = std::env::args().any(|a| a == "--thorough");
    let scale = if thorough {
        Scale::Thorough
    } else {
        Scale::Standard
    };
    let alpha = 1e-3;

    println!("== period facts (paper Section 2.4) ==");
    println!("multiplier A = 5^101 mod 2^128 = {DEFAULT_MULTIPLIER:#034x}");
    let order = order_exponent(DEFAULT_MULTIPLIER).expect("odd multiplier");
    println!("multiplicative order = 2^{order} (claimed period 2^{PERIOD_EXPONENT})");
    let leaps = LeapConfig::default();
    println!(
        "default leaps: n_e = 2^{}, n_p = 2^{}, n_r = 2^{}",
        leaps.ne(),
        leaps.np(),
        leaps.nr()
    );
    println!(
        "capacities: 2^{} experiments x 2^{} processors x 2^{} realizations",
        leaps.experiments_exponent(),
        leaps.processors_exponent(),
        leaps.realizations_exponent()
    );

    println!("\n== single-stream battery: rnd128 (Lcg128) ==");
    let report = run_battery(&mut Lcg128::new(), alpha, scale);
    println!("{report}");
    let main_pass = report.all_pass();

    println!("\n== cross-stream battery: leapfrogged processor streams ==");
    let cross = run_cross_stream_battery(&StreamHierarchy::default(), alpha, scale);
    println!("{cross}");
    let cross_pass = cross.all_pass();

    println!("\n== contrast: the 40-bit LCG the paper calls insufficient ==");
    let contrast = run_battery(&mut Lcg40::new(), alpha, Scale::Standard);
    println!("{contrast}");
    println!(
        "(period 2^{} = {:.2e}; the paper notes one realization can consume\n\
         a comparable quantity of base random numbers)",
        Lcg40::PERIOD_EXPONENT,
        2f64.powi(Lcg40::PERIOD_EXPONENT as i32)
    );

    if main_pass && cross_pass && order == PERIOD_EXPONENT {
        println!("\nverdict: rnd128 and its leapfrog streams pass; period claim verified");
        ExitCode::SUCCESS
    } else {
        println!("\nverdict: FAILURES detected");
        ExitCode::FAILURE
    }
}
