//! The hot-path performance-regression harness: parsing and comparing
//! the flat-JSON metric files the bench harness emits
//! (`PARMONC_BENCH_JSON`, see [`crate::harness`]).
//!
//! The committed baseline lives at `BENCH_hotpath.json` in the repo
//! root; the `hotpath_compare` binary re-runs the comparison against a
//! freshly generated file and fails on regressions. Only three key
//! families gate:
//!
//! * `ratio_*` — within-run speedup ratios (batched vs scalar draw,
//!   cursor vs modpow stream setup, clone-emit vs pooled-emit
//!   allocation). These divide out machine speed, so they are stable
//!   across hosts; a regression means the optimization itself decayed.
//! * `alloc_*` — allocation counts per operation, which are
//!   deterministic.
//! * `bound_*` — policy ceilings: the committed baseline value *is*
//!   the budget (e.g. `bound_metrics_plane_overhead_pct` caps the
//!   metrics-plane overhead at 2 %), and the measurement must stay at
//!   or below it. Like ratios, these are within-run quantities, so
//!   they divide out machine speed.
//!
//! Raw timing keys (everything else) are recorded for humans reading
//! the file but are *not* gated: absolute nanoseconds differ between
//! the committing machine and CI runners.

use std::collections::BTreeMap;

/// Fraction a gated metric may degrade before the comparison fails.
pub const DEFAULT_TOLERANCE: f64 = 0.25;

/// Parses a flat JSON object of string keys to numbers — exactly the
/// shape [`crate::harness::write_json_if_requested`] emits. Tolerant
/// of whitespace; anything that is not a `"key": number` pair is
/// skipped rather than an error (the file is machine-written, and a
/// best-effort parse keeps the checker dependency-free).
#[must_use]
pub fn parse_flat_json(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(open) = rest.find('"') {
        rest = &rest[open + 1..];
        let Some(close) = rest.find('"') else { break };
        let key = &rest[..close];
        rest = &rest[close + 1..];
        let Some(colon) = rest.find(':') else { break };
        let after = rest[colon + 1..].trim_start();
        let end = after
            .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
            .unwrap_or(after.len());
        if let Ok(v) = after[..end].parse::<f64>() {
            out.push((key.to_string(), v));
        }
        rest = &after[end..];
    }
    out
}

/// One gated metric that moved the wrong way past tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Metric key.
    pub key: String,
    /// Committed baseline value.
    pub baseline: f64,
    /// Freshly measured value.
    pub current: f64,
}

/// Compares `current` metrics against `baseline` and returns the
/// regressions. `ratio_*` keys are higher-is-better (fail when the
/// current ratio drops more than `tolerance` below baseline);
/// `alloc_*` and `bound_*` keys are lower-is-better (fail when the
/// current value exceeds baseline by more than `tolerance`). Gated
/// keys present in the baseline but missing from `current` also fail —
/// a silently deleted bench must not pass the gate.
///
/// Additionally, any *current* `ratio_*_speedup` key below `1.0` fails
/// outright, baseline and tolerance notwithstanding: those keys are
/// speedups of an optimized path over the path it replaced, and a value
/// under one means the "optimization" is actively slower — never
/// acceptable no matter what the committed baseline drifted to.
#[must_use]
pub fn compare(
    baseline: &[(String, f64)],
    current: &[(String, f64)],
    tolerance: f64,
) -> Vec<Regression> {
    let cur: BTreeMap<&str, f64> = current.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    let mut regressions = Vec::new();
    for (key, base) in baseline {
        let higher_is_better = key.starts_with("ratio_");
        let lower_is_better = key.starts_with("alloc_") || key.starts_with("bound_");
        if !higher_is_better && !lower_is_better {
            continue;
        }
        let Some(&now) = cur.get(key.as_str()) else {
            regressions.push(Regression {
                key: key.clone(),
                baseline: *base,
                current: f64::NAN,
            });
            continue;
        };
        let failed = if higher_is_better {
            now < base * (1.0 - tolerance)
        } else {
            now > base * (1.0 + tolerance)
        };
        if failed {
            regressions.push(Regression {
                key: key.clone(),
                baseline: *base,
                current: now,
            });
        }
    }
    // Absolute floor on speedup ratios, independent of the baseline.
    let bases: BTreeMap<&str, f64> = baseline.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    for (key, now) in current {
        if key.starts_with("ratio_")
            && key.ends_with("_speedup")
            && *now < 1.0
            && !regressions.iter().any(|r| &r.key == key)
        {
            regressions.push(Regression {
                key: key.clone(),
                baseline: bases.get(key.as_str()).copied().unwrap_or(f64::NAN),
                current: *now,
            });
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_json() {
        let parsed = parse_flat_json(
            "{\n  \"alloc_x\": 128,\n  \"ratio_y\": 3.5e0,\n  \"time_z\": 1.2e-6\n}\n",
        );
        assert_eq!(
            parsed,
            vec![
                ("alloc_x".to_string(), 128.0),
                ("ratio_y".to_string(), 3.5),
                ("time_z".to_string(), 1.2e-6),
            ]
        );
    }

    #[test]
    fn parse_skips_garbage() {
        assert!(parse_flat_json("not json at all").is_empty());
        assert_eq!(parse_flat_json("{\"k\": 2}").len(), 1);
    }

    #[test]
    fn ratio_keys_fail_downward_only() {
        let base = vec![("ratio_speedup".to_string(), 4.0)];
        // 4.0 -> 3.2 is a 20% drop: within the 25% tolerance.
        assert!(compare(&base, &[("ratio_speedup".to_string(), 3.2)], 0.25).is_empty());
        // 4.0 -> 2.9 is past tolerance.
        let r = compare(&base, &[("ratio_speedup".to_string(), 2.9)], 0.25);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].key, "ratio_speedup");
        // Improvements never fail.
        assert!(compare(&base, &[("ratio_speedup".to_string(), 9.0)], 0.25).is_empty());
    }

    #[test]
    fn alloc_keys_fail_upward_only() {
        let base = vec![("alloc_bytes".to_string(), 100.0)];
        assert!(compare(&base, &[("alloc_bytes".to_string(), 120.0)], 0.25).is_empty());
        assert_eq!(
            compare(&base, &[("alloc_bytes".to_string(), 130.0)], 0.25).len(),
            1
        );
        assert!(compare(&base, &[("alloc_bytes".to_string(), 1.0)], 0.25).is_empty());
    }

    #[test]
    fn bound_keys_are_ceilings() {
        let base = vec![("bound_metrics_plane_overhead_pct".to_string(), 2.0)];
        // At or under the (tolerance-widened) bound: fine.
        let ok = [("bound_metrics_plane_overhead_pct".to_string(), 2.4)];
        assert!(compare(&base, &ok, 0.25).is_empty());
        // Past it: a regression.
        let bad = [("bound_metrics_plane_overhead_pct".to_string(), 2.6)];
        assert_eq!(compare(&base, &bad, 0.25).len(), 1);
        // Negative overhead (noise made "enabled" faster) never fails.
        let neg = [("bound_metrics_plane_overhead_pct".to_string(), -0.3)];
        assert!(compare(&base, &neg, 0.25).is_empty());
        // And a missing bound key fails like any gated key.
        assert!(compare(&base, &[], 0.25)[0].current.is_nan());
    }

    #[test]
    fn ungated_keys_are_informational() {
        let base = vec![("full_run/strict".to_string(), 1.0)];
        assert!(compare(&base, &[("full_run/strict".to_string(), 99.0)], 0.25).is_empty());
        // ... and may be missing entirely.
        assert!(compare(&base, &[], 0.25).is_empty());
    }

    #[test]
    fn missing_gated_key_fails() {
        let base = vec![("ratio_speedup".to_string(), 4.0)];
        let r = compare(&base, &[], 0.25);
        assert_eq!(r.len(), 1);
        assert!(r[0].current.is_nan());
    }

    #[test]
    fn speedup_ratio_below_one_fails_regardless_of_baseline() {
        // Even a baseline that *recorded* a slowdown doesn't excuse one:
        // 0.88 -> 0.90 would pass the relative gate but is still a
        // pessimization and must fail.
        let base = vec![("ratio_fill_f64_speedup".to_string(), 0.88)];
        let r = compare(&base, &[("ratio_fill_f64_speedup".to_string(), 0.90)], 0.5);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].key, "ratio_fill_f64_speedup");
        assert_eq!(r[0].current, 0.90);
        // A current-only key (no baseline at all) below 1.0 also fails.
        let r = compare(&[], &[("ratio_new_thing_speedup".to_string(), 0.7)], 0.5);
        assert_eq!(r.len(), 1);
        assert!(r[0].baseline.is_nan());
        // At or above 1.0 the floor is satisfied.
        assert!(compare(&[], &[("ratio_new_thing_speedup".to_string(), 1.0)], 0.5).is_empty());
        // Non-speedup ratio keys are exempt from the absolute floor
        // (e.g. ratios that legitimately sit below one).
        assert!(compare(&[], &[("ratio_overhead".to_string(), 0.4)], 0.5).is_empty());
    }

    #[test]
    fn speedup_floor_does_not_duplicate_relative_regression() {
        // 4.0 -> 0.5 trips both the relative gate and the absolute
        // floor; it must be reported once.
        let base = vec![("ratio_x_speedup".to_string(), 4.0)];
        let r = compare(&base, &[("ratio_x_speedup".to_string(), 0.5)], 0.25);
        assert_eq!(r.len(), 1);
    }
}
