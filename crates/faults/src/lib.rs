//! Deterministic fault injection for PARMONC.
//!
//! A [`FaultPlan`] scripts every fault a chaos test wants to see —
//! rank crashes after realization *N*, message drop/duplication/delay
//! by `(src, dst, tag, sequence)`, and I/O faults (torn writes, bit
//! flips, `ErrorKind::Interrupted`) — from a single seed and its own
//! small generator, never the wall clock. The same plan therefore
//! injects the same faults on every run and on both engines (the
//! real-thread runner and the virtual-time cluster simulator).
//!
//! Instrumented code holds a [`FaultHandle`], which mirrors the
//! `Monitor` pattern from `parmonc-obs`: the disabled handle
//! ([`FaultHandle::disabled`], also the `Default` and what
//! [`FaultPlan::build`] returns for an empty plan) is a single `None`
//! branch on the hot path — no locks, no hashing, no allocation.
//!
//! Decisions are pure functions of the plan plus the *identity* of the
//! operation (message coordinates, write ordinal), so they do not
//! depend on thread interleaving: [`FaultPlan::message_action`] and
//! [`FaultPlan::crash_point`] can be consulted independently by the
//! simulator, while the handle adds the per-channel sequence counters
//! and write counters a live run needs.
//!
//! # Example
//!
//! ```
//! use parmonc_faults::{FaultPlan, SendAction};
//!
//! let plan = FaultPlan::new(42)
//!     .crash_rank(2, 100)
//!     .drop_message(1, 0, 1, 3)
//!     .drop_fraction(0.05);
//! assert_eq!(plan.crash_point(2), Some(100));
//! assert_eq!(plan.message_action(1, 0, 1, 3), SendAction::Drop);
//!
//! let handle = plan.build();
//! assert!(handle.is_enabled());
//! // The handle numbers each (src, dst, tag) channel itself:
//! let (seq, action) = handle.on_send(1, 0, 1);
//! assert_eq!(seq, 0);
//! assert_eq!(action, SendAction::Deliver); // seq 3 is the scripted drop
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Mixes a 64-bit value into a well-distributed hash (the splitmix64
/// finalizer). Deterministic, allocation-free, and good enough to turn
/// message identities into independent uniform deviates.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Maps a hash to the unit interval `[0, 1)` using its top 53 bits.
fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A tiny multiplicative LCG (Knuth's MMIX constants) — the plan's own
/// generator for choices that need a short deterministic stream, such
/// as picking which byte of a frame to corrupt. Never seeded from the
/// wall clock.
#[derive(Debug, Clone)]
struct Lcg64 {
    state: u64,
}

impl Lcg64 {
    fn new(seed: u64) -> Self {
        Self {
            state: splitmix64(seed),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        splitmix64(self.state)
    }
}

/// Every fault the plane can inject, named exactly as the monitor
/// schema's `fault_injected.fault` vocabulary spells them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A worker rank stops mid-run after a scripted realization count.
    RankCrash,
    /// A point-to-point message is silently discarded.
    MessageDrop,
    /// A point-to-point message is delivered twice.
    MessageDuplicate,
    /// A point-to-point message is held back and delivered late.
    MessageDelay,
    /// An atomic write is cut short, leaving a truncated file.
    TornWrite,
    /// One bit of a written file is flipped.
    BitFlip,
    /// A write fails once with `ErrorKind::Interrupted`.
    IoInterrupt,
}

impl FaultKind {
    /// The wire name used by `fault_injected` monitor events.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::RankCrash => "rank_crash",
            Self::MessageDrop => "message_drop",
            Self::MessageDuplicate => "message_duplicate",
            Self::MessageDelay => "message_delay",
            Self::TornWrite => "torn_write",
            Self::BitFlip => "bit_flip",
            Self::IoInterrupt => "io_interrupt",
        }
    }
}

/// What the fault plane decided about one outgoing message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendAction {
    /// Deliver normally (the overwhelmingly common case).
    Deliver,
    /// Discard the message; the receiver never sees it.
    Drop,
    /// Deliver the message twice.
    Duplicate,
    /// Hold the message back while `hold_sends` further sends age it;
    /// it re-enters the channel during the `hold_sends`-th subsequent
    /// send, just ahead of that send's own message (reordered, never
    /// lost).
    Delay {
        /// Subsequent sends needed before the held message is
        /// released.
        hold_sends: u32,
    },
}

/// A fault injected into one file write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// Truncate the written bytes mid-file, modelling a crash between
    /// `write` and `rename`.
    TornWrite,
    /// Flip one deterministic bit of the contents.
    BitFlip,
    /// Fail once with `std::io::ErrorKind::Interrupted`.
    Interrupted,
}

impl IoFault {
    /// The matching [`FaultKind`] for monitor events.
    #[must_use]
    pub fn kind(self) -> FaultKind {
        match self {
            Self::TornWrite => FaultKind::TornWrite,
            Self::BitFlip => FaultKind::BitFlip,
            Self::Interrupted => FaultKind::IoInterrupt,
        }
    }
}

/// One scripted message-fault rule, matched by exact coordinates.
#[derive(Debug, Clone, PartialEq)]
struct MessageRule {
    src: usize,
    dst: usize,
    tag: u32,
    seq: u64,
    action: SendAction,
}

/// One scripted I/O-fault rule, matched by file-name substring and the
/// ordinal of the matching write.
#[derive(Debug, Clone, PartialEq)]
struct IoRule {
    file_substr: String,
    nth: u64,
    fault: IoFault,
}

/// A seeded, scripted fault plan.
///
/// The plan is pure data: cloning it, comparing it, or consulting
/// [`Self::message_action`]/[`Self::crash_point`] never mutates
/// anything, so the virtual-time simulator can replay exactly the
/// faults a live run injects. [`Self::build`] compiles the plan into
/// the stateful [`FaultHandle`] live code consumes.
///
/// Crash directives for rank 0 are stored but ignored by the runner:
/// the collector is the single point of failure by design (the paper's
/// dedicated collector rank), and its loss is out of scope.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    seed: u64,
    crashes: Vec<(usize, u64)>,
    message_rules: Vec<MessageRule>,
    drop_fraction: f64,
    duplicate_fraction: f64,
    io_rules: Vec<IoRule>,
}

impl FaultPlan {
    /// An empty plan with the given seed. The seed only matters once
    /// probabilistic faults ([`Self::drop_fraction`],
    /// [`Self::duplicate_fraction`]) or byte mutations are used.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// The canonical "no faults" plan (what `Default` also gives).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Scripts rank `rank` to crash after completing `after`
    /// realizations: it stops simulating, sends no final subtotal, and
    /// goes silent.
    #[must_use]
    pub fn crash_rank(mut self, rank: usize, after: u64) -> Self {
        self.crashes.push((rank, after));
        self
    }

    /// Scripts the `seq`-th message (0-based, counted per
    /// `(src, dst, tag)` channel) to be dropped.
    #[must_use]
    pub fn drop_message(mut self, src: usize, dst: usize, tag: u32, seq: u64) -> Self {
        self.message_rules.push(MessageRule {
            src,
            dst,
            tag,
            seq,
            action: SendAction::Drop,
        });
        self
    }

    /// Scripts the `seq`-th message on a channel to be delivered twice.
    #[must_use]
    pub fn duplicate_message(mut self, src: usize, dst: usize, tag: u32, seq: u64) -> Self {
        self.message_rules.push(MessageRule {
            src,
            dst,
            tag,
            seq,
            action: SendAction::Duplicate,
        });
        self
    }

    /// Scripts the `seq`-th message on a channel to be held until
    /// `hold_sends` later sends from the same rank have overtaken it.
    #[must_use]
    pub fn delay_message(
        mut self,
        src: usize,
        dst: usize,
        tag: u32,
        seq: u64,
        hold_sends: u32,
    ) -> Self {
        self.message_rules.push(MessageRule {
            src,
            dst,
            tag,
            seq,
            action: SendAction::Delay { hold_sends },
        });
        self
    }

    /// Drops each unscripted message independently with probability
    /// `p`, decided by a pure hash of the message identity (so the
    /// decision is identical across runs and engines).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    #[must_use]
    pub fn drop_fraction(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "drop fraction must be in [0,1]");
        self.drop_fraction = p;
        self
    }

    /// Duplicates each unscripted, undropped message independently
    /// with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    #[must_use]
    pub fn duplicate_fraction(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "duplicate fraction must be in [0,1]"
        );
        self.duplicate_fraction = p;
        self
    }

    /// Scripts the `nth` (0-based) write to any file whose name
    /// contains `file_substr` to be torn: only a prefix of the bytes
    /// reaches the final path, as if the process died mid-write.
    #[must_use]
    pub fn torn_write(mut self, file_substr: &str, nth: u64) -> Self {
        self.io_rules.push(IoRule {
            file_substr: file_substr.to_string(),
            nth,
            fault: IoFault::TornWrite,
        });
        self
    }

    /// Scripts the `nth` matching write to have one bit flipped.
    #[must_use]
    pub fn bit_flip_write(mut self, file_substr: &str, nth: u64) -> Self {
        self.io_rules.push(IoRule {
            file_substr: file_substr.to_string(),
            nth,
            fault: IoFault::BitFlip,
        });
        self
    }

    /// Scripts the `nth` matching write to fail once with
    /// `ErrorKind::Interrupted` (callers are expected to retry).
    #[must_use]
    pub fn interrupt_write(mut self, file_substr: &str, nth: u64) -> Self {
        self.io_rules.push(IoRule {
            file_substr: file_substr.to_string(),
            nth,
            fault: IoFault::Interrupted,
        });
        self
    }

    /// True if the plan scripts nothing — [`Self::build`] then returns
    /// the disabled handle.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
            && self.message_rules.is_empty()
            && self.io_rules.is_empty()
            && self.drop_fraction == 0.0
            && self.duplicate_fraction == 0.0
    }

    /// The scripted crash point for `rank`, if any (the earliest, if
    /// several were scripted).
    #[must_use]
    pub fn crash_point(&self, rank: usize) -> Option<u64> {
        self.crashes
            .iter()
            .filter(|(r, _)| *r == rank)
            .map(|(_, after)| *after)
            .min()
    }

    /// The fate of the `seq`-th message on channel `(src, dst, tag)`.
    ///
    /// Pure: scripted rules are checked first, then the probabilistic
    /// fractions, decided by hashing `(seed, src, dst, tag, seq)` — so
    /// the same message identity gets the same fate on every engine,
    /// regardless of thread interleaving.
    #[must_use]
    pub fn message_action(&self, src: usize, dst: usize, tag: u32, seq: u64) -> SendAction {
        for rule in &self.message_rules {
            if rule.src == src && rule.dst == dst && rule.tag == tag && rule.seq == seq {
                return rule.action;
            }
        }
        if self.drop_fraction > 0.0 || self.duplicate_fraction > 0.0 {
            let identity = splitmix64(self.seed)
                ^ splitmix64((src as u64) << 32 | dst as u64)
                ^ splitmix64(u64::from(tag) << 48 | seq);
            let u = unit_f64(splitmix64(identity));
            if u < self.drop_fraction {
                return SendAction::Drop;
            }
            if u < self.drop_fraction + self.duplicate_fraction {
                return SendAction::Duplicate;
            }
        }
        SendAction::Deliver
    }

    /// Compiles the plan into the handle live code consults. An empty
    /// plan compiles to the disabled handle.
    #[must_use]
    pub fn build(&self) -> FaultHandle {
        if self.is_empty() {
            FaultHandle::disabled()
        } else {
            FaultHandle {
                inner: Some(Arc::new(Inner {
                    plan: self.clone(),
                    state: Mutex::new(State {
                        seqs: HashMap::new(),
                        io_counts: vec![0; self.io_rules.len()],
                        records: Vec::new(),
                    }),
                })),
            }
        }
    }
}

/// One injected fault, as remembered by the handle for test
/// introspection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// Which fault fired.
    pub kind: FaultKind,
    /// Kind-specific detail: the message sequence number for message
    /// faults, the write ordinal for I/O faults; `None` for crashes
    /// recorded without one.
    pub detail: Option<u64>,
}

/// Mutable per-run state behind the enabled handle.
#[derive(Debug)]
struct State {
    /// Next sequence number per `(src, dst, tag)` channel.
    seqs: HashMap<(usize, usize, u32), u64>,
    /// Writes seen so far per I/O rule.
    io_counts: Vec<u64>,
    /// Everything injected so far.
    records: Vec<FaultRecord>,
}

#[derive(Debug)]
struct Inner {
    plan: FaultPlan,
    state: Mutex<State>,
}

/// The stateful fault plane live code consults.
///
/// Mirrors the `Monitor` pattern: the disabled handle is a single
/// `None` check on every hot path, and cloning shares the same
/// sequence counters and record log across ranks.
#[derive(Debug, Clone, Default)]
pub struct FaultHandle {
    inner: Option<Arc<Inner>>,
}

impl FaultHandle {
    /// The no-op handle: every query answers "no fault" after one
    /// branch.
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// True if a non-empty plan is attached.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The plan behind the handle, if enabled.
    #[must_use]
    pub fn plan(&self) -> Option<&FaultPlan> {
        self.inner.as_deref().map(|i| &i.plan)
    }

    /// The scripted crash point for `rank`, if any.
    #[must_use]
    pub fn crash_after(&self, rank: usize) -> Option<u64> {
        self.inner.as_deref()?.plan.crash_point(rank)
    }

    /// Numbers an outgoing message on channel `(src, dst, tag)` and
    /// decides its fate. Returns `(sequence, action)`; the disabled
    /// handle always answers `(0, Deliver)` without locking.
    pub fn on_send(&self, src: usize, dst: usize, tag: u32) -> (u64, SendAction) {
        let Some(inner) = self.inner.as_deref() else {
            return (0, SendAction::Deliver);
        };
        let mut state = inner.state.lock().expect("fault state poisoned");
        let seq_ref = state.seqs.entry((src, dst, tag)).or_insert(0);
        let seq = *seq_ref;
        *seq_ref += 1;
        let action = inner.plan.message_action(src, dst, tag, seq);
        let kind = match action {
            SendAction::Deliver => None,
            SendAction::Drop => Some(FaultKind::MessageDrop),
            SendAction::Duplicate => Some(FaultKind::MessageDuplicate),
            SendAction::Delay { .. } => Some(FaultKind::MessageDelay),
        };
        if let Some(kind) = kind {
            state.records.push(FaultRecord {
                kind,
                detail: Some(seq),
            });
        }
        (seq, action)
    }

    /// Records that `rank` is about to execute its scripted crash.
    pub fn note_crash(&self, rank: usize, after: u64) {
        if let Some(inner) = self.inner.as_deref() {
            let _ = rank;
            inner
                .state
                .lock()
                .expect("fault state poisoned")
                .records
                .push(FaultRecord {
                    kind: FaultKind::RankCrash,
                    detail: Some(after),
                });
        }
    }

    /// Decides whether this write of `path` gets an injected I/O
    /// fault. Counts one write per matching rule; a rule fires exactly
    /// once, on its scripted ordinal. The disabled handle answers
    /// `None` without locking.
    pub fn on_write(&self, path: &Path) -> Option<IoFault> {
        let inner = self.inner.as_deref()?;
        if inner.plan.io_rules.is_empty() {
            return None;
        }
        let name = path.file_name()?.to_string_lossy();
        let mut state = inner.state.lock().expect("fault state poisoned");
        let mut fired = None;
        for (idx, rule) in inner.plan.io_rules.iter().enumerate() {
            if !name.contains(&rule.file_substr) {
                continue;
            }
            let count = state.io_counts[idx];
            state.io_counts[idx] += 1;
            if count == rule.nth && fired.is_none() {
                fired = Some((rule.fault, count));
            }
        }
        if let Some((fault, ordinal)) = fired {
            state.records.push(FaultRecord {
                kind: fault.kind(),
                detail: Some(ordinal),
            });
            return Some(fault);
        }
        None
    }

    /// Everything injected so far, in order — for test introspection.
    #[must_use]
    pub fn records(&self) -> Vec<FaultRecord> {
        self.inner.as_deref().map_or_else(Vec::new, |inner| {
            inner
                .state
                .lock()
                .expect("fault state poisoned")
                .records
                .clone()
        })
    }
}

/// How [`mutate_bytes`] corrupted a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Bit `bit` of byte `index` was flipped.
    BitFlip {
        /// Byte offset of the flipped bit.
        index: usize,
        /// Bit position within the byte (0–7).
        bit: u8,
    },
    /// The frame was truncated to `len` bytes.
    Truncate {
        /// The new, shorter length.
        len: usize,
    },
}

/// Deterministically flips one bit of `bytes` in place (never
/// truncates) — the primitive behind injected bit-flip I/O faults.
/// Returns the `(byte index, bit)` flipped, or `None` for empty input.
pub fn flip_one_bit(seed: u64, bytes: &mut [u8]) -> Option<(usize, u8)> {
    if bytes.is_empty() {
        return None;
    }
    let mut lcg = Lcg64::new(seed);
    let index = (lcg.next_u64() % bytes.len() as u64) as usize;
    let bit = (lcg.next_u64() % 8) as u8;
    bytes[index] ^= 1 << bit;
    Some((index, bit))
}

/// Deterministically corrupts a byte frame in place — the primitive
/// behind the framing property tests: half the seeds flip one bit,
/// the other half truncate. Empty input is returned unchanged as a
/// zero-length truncation.
pub fn mutate_bytes(seed: u64, bytes: &mut Vec<u8>) -> Mutation {
    let mut lcg = Lcg64::new(seed);
    if bytes.is_empty() {
        return Mutation::Truncate { len: 0 };
    }
    if lcg.next_u64().is_multiple_of(2) {
        let index = (lcg.next_u64() % bytes.len() as u64) as usize;
        let bit = (lcg.next_u64() % 8) as u8;
        bytes[index] ^= 1 << bit;
        Mutation::BitFlip { index, bit }
    } else {
        let len = (lcg.next_u64() % bytes.len() as u64) as usize;
        bytes.truncate(len);
        Mutation::Truncate { len }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn empty_plan_builds_disabled_handle() {
        let handle = FaultPlan::none().build();
        assert!(!handle.is_enabled());
        assert_eq!(handle.on_send(1, 0, 1), (0, SendAction::Deliver));
        assert_eq!(handle.crash_after(1), None);
        assert_eq!(handle.on_write(Path::new("checkpoint.dat")), None);
        assert!(handle.records().is_empty());
        assert!(FaultPlan::new(9).is_empty());
        assert!(!FaultHandle::default().is_enabled());
    }

    #[test]
    fn scripted_rules_fire_on_exact_coordinates() {
        let plan = FaultPlan::new(1)
            .drop_message(1, 0, 1, 2)
            .duplicate_message(2, 0, 1, 0)
            .delay_message(3, 0, 2, 1, 4);
        assert_eq!(plan.message_action(1, 0, 1, 2), SendAction::Drop);
        assert_eq!(plan.message_action(1, 0, 1, 3), SendAction::Deliver);
        assert_eq!(plan.message_action(2, 0, 1, 0), SendAction::Duplicate);
        assert_eq!(
            plan.message_action(3, 0, 2, 1),
            SendAction::Delay { hold_sends: 4 }
        );
        // Different tag, same everything else: no match.
        assert_eq!(plan.message_action(3, 0, 1, 1), SendAction::Deliver);
    }

    #[test]
    fn handle_counts_sequences_per_channel() {
        let handle = FaultPlan::new(1).drop_message(1, 0, 1, 1).build();
        assert_eq!(handle.on_send(1, 0, 1), (0, SendAction::Deliver));
        assert_eq!(handle.on_send(1, 0, 2), (0, SendAction::Deliver));
        assert_eq!(handle.on_send(1, 0, 1), (1, SendAction::Drop));
        assert_eq!(handle.on_send(1, 0, 1), (2, SendAction::Deliver));
        let records = handle.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].kind, FaultKind::MessageDrop);
        assert_eq!(records[0].detail, Some(1));
    }

    #[test]
    fn fractional_drops_are_deterministic_and_roughly_calibrated() {
        let plan = FaultPlan::new(77).drop_fraction(0.1);
        let mut dropped = 0;
        for seq in 0..10_000 {
            let a = plan.message_action(1, 0, 1, seq);
            assert_eq!(a, plan.message_action(1, 0, 1, seq), "not deterministic");
            if a == SendAction::Drop {
                dropped += 1;
            }
        }
        // 10% of 10k with generous slack: the hash should not be wildly
        // miscalibrated.
        assert!((600..=1400).contains(&dropped), "dropped {dropped}");
        // A different seed decides differently somewhere.
        let other = FaultPlan::new(78).drop_fraction(0.1);
        assert!((0..10_000)
            .any(|s| plan.message_action(1, 0, 1, s) != other.message_action(1, 0, 1, s)));
    }

    #[test]
    fn duplicate_fraction_shares_the_same_deviate() {
        let plan = FaultPlan::new(3)
            .drop_fraction(0.05)
            .duplicate_fraction(0.05);
        let mut seen_dup = false;
        let mut seen_drop = false;
        for seq in 0..5_000 {
            match plan.message_action(4, 0, 1, seq) {
                SendAction::Drop => seen_drop = true,
                SendAction::Duplicate => seen_dup = true,
                _ => {}
            }
        }
        assert!(seen_drop && seen_dup);
    }

    #[test]
    fn crash_points_take_the_earliest_script() {
        let plan = FaultPlan::new(0).crash_rank(2, 100).crash_rank(2, 50);
        assert_eq!(plan.crash_point(2), Some(50));
        assert_eq!(plan.crash_point(1), None);
        let handle = plan.build();
        assert_eq!(handle.crash_after(2), Some(50));
        handle.note_crash(2, 50);
        assert_eq!(handle.records()[0].kind, FaultKind::RankCrash);
    }

    #[test]
    fn io_rules_fire_once_on_their_ordinal() {
        let handle = FaultPlan::new(0)
            .torn_write("checkpoint.dat", 1)
            .interrupt_write("results", 0)
            .build();
        let ckpt = PathBuf::from("/data/checkpoint.dat");
        assert_eq!(handle.on_write(&ckpt), None); // write 0
        assert_eq!(handle.on_write(&ckpt), Some(IoFault::TornWrite)); // write 1
        assert_eq!(handle.on_write(&ckpt), None); // write 2
        assert_eq!(
            handle.on_write(Path::new("results_func.dat")),
            Some(IoFault::Interrupted)
        );
        assert_eq!(handle.on_write(Path::new("unrelated.txt")), None);
        let kinds: Vec<FaultKind> = handle.records().iter().map(|r| r.kind).collect();
        assert_eq!(kinds, vec![FaultKind::TornWrite, FaultKind::IoInterrupt]);
    }

    #[test]
    fn mutate_bytes_is_deterministic_and_always_corrupts() {
        for seed in 0..64 {
            let original: Vec<u8> = (0..40).map(|i| i as u8).collect();
            let mut a = original.clone();
            let mut b = original.clone();
            let ma = mutate_bytes(seed, &mut a);
            let mb = mutate_bytes(seed, &mut b);
            assert_eq!(ma, mb);
            assert_eq!(a, b);
            match ma {
                Mutation::BitFlip { index, bit } => {
                    assert!(index < original.len());
                    assert_eq!(a[index], original[index] ^ (1 << bit));
                }
                Mutation::Truncate { len } => {
                    assert!(len < original.len());
                    assert_eq!(a.len(), len);
                }
            }
        }
        let mut empty = Vec::new();
        assert_eq!(mutate_bytes(5, &mut empty), Mutation::Truncate { len: 0 });
    }

    #[test]
    fn flip_one_bit_is_deterministic_and_never_truncates() {
        let mut a = vec![0u8; 16];
        let mut b = vec![0u8; 16];
        let fa = flip_one_bit(9, &mut a).unwrap();
        let fb = flip_one_bit(9, &mut b).unwrap();
        assert_eq!(fa, fb);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        assert_eq!(a.iter().map(|x| x.count_ones()).sum::<u32>(), 1);
        assert_eq!(flip_one_bit(9, &mut []), None);
    }

    #[test]
    fn fault_kind_names_match_the_schema_vocabulary() {
        let kinds = [
            FaultKind::RankCrash,
            FaultKind::MessageDrop,
            FaultKind::MessageDuplicate,
            FaultKind::MessageDelay,
            FaultKind::TornWrite,
            FaultKind::BitFlip,
            FaultKind::IoInterrupt,
        ];
        let names: Vec<&str> = kinds.iter().map(|k| k.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "rank_crash",
                "message_drop",
                "message_duplicate",
                "message_delay",
                "torn_write",
                "bit_flip",
                "io_interrupt",
            ]
        );
    }
}
