//! Deterministic fault injection for PARMONC.
//!
//! A [`FaultPlan`] scripts every fault a chaos test wants to see —
//! rank crashes after realization *N*, message drop/duplication/delay
//! by `(src, dst, tag, sequence)`, and I/O faults (torn writes, bit
//! flips, `ErrorKind::Interrupted`) — from a single seed and its own
//! small generator, never the wall clock. The same plan therefore
//! injects the same faults on every run and on both engines (the
//! real-thread runner and the virtual-time cluster simulator).
//!
//! Instrumented code holds a [`FaultHandle`], which mirrors the
//! `Monitor` pattern from `parmonc-obs`: the disabled handle
//! ([`FaultHandle::disabled`], also the `Default` and what
//! [`FaultPlan::build`] returns for an empty plan) is a single `None`
//! branch on the hot path — no locks, no hashing, no allocation.
//!
//! Decisions are pure functions of the plan plus the *identity* of the
//! operation (message coordinates, write ordinal), so they do not
//! depend on thread interleaving: [`FaultPlan::message_action`] and
//! [`FaultPlan::crash_point`] can be consulted independently by the
//! simulator, while the handle adds the per-channel sequence counters
//! and write counters a live run needs.
//!
//! # Example
//!
//! ```
//! use parmonc_faults::{FaultPlan, SendAction};
//!
//! let plan = FaultPlan::new(42)
//!     .crash_rank(2, 100)
//!     .drop_message(1, 0, 1, 3)
//!     .drop_fraction(0.05);
//! assert_eq!(plan.crash_point(2), Some(100));
//! assert_eq!(plan.message_action(1, 0, 1, 3), SendAction::Drop);
//!
//! let handle = plan.build();
//! assert!(handle.is_enabled());
//! // The handle numbers each (src, dst, tag) channel itself:
//! let (seq, action) = handle.on_send(1, 0, 1);
//! assert_eq!(seq, 0);
//! assert_eq!(action, SendAction::Deliver); // seq 3 is the scripted drop
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Mixes a 64-bit value into a well-distributed hash (the splitmix64
/// finalizer). Deterministic, allocation-free, and good enough to turn
/// message identities into independent uniform deviates.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Maps a hash to the unit interval `[0, 1)` using its top 53 bits.
fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A tiny multiplicative LCG (Knuth's MMIX constants) — the plan's own
/// generator for choices that need a short deterministic stream, such
/// as picking which byte of a frame to corrupt. Never seeded from the
/// wall clock.
#[derive(Debug, Clone)]
struct Lcg64 {
    state: u64,
}

impl Lcg64 {
    fn new(seed: u64) -> Self {
        Self {
            state: splitmix64(seed),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        splitmix64(self.state)
    }
}

/// Every fault the plane can inject, named exactly as the monitor
/// schema's `fault_injected.fault` vocabulary spells them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A worker rank stops mid-run after a scripted realization count.
    RankCrash,
    /// A point-to-point message is silently discarded.
    MessageDrop,
    /// A point-to-point message is delivered twice.
    MessageDuplicate,
    /// A point-to-point message is held back and delivered late.
    MessageDelay,
    /// An atomic write is cut short, leaving a truncated file.
    TornWrite,
    /// One bit of a written file is flipped.
    BitFlip,
    /// A write fails once with `ErrorKind::Interrupted`.
    IoInterrupt,
    /// A transport connection is severed at a scripted frame ordinal.
    NetSever,
    /// An outbound frame is held on the wire for a scripted delay.
    NetStall,
    /// A frame is cut mid-write and the connection broken, leaving the
    /// receiver a torn frame.
    NetTear,
    /// A reconnect attempt is vetoed by a scripted network partition.
    NetPartition,
}

impl FaultKind {
    /// The wire name used by `fault_injected` monitor events.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::RankCrash => "rank_crash",
            Self::MessageDrop => "message_drop",
            Self::MessageDuplicate => "message_duplicate",
            Self::MessageDelay => "message_delay",
            Self::TornWrite => "torn_write",
            Self::BitFlip => "bit_flip",
            Self::IoInterrupt => "io_interrupt",
            Self::NetSever => "net_sever",
            Self::NetStall => "net_stall",
            Self::NetTear => "net_tear",
            Self::NetPartition => "net_partition",
        }
    }
}

/// What the fault plane decided about one outgoing message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendAction {
    /// Deliver normally (the overwhelmingly common case).
    Deliver,
    /// Discard the message; the receiver never sees it.
    Drop,
    /// Deliver the message twice.
    Duplicate,
    /// Hold the message back while `hold_sends` further sends age it;
    /// it re-enters the channel during the `hold_sends`-th subsequent
    /// send, just ahead of that send's own message (reordered, never
    /// lost).
    Delay {
        /// Subsequent sends needed before the held message is
        /// released.
        hold_sends: u32,
    },
}

/// A fault injected into one file write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// Truncate the written bytes mid-file, modelling a crash between
    /// `write` and `rename`.
    TornWrite,
    /// Flip one deterministic bit of the contents.
    BitFlip,
    /// Fail once with `std::io::ErrorKind::Interrupted`.
    Interrupted,
}

impl IoFault {
    /// The matching [`FaultKind`] for monitor events.
    #[must_use]
    pub fn kind(self) -> FaultKind {
        match self {
            Self::TornWrite => FaultKind::TornWrite,
            Self::BitFlip => FaultKind::BitFlip,
            Self::Interrupted => FaultKind::IoInterrupt,
        }
    }
}

/// One scripted message-fault rule, matched by exact coordinates.
#[derive(Debug, Clone, PartialEq)]
struct MessageRule {
    src: usize,
    dst: usize,
    tag: u32,
    seq: u64,
    action: SendAction,
}

/// One scripted I/O-fault rule, matched by file-name substring and the
/// ordinal of the matching write.
#[derive(Debug, Clone, PartialEq)]
struct IoRule {
    file_substr: String,
    nth: u64,
    fault: IoFault,
}

/// What the fault plane decided about one outbound transport frame on
/// a worker's link to the collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetAction {
    /// Write the frame normally.
    Deliver,
    /// Hold the frame on the wire for this many milliseconds, then
    /// deliver it.
    Stall {
        /// Delay before the frame is written.
        millis: u64,
    },
    /// Break the connection before any byte of the frame is written.
    Sever,
    /// Write only a prefix of the frame, then break the connection —
    /// the receiver sees a torn frame.
    Tear,
}

/// One scripted network-fault rule on a worker rank's link.
#[derive(Debug, Clone, PartialEq)]
enum NetRule {
    /// Break the link when its outbound frame counter reaches
    /// `after_frame`.
    Sever { rank: usize, after_frame: u64 },
    /// Delay each of the first `frames` outbound frames by `millis`.
    Stall {
        rank: usize,
        frames: u64,
        millis: u64,
    },
    /// Cut the frame with this ordinal mid-write.
    Tear { rank: usize, ordinal: u64 },
}

/// A scripted partition: the named ranks lose their link at
/// `from_frame` and their next `duration_attempts` reconnect attempts
/// fail deterministically (time-free "duration").
#[derive(Debug, Clone, PartialEq)]
struct PartitionRule {
    ranks: Vec<usize>,
    from_frame: u64,
    duration_attempts: u64,
}

/// A seeded, scripted fault plan.
///
/// The plan is pure data: cloning it, comparing it, or consulting
/// [`Self::message_action`]/[`Self::crash_point`] never mutates
/// anything, so the virtual-time simulator can replay exactly the
/// faults a live run injects. [`Self::build`] compiles the plan into
/// the stateful [`FaultHandle`] live code consumes.
///
/// Crash directives for rank 0 are stored but ignored by the runner:
/// the collector is the single point of failure by design (the paper's
/// dedicated collector rank), and its loss is out of scope.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    seed: u64,
    crashes: Vec<(usize, u64)>,
    message_rules: Vec<MessageRule>,
    drop_fraction: f64,
    duplicate_fraction: f64,
    io_rules: Vec<IoRule>,
    net_rules: Vec<NetRule>,
    partitions: Vec<PartitionRule>,
}

impl FaultPlan {
    /// An empty plan with the given seed. The seed only matters once
    /// probabilistic faults ([`Self::drop_fraction`],
    /// [`Self::duplicate_fraction`]) or byte mutations are used.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// The canonical "no faults" plan (what `Default` also gives).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Scripts rank `rank` to crash after completing `after`
    /// realizations: it stops simulating, sends no final subtotal, and
    /// goes silent.
    #[must_use]
    pub fn crash_rank(mut self, rank: usize, after: u64) -> Self {
        self.crashes.push((rank, after));
        self
    }

    /// Scripts the `seq`-th message (0-based, counted per
    /// `(src, dst, tag)` channel) to be dropped.
    #[must_use]
    pub fn drop_message(mut self, src: usize, dst: usize, tag: u32, seq: u64) -> Self {
        self.message_rules.push(MessageRule {
            src,
            dst,
            tag,
            seq,
            action: SendAction::Drop,
        });
        self
    }

    /// Scripts the `seq`-th message on a channel to be delivered twice.
    #[must_use]
    pub fn duplicate_message(mut self, src: usize, dst: usize, tag: u32, seq: u64) -> Self {
        self.message_rules.push(MessageRule {
            src,
            dst,
            tag,
            seq,
            action: SendAction::Duplicate,
        });
        self
    }

    /// Scripts the `seq`-th message on a channel to be held until
    /// `hold_sends` later sends from the same rank have overtaken it.
    #[must_use]
    pub fn delay_message(
        mut self,
        src: usize,
        dst: usize,
        tag: u32,
        seq: u64,
        hold_sends: u32,
    ) -> Self {
        self.message_rules.push(MessageRule {
            src,
            dst,
            tag,
            seq,
            action: SendAction::Delay { hold_sends },
        });
        self
    }

    /// Drops each unscripted message independently with probability
    /// `p`, decided by a pure hash of the message identity (so the
    /// decision is identical across runs and engines).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    #[must_use]
    pub fn drop_fraction(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "drop fraction must be in [0,1]");
        self.drop_fraction = p;
        self
    }

    /// Duplicates each unscripted, undropped message independently
    /// with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    #[must_use]
    pub fn duplicate_fraction(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "duplicate fraction must be in [0,1]"
        );
        self.duplicate_fraction = p;
        self
    }

    /// Scripts the `nth` (0-based) write to any file whose name
    /// contains `file_substr` to be torn: only a prefix of the bytes
    /// reaches the final path, as if the process died mid-write.
    #[must_use]
    pub fn torn_write(mut self, file_substr: &str, nth: u64) -> Self {
        self.io_rules.push(IoRule {
            file_substr: file_substr.to_string(),
            nth,
            fault: IoFault::TornWrite,
        });
        self
    }

    /// Scripts the `nth` matching write to have one bit flipped.
    #[must_use]
    pub fn bit_flip_write(mut self, file_substr: &str, nth: u64) -> Self {
        self.io_rules.push(IoRule {
            file_substr: file_substr.to_string(),
            nth,
            fault: IoFault::BitFlip,
        });
        self
    }

    /// Scripts the `nth` matching write to fail once with
    /// `ErrorKind::Interrupted` (callers are expected to retry).
    #[must_use]
    pub fn interrupt_write(mut self, file_substr: &str, nth: u64) -> Self {
        self.io_rules.push(IoRule {
            file_substr: file_substr.to_string(),
            nth,
            fault: IoFault::Interrupted,
        });
        self
    }

    /// Scripts the link of worker `rank` to break once its outbound
    /// frame counter reaches `after_frame` (0-based: `after_frame`
    /// frames have been fully written when the break happens). The
    /// worker's transport is expected to reconnect and resume.
    #[must_use]
    pub fn sever_connection(mut self, rank: usize, after_frame: u64) -> Self {
        self.net_rules.push(NetRule::Sever { rank, after_frame });
        self
    }

    /// Scripts each of the first `frames` outbound frames on worker
    /// `rank`'s link to be held on the wire for `millis` milliseconds
    /// before delivery.
    #[must_use]
    pub fn stall_link(mut self, rank: usize, frames: u64, millis: u64) -> Self {
        self.net_rules.push(NetRule::Stall {
            rank,
            frames,
            millis,
        });
        self
    }

    /// Scripts the outbound frame with ordinal `ordinal` (0-based) on
    /// worker `rank`'s link to be cut mid-write: the receiver gets a
    /// torn frame and the connection breaks.
    #[must_use]
    pub fn tear_frame(mut self, rank: usize, ordinal: u64) -> Self {
        self.net_rules.push(NetRule::Tear { rank, ordinal });
        self
    }

    /// Scripts a partition: every rank in `ranks` loses its link when
    /// its outbound frame counter reaches `from_frame`, and its next
    /// `duration_frames` reconnect attempts fail deterministically
    /// before the partition heals — a time-free "duration" that
    /// exercises the seeded backoff without wall-clock dependence.
    #[must_use]
    pub fn partition(mut self, ranks: &[usize], from_frame: u64, duration_frames: u64) -> Self {
        self.partitions.push(PartitionRule {
            ranks: ranks.to_vec(),
            from_frame,
            duration_attempts: duration_frames,
        });
        self
    }

    /// True if the plan scripts nothing — [`Self::build`] then returns
    /// the disabled handle.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
            && self.message_rules.is_empty()
            && self.io_rules.is_empty()
            && self.net_rules.is_empty()
            && self.partitions.is_empty()
            && self.drop_fraction == 0.0
            && self.duplicate_fraction == 0.0
    }

    /// True if the plan scripts any network fault (sever/stall/tear or
    /// a partition) on worker `rank`'s link. Transports use this to
    /// skip the frame-accounting wrapper entirely on unaffected links.
    #[must_use]
    pub fn targets_link(&self, rank: usize) -> bool {
        self.net_rules.iter().any(|r| match r {
            NetRule::Sever { rank: r, .. }
            | NetRule::Stall { rank: r, .. }
            | NetRule::Tear { rank: r, .. } => *r == rank,
        }) || self.partitions.iter().any(|p| p.ranks.contains(&rank))
    }

    /// The fate of the `frame`-th outbound frame (0-based) on worker
    /// `rank`'s link. Pure: tear rules are checked first, then
    /// severances (including partition onsets), then stalls.
    #[must_use]
    pub fn net_action(&self, rank: usize, frame: u64) -> NetAction {
        for rule in &self.net_rules {
            if let NetRule::Tear { rank: r, ordinal } = rule {
                if *r == rank && *ordinal == frame {
                    return NetAction::Tear;
                }
            }
        }
        for rule in &self.net_rules {
            if let NetRule::Sever {
                rank: r,
                after_frame,
            } = rule
            {
                if *r == rank && *after_frame == frame {
                    return NetAction::Sever;
                }
            }
        }
        for p in &self.partitions {
            if p.ranks.contains(&rank) && p.from_frame == frame {
                return NetAction::Sever;
            }
        }
        for rule in &self.net_rules {
            if let NetRule::Stall {
                rank: r,
                frames,
                millis,
            } = rule
            {
                if *r == rank && frame < *frames {
                    return NetAction::Stall { millis: *millis };
                }
            }
        }
        NetAction::Deliver
    }

    /// True if worker `rank`'s `attempt`-th reconnect attempt (0-based,
    /// counted across the run) is inside an unhealed partition.
    #[must_use]
    pub fn partition_blocks(&self, rank: usize, attempt: u64) -> bool {
        self.partitions
            .iter()
            .any(|p| p.ranks.contains(&rank) && attempt < p.duration_attempts)
    }

    /// The scripted crash point for `rank`, if any (the earliest, if
    /// several were scripted).
    #[must_use]
    pub fn crash_point(&self, rank: usize) -> Option<u64> {
        self.crashes
            .iter()
            .filter(|(r, _)| *r == rank)
            .map(|(_, after)| *after)
            .min()
    }

    /// The fate of the `seq`-th message on channel `(src, dst, tag)`.
    ///
    /// Pure: scripted rules are checked first, then the probabilistic
    /// fractions, decided by hashing `(seed, src, dst, tag, seq)` — so
    /// the same message identity gets the same fate on every engine,
    /// regardless of thread interleaving.
    #[must_use]
    pub fn message_action(&self, src: usize, dst: usize, tag: u32, seq: u64) -> SendAction {
        for rule in &self.message_rules {
            if rule.src == src && rule.dst == dst && rule.tag == tag && rule.seq == seq {
                return rule.action;
            }
        }
        if self.drop_fraction > 0.0 || self.duplicate_fraction > 0.0 {
            let identity = splitmix64(self.seed)
                ^ splitmix64((src as u64) << 32 | dst as u64)
                ^ splitmix64(u64::from(tag) << 48 | seq);
            let u = unit_f64(splitmix64(identity));
            if u < self.drop_fraction {
                return SendAction::Drop;
            }
            if u < self.drop_fraction + self.duplicate_fraction {
                return SendAction::Duplicate;
            }
        }
        SendAction::Deliver
    }

    /// Compiles the plan into the handle live code consults. An empty
    /// plan compiles to the disabled handle.
    #[must_use]
    pub fn build(&self) -> FaultHandle {
        if self.is_empty() {
            FaultHandle::disabled()
        } else {
            FaultHandle {
                inner: Some(Arc::new(Inner {
                    plan: self.clone(),
                    state: Mutex::new(State {
                        seqs: HashMap::new(),
                        io_counts: vec![0; self.io_rules.len()],
                        net_frames: HashMap::new(),
                        net_attempts: HashMap::new(),
                        records: Vec::new(),
                    }),
                })),
            }
        }
    }
}

/// One injected fault, as remembered by the handle for test
/// introspection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// Which fault fired.
    pub kind: FaultKind,
    /// Kind-specific detail: the message sequence number for message
    /// faults, the write ordinal for I/O faults; `None` for crashes
    /// recorded without one.
    pub detail: Option<u64>,
}

/// Mutable per-run state behind the enabled handle.
#[derive(Debug)]
struct State {
    /// Next sequence number per `(src, dst, tag)` channel.
    seqs: HashMap<(usize, usize, u32), u64>,
    /// Writes seen so far per I/O rule.
    io_counts: Vec<u64>,
    /// Outbound frames seen so far per worker link.
    net_frames: HashMap<usize, u64>,
    /// Reconnect attempts seen so far per worker link.
    net_attempts: HashMap<usize, u64>,
    /// Everything injected so far.
    records: Vec<FaultRecord>,
}

#[derive(Debug)]
struct Inner {
    plan: FaultPlan,
    state: Mutex<State>,
}

/// The stateful fault plane live code consults.
///
/// Mirrors the `Monitor` pattern: the disabled handle is a single
/// `None` check on every hot path, and cloning shares the same
/// sequence counters and record log across ranks.
#[derive(Debug, Clone, Default)]
pub struct FaultHandle {
    inner: Option<Arc<Inner>>,
}

impl FaultHandle {
    /// The no-op handle: every query answers "no fault" after one
    /// branch.
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// True if a non-empty plan is attached.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The plan behind the handle, if enabled.
    #[must_use]
    pub fn plan(&self) -> Option<&FaultPlan> {
        self.inner.as_deref().map(|i| &i.plan)
    }

    /// The scripted crash point for `rank`, if any.
    #[must_use]
    pub fn crash_after(&self, rank: usize) -> Option<u64> {
        self.inner.as_deref()?.plan.crash_point(rank)
    }

    /// Numbers an outgoing message on channel `(src, dst, tag)` and
    /// decides its fate. Returns `(sequence, action)`; the disabled
    /// handle always answers `(0, Deliver)` without locking.
    pub fn on_send(&self, src: usize, dst: usize, tag: u32) -> (u64, SendAction) {
        let Some(inner) = self.inner.as_deref() else {
            return (0, SendAction::Deliver);
        };
        let mut state = inner.state.lock().expect("fault state poisoned");
        let seq_ref = state.seqs.entry((src, dst, tag)).or_insert(0);
        let seq = *seq_ref;
        *seq_ref += 1;
        let action = inner.plan.message_action(src, dst, tag, seq);
        let kind = match action {
            SendAction::Deliver => None,
            SendAction::Drop => Some(FaultKind::MessageDrop),
            SendAction::Duplicate => Some(FaultKind::MessageDuplicate),
            SendAction::Delay { .. } => Some(FaultKind::MessageDelay),
        };
        if let Some(kind) = kind {
            state.records.push(FaultRecord {
                kind,
                detail: Some(seq),
            });
        }
        (seq, action)
    }

    /// Records that `rank` is about to execute its scripted crash.
    pub fn note_crash(&self, rank: usize, after: u64) {
        if let Some(inner) = self.inner.as_deref() {
            let _ = rank;
            inner
                .state
                .lock()
                .expect("fault state poisoned")
                .records
                .push(FaultRecord {
                    kind: FaultKind::RankCrash,
                    detail: Some(after),
                });
        }
    }

    /// Decides whether this write of `path` gets an injected I/O
    /// fault. Counts one write per matching rule; a rule fires exactly
    /// once, on its scripted ordinal. The disabled handle answers
    /// `None` without locking.
    pub fn on_write(&self, path: &Path) -> Option<IoFault> {
        let inner = self.inner.as_deref()?;
        if inner.plan.io_rules.is_empty() {
            return None;
        }
        let name = path.file_name()?.to_string_lossy();
        let mut state = inner.state.lock().expect("fault state poisoned");
        let mut fired = None;
        for (idx, rule) in inner.plan.io_rules.iter().enumerate() {
            if !name.contains(&rule.file_substr) {
                continue;
            }
            let count = state.io_counts[idx];
            state.io_counts[idx] += 1;
            if count == rule.nth && fired.is_none() {
                fired = Some((rule.fault, count));
            }
        }
        if let Some((fault, ordinal)) = fired {
            state.records.push(FaultRecord {
                kind: fault.kind(),
                detail: Some(ordinal),
            });
            return Some(fault);
        }
        None
    }

    /// True if the plan scripts any network fault on worker `rank`'s
    /// link — a transport may skip its frame-accounting wrapper when
    /// this is false. The disabled handle answers `false`.
    #[must_use]
    pub fn targets_link(&self, rank: usize) -> bool {
        self.inner
            .as_deref()
            .is_some_and(|i| i.plan.targets_link(rank))
    }

    /// Numbers an outbound frame on worker `rank`'s link and decides
    /// its fate. The disabled handle always answers `Deliver` without
    /// locking.
    pub fn on_frame(&self, rank: usize) -> NetAction {
        let Some(inner) = self.inner.as_deref() else {
            return NetAction::Deliver;
        };
        if !inner.plan.targets_link(rank) {
            return NetAction::Deliver;
        }
        let mut state = inner.state.lock().expect("fault state poisoned");
        let frame_ref = state.net_frames.entry(rank).or_insert(0);
        let frame = *frame_ref;
        *frame_ref += 1;
        let action = inner.plan.net_action(rank, frame);
        let kind = match action {
            NetAction::Deliver => None,
            NetAction::Stall { .. } => Some(FaultKind::NetStall),
            NetAction::Sever => Some(FaultKind::NetSever),
            NetAction::Tear => Some(FaultKind::NetTear),
        };
        if let Some(kind) = kind {
            state.records.push(FaultRecord {
                kind,
                detail: Some(frame),
            });
        }
        action
    }

    /// Numbers a reconnect attempt on worker `rank`'s link and decides
    /// whether an unhealed partition vetoes it (`true` = the dial must
    /// fail deterministically). The disabled handle answers `false`.
    pub fn on_reconnect_attempt(&self, rank: usize) -> bool {
        let Some(inner) = self.inner.as_deref() else {
            return false;
        };
        if inner.plan.partitions.is_empty() {
            return false;
        }
        let mut state = inner.state.lock().expect("fault state poisoned");
        let attempt_ref = state.net_attempts.entry(rank).or_insert(0);
        let attempt = *attempt_ref;
        *attempt_ref += 1;
        let blocked = inner.plan.partition_blocks(rank, attempt);
        if blocked {
            state.records.push(FaultRecord {
                kind: FaultKind::NetPartition,
                detail: Some(attempt),
            });
        }
        blocked
    }

    /// Everything injected so far, in order — for test introspection.
    #[must_use]
    pub fn records(&self) -> Vec<FaultRecord> {
        self.inner.as_deref().map_or_else(Vec::new, |inner| {
            inner
                .state
                .lock()
                .expect("fault state poisoned")
                .records
                .clone()
        })
    }
}

/// How [`mutate_bytes`] corrupted a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Bit `bit` of byte `index` was flipped.
    BitFlip {
        /// Byte offset of the flipped bit.
        index: usize,
        /// Bit position within the byte (0–7).
        bit: u8,
    },
    /// The frame was truncated to `len` bytes.
    Truncate {
        /// The new, shorter length.
        len: usize,
    },
}

/// Deterministically flips one bit of `bytes` in place (never
/// truncates) — the primitive behind injected bit-flip I/O faults.
/// Returns the `(byte index, bit)` flipped, or `None` for empty input.
pub fn flip_one_bit(seed: u64, bytes: &mut [u8]) -> Option<(usize, u8)> {
    if bytes.is_empty() {
        return None;
    }
    let mut lcg = Lcg64::new(seed);
    let index = (lcg.next_u64() % bytes.len() as u64) as usize;
    let bit = (lcg.next_u64() % 8) as u8;
    bytes[index] ^= 1 << bit;
    Some((index, bit))
}

/// Deterministically corrupts a byte frame in place — the primitive
/// behind the framing property tests: half the seeds flip one bit,
/// the other half truncate. Empty input is returned unchanged as a
/// zero-length truncation.
pub fn mutate_bytes(seed: u64, bytes: &mut Vec<u8>) -> Mutation {
    let mut lcg = Lcg64::new(seed);
    if bytes.is_empty() {
        return Mutation::Truncate { len: 0 };
    }
    if lcg.next_u64().is_multiple_of(2) {
        let index = (lcg.next_u64() % bytes.len() as u64) as usize;
        let bit = (lcg.next_u64() % 8) as u8;
        bytes[index] ^= 1 << bit;
        Mutation::BitFlip { index, bit }
    } else {
        let len = (lcg.next_u64() % bytes.len() as u64) as usize;
        bytes.truncate(len);
        Mutation::Truncate { len }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn empty_plan_builds_disabled_handle() {
        let handle = FaultPlan::none().build();
        assert!(!handle.is_enabled());
        assert_eq!(handle.on_send(1, 0, 1), (0, SendAction::Deliver));
        assert_eq!(handle.crash_after(1), None);
        assert_eq!(handle.on_write(Path::new("checkpoint.dat")), None);
        assert!(handle.records().is_empty());
        assert!(FaultPlan::new(9).is_empty());
        assert!(!FaultHandle::default().is_enabled());
    }

    #[test]
    fn scripted_rules_fire_on_exact_coordinates() {
        let plan = FaultPlan::new(1)
            .drop_message(1, 0, 1, 2)
            .duplicate_message(2, 0, 1, 0)
            .delay_message(3, 0, 2, 1, 4);
        assert_eq!(plan.message_action(1, 0, 1, 2), SendAction::Drop);
        assert_eq!(plan.message_action(1, 0, 1, 3), SendAction::Deliver);
        assert_eq!(plan.message_action(2, 0, 1, 0), SendAction::Duplicate);
        assert_eq!(
            plan.message_action(3, 0, 2, 1),
            SendAction::Delay { hold_sends: 4 }
        );
        // Different tag, same everything else: no match.
        assert_eq!(plan.message_action(3, 0, 1, 1), SendAction::Deliver);
    }

    #[test]
    fn handle_counts_sequences_per_channel() {
        let handle = FaultPlan::new(1).drop_message(1, 0, 1, 1).build();
        assert_eq!(handle.on_send(1, 0, 1), (0, SendAction::Deliver));
        assert_eq!(handle.on_send(1, 0, 2), (0, SendAction::Deliver));
        assert_eq!(handle.on_send(1, 0, 1), (1, SendAction::Drop));
        assert_eq!(handle.on_send(1, 0, 1), (2, SendAction::Deliver));
        let records = handle.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].kind, FaultKind::MessageDrop);
        assert_eq!(records[0].detail, Some(1));
    }

    #[test]
    fn fractional_drops_are_deterministic_and_roughly_calibrated() {
        let plan = FaultPlan::new(77).drop_fraction(0.1);
        let mut dropped = 0;
        for seq in 0..10_000 {
            let a = plan.message_action(1, 0, 1, seq);
            assert_eq!(a, plan.message_action(1, 0, 1, seq), "not deterministic");
            if a == SendAction::Drop {
                dropped += 1;
            }
        }
        // 10% of 10k with generous slack: the hash should not be wildly
        // miscalibrated.
        assert!((600..=1400).contains(&dropped), "dropped {dropped}");
        // A different seed decides differently somewhere.
        let other = FaultPlan::new(78).drop_fraction(0.1);
        assert!((0..10_000)
            .any(|s| plan.message_action(1, 0, 1, s) != other.message_action(1, 0, 1, s)));
    }

    #[test]
    fn duplicate_fraction_shares_the_same_deviate() {
        let plan = FaultPlan::new(3)
            .drop_fraction(0.05)
            .duplicate_fraction(0.05);
        let mut seen_dup = false;
        let mut seen_drop = false;
        for seq in 0..5_000 {
            match plan.message_action(4, 0, 1, seq) {
                SendAction::Drop => seen_drop = true,
                SendAction::Duplicate => seen_dup = true,
                _ => {}
            }
        }
        assert!(seen_drop && seen_dup);
    }

    #[test]
    fn crash_points_take_the_earliest_script() {
        let plan = FaultPlan::new(0).crash_rank(2, 100).crash_rank(2, 50);
        assert_eq!(plan.crash_point(2), Some(50));
        assert_eq!(plan.crash_point(1), None);
        let handle = plan.build();
        assert_eq!(handle.crash_after(2), Some(50));
        handle.note_crash(2, 50);
        assert_eq!(handle.records()[0].kind, FaultKind::RankCrash);
    }

    #[test]
    fn io_rules_fire_once_on_their_ordinal() {
        let handle = FaultPlan::new(0)
            .torn_write("checkpoint.dat", 1)
            .interrupt_write("results", 0)
            .build();
        let ckpt = PathBuf::from("/data/checkpoint.dat");
        assert_eq!(handle.on_write(&ckpt), None); // write 0
        assert_eq!(handle.on_write(&ckpt), Some(IoFault::TornWrite)); // write 1
        assert_eq!(handle.on_write(&ckpt), None); // write 2
        assert_eq!(
            handle.on_write(Path::new("results_func.dat")),
            Some(IoFault::Interrupted)
        );
        assert_eq!(handle.on_write(Path::new("unrelated.txt")), None);
        let kinds: Vec<FaultKind> = handle.records().iter().map(|r| r.kind).collect();
        assert_eq!(kinds, vec![FaultKind::TornWrite, FaultKind::IoInterrupt]);
    }

    #[test]
    fn mutate_bytes_is_deterministic_and_always_corrupts() {
        for seed in 0..64 {
            let original: Vec<u8> = (0..40).map(|i| i as u8).collect();
            let mut a = original.clone();
            let mut b = original.clone();
            let ma = mutate_bytes(seed, &mut a);
            let mb = mutate_bytes(seed, &mut b);
            assert_eq!(ma, mb);
            assert_eq!(a, b);
            match ma {
                Mutation::BitFlip { index, bit } => {
                    assert!(index < original.len());
                    assert_eq!(a[index], original[index] ^ (1 << bit));
                }
                Mutation::Truncate { len } => {
                    assert!(len < original.len());
                    assert_eq!(a.len(), len);
                }
            }
        }
        let mut empty = Vec::new();
        assert_eq!(mutate_bytes(5, &mut empty), Mutation::Truncate { len: 0 });
    }

    #[test]
    fn flip_one_bit_is_deterministic_and_never_truncates() {
        let mut a = vec![0u8; 16];
        let mut b = vec![0u8; 16];
        let fa = flip_one_bit(9, &mut a).unwrap();
        let fb = flip_one_bit(9, &mut b).unwrap();
        assert_eq!(fa, fb);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        assert_eq!(a.iter().map(|x| x.count_ones()).sum::<u32>(), 1);
        assert_eq!(flip_one_bit(9, &mut []), None);
    }

    #[test]
    fn fault_kind_names_match_the_schema_vocabulary() {
        let kinds = [
            FaultKind::RankCrash,
            FaultKind::MessageDrop,
            FaultKind::MessageDuplicate,
            FaultKind::MessageDelay,
            FaultKind::TornWrite,
            FaultKind::BitFlip,
            FaultKind::IoInterrupt,
            FaultKind::NetSever,
            FaultKind::NetStall,
            FaultKind::NetTear,
            FaultKind::NetPartition,
        ];
        let names: Vec<&str> = kinds.iter().map(|k| k.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "rank_crash",
                "message_drop",
                "message_duplicate",
                "message_delay",
                "torn_write",
                "bit_flip",
                "io_interrupt",
                "net_sever",
                "net_stall",
                "net_tear",
                "net_partition",
            ]
        );
    }

    #[test]
    fn net_rules_fire_on_exact_frame_ordinals() {
        let plan = FaultPlan::new(5)
            .sever_connection(1, 3)
            .stall_link(2, 2, 40)
            .tear_frame(3, 1);
        assert!(plan.targets_link(1) && plan.targets_link(2) && plan.targets_link(3));
        assert!(!plan.targets_link(4));
        assert_eq!(plan.net_action(1, 2), NetAction::Deliver);
        assert_eq!(plan.net_action(1, 3), NetAction::Sever);
        assert_eq!(plan.net_action(1, 4), NetAction::Deliver); // fires once
        assert_eq!(plan.net_action(2, 0), NetAction::Stall { millis: 40 });
        assert_eq!(plan.net_action(2, 1), NetAction::Stall { millis: 40 });
        assert_eq!(plan.net_action(2, 2), NetAction::Deliver);
        assert_eq!(plan.net_action(3, 1), NetAction::Tear);
        assert_eq!(plan.net_action(4, 0), NetAction::Deliver);
    }

    #[test]
    fn handle_counts_frames_and_reconnect_attempts_per_rank() {
        let handle = FaultPlan::new(7)
            .sever_connection(1, 1)
            .partition(&[2], 0, 2)
            .build();
        assert_eq!(handle.on_frame(1), NetAction::Deliver); // frame 0
        assert_eq!(handle.on_frame(1), NetAction::Sever); // frame 1
        assert_eq!(handle.on_frame(1), NetAction::Deliver); // frame 2
                                                            // Rank 2 loses its link at frame 0 and stays partitioned for
                                                            // two reconnect attempts.
        assert_eq!(handle.on_frame(2), NetAction::Sever);
        assert!(handle.on_reconnect_attempt(2));
        assert!(handle.on_reconnect_attempt(2));
        assert!(!handle.on_reconnect_attempt(2));
        // Un-partitioned ranks are never vetoed.
        assert!(!handle.on_reconnect_attempt(1));
        let kinds: Vec<FaultKind> = handle.records().iter().map(|r| r.kind).collect();
        assert_eq!(
            kinds,
            vec![
                FaultKind::NetSever,
                FaultKind::NetSever,
                FaultKind::NetPartition,
                FaultKind::NetPartition,
            ]
        );
    }

    #[test]
    fn net_faults_disabled_handle_and_empty_plan() {
        let handle = FaultHandle::disabled();
        assert_eq!(handle.on_frame(1), NetAction::Deliver);
        assert!(!handle.on_reconnect_attempt(1));
        assert!(!handle.targets_link(1));
        assert!(!FaultPlan::new(0).sever_connection(1, 0).is_empty());
        assert!(!FaultPlan::new(0).partition(&[1], 0, 1).is_empty());
    }
}
