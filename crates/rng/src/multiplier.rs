//! Multipliers of the base and auxiliary ("leap") generators.
//!
//! Paper formulas (6)–(8): the base generator is
//! `u_{k+1} = u_k · A (mod 2^r)` with `r = 128` and `A = 5^101 mod 2^128`
//! (see DESIGN.md for the OCR analysis pinning the exponent: only an odd
//! power of 5 is ≡ 5 (mod 8) and attains the claimed period `2^126`).
//!
//! The auxiliary generator that produces subsequence starting points uses
//! the multiplier `A(n) = A^n mod 2^128`; this module computes it by
//! binary exponentiation, which is what the stand-alone `genparam`
//! command of the paper does (Section 3.5).

/// Number of modulus bits `r` of the base generator (paper: `r = 128`).
pub const MODULUS_BITS: u32 = 128;

/// The default multiplier `A = 5^101 mod 2^128`.
///
/// Verified at test time both against an independent `modpow`
/// computation and against the multiplicative-order claim of formula (7)
/// (`A` generates a cyclic subgroup of order `2^126`).
pub const DEFAULT_MULTIPLIER: u128 = 0xbc1b_6074_2c6a_5846_f557_b4f2_b48e_8cb5;

/// Exponent of the period of the base generator: the period is `2^126`
/// (paper formula (7) with `r = 128`).
pub const PERIOD_EXPONENT: u32 = MODULUS_BITS - 2;

/// Only the first half of the period is recommended for use (paper
/// Section 2.4, after formula (7)): `2^125` base random numbers.
pub const USABLE_EXPONENT: u32 = PERIOD_EXPONENT - 1;

/// Computes `base^exp mod 2^128` by binary exponentiation.
///
/// All arithmetic is wrapping `u128`, i.e. implicitly modulo `2^128`.
///
/// # Examples
///
/// ```
/// use parmonc_rng::multiplier::modpow;
///
/// assert_eq!(modpow(5, 0), 1);
/// assert_eq!(modpow(5, 3), 125);
/// assert_eq!(modpow(2, 128), 0); // 2^128 ≡ 0 (mod 2^128)
/// ```
#[must_use]
pub const fn modpow(base: u128, exp: u128) -> u128 {
    let mut result: u128 = 1;
    let mut b = base;
    let mut e = exp;
    while e > 0 {
        if e & 1 == 1 {
            result = result.wrapping_mul(b);
        }
        b = b.wrapping_mul(b);
        e >>= 1;
    }
    result
}

/// Computes the leap multiplier `A(2^e) = A^(2^e) mod 2^128` by `e`
/// repeated squarings of `A`.
///
/// This is the quantity the paper's `genparam` command produces for
/// user-chosen exponents `ne`, `np`, `nr` (Section 3.5).
///
/// # Examples
///
/// ```
/// use parmonc_rng::multiplier::{leap_multiplier, DEFAULT_MULTIPLIER};
///
/// // A(2^0) = A itself.
/// assert_eq!(leap_multiplier(DEFAULT_MULTIPLIER, 0), DEFAULT_MULTIPLIER);
/// // A(2^1) = A^2.
/// assert_eq!(
///     leap_multiplier(DEFAULT_MULTIPLIER, 1),
///     DEFAULT_MULTIPLIER.wrapping_mul(DEFAULT_MULTIPLIER)
/// );
/// ```
#[must_use]
pub const fn leap_multiplier(a: u128, exponent: u32) -> u128 {
    let mut m = a;
    let mut i = 0;
    while i < exponent {
        m = m.wrapping_mul(m);
        i += 1;
    }
    m
}

/// Precomputed leap multiplier for the default "experiments" leap
/// `n_e = 2^115`: `A(n_e) = A^(2^115) mod 2^128`.
pub const LEAP_EXPERIMENTS: u128 = 0x7760_0000_0000_0000_0000_0000_0000_0001;

/// Precomputed leap multiplier for the default "processors" leap
/// `n_p = 2^98`: `A(n_p) = A^(2^98) mod 2^128`.
pub const LEAP_PROCESSORS: u128 = 0xb424_bbb0_0000_0000_0000_0000_0000_0001;

/// Precomputed leap multiplier for the default "realizations" leap
/// `n_r = 2^43`: `A(n_r) = A^(2^43) mod 2^128`.
pub const LEAP_REALIZATIONS: u128 = 0x402b_4441_0f55_3568_4977_6000_0000_0001;

/// Returns the multiplicative order of `a` in the group of odd residues
/// modulo `2^128`, expressed as the exponent `t` such that the order is
/// `2^t`, or `None` if `a` is even (and hence not invertible).
///
/// For modulus `2^r` the group of units has structure
/// `Z_2 × Z_{2^{r-2}}`, so every element's order is a power of two and at
/// most `2^{r-2}`; this makes the order computable with at most `r - 2`
/// squarings.
///
/// # Examples
///
/// ```
/// use parmonc_rng::multiplier::{order_exponent, DEFAULT_MULTIPLIER};
///
/// // The paper's period claim, formula (7): 2^(r-2) = 2^126.
/// assert_eq!(order_exponent(DEFAULT_MULTIPLIER), Some(126));
/// assert_eq!(order_exponent(1), Some(0));
/// assert_eq!(order_exponent(2), None);
/// ```
#[must_use]
pub fn order_exponent(a: u128) -> Option<u32> {
    if a & 1 == 0 {
        return None;
    }
    let mut x = a;
    let mut t = 0u32;
    while x != 1 {
        x = x.wrapping_mul(x);
        t += 1;
        debug_assert!(t <= MODULUS_BITS, "order of an odd residue divides 2^126");
    }
    Some(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parmonc_testkit::prelude::*;

    #[test]
    fn default_multiplier_is_5_pow_101() {
        assert_eq!(modpow(5, 101), DEFAULT_MULTIPLIER);
    }

    #[test]
    fn default_multiplier_is_5_mod_8() {
        // A ≡ ±3 or 5 (mod 8) is necessary for the maximal period 2^(r-2);
        // 5^odd ≡ 5 (mod 8).
        assert_eq!(DEFAULT_MULTIPLIER % 8, 5);
    }

    #[test]
    fn order_of_default_multiplier_is_2_pow_126() {
        // Paper formula (7): the period of the base generator is 2^126.
        assert_eq!(order_exponent(DEFAULT_MULTIPLIER), Some(PERIOD_EXPONENT));
    }

    #[test]
    fn five_pow_100_would_be_wrong() {
        // The OCR-ambiguous alternative A = 5^100 is ≡ 1 (mod 8) and has
        // order 2^124 only — it cannot be the paper's multiplier.
        let a100 = modpow(5, 100);
        assert_eq!(a100 % 8, 1);
        assert_eq!(order_exponent(a100), Some(124));
    }

    #[test]
    fn precomputed_leaps_match_binary_exponentiation() {
        assert_eq!(leap_multiplier(DEFAULT_MULTIPLIER, 115), LEAP_EXPERIMENTS);
        assert_eq!(leap_multiplier(DEFAULT_MULTIPLIER, 98), LEAP_PROCESSORS);
        assert_eq!(leap_multiplier(DEFAULT_MULTIPLIER, 43), LEAP_REALIZATIONS);
    }

    #[test]
    fn leap_multipliers_are_odd() {
        // Powers of an odd number stay odd — leaped streams never
        // collapse onto even (non-invertible) states.
        for m in [LEAP_EXPERIMENTS, LEAP_PROCESSORS, LEAP_REALIZATIONS] {
            assert_eq!(m & 1, 1);
        }
    }

    #[test]
    fn modpow_small_cases() {
        assert_eq!(modpow(3, 4), 81);
        assert_eq!(modpow(0, 0), 1); // convention: x^0 = 1
        assert_eq!(modpow(0, 5), 0);
        assert_eq!(modpow(1, u128::MAX), 1);
    }

    #[test]
    fn usable_half_constant() {
        assert_eq!(USABLE_EXPONENT, 125);
    }

    proptest! {
        /// a^(x+y) == a^x * a^y (mod 2^128): exponent additivity, the
        /// property that makes leapfrog stream addressing work.
        #[test]
        fn modpow_exponent_additivity(a in any::<u128>(), x in 0u128..1u128 << 20, y in 0u128..1u128 << 20) {
            prop_assert_eq!(
                modpow(a, x + y),
                modpow(a, x).wrapping_mul(modpow(a, y))
            );
        }

        /// (a^x)^y == a^(x*y): exponent multiplicativity, used when
        /// composing leaps across hierarchy levels.
        #[test]
        fn modpow_exponent_multiplicativity(a in any::<u128>(), x in 0u128..1u128 << 10, y in 0u128..1u128 << 10) {
            prop_assert_eq!(modpow(modpow(a, x), y), modpow(a, x * y));
        }

        /// leap_multiplier(a, e) == a^(2^e) for small exponents where the
        /// direct computation is feasible.
        #[test]
        fn leap_multiplier_matches_modpow(a in any::<u128>(), e in 0u32..20) {
            prop_assert_eq!(leap_multiplier(a, e), modpow(a, 1u128 << e));
        }

        /// Odd multipliers have order dividing 2^126: squaring 126 times
        /// always reaches 1.
        #[test]
        fn odd_residue_order_divides_2_pow_126(a in any::<u128>()) {
            let a = a | 1;
            let t = order_exponent(a).expect("odd residues are invertible");
            prop_assert!(t <= PERIOD_EXPONENT);
        }
    }
}
