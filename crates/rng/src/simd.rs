//! Runtime-dispatched AVX-512 IFMA fill kernel (the `simd` feature).
//!
//! The portable lane engine ([`crate::lanes`]) already reaches the
//! scalar multiplier-port throughput limit — LLVM turns both the scalar
//! loop and the limb lanes into ~3 pipelined 64-bit multiplies per
//! draw. Going *past* that limit needs wider multipliers: AVX-512 IFMA
//! (`vpmadd52luq`/`vpmadd52huq`) multiplies eight 52-bit limbs per
//! instruction, so a 128-bit state held as three 52/52/24-bit limbs
//! steps in 9 instructions for **eight** lanes at once.
//!
//! Kernel shape (validated bitwise against the scalar sequence):
//!
//! * 16 leapfrogged lanes (2 × 8-lane register groups to hide the
//!   madd52 latency), lane `i` at `s·A^(i+1)`, stride `A^16`;
//! * **deferred carries**: limb 1 is kept unnormalized (≤ 54 bits) and
//!   limb 2 carries garbage above bit 24 — `madd52` only reads the low
//!   52 bits of its inputs and limb 2 only matters modulo `2^24`
//!   (bits 104..128), so the single carry fold `e2 = v2 + (v1 >> 52)`
//!   per step is enough;
//! * limb 2 accumulated as three *independent* madd trees summed with
//!   one `vpaddq`, shortening the cross-iteration critical path;
//! * the `(top53 + 0.5) · 2^-53` output map computed as
//!   `fma(top53, 2^-53, 2^-54)` — exactly equal, because scaling by a
//!   power of two commutes with IEEE rounding — via `vcvtuqq2pd`
//!   (AVX-512DQ) and one FMA.
//!
//! Everything here is behind `is_x86_feature_detected!` at runtime and
//! the `simd` cargo feature at compile time; every other build falls
//! back to the portable lane engine.
#![allow(unsafe_code)]

use core::arch::x86_64::{
    __m512i, _mm512_add_epi64, _mm512_and_si512, _mm512_cvtepu64_pd, _mm512_fmadd_pd,
    _mm512_loadu_si512, _mm512_madd52hi_epu64, _mm512_madd52lo_epu64, _mm512_or_si512,
    _mm512_set1_epi64, _mm512_set1_pd, _mm512_setzero_si512, _mm512_slli_epi64, _mm512_srli_epi64,
    _mm512_storeu_pd, _mm512_storeu_si512,
};
use std::sync::OnceLock;

/// Below this length the 16-lane seed/split setup outweighs the wider
/// multiplies; callers should use the portable engine instead.
pub(crate) const MIN_SIMD_LEN: usize = 64;

const F64_SCALE: f64 = 1.0 / (1u64 << 53) as f64;
const MASK52: u64 = (1 << 52) - 1;

/// Whether the CPU supports the kernel (cached after the first call).
pub(crate) fn supported() -> bool {
    static SUPPORTED: OnceLock<bool> = OnceLock::new();
    *SUPPORTED.get_or_init(|| {
        std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512dq")
            && std::arch::is_x86_feature_detected!("avx512ifma")
    })
}

/// Fills `dest` from `state`, bitwise identical to the scalar
/// `next_f64` loop, and returns the advanced state — or `None` when the
/// CPU lacks AVX-512F/DQ/IFMA.
#[inline]
pub(crate) fn fill_f64(state: u128, multiplier: u128, dest: &mut [f64]) -> Option<u128> {
    if !supported() {
        return None;
    }
    // SAFETY: the required target features were detected above.
    Some(unsafe { fill_f64_ifma(state, multiplier, dest) })
}

#[inline]
fn split52(x: u128) -> (u64, u64, u64) {
    (
        (x as u64) & MASK52,
        ((x >> 52) as u64) & MASK52,
        (x >> 104) as u64,
    )
}

#[inline]
fn to_alpha(u: u128) -> f64 {
    ((u >> 75) as u64 as f64 + 0.5) * F64_SCALE
}

#[target_feature(enable = "avx512f,avx512dq,avx512ifma")]
unsafe fn fill_f64_ifma(state: u128, multiplier: u128, dest: &mut [f64]) -> u128 {
    const N: usize = 16;
    const HALF: usize = 8;
    let mut s = state;
    let mut chunks = dest.chunks_exact_mut(N);
    if chunks.len() > 0 {
        let mut stride = multiplier;
        for _ in 1..N {
            stride = stride.wrapping_mul(multiplier);
        }
        let (c0, c1, c2) = split52(stride);
        let vc0 = _mm512_set1_epi64(c0 as i64);
        let vc1 = _mm512_set1_epi64(c1 as i64);
        let vc2 = _mm512_set1_epi64(c2 as i64);
        let vmask52 = _mm512_set1_epi64(MASK52 as i64);
        let vmask24 = _mm512_set1_epi64(((1u64 << 24) - 1) as i64);

        // Seed lane i at s·A^(i+1), split into 52/52/24-bit limbs.
        let mut l0 = [0i64; N];
        let mut l1 = [0i64; N];
        let mut l2 = [0i64; N];
        let mut cur = s;
        for i in 0..N {
            cur = cur.wrapping_mul(multiplier);
            let (a, b, c) = split52(cur);
            l0[i] = a as i64;
            l1[i] = b as i64;
            l2[i] = c as i64;
        }
        let mut a0: __m512i = _mm512_loadu_si512(l0.as_ptr().cast());
        let mut a1: __m512i = _mm512_loadu_si512(l1.as_ptr().cast());
        let mut a2: __m512i = _mm512_loadu_si512(l2.as_ptr().cast());
        let mut b0: __m512i = _mm512_loadu_si512(l0.as_ptr().add(HALF).cast());
        let mut b1: __m512i = _mm512_loadu_si512(l1.as_ptr().add(HALF).cast());
        let mut b2: __m512i = _mm512_loadu_si512(l2.as_ptr().add(HALF).cast());

        let vscale = _mm512_set1_pd(F64_SCALE);
        let vhalf = _mm512_set1_pd(0.5 * F64_SCALE);
        let zero = _mm512_setzero_si512();
        let n_chunks = chunks.len();
        let mut k = 0usize;
        for chunk in &mut chunks {
            let out_ptr = chunk.as_mut_ptr();
            // Effective limb 2 (fold the deferred carry of limb 1) —
            // shared by the emit and the step below.
            let e2a = _mm512_add_epi64(a2, _mm512_srli_epi64(a1, 52));
            let e2b = _mm512_add_epi64(b2, _mm512_srli_epi64(b1, 52));
            let m1a = _mm512_and_si512(a1, vmask52);
            let m1b = _mm512_and_si512(b1, vmask52);
            // top53 = bits 75..128 = (limb2 << 29) | (limb1 >> 23).
            let top_a = _mm512_or_si512(
                _mm512_slli_epi64(_mm512_and_si512(e2a, vmask24), 29),
                _mm512_srli_epi64(m1a, 23),
            );
            let top_b = _mm512_or_si512(
                _mm512_slli_epi64(_mm512_and_si512(e2b, vmask24), 29),
                _mm512_srli_epi64(m1b, 23),
            );
            _mm512_storeu_pd(
                out_ptr,
                _mm512_fmadd_pd(_mm512_cvtepu64_pd(top_a), vscale, vhalf),
            );
            _mm512_storeu_pd(
                out_ptr.add(HALF),
                _mm512_fmadd_pd(_mm512_cvtepu64_pd(top_b), vscale, vhalf),
            );
            k += 1;
            if k == n_chunks {
                // Leave the limbs normalized at the just-emitted
                // position; the final scalar state is recovered below.
                b1 = m1b;
                b2 = _mm512_and_si512(e2b, vmask24);
                break;
            }
            // Step group A by A^16: 9 madd52s per group, with limb 2 as
            // three independent trees joined by adds.
            let w0a = _mm512_madd52lo_epu64(zero, a0, vc0);
            let mut w1a = _mm512_madd52hi_epu64(zero, a0, vc0);
            w1a = _mm512_madd52lo_epu64(w1a, a0, vc1);
            w1a = _mm512_madd52lo_epu64(w1a, a1, vc0);
            let wxa = _mm512_madd52lo_epu64(_mm512_madd52hi_epu64(zero, a0, vc1), a0, vc2);
            let wya = _mm512_madd52lo_epu64(_mm512_madd52hi_epu64(zero, a1, vc0), a1, vc1);
            let wza = _mm512_madd52lo_epu64(zero, e2a, vc0);
            a0 = w0a;
            a1 = w1a;
            a2 = _mm512_add_epi64(_mm512_add_epi64(wxa, wya), wza);
            // Step group B.
            let w0b = _mm512_madd52lo_epu64(zero, b0, vc0);
            let mut w1b = _mm512_madd52hi_epu64(zero, b0, vc0);
            w1b = _mm512_madd52lo_epu64(w1b, b0, vc1);
            w1b = _mm512_madd52lo_epu64(w1b, b1, vc0);
            let wxb = _mm512_madd52lo_epu64(_mm512_madd52hi_epu64(zero, b0, vc1), b0, vc2);
            let wyb = _mm512_madd52lo_epu64(_mm512_madd52hi_epu64(zero, b1, vc0), b1, vc1);
            let wzb = _mm512_madd52lo_epu64(zero, e2b, vc0);
            b0 = w0b;
            b1 = w1b;
            b2 = _mm512_add_epi64(_mm512_add_epi64(wxb, wyb), wzb);
        }
        // The scalar state after emitting C·16 draws is lane 15's value
        // at the last emit: s·A^(C·16).
        _mm512_storeu_si512(l0.as_mut_ptr().add(HALF).cast(), b0);
        _mm512_storeu_si512(l1.as_mut_ptr().add(HALF).cast(), b1);
        _mm512_storeu_si512(l2.as_mut_ptr().add(HALF).cast(), b2);
        s = (l0[N - 1] as u64 as u128)
            | ((l1[N - 1] as u64 as u128) << 52)
            | ((l2[N - 1] as u64 as u128) << 104);
    }
    for d in chunks.into_remainder() {
        s = s.wrapping_mul(multiplier);
        *d = to_alpha(s);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiplier::DEFAULT_MULTIPLIER;

    /// The FMA output map is exactly `(top53 + 0.5) · 2^-53`: scaling by
    /// exact powers of two commutes with rounding, so
    /// `fma(t, 2^-53, 2^-54) = (t + 0.5) · 2^-53` for every 53-bit `t`.
    #[test]
    fn fma_mapping_is_exact_at_the_extremes() {
        for t in [0u64, 1, (1 << 53) - 1, (1 << 52) + 12345] {
            let reference = (t as f64 + 0.5) * F64_SCALE;
            let fused = (t as f64).mul_add(F64_SCALE, 0.5 * F64_SCALE);
            assert_eq!(reference.to_bits(), fused.to_bits(), "t={t}");
        }
    }

    #[test]
    fn kernel_matches_scalar_when_supported() {
        if !supported() {
            eprintln!("skipping: CPU lacks AVX-512 IFMA");
            return;
        }
        for len in [0usize, 1, 15, 16, 17, 31, 32, 63, 64, 65, 257, 10_003] {
            let mut expected = vec![0.0f64; len];
            let mut s = 1u128;
            for d in expected.iter_mut() {
                s = s.wrapping_mul(DEFAULT_MULTIPLIER);
                *d = to_alpha(s);
            }
            let mut got = vec![0.0f64; len];
            let new_state = fill_f64(1, DEFAULT_MULTIPLIER, &mut got).unwrap();
            assert_eq!(got, expected, "len={len}");
            assert_eq!(new_state, s, "state after len={len}");
        }
    }

    #[test]
    fn kernel_composes_across_calls() {
        if !supported() {
            return;
        }
        let mut state = 1u128;
        let mut scalar = crate::Lcg128::new();
        for len in [64usize, 100, 3, 17, 256] {
            let mut buf = vec![0.0f64; len];
            state = fill_f64(state, DEFAULT_MULTIPLIER, &mut buf).unwrap();
            for x in &buf {
                assert_eq!(*x, scalar.next_f64());
            }
            assert_eq!(state, scalar.state());
        }
    }
}
