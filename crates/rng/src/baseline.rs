//! Baseline generators the PARMONC RNG is compared against.
//!
//! * [`Lcg40`] — the "well known RNG with special parameters r = 40 and
//!   A = 5^17" whose period `2^38 ≈ 2.75·10^11` the paper (Section 2.2)
//!   calls *insufficient* for up-to-date computations. Implementing it
//!   lets the benches and statistical battery demonstrate the claim
//!   (period exhaustion, detectable structure).
//! * [`XorShift64Star`] and [`SplitMix64`] — standard non-LCG baselines
//!   for the throughput benches.

use crate::stream::UniformSource;

/// The 40-bit multiplicative congruential generator the paper cites:
/// `u_{k+1} = u_k · 5^17 (mod 2^40)`, period `2^38`.
///
/// # Examples
///
/// ```
/// use parmonc_rng::baseline::Lcg40;
/// use parmonc_rng::UniformSource;
///
/// let mut rng = Lcg40::new();
/// let a = rng.next_f64();
/// assert!(a > 0.0 && a < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Lcg40 {
    state: u64,
}

impl Lcg40 {
    /// The multiplier `5^17 mod 2^40` (5^17 = 762939453125 already
    /// fits in 40 bits, so the reduction is the identity).
    pub const MULTIPLIER: u64 = 762_939_453_125;

    /// Modulus bits `r = 40`.
    pub const MODULUS_BITS: u32 = 40;

    /// Period exponent: the period is `2^38` (formula (7) with r = 40).
    pub const PERIOD_EXPONENT: u32 = Self::MODULUS_BITS - 2;

    /// Creates the generator at `u_0 = 1`.
    #[must_use]
    pub fn new() -> Self {
        Self { state: 1 }
    }

    /// Creates the generator at a given odd state.
    ///
    /// # Panics
    ///
    /// Panics if `state` is even or does not fit in 40 bits.
    #[must_use]
    pub fn with_state(state: u64) -> Self {
        assert!(state & 1 == 1, "state must be odd");
        assert!(state < 1 << 40, "state must fit in 40 bits");
        Self { state }
    }

    /// Advances the recurrence and returns the new 40-bit state.
    #[inline]
    pub fn next_raw(&mut self) -> u64 {
        self.state = self.state.wrapping_mul(Self::MULTIPLIER) & ((1 << 40) - 1);
        self.state
    }
}

impl Default for Lcg40 {
    fn default() -> Self {
        Self::new()
    }
}

impl UniformSource for Lcg40 {
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // alpha = u * 2^-40, strictly in (0,1) because u is odd.
        self.next_raw() as f64 / (1u64 << 40) as f64
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        // Two 40-bit states give 64 usable high bits (32 from each).
        let hi = (self.next_raw() >> 8) << 32;
        hi | (self.next_raw() >> 8)
    }
}

/// The xorshift64* generator (Vigna), a fast non-linear-congruential
/// baseline.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    /// Creates the generator from a non-zero seed.
    ///
    /// # Panics
    ///
    /// Panics if `seed == 0` (zero is a fixed point of xorshift).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        assert!(seed != 0, "xorshift seed must be non-zero");
        Self { state: seed }
    }
}

impl UniformSource for XorShift64Star {
    #[inline]
    fn next_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 0.5) / (1u64 << 53) as f64
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// The splitmix64 generator, used widely for seeding; a second
/// throughput baseline.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator from any seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl UniformSource for SplitMix64 {
    #[inline]
    fn next_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 0.5) / (1u64 << 53) as f64
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg40_period_is_2_pow_38() {
        // Walk u -> u^2 (squaring halves the cycle each time) to find the
        // multiplicative order of the multiplier, as in the 128-bit case.
        let mut x = Lcg40::MULTIPLIER;
        let mut t = 0;
        while x != 1 {
            x = x.wrapping_mul(x) & ((1 << 40) - 1);
            t += 1;
        }
        assert_eq!(t, Lcg40::PERIOD_EXPONENT);
    }

    #[test]
    fn lcg40_multiplier_is_5_pow_17_mod_2_40() {
        assert_eq!(Lcg40::MULTIPLIER, 5u64.pow(17) % (1 << 40));
        assert_eq!(Lcg40::MULTIPLIER % 8, 5);
    }

    #[test]
    fn lcg40_outputs_in_open_interval() {
        let mut r = Lcg40::new();
        for _ in 0..10_000 {
            let a = UniformSource::next_f64(&mut r);
            assert!(a > 0.0 && a < 1.0);
        }
    }

    #[test]
    fn lcg40_mean_near_half() {
        let mut r = Lcg40::new();
        let mean = (0..100_000).map(|_| r.next_f64()).sum::<f64>() / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "must be odd")]
    fn lcg40_rejects_even_state() {
        let _ = Lcg40::with_state(2);
    }

    #[test]
    #[should_panic(expected = "40 bits")]
    fn lcg40_rejects_wide_state() {
        let _ = Lcg40::with_state((1 << 41) | 1);
    }

    #[test]
    fn xorshift_mean_near_half() {
        let mut r = XorShift64Star::new(0x1234_5678);
        let mean = (0..100_000).map(|_| r.next_f64()).sum::<f64>() / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn xorshift_rejects_zero_seed() {
        let _ = XorShift64Star::new(0);
    }

    #[test]
    fn splitmix_mean_near_half() {
        let mut r = SplitMix64::new(42);
        let mean = (0..100_000).map(|_| r.next_f64()).sum::<f64>() / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn baselines_are_deterministic() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..10).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..10).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }
}
