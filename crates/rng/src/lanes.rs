//! The wide-lane draw engine: leapfrogged generator lanes that emit the
//! exact sequential sequence.
//!
//! The recurrence `u_{k+1} = u_k · A mod 2^128` is a serial dependency
//! chain: a naive loop is bounded by the *latency* of one 128-bit
//! multiply per draw. PARMONC's own leapfrog idea (paper Section 2.4)
//! removes the chain: lane `i` of a [`LaneLcg128<N>`] holds the state
//! `s · A^(i+1)` and steps by the lane stride `A^N`, so the `N`
//! multiplies per block are independent and the CPU retires them at
//! multiplier-port *throughput*. Reading the lanes left to right
//! reproduces the sequential sequence bitwise — the same serial ≡
//! parallel guarantee the stream hierarchy gives across processors,
//! applied at register width.
//!
//! The arithmetic is explicit 64-bit-limb lane-struct code (`lo`/`hi`
//! arrays), the shape LLVM can unroll and schedule on stable Rust; with
//! the `simd` crate feature, [`Lcg128::fill_f64`] additionally
//! dispatches large fills to a runtime-detected AVX-512 IFMA kernel
//! (see `docs/performance.md`).
//!
//! [`Lcg128::fill_f64`]: crate::Lcg128::fill_f64

use crate::lcg128::Lcg128;
use crate::multiplier::MODULUS_BITS;

/// Scale factor of the open-interval mapping `(top53 + 0.5) · 2^-53`.
const F64_SCALE: f64 = 1.0 / (1u64 << 53) as f64;

/// The top 53 state bits live at bit 75; in the high limb that is a
/// shift by `75 − 64 = 11`.
const HI_SHIFT: u32 = MODULUS_BITS - 53 - 64;

#[inline(always)]
fn alpha_from_hi(hi: u64) -> f64 {
    ((hi >> HI_SHIFT) as f64 + 0.5) * F64_SCALE
}

/// `N` leapfrogged lanes of the 128-bit MCG, emitting output bitwise
/// identical to a sequential [`Lcg128`] in interleaved order.
///
/// Lane `i` holds `state · A^(i+1)` as two 64-bit limbs; a block step
/// multiplies every lane by the precomputed stride `A^N`. Emitting one
/// block therefore yields draws `k+1 .. k+N` of the scalar sequence,
/// and the engine's [`state`](Self::state) tracks exactly where an
/// equivalent scalar generator would stand.
///
/// Four and eight lanes are the tuned widths (see [`LaneLcg128x4`] /
/// [`LaneLcg128x8`]); any `N ≥ 1` is valid.
///
/// # Examples
///
/// ```
/// use parmonc_rng::{LaneLcg128x8, Lcg128};
///
/// let mut scalar = Lcg128::new();
/// let mut lanes = LaneLcg128x8::from_generator(&scalar);
/// let mut block = [0.0f64; 8];
/// lanes.next_block(&mut block);
/// for x in block {
///     assert_eq!(x, scalar.next_f64());
/// }
/// assert_eq!(lanes.state(), scalar.state());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneLcg128<const N: usize> {
    /// Scalar-equivalent state: the last emitted draw's `u_k`.
    state: u128,
    multiplier: u128,
    /// Lane stride `A^N`, as limbs.
    stride_lo: u64,
    stride_hi: u64,
    /// Low/high limbs of the lane states (`lane k = state · A^(k+1)`),
    /// valid only while `primed`.
    lo: [u64; N],
    hi: [u64; N],
    /// Whether the limb arrays currently hold positioned lanes. Lanes
    /// are primed lazily (construction is free) and invalidated by a
    /// scalar tail, which de-synchronizes them from `state`.
    primed: bool,
}

/// The 4-lane engine.
pub type LaneLcg128x4 = LaneLcg128<4>;

/// The 8-lane engine — the widest portable form that still fits the
/// lane states in registers; the default batched-fill width.
pub type LaneLcg128x8 = LaneLcg128<8>;

impl<const N: usize> LaneLcg128<N> {
    /// Creates a lane engine positioned where `rng` stands. Costs no
    /// multiplies: lanes are primed lazily on the first block.
    ///
    /// # Panics
    ///
    /// Panics if `N == 0`.
    #[must_use]
    pub fn from_generator(rng: &Lcg128) -> Self {
        Self::from_parts(rng.state(), rng.multiplier())
    }

    /// Creates a lane engine from a raw state and multiplier (both must
    /// be odd, as for [`Lcg128`]).
    ///
    /// # Panics
    ///
    /// Panics if `N == 0` or either argument is even.
    #[must_use]
    pub fn from_parts(state: u128, multiplier: u128) -> Self {
        assert!(N > 0, "a lane engine needs at least one lane");
        assert!(state & 1 == 1, "LCG state must be odd, got {state:#x}");
        assert!(
            multiplier & 1 == 1,
            "LCG multiplier must be odd, got {multiplier:#x}"
        );
        let mut stride = multiplier;
        for _ in 1..N {
            stride = stride.wrapping_mul(multiplier);
        }
        Self {
            state,
            multiplier,
            stride_lo: stride as u64,
            stride_hi: (stride >> 64) as u64,
            lo: [0; N],
            hi: [0; N],
            primed: false,
        }
    }

    /// The scalar-equivalent state: a [`Lcg128`] at this state produces
    /// the continuation of what this engine has emitted.
    #[must_use]
    pub fn state(&self) -> u128 {
        self.state
    }

    /// The multiplier `A`.
    #[must_use]
    pub fn multiplier(&self) -> u128 {
        self.multiplier
    }

    /// Converts back into the scalar generator at the equivalent
    /// position.
    #[must_use]
    pub fn into_generator(self) -> Lcg128 {
        Lcg128::with_state_and_multiplier(self.state, self.multiplier)
    }

    /// Positions lane `k` at `state · A^(k+1)` (`N` sequential
    /// multiplies).
    fn prime(&mut self) {
        let mut cur = self.state;
        for k in 0..N {
            cur = cur.wrapping_mul(self.multiplier);
            self.lo[k] = cur as u64;
            self.hi[k] = (cur >> 64) as u64;
        }
        self.primed = true;
    }

    /// Emits the next `N` draws of the sequential sequence into `out`.
    pub fn next_block(&mut self, out: &mut [f64; N]) {
        if !self.primed {
            self.prime();
        }
        for (o, &hi) in out.iter_mut().zip(self.hi.iter()) {
            *o = alpha_from_hi(hi);
        }
        self.state = u128::from(self.lo[N - 1]) | (u128::from(self.hi[N - 1]) << 64);
        self.step_lanes();
    }

    /// One block step: every lane multiplied by the stride `A^N`, as
    /// three 64×64 limb products per lane (the `hi·hi` term vanishes
    /// modulo `2^128`) — `N` independent chains the CPU pipelines.
    #[inline]
    fn step_lanes(&mut self) {
        let (c_lo, c_hi) = (self.stride_lo, self.stride_hi);
        for k in 0..N {
            let lolo = u128::from(self.lo[k]) * u128::from(c_lo);
            let nhi = ((lolo >> 64) as u64)
                .wrapping_add(self.lo[k].wrapping_mul(c_hi))
                .wrapping_add(self.hi[k].wrapping_mul(c_lo));
            self.lo[k] = lolo as u64;
            self.hi[k] = nhi;
        }
    }

    /// Fills `dest` with consecutive draws, bitwise identical to a
    /// sequential [`Lcg128::next_f64`] loop, handling any length
    /// (including non-multiples of `N`).
    pub fn fill_f64(&mut self, dest: &mut [f64]) {
        let mut chunks = dest.chunks_exact_mut(N);
        if chunks.len() > 0 {
            if !self.primed {
                self.prime();
            }
            // Work on locals so the optimizer never has to prove `self`
            // and `dest` do not alias inside the loop.
            let mut lo = self.lo;
            let mut hi = self.hi;
            let (c_lo, c_hi) = (self.stride_lo, self.stride_hi);
            let (mut s_lo, mut s_hi) = (0u64, 0u64);
            for chunk in &mut chunks {
                for k in 0..N {
                    chunk[k] = alpha_from_hi(hi[k]);
                }
                // The scalar state after this block is lane N−1 *before*
                // the step.
                s_lo = lo[N - 1];
                s_hi = hi[N - 1];
                for k in 0..N {
                    let lolo = u128::from(lo[k]) * u128::from(c_lo);
                    let nhi = ((lolo >> 64) as u64)
                        .wrapping_add(lo[k].wrapping_mul(c_hi))
                        .wrapping_add(hi[k].wrapping_mul(c_lo));
                    lo[k] = lolo as u64;
                    hi[k] = nhi;
                }
            }
            self.lo = lo;
            self.hi = hi;
            self.state = u128::from(s_lo) | (u128::from(s_hi) << 64);
        }
        let remainder = chunks.into_remainder();
        if !remainder.is_empty() {
            let mut s = self.state;
            for d in remainder {
                s = s.wrapping_mul(self.multiplier);
                *d = alpha_from_hi((s >> 64) as u64);
            }
            self.state = s;
            // The lanes no longer sit at state·A^(k+1); re-prime lazily.
            self.primed = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::{StreamHierarchy, StreamId};
    use parmonc_testkit::prelude::*;

    fn check_fill<const N: usize>(start: u128, lens: &[usize]) {
        let mut scalar = Lcg128::with_state(start);
        let mut lanes = LaneLcg128::<N>::from_generator(&scalar);
        for &len in lens {
            let mut buf = vec![0.0f64; len];
            lanes.fill_f64(&mut buf);
            for (i, x) in buf.iter().enumerate() {
                assert_eq!(*x, scalar.next_f64(), "len={len} draw {i}");
            }
            assert_eq!(lanes.state(), scalar.state(), "state after len={len}");
        }
    }

    #[test]
    fn fill_matches_scalar_across_tails() {
        check_fill::<4>(1, &[0, 1, 3, 4, 5, 7, 8, 9, 100, 2, 31]);
        check_fill::<8>(1, &[0, 1, 7, 8, 9, 15, 16, 17, 100, 3, 63]);
    }

    #[test]
    fn next_block_matches_scalar() {
        let mut scalar = Lcg128::new();
        let mut lanes = LaneLcg128::<4>::from_generator(&scalar);
        let mut block = [0.0f64; 4];
        for _ in 0..10 {
            lanes.next_block(&mut block);
            for x in block {
                assert_eq!(x, scalar.next_f64());
            }
        }
        assert_eq!(lanes.state(), scalar.state());
    }

    #[test]
    fn into_generator_round_trips() {
        let mut lanes = LaneLcg128::<8>::from_parts(1, crate::DEFAULT_MULTIPLIER);
        let mut buf = [0.0f64; 20];
        lanes.fill_f64(&mut buf);
        let mut continued = lanes.clone().into_generator();
        let mut scalar = Lcg128::new();
        let mut skip = [0.0f64; 20];
        scalar.fill_f64(&mut skip);
        assert_eq!(continued.next_raw(), scalar.next_raw());
    }

    #[test]
    #[should_panic(expected = "must be odd")]
    fn even_state_rejected() {
        let _ = LaneLcg128::<4>::from_parts(2, crate::DEFAULT_MULTIPLIER);
    }

    proptest! {
        /// Lane output is bitwise equal to the sequential generator for
        /// arbitrary odd seeds and arbitrary sequences of fill lengths
        /// (exercising full blocks, tails and re-priming), at both tuned
        /// widths.
        #[test]
        fn lanes4_bitwise_equal(seed in any::<u128>(), lens in collection::vec(0usize..40, 1..8)) {
            check_fill::<4>(seed | 1, &lens);
        }

        #[test]
        fn lanes8_bitwise_equal(seed in any::<u128>(), lens in collection::vec(0usize..40, 1..8)) {
            check_fill::<8>(seed | 1, &lens);
        }

        /// Lane output stays bitwise equal on streams positioned at
        /// every hierarchy level (experiment, processor, realization
        /// heads), i.e. leapfrog-of-leapfrog composes.
        #[test]
        fn lanes_bitwise_equal_at_every_hierarchy_level(
            e in 0u64..1 << 10,
            p in 0u64..1 << 17,
            r in 0u64..1 << 20,
            len in 0usize..80,
        ) {
            let h = StreamHierarchy::default();
            for id in [
                StreamId::new(e, 0, 0),
                StreamId::new(e, p, 0),
                StreamId::new(e, p, r),
            ] {
                let start = h.stream_state(id).unwrap();
                let mut scalar = Lcg128::with_state(start);
                let mut lanes = LaneLcg128::<8>::from_generator(&scalar);
                let mut buf = vec![0.0f64; len];
                lanes.fill_f64(&mut buf);
                for x in &buf {
                    prop_assert_eq!(*x, scalar.next_f64());
                }
                prop_assert_eq!(lanes.state(), scalar.state());
            }
        }

        /// Mixed next_block / fill_f64 usage stays in lockstep.
        #[test]
        fn mixed_block_and_fill(seed in any::<u128>(), ops in collection::vec(0usize..20, 1..10)) {
            let mut scalar = Lcg128::with_state(seed | 1);
            let mut lanes = LaneLcg128::<4>::from_generator(&scalar);
            for op in ops {
                if op == 0 {
                    let mut block = [0.0f64; 4];
                    lanes.next_block(&mut block);
                    for x in block {
                        prop_assert_eq!(x, scalar.next_f64());
                    }
                } else {
                    let mut buf = vec![0.0f64; op];
                    lanes.fill_f64(&mut buf);
                    for x in &buf {
                        prop_assert_eq!(*x, scalar.next_f64());
                    }
                }
                prop_assert_eq!(lanes.state(), scalar.state());
            }
        }
    }
}
