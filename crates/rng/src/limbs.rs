//! 64-bit-limb arithmetic for the 128-bit congruential generator.
//!
//! The paper states (Section 3.3) that `rnd128` "is written using 64-bit
//! integer arithmetic". This module reproduces that implementation
//! strategy: a 128-bit state is held as two 64-bit limbs and the modular
//! product `x * y mod 2^128` is assembled from three 64×64→128
//! partial products (the high×high product is irrelevant modulo 2^128).
//!
//! The rest of the crate uses Rust's native `u128` (`wrapping_mul`) for
//! speed; property tests in this module prove the two implementations
//! agree on the full input space, and the `rng_throughput` bench
//! compares their cost (DESIGN.md ablation #1).

/// A 128-bit unsigned integer stored as two 64-bit limbs, little-endian
/// (`lo` first), mirroring the paper's FORTRAN/C implementation.
///
/// # Examples
///
/// ```
/// use parmonc_rng::limbs::U128Limbs;
///
/// let x = U128Limbs::from_u128(0x0123_4567_89ab_cdef_u128);
/// assert_eq!(x.to_u128(), 0x0123_4567_89ab_cdef_u128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U128Limbs {
    /// Low 64 bits.
    pub lo: u64,
    /// High 64 bits.
    pub hi: u64,
}

impl U128Limbs {
    /// Creates a limb pair from a native `u128`.
    #[inline]
    pub const fn from_u128(x: u128) -> Self {
        Self {
            lo: x as u64,
            hi: (x >> 64) as u64,
        }
    }

    /// Reassembles the native `u128` value.
    #[inline]
    pub const fn to_u128(self) -> u128 {
        (self.hi as u128) << 64 | self.lo as u128
    }

    /// Computes `self * rhs mod 2^128` using only 64-bit limb products.
    ///
    /// Writing `x = x_hi·2^64 + x_lo` and `y = y_hi·2^64 + y_lo`,
    ///
    /// ```text
    /// x·y mod 2^128 = x_lo·y_lo + 2^64·(x_lo·y_hi + x_hi·y_lo)  (mod 2^128)
    /// ```
    ///
    /// — the `x_hi·y_hi` term is a multiple of `2^128` and vanishes.
    #[inline(always)]
    pub const fn wrapping_mul(self, rhs: Self) -> Self {
        let lolo = (self.lo as u128) * (rhs.lo as u128);
        let lohi = self.lo.wrapping_mul(rhs.hi);
        let hilo = self.hi.wrapping_mul(rhs.lo);

        let lo = lolo as u64;
        let carry = (lolo >> 64) as u64;
        let hi = carry.wrapping_add(lohi).wrapping_add(hilo);
        Self { lo, hi }
    }

    /// Computes `self * rhs mod 2^128` with native `u128` arithmetic.
    ///
    /// This is the fast path used by [`crate::Lcg128`]; it must agree
    /// with [`Self::wrapping_mul`] everywhere (see the property tests).
    #[inline]
    pub const fn wrapping_mul_native(self, rhs: Self) -> Self {
        Self::from_u128(self.to_u128().wrapping_mul(rhs.to_u128()))
    }

    /// The top 53 bits of the value — the bits the `f64` output mapping
    /// uses. They live entirely in the high limb (`hi >> 11`), so this
    /// reads one limb instead of reassembling the `u128` and shifting by
    /// 75 across the limb boundary.
    #[inline(always)]
    pub const fn high53(self) -> u64 {
        self.hi >> 11
    }
}

impl From<u128> for U128Limbs {
    fn from(x: u128) -> Self {
        Self::from_u128(x)
    }
}

impl From<U128Limbs> for u128 {
    fn from(x: U128Limbs) -> Self {
        x.to_u128()
    }
}

impl core::fmt::Display for U128Limbs {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:#034x}", self.to_u128())
    }
}

impl core::fmt::LowerHex for U128Limbs {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        core::fmt::LowerHex::fmt(&self.to_u128(), f)
    }
}

impl core::fmt::UpperHex for U128Limbs {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        core::fmt::UpperHex::fmt(&self.to_u128(), f)
    }
}

impl core::fmt::Binary for U128Limbs {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        core::fmt::Binary::fmt(&self.to_u128(), f)
    }
}

/// Runs one step of the paper's recurrence `u' = u * a mod 2^128`
/// entirely in limb arithmetic.
///
/// # Examples
///
/// ```
/// use parmonc_rng::limbs::{limb_step, U128Limbs};
/// use parmonc_rng::DEFAULT_MULTIPLIER;
///
/// let u = limb_step(U128Limbs::from_u128(1), U128Limbs::from_u128(DEFAULT_MULTIPLIER));
/// assert_eq!(u.to_u128(), DEFAULT_MULTIPLIER);
/// ```
#[inline]
pub const fn limb_step(u: U128Limbs, a: U128Limbs) -> U128Limbs {
    u.wrapping_mul(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parmonc_testkit::prelude::*;

    #[test]
    fn round_trip_u128() {
        for x in [0u128, 1, u64::MAX as u128, u128::MAX, 1 << 64, 1 << 127] {
            assert_eq!(U128Limbs::from_u128(x).to_u128(), x);
        }
    }

    #[test]
    fn limb_mul_simple_cases() {
        let two = U128Limbs::from_u128(2);
        let three = U128Limbs::from_u128(3);
        assert_eq!(two.wrapping_mul(three).to_u128(), 6);

        // Wrap-around: 2^127 * 2 == 0 (mod 2^128).
        let big = U128Limbs::from_u128(1 << 127);
        assert_eq!(big.wrapping_mul(two).to_u128(), 0);

        // (2^128 - 1)^2 = 2^256 - 2^129 + 1 ≡ 1 (mod 2^128).
        let all = U128Limbs::from_u128(u128::MAX);
        assert_eq!(all.wrapping_mul(all).to_u128(), 1);
    }

    #[test]
    fn mul_identity_and_zero() {
        let x = U128Limbs::from_u128(0xdead_beef_dead_beef_dead_beef_dead_beef);
        let one = U128Limbs::from_u128(1);
        let zero = U128Limbs::from_u128(0);
        assert_eq!(x.wrapping_mul(one), x);
        assert_eq!(x.wrapping_mul(zero), zero);
    }

    #[test]
    fn display_is_hex() {
        let x = U128Limbs::from_u128(0xab);
        assert_eq!(format!("{x}"), format!("{:#034x}", 0xabu128));
        assert_eq!(format!("{x:x}"), "ab");
        assert_eq!(format!("{x:X}"), "AB");
        assert_eq!(format!("{x:b}"), "10101011");
    }

    proptest! {
        /// `high53` reads the same bits as the u128 shift by 75.
        #[test]
        fn high53_matches_wide_shift(x in any::<u128>()) {
            prop_assert_eq!(U128Limbs::from_u128(x).high53(), (x >> 75) as u64);
        }

        /// Limb multiplication agrees with native u128 wrapping
        /// multiplication on arbitrary inputs — this is the equivalence
        /// proof that lets the hot path use `u128`.
        #[test]
        fn limb_mul_matches_native(x in any::<u128>(), y in any::<u128>()) {
            let lx = U128Limbs::from_u128(x);
            let ly = U128Limbs::from_u128(y);
            prop_assert_eq!(lx.wrapping_mul(ly).to_u128(), x.wrapping_mul(y));
            prop_assert_eq!(lx.wrapping_mul_native(ly).to_u128(), x.wrapping_mul(y));
        }

        #[test]
        fn limb_mul_commutes(x in any::<u128>(), y in any::<u128>()) {
            let lx = U128Limbs::from_u128(x);
            let ly = U128Limbs::from_u128(y);
            prop_assert_eq!(lx.wrapping_mul(ly), ly.wrapping_mul(lx));
        }

        #[test]
        fn limb_mul_associates(x in any::<u128>(), y in any::<u128>(), z in any::<u128>()) {
            let (lx, ly, lz) = (
                U128Limbs::from_u128(x),
                U128Limbs::from_u128(y),
                U128Limbs::from_u128(z),
            );
            prop_assert_eq!(
                lx.wrapping_mul(ly).wrapping_mul(lz),
                lx.wrapping_mul(ly.wrapping_mul(lz))
            );
        }
    }
}
