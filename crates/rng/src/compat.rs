//! Interop with the `rand` crate ecosystem.
//!
//! The PARMONC generator can drive any `rand`-based sampler via
//! [`RandAdapter`], and conversely any [`rand::RngCore`] can act as a
//! [`UniformSource`] via [`FromRand`]. This is what lets the benches
//! compare `rnd128` with `rand::rngs::StdRng` on identical workloads.

use rand::RngCore;

use crate::stream::UniformSource;

/// Wraps a [`UniformSource`] so it implements [`rand::RngCore`].
///
/// # Examples
///
/// ```
/// use parmonc_rng::{compat::RandAdapter, Lcg128};
/// use rand::RngCore;
///
/// let mut rng = RandAdapter::new(Lcg128::new());
/// let x = rng.next_u32();
/// let _ = x;
/// ```
#[derive(Debug, Clone)]
pub struct RandAdapter<S> {
    source: S,
}

impl<S: UniformSource> RandAdapter<S> {
    /// Wraps `source`.
    pub fn new(source: S) -> Self {
        Self { source }
    }

    /// Returns the wrapped source.
    pub fn into_inner(self) -> S {
        self.source
    }

    /// Borrows the wrapped source.
    pub fn inner(&self) -> &S {
        &self.source
    }
}

impl<S: UniformSource> RngCore for RandAdapter<S> {
    fn next_u32(&mut self) -> u32 {
        (self.source.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.source.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.source.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.source.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// Wraps a [`rand::RngCore`] so it implements [`UniformSource`].
///
/// # Examples
///
/// ```
/// use parmonc_rng::{compat::FromRand, UniformSource};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut src = FromRand::new(StdRng::seed_from_u64(1));
/// let a = src.next_f64();
/// assert!(a > 0.0 && a < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct FromRand<R> {
    rng: R,
}

impl<R: RngCore> FromRand<R> {
    /// Wraps `rng`.
    pub fn new(rng: R) -> Self {
        Self { rng }
    }

    /// Returns the wrapped rng.
    pub fn into_inner(self) -> R {
        self.rng
    }
}

impl<R: RngCore> UniformSource for FromRand<R> {
    fn next_f64(&mut self) -> f64 {
        ((self.rng.next_u64() >> 11) as f64 + 0.5) / (1u64 << 53) as f64
    }

    fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcg128::Lcg128;
    use rand::Rng;

    #[test]
    fn adapter_next_u64_passthrough() {
        let mut direct = Lcg128::new();
        let mut adapted = RandAdapter::new(Lcg128::new());
        for _ in 0..100 {
            assert_eq!(Lcg128::next_u64(&mut direct), RngCore::next_u64(&mut adapted));
        }
    }

    #[test]
    fn adapter_fill_bytes_all_lengths() {
        for len in 0..=17 {
            let mut adapted = RandAdapter::new(Lcg128::new());
            let mut buf = vec![0u8; len];
            adapted.fill_bytes(&mut buf);
            if len >= 8 {
                // At least one full u64 was written; not all zero.
                assert!(buf.iter().any(|b| *b != 0), "len {len}");
            }
        }
    }

    #[test]
    fn adapter_drives_rand_distributions() {
        let mut adapted = RandAdapter::new(Lcg128::new());
        let x: f64 = adapted.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn from_rand_produces_open_interval() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut src = FromRand::new(StdRng::seed_from_u64(7));
        for _ in 0..1_000 {
            let a = src.next_f64();
            assert!(a > 0.0 && a < 1.0);
        }
    }

    #[test]
    fn into_inner_round_trip() {
        let adapted = RandAdapter::new(Lcg128::new());
        let rng = adapted.into_inner();
        assert_eq!(rng.state(), 1);
    }
}
