//! The PARMONC parallel random number generator.
//!
//! This crate is the "core" of the PARMONC reproduction (Marchenko,
//! PaCT 2011, Section 2.4): a 128-bit multiplicative congruential
//! generator
//!
//! ```text
//! u_0 = 1,   u_{k+1} = u_k * A  (mod 2^128),   alpha_k = u_k * 2^-128
//! ```
//!
//! with the Dyadkin–Hamilton multiplier `A = 5^101 mod 2^128` and period
//! `2^126`, together with the *leapfrog* machinery that splits the single
//! general sequence `{alpha_k}` into a three-level hierarchy of embedded
//! subsequences:
//!
//! ```text
//! general sequence  ⊃  "experiments"  subsequences   (leap n_e = 2^115)
//! "experiments"     ⊃  "processors"   subsequences   (leap n_p = 2^98)
//! "processors"      ⊃  "realizations" subsequences   (leap n_r = 2^43)
//! ```
//!
//! Every subsequence start is reached in `O(log n)` multiplications via
//! the auxiliary generator of "leaps" (paper formula (8)): the multiplier
//! `A(n) = A^n mod 2^128` is computed by binary exponentiation, so any of
//! the `2^10` experiments × `2^17` processors × `2^55` realizations can
//! be addressed directly.
//!
//! # Quick start
//!
//! ```
//! use parmonc_rng::{StreamHierarchy, StreamId};
//!
//! let hierarchy = StreamHierarchy::default();
//! // the stream for experiment 2, processor 7, realization 0:
//! let mut rng = hierarchy.realization_stream(StreamId::new(2, 7, 0)).unwrap();
//! let alpha = rng.next_f64(); // a base random number in (0, 1)
//! assert!(alpha > 0.0 && alpha < 1.0);
//! ```
//!
//! # Crate layout
//!
//! * [`lcg128`] — the base generator ([`Lcg128`]) and its period facts.
//! * [`limbs`] — the paper-faithful 64-bit-limb arithmetic (the paper
//!   implements `rnd128` "using 64-bit integer arithmetic"); proven
//!   equivalent to the native `u128` fast path by property tests.
//! * [`lanes`] — the wide-lane draw engine ([`LaneLcg128`]): N
//!   leapfrogged lanes stepped by `A^N`, bitwise identical to the
//!   sequential generator; the engine behind the batched fill paths.
//! * [`jump`] — precomputed jump-ahead tables ([`JumpTable`]):
//!   `A^(2^k)` cached once per multiplier so stream addressing and
//!   mid-run jumps cost table multiplies instead of `modpow` squarings.
//! * [`multiplier`] — the default multiplier, leap multipliers
//!   `A(n_e)`, `A(n_p)`, `A(n_r)`, and [`modpow`](multiplier::modpow).
//! * [`hierarchy`] — [`StreamHierarchy`], [`LeapConfig`] and capacity
//!   arithmetic (how many experiments/processors/realizations exist).
//! * [`cursor`] — [`StreamCursor`], the incremental in-order walker the
//!   runner hot loop uses: one 128-bit multiply per stream instead of a
//!   table walk per stream, bitwise identical to the from-scratch API.
//! * [`stream`] — [`RealizationStream`], the `rnd128()`-style handle a
//!   user routine draws base random numbers from.
//! * [`distributions`] — transformations of base random numbers into the
//!   distributions the workloads need (normal, exponential, Poisson, …).
//! * [`baseline`] — comparison generators: the 40-bit LCG the paper
//!   cites as having an *insufficient* period, xorshift64*, splitmix64.
//!
//! With the `simd` cargo feature an additional runtime-dispatched
//! AVX-512 IFMA fill kernel backs [`Lcg128::fill_f64`]; see
//! [`simd_fill_active`]. The crate forbids `unsafe` everywhere except
//! that one feature-gated intrinsics module.

#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![deny(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod baseline;
pub mod cursor;
pub mod distributions;
pub mod hierarchy;
pub mod jump;
pub mod lanes;
pub mod lcg128;
pub mod limbs;
pub mod multiplier;
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub(crate) mod simd;
pub mod stream;

pub use cursor::StreamCursor;
pub use hierarchy::{HierarchyError, LeapConfig, StreamHierarchy, StreamId};
pub use jump::JumpTable;
pub use lanes::{LaneLcg128, LaneLcg128x4, LaneLcg128x8};
pub use lcg128::Lcg128;
pub use multiplier::{DEFAULT_MULTIPLIER, MODULUS_BITS};
pub use stream::{RealizationStream, UniformSource};

/// Whether batched fills ([`Lcg128::fill_f64`]) are served by the
/// AVX-512 IFMA kernel on this build *and* this CPU.
///
/// `false` means fills use the portable wide-lane engine — still
/// bitwise identical, just without the >2× wide-multiplier speedup.
/// Benchmarks consult this to decide which throughput gates apply.
#[must_use]
pub fn simd_fill_active() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        simd::supported()
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        false
    }
}
