//! The three-level leapfrog hierarchy of embedded subsequences.
//!
//! Paper Section 2.4: the general sequence `{alpha_k}` is divided into
//! nested subsequences by "leaps" computed with the auxiliary generator
//! (formula (8)):
//!
//! * "experiments" subsequences — leap `n_e` (default `2^115`),
//! * "processors" subsequences inside each experiment — leap `n_p`
//!   (default `2^98`),
//! * "realizations" subsequences inside each processor — leap `n_r`
//!   (default `2^43`).
//!
//! With the defaults and the usable half-period `2^125` one can perform
//! `2^125 / 2^115 = 2^10 ≈ 10^3` stochastic experiments, use
//! `2^115 / 2^98 = 2^17 ≈ 10^5` processors per experiment, and simulate
//! `2^98 / 2^43 = 2^55 ≈ 10^16` realizations per processor — exactly the
//! capacities quoted in the paper.

use core::fmt;
use std::sync::Arc;

use crate::cursor::StreamCursor;
use crate::jump::JumpTable;
use crate::lcg128::Lcg128;
use crate::multiplier::{DEFAULT_MULTIPLIER, USABLE_EXPONENT};
use crate::stream::RealizationStream;

/// Exponents of the three leap lengths (`n_e = 2^ne`, `n_p = 2^np`,
/// `n_r = 2^nr`).
///
/// This is the value the paper's `genparam ne np nr` command
/// parameterizes (Section 3.5). The defaults are the paper's defaults.
///
/// # Examples
///
/// ```
/// use parmonc_rng::LeapConfig;
///
/// let cfg = LeapConfig::default();
/// assert_eq!((cfg.ne(), cfg.np(), cfg.nr()), (115, 98, 43));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LeapConfig {
    ne: u32,
    np: u32,
    nr: u32,
}

/// Errors produced when building or addressing a [`StreamHierarchy`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HierarchyError {
    /// The leap exponents are not strictly decreasing
    /// (`ne > np > nr` is required so the subsequences nest).
    NotNested {
        /// The offending `(ne, np, nr)` triple.
        exponents: (u32, u32, u32),
    },
    /// An exponent exceeds the usable half-period exponent (125).
    ExponentTooLarge {
        /// The offending exponent.
        exponent: u32,
    },
    /// A stream coordinate is outside the capacity implied by the leaps.
    OutOfCapacity {
        /// Which level overflowed: `"experiment"`, `"processor"` or
        /// `"realization"`.
        level: &'static str,
        /// The requested index.
        index: u64,
        /// The capacity of that level (as an exponent of 2), if it fits
        /// in `u64`; `None` means the capacity exceeds `u64::MAX` and the
        /// index can never overflow it.
        capacity: u64,
    },
}

impl fmt::Display for HierarchyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotNested { exponents } => write!(
                f,
                "leap exponents must satisfy ne > np > nr, got ne={} np={} nr={}",
                exponents.0, exponents.1, exponents.2
            ),
            Self::ExponentTooLarge { exponent } => write!(
                f,
                "leap exponent {exponent} exceeds the usable half-period exponent {USABLE_EXPONENT}"
            ),
            Self::OutOfCapacity {
                level,
                index,
                capacity,
            } => write!(f, "{level} index {index} out of capacity {capacity}"),
        }
    }
}

impl std::error::Error for HierarchyError {}

impl LeapConfig {
    /// The paper's default exponents: `ne = 115`, `np = 98`, `nr = 43`.
    pub const DEFAULT: Self = Self {
        ne: 115,
        np: 98,
        nr: 43,
    };

    /// Creates a leap configuration from the three exponents.
    ///
    /// # Errors
    ///
    /// Returns [`HierarchyError::NotNested`] unless `ne > np > nr`, and
    /// [`HierarchyError::ExponentTooLarge`] if any exponent exceeds 125
    /// (only the first half of the period `2^126` is used).
    pub fn new(ne: u32, np: u32, nr: u32) -> Result<Self, HierarchyError> {
        for e in [ne, np, nr] {
            if e > USABLE_EXPONENT {
                return Err(HierarchyError::ExponentTooLarge { exponent: e });
            }
        }
        if !(ne > np && np > nr) {
            return Err(HierarchyError::NotNested {
                exponents: (ne, np, nr),
            });
        }
        Ok(Self { ne, np, nr })
    }

    /// Exponent of the "experiments" leap (`n_e = 2^ne`).
    #[must_use]
    pub fn ne(&self) -> u32 {
        self.ne
    }

    /// Exponent of the "processors" leap (`n_p = 2^np`).
    #[must_use]
    pub fn np(&self) -> u32 {
        self.np
    }

    /// Exponent of the "realizations" leap (`n_r = 2^nr`).
    #[must_use]
    pub fn nr(&self) -> u32 {
        self.nr
    }

    /// Number of stochastic experiments available, as an exponent:
    /// `2^125 / 2^ne` experiments, i.e. `125 - ne` (paper: `2^10`).
    #[must_use]
    pub fn experiments_exponent(&self) -> u32 {
        USABLE_EXPONENT - self.ne
    }

    /// Number of processors per experiment, as an exponent:
    /// `ne - np` (paper: `2^17`).
    #[must_use]
    pub fn processors_exponent(&self) -> u32 {
        self.ne - self.np
    }

    /// Number of realizations per processor, as an exponent:
    /// `np - nr` (paper: `2^55`).
    #[must_use]
    pub fn realizations_exponent(&self) -> u32 {
        self.np - self.nr
    }

    /// Number of base random numbers available to a single realization:
    /// the realization leap itself, `2^nr` (paper: `2^43 ≈ 10^13`).
    #[must_use]
    pub fn numbers_per_realization_exponent(&self) -> u32 {
        self.nr
    }

    fn capacity(exp: u32) -> u64 {
        if exp >= 64 {
            u64::MAX
        } else {
            1u64 << exp
        }
    }

    /// Capacity of the experiment level as a count (saturating at
    /// `u64::MAX`).
    #[must_use]
    pub fn experiments(&self) -> u64 {
        Self::capacity(self.experiments_exponent())
    }

    /// Capacity of the processor level as a count (saturating).
    #[must_use]
    pub fn processors(&self) -> u64 {
        Self::capacity(self.processors_exponent())
    }

    /// Capacity of the realization level as a count (saturating).
    #[must_use]
    pub fn realizations(&self) -> u64 {
        Self::capacity(self.realizations_exponent())
    }
}

impl Default for LeapConfig {
    fn default() -> Self {
        Self::DEFAULT
    }
}

/// Address of a realization stream in the hierarchy: which experiment,
/// which processor within it, which realization on that processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct StreamId {
    /// The "experiments" subsequence number (the `seqnum` argument of
    /// `parmoncc`/`parmoncf`).
    pub experiment: u64,
    /// The "processors" subsequence number (the MPI parallel branch
    /// number in the paper).
    pub processor: u64,
    /// The "realizations" subsequence number on that processor.
    pub realization: u64,
}

impl StreamId {
    /// Creates a stream address.
    #[must_use]
    pub fn new(experiment: u64, processor: u64, realization: u64) -> Self {
        Self {
            experiment,
            processor,
            realization,
        }
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "e{}/p{}/r{}",
            self.experiment, self.processor, self.realization
        )
    }
}

/// The leapfrog stream factory: maps [`StreamId`] addresses to
/// positioned generators.
///
/// A stream's starting position in the general sequence is
/// `experiment·n_e + processor·n_p + realization·n_r`, i.e. the state is
/// `A^offset · u_0` with `offset = (e << ne) + (p << np) + (r << nr)`
/// (valid modulo `2^128` because the order of `A` divides it). The
/// hierarchy holds the process-wide precomputed [`JumpTable`] for its
/// base multiplier, so addressing a stream costs at most one multiply
/// per nonzero nibble of the offset — no `modpow` squarings on any
/// stream-creation path.
///
/// # Examples
///
/// ```
/// use parmonc_rng::{StreamHierarchy, StreamId};
///
/// let h = StreamHierarchy::default();
/// let mut s0 = h.realization_stream(StreamId::new(0, 0, 0)).unwrap();
/// let mut s1 = h.realization_stream(StreamId::new(0, 0, 1)).unwrap();
/// // Distinct realizations draw from disjoint subsequences.
/// assert_ne!(s0.next_f64(), s1.next_f64());
/// ```
#[derive(Debug, Clone)]
pub struct StreamHierarchy {
    config: LeapConfig,
    multiplier: u128,
    leap_e: u128,
    leap_p: u128,
    leap_r: u128,
    table: Arc<JumpTable>,
}

impl PartialEq for StreamHierarchy {
    fn eq(&self, other: &Self) -> bool {
        // The leap multipliers and table are derived from (config,
        // multiplier); comparing the inputs is complete.
        self.config == other.config && self.multiplier == other.multiplier
    }
}

impl Eq for StreamHierarchy {}

impl StreamHierarchy {
    /// Builds a hierarchy with the given leap configuration and the
    /// default base multiplier.
    #[must_use]
    pub fn new(config: LeapConfig) -> Self {
        Self::with_multiplier(config, DEFAULT_MULTIPLIER)
    }

    /// Builds a hierarchy with a caller-supplied base multiplier
    /// (the `genparam` override path).
    ///
    /// # Panics
    ///
    /// Panics if `multiplier` is even.
    #[must_use]
    pub fn with_multiplier(config: LeapConfig, multiplier: u128) -> Self {
        assert!(multiplier & 1 == 1, "multiplier must be odd");
        let table = JumpTable::shared(multiplier);
        Self {
            config,
            multiplier,
            // The leap multipliers are rows of the jump table:
            // A(n_x) = A^(2^nx) = pow2[nx].
            leap_e: table.pow2(config.ne()),
            leap_p: table.pow2(config.np()),
            leap_r: table.pow2(config.nr()),
            table,
        }
    }

    /// The leap configuration this hierarchy was built from.
    #[must_use]
    pub fn config(&self) -> LeapConfig {
        self.config
    }

    /// The base multiplier `A`.
    #[must_use]
    pub fn multiplier(&self) -> u128 {
        self.multiplier
    }

    /// The three leap multipliers `(A(n_e), A(n_p), A(n_r))`.
    #[must_use]
    pub fn leap_multipliers(&self) -> (u128, u128, u128) {
        (self.leap_e, self.leap_p, self.leap_r)
    }

    fn check(&self, id: StreamId) -> Result<(), HierarchyError> {
        let c = &self.config;
        let levels = [
            ("experiment", id.experiment, c.experiments()),
            ("processor", id.processor, c.processors()),
            ("realization", id.realization, c.realizations()),
        ];
        for (level, index, capacity) in levels {
            if index >= capacity {
                return Err(HierarchyError::OutOfCapacity {
                    level,
                    index,
                    capacity,
                });
            }
        }
        Ok(())
    }

    /// Starting state `u` of the subsequence addressed by `id`:
    /// `u = A(n_e)^e · A(n_p)^p · A(n_r)^r · u_0 (mod 2^128)`,
    /// computed as the single power `A^((e<<ne)+(p<<np)+(r<<nr))` via
    /// the precomputed jump table — the composite-exponent identity is
    /// exact because the multiplicative order of `A` divides `2^128`.
    ///
    /// # Errors
    ///
    /// Returns [`HierarchyError::OutOfCapacity`] if any coordinate of
    /// `id` exceeds the level's capacity.
    pub fn stream_state(&self, id: StreamId) -> Result<u128, HierarchyError> {
        self.check(id)?;
        Ok(self.table.power(self.offset(id)))
    }

    /// The composite jump offset of `id` in the general sequence,
    /// modulo `2^128`.
    fn offset(&self, id: StreamId) -> u128 {
        let c = &self.config;
        (u128::from(id.experiment) << c.ne())
            .wrapping_add(u128::from(id.processor) << c.np())
            .wrapping_add(u128::from(id.realization) << c.nr())
    }

    /// Creates the generator for the realization stream addressed by
    /// `id`.
    ///
    /// # Errors
    ///
    /// Returns [`HierarchyError::OutOfCapacity`] if any coordinate of
    /// `id` exceeds the level's capacity.
    pub fn realization_stream(&self, id: StreamId) -> Result<RealizationStream, HierarchyError> {
        let state = self.stream_state(id)?;
        Ok(RealizationStream::from_parts(
            Lcg128::with_state_and_multiplier(state, self.multiplier),
            id,
            1u128 << self.config.nr(),
        ))
    }

    /// Creates an incremental [`StreamCursor`] positioned at `start`.
    ///
    /// The cursor pays three jump-table walks once, here; afterwards
    /// every [`StreamCursor::next_stream`] costs a single 128-bit
    /// multiply and produces streams bitwise identical to
    /// [`realization_stream`](Self::realization_stream). This is the
    /// fast path for the runner's in-order consumption of rank-local
    /// realization streams.
    ///
    /// # Errors
    ///
    /// Returns [`HierarchyError::OutOfCapacity`] if any coordinate of
    /// `start` exceeds the level's capacity.
    pub fn cursor(&self, start: StreamId) -> Result<StreamCursor, HierarchyError> {
        self.check(start)?;
        let c = &self.config;
        let experiment_start = self.table.power(u128::from(start.experiment) << c.ne());
        let processor_start =
            experiment_start.wrapping_mul(self.table.power(u128::from(start.processor) << c.np()));
        let state =
            processor_start.wrapping_mul(self.table.power(u128::from(start.realization) << c.nr()));
        Ok(StreamCursor::from_positioned(
            self.config,
            self.multiplier,
            (self.leap_e, self.leap_p, self.leap_r),
            start,
            experiment_start,
            processor_start,
            state,
        ))
    }

    /// Creates the generator for a *processor* stream: the head of the
    /// processor subsequence, before it is subdivided into realizations.
    ///
    /// # Errors
    ///
    /// Returns [`HierarchyError::OutOfCapacity`] if the experiment or
    /// processor index exceeds its capacity.
    pub fn processor_stream(
        &self,
        experiment: u64,
        processor: u64,
    ) -> Result<Lcg128, HierarchyError> {
        let state = self.stream_state(StreamId::new(experiment, processor, 0))?;
        Ok(Lcg128::with_state_and_multiplier(state, self.multiplier))
    }
}

impl Default for StreamHierarchy {
    fn default() -> Self {
        Self::new(LeapConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiplier::modpow;
    use parmonc_testkit::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn default_capacities_match_paper() {
        // Paper Section 2.4: 2^10 experiments, 2^17 processors per
        // experiment, 2^55 realizations per processor, 2^43 numbers per
        // realization.
        let c = LeapConfig::default();
        assert_eq!(c.experiments_exponent(), 10);
        assert_eq!(c.processors_exponent(), 17);
        assert_eq!(c.realizations_exponent(), 55);
        assert_eq!(c.numbers_per_realization_exponent(), 43);
        assert_eq!(c.experiments(), 1 << 10);
        assert_eq!(c.processors(), 1 << 17);
        assert_eq!(c.realizations(), 1 << 55);
    }

    #[test]
    fn realizations_capacity_is_2_pow_55() {
        // 55 < 64, so the count is exact, not saturated.
        let c = LeapConfig::default();
        assert_eq!(c.realizations(), 1u64 << 55);
    }

    #[test]
    fn rejects_non_nested_exponents() {
        assert!(matches!(
            LeapConfig::new(50, 60, 40),
            Err(HierarchyError::NotNested { .. })
        ));
        assert!(matches!(
            LeapConfig::new(50, 50, 40),
            Err(HierarchyError::NotNested { .. })
        ));
    }

    #[test]
    fn rejects_oversized_exponents() {
        assert!(matches!(
            LeapConfig::new(126, 98, 43),
            Err(HierarchyError::ExponentTooLarge { exponent: 126 })
        ));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = LeapConfig::new(40, 50, 30).unwrap_err();
        assert!(e.to_string().contains("ne > np > nr"));
        let h = StreamHierarchy::default();
        let e = h.stream_state(StreamId::new(1 << 11, 0, 0)).unwrap_err();
        assert!(e.to_string().contains("experiment"));
    }

    #[test]
    fn stream_state_is_product_of_leaps() {
        let h = StreamHierarchy::default();
        let (le, lp, lr) = h.leap_multipliers();
        let id = StreamId::new(3, 5, 7);
        let expected = modpow(le, 3)
            .wrapping_mul(modpow(lp, 5))
            .wrapping_mul(modpow(lr, 7));
        assert_eq!(h.stream_state(id).unwrap(), expected);
    }

    #[test]
    fn stream_origin_is_u0() {
        let h = StreamHierarchy::default();
        assert_eq!(h.stream_state(StreamId::default()).unwrap(), 1);
    }

    #[test]
    fn capacity_enforced_per_level() {
        let h = StreamHierarchy::default();
        assert!(h.stream_state(StreamId::new(1 << 10, 0, 0)).is_err());
        assert!(h.stream_state(StreamId::new(0, 1 << 17, 0)).is_err());
        assert!(h
            .stream_state(StreamId::new((1 << 10) - 1, (1 << 17) - 1, 0))
            .is_ok());
    }

    #[test]
    fn small_hierarchy_streams_tile_the_sequence_without_overlap() {
        // With tiny leaps we can enumerate the actual subsequence
        // positions and verify realization streams are disjoint,
        // consecutive blocks of the processor stream.
        let cfg = LeapConfig::new(12, 8, 4).unwrap();
        let h = StreamHierarchy::new(cfg);

        // Walk the general sequence directly.
        let mut general = Lcg128::new();
        let sequence: Vec<u128> = (0..(1 << 13)).map(|_| general.next_raw()).collect();

        // Realization r of processor p of experiment e starts at
        // index e*2^12 + p*2^8 + r*2^4 in the general sequence.
        for e in 0..2u64 {
            for p in 0..3u64 {
                for r in 0..4u64 {
                    let mut s = h.realization_stream(StreamId::new(e, p, r)).unwrap();
                    let start = (e << 12) + (p << 8) + (r << 4);
                    for k in 0..16usize {
                        let idx = start as usize + k;
                        // stream_state holds u_start; first draw yields u_{start+1}
                        assert_eq!(
                            s.next_raw(),
                            sequence[idx],
                            "mismatch at e={e} p={p} r={r} k={k}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn distinct_ids_give_distinct_states() {
        let h = StreamHierarchy::default();
        let mut seen = HashSet::new();
        for e in 0..4 {
            for p in 0..8 {
                for r in 0..8 {
                    let st = h.stream_state(StreamId::new(e, p, r)).unwrap();
                    assert!(seen.insert(st), "state collision at e={e} p={p} r={r}");
                }
            }
        }
    }

    #[test]
    fn stream_id_display() {
        assert_eq!(StreamId::new(2, 7, 1).to_string(), "e2/p7/r1");
    }

    proptest! {
        /// Stream addressing is consistent with jumping the base
        /// generator by the composite offset.
        #[test]
        fn stream_state_matches_jump(e in 0u64..1 << 10, p in 0u64..1 << 17, r in 0u64..1 << 20) {
            let h = StreamHierarchy::default();
            let cfg = h.config();
            let offset = (u128::from(e) << cfg.ne())
                + (u128::from(p) << cfg.np())
                + (u128::from(r) << cfg.nr());
            let mut base = Lcg128::new();
            base.jump(offset);
            prop_assert_eq!(
                h.stream_state(StreamId::new(e, p, r)).unwrap(),
                base.state()
            );
        }

        /// Valid configs always construct; their capacities multiply out
        /// to the usable half-period.
        #[test]
        fn capacities_partition_half_period(nr in 1u32..40, dp in 1u32..40, de in 1u32..40) {
            let np = nr + dp;
            let ne = np + de;
            prop_assume!(ne <= 125);
            let c = LeapConfig::new(ne, np, nr).unwrap();
            prop_assert_eq!(
                c.experiments_exponent() + c.processors_exponent()
                    + c.realizations_exponent() + c.numbers_per_realization_exponent(),
                125
            );
        }
    }
}
