//! Incremental advancement through the leapfrog hierarchy.
//!
//! [`StreamHierarchy::realization_stream`] positions every stream from
//! scratch with a jump-table walk over the composite offset (see
//! [`crate::jump::JumpTable`]) — one 128-bit multiply per nonzero
//! byte of the exponent. That is the right tool for random access,
//! but the runner's hot loop consumes realization streams *in order*
//! (`r`, `r+1`, `r+2`, …), where each next starting state is just the
//! previous one multiplied by the precomputed realization leap
//! `A(n_r)`. A [`StreamCursor`] exploits that: it walks rank-local
//! streams with **one** 128-bit multiply per step, and likewise steps
//! processor and experiment levels with one multiply each, while
//! producing streams bitwise identical to the from-scratch API.
//!
//! [`StreamHierarchy::realization_stream`]: crate::StreamHierarchy::realization_stream

use crate::hierarchy::{HierarchyError, LeapConfig, StreamId};
use crate::lcg128::Lcg128;
use crate::stream::RealizationStream;

/// An in-order walker over the realization streams of a
/// [`StreamHierarchy`](crate::StreamHierarchy).
///
/// Obtained from [`StreamHierarchy::cursor`]; positioned once with a
/// jump-table walk per level, then advanced incrementally: each
/// [`next_stream`](Self::next_stream) costs a single 128-bit multiply
/// instead of a fresh exponentiation, and
/// [`next_processor`](Self::next_processor) /
/// [`next_experiment`](Self::next_experiment) step the outer hierarchy
/// levels with one multiply each. Capacity accounting matches the
/// from-scratch API exactly: requesting a stream past a level's
/// capacity yields the same [`HierarchyError::OutOfCapacity`] that
/// [`realization_stream`](crate::StreamHierarchy::realization_stream)
/// would return for that address.
///
/// [`StreamHierarchy::cursor`]: crate::StreamHierarchy::cursor
///
/// # Examples
///
/// ```
/// use parmonc_rng::{StreamHierarchy, StreamId};
///
/// let h = StreamHierarchy::default();
/// let mut cursor = h.cursor(StreamId::new(0, 3, 0)).unwrap();
/// for r in 0..100 {
///     let incremental = cursor.next_stream().unwrap();
///     let scratch = h.realization_stream(StreamId::new(0, 3, r)).unwrap();
///     assert_eq!(incremental, scratch);
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamCursor {
    config: LeapConfig,
    multiplier: u128,
    leap_e: u128,
    leap_p: u128,
    leap_r: u128,
    /// Draw budget of every produced stream (`2^nr`).
    budget: u128,
    /// Address of the stream `next_stream` will produce.
    id: StreamId,
    /// Starting state of experiment `id.experiment` (position `(e,0,0)`).
    experiment_start: u128,
    /// Starting state of processor `id.processor` (position `(e,p,0)`).
    processor_start: u128,
    /// Starting state of realization `id.realization` — the state
    /// `next_stream` will hand out.
    state: u128,
}

impl StreamCursor {
    /// Crate-internal constructor used by
    /// [`StreamHierarchy::cursor`](crate::StreamHierarchy::cursor); the
    /// three states must already be positioned at `id` and its
    /// enclosing level heads.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_positioned(
        config: LeapConfig,
        multiplier: u128,
        leaps: (u128, u128, u128),
        id: StreamId,
        experiment_start: u128,
        processor_start: u128,
        state: u128,
    ) -> Self {
        Self {
            config,
            multiplier,
            leap_e: leaps.0,
            leap_p: leaps.1,
            leap_r: leaps.2,
            budget: 1u128 << config.nr(),
            id,
            experiment_start,
            processor_start,
            state,
        }
    }

    /// The address of the stream the next [`next_stream`](Self::next_stream)
    /// call will produce.
    #[must_use]
    pub fn id(&self) -> StreamId {
        self.id
    }

    /// The starting state the next produced stream will begin from.
    /// Always equal to
    /// [`stream_state(self.id())`](crate::StreamHierarchy::stream_state).
    #[must_use]
    pub fn state(&self) -> u128 {
        self.state
    }

    /// Produces the realization stream at the current address and
    /// advances the cursor to the next realization — one 128-bit
    /// multiply.
    ///
    /// # Errors
    ///
    /// Returns [`HierarchyError::OutOfCapacity`] when the realization
    /// index has run past the level's capacity, exactly as
    /// [`realization_stream`](crate::StreamHierarchy::realization_stream)
    /// would for the same address; the cursor is left unchanged, so a
    /// caller can recover with [`next_processor`](Self::next_processor).
    pub fn next_stream(&mut self) -> Result<RealizationStream, HierarchyError> {
        let capacity = self.config.realizations();
        if self.id.realization >= capacity {
            return Err(HierarchyError::OutOfCapacity {
                level: "realization",
                index: self.id.realization,
                capacity,
            });
        }
        let stream = RealizationStream::from_parts(
            Lcg128::with_state_and_multiplier(self.state, self.multiplier),
            self.id,
            self.budget,
        );
        self.state = self.state.wrapping_mul(self.leap_r);
        self.id.realization += 1;
        Ok(stream)
    }

    /// Moves the cursor to the head of the next processor subsequence
    /// (`(e, p+1, 0)`) — one 128-bit multiply.
    ///
    /// # Errors
    ///
    /// Returns [`HierarchyError::OutOfCapacity`] when the next
    /// processor index would exceed the level's capacity; the cursor is
    /// left unchanged.
    pub fn next_processor(&mut self) -> Result<(), HierarchyError> {
        let capacity = self.config.processors();
        let next = self.id.processor + 1;
        if next >= capacity {
            return Err(HierarchyError::OutOfCapacity {
                level: "processor",
                index: next,
                capacity,
            });
        }
        self.processor_start = self.processor_start.wrapping_mul(self.leap_p);
        self.state = self.processor_start;
        self.id = StreamId::new(self.id.experiment, next, 0);
        Ok(())
    }

    /// Moves the cursor to the head of the next experiment subsequence
    /// (`(e+1, 0, 0)`) — one 128-bit multiply.
    ///
    /// # Errors
    ///
    /// Returns [`HierarchyError::OutOfCapacity`] when the next
    /// experiment index would exceed the level's capacity; the cursor
    /// is left unchanged.
    pub fn next_experiment(&mut self) -> Result<(), HierarchyError> {
        let capacity = self.config.experiments();
        let next = self.id.experiment + 1;
        if next >= capacity {
            return Err(HierarchyError::OutOfCapacity {
                level: "experiment",
                index: next,
                capacity,
            });
        }
        self.experiment_start = self.experiment_start.wrapping_mul(self.leap_e);
        self.processor_start = self.experiment_start;
        self.state = self.experiment_start;
        self.id = StreamId::new(next, 0, 0);
        Ok(())
    }
}

/// `next_stream` until the realization level is exhausted.
impl Iterator for StreamCursor {
    type Item = RealizationStream;

    fn next(&mut self) -> Option<RealizationStream> {
        self.next_stream().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::StreamHierarchy;
    use parmonc_testkit::prelude::*;

    #[test]
    fn cursor_streams_match_from_scratch_api() {
        let h = StreamHierarchy::default();
        let mut cursor = h.cursor(StreamId::new(2, 5, 10)).unwrap();
        for r in 10..80 {
            let incremental = cursor.next_stream().unwrap();
            let scratch = h.realization_stream(StreamId::new(2, 5, r)).unwrap();
            assert_eq!(incremental, scratch, "r={r}");
        }
    }

    #[test]
    fn cursor_walks_all_three_levels() {
        // Small leaps: 16 processors per experiment, 16 realizations
        // per processor (the experiment level saturates, so bound it).
        let cfg = LeapConfig::new(12, 8, 4).unwrap();
        let h = StreamHierarchy::new(cfg);
        let mut cursor = h.cursor(StreamId::default()).unwrap();
        for e in 0..3u64 {
            for p in 0..h.config().processors() {
                for r in 0..h.config().realizations() {
                    let id = StreamId::new(e, p, r);
                    assert_eq!(cursor.id(), id);
                    assert_eq!(cursor.state(), h.stream_state(id).unwrap());
                    let incremental = cursor.next_stream().unwrap();
                    assert_eq!(incremental, h.realization_stream(id).unwrap());
                }
                assert!(matches!(
                    cursor.next_stream(),
                    Err(HierarchyError::OutOfCapacity {
                        level: "realization",
                        ..
                    })
                ));
                if p + 1 < h.config().processors() {
                    cursor.next_processor().unwrap();
                }
            }
            assert!(matches!(
                cursor.next_processor(),
                Err(HierarchyError::OutOfCapacity {
                    level: "processor",
                    ..
                })
            ));
            cursor.next_experiment().unwrap();
        }
    }

    #[test]
    fn experiment_capacity_is_enforced() {
        // ne = 124 leaves exactly 2^(125-124) = 2 experiments.
        let cfg = LeapConfig::new(124, 98, 43).unwrap();
        let h = StreamHierarchy::new(cfg);
        let mut cursor = h.cursor(StreamId::new(1, 0, 0)).unwrap();
        assert_eq!(
            cursor.next_experiment(),
            Err(HierarchyError::OutOfCapacity {
                level: "experiment",
                index: 2,
                capacity: 2,
            })
        );
        // The failed advance left the cursor intact.
        assert_eq!(
            cursor.next_stream().unwrap(),
            h.realization_stream(StreamId::new(1, 0, 0)).unwrap()
        );
    }

    #[test]
    fn exhaustion_errors_match_from_scratch_errors() {
        let cfg = LeapConfig::new(12, 8, 4).unwrap();
        let h = StreamHierarchy::new(cfg);
        let last = h.config().realizations() - 1;
        let mut cursor = h.cursor(StreamId::new(0, 0, last)).unwrap();
        let _ = cursor.next_stream().unwrap();
        assert_eq!(
            cursor.next_stream().unwrap_err(),
            h.realization_stream(StreamId::new(0, 0, last + 1))
                .unwrap_err()
        );
    }

    #[test]
    fn failed_advance_leaves_cursor_usable() {
        let cfg = LeapConfig::new(12, 8, 4).unwrap();
        let h = StreamHierarchy::new(cfg);
        let last = h.config().realizations() - 1;
        let mut cursor = h.cursor(StreamId::new(0, 0, last)).unwrap();
        let _ = cursor.next_stream().unwrap();
        assert!(cursor.next_stream().is_err());
        cursor.next_processor().unwrap();
        assert_eq!(
            cursor.next_stream().unwrap(),
            h.realization_stream(StreamId::new(0, 1, 0)).unwrap()
        );
    }

    #[test]
    fn cursor_rejects_out_of_capacity_start() {
        let h = StreamHierarchy::default();
        assert!(h.cursor(StreamId::new(1 << 10, 0, 0)).is_err());
    }

    #[test]
    fn iterator_yields_budgeted_streams() {
        let cfg = LeapConfig::new(12, 8, 4).unwrap();
        let h = StreamHierarchy::new(cfg);
        let cursor = h.cursor(StreamId::default()).unwrap();
        let streams: Vec<RealizationStream> = cursor.collect();
        assert_eq!(streams.len() as u64, h.config().realizations());
        assert!(streams.iter().all(|s| s.budget() == 1 << 4));
    }

    proptest! {
        /// Arbitrary interleavings of realization/processor/experiment
        /// advancement stay bitwise equal to the from-scratch API,
        /// including stream budgets and draw accounting.
        #[test]
        fn random_walks_match_from_scratch(
            start_e in 0u64..4,
            start_p in 0u64..4,
            start_r in 0u64..8,
            moves in collection::vec(0u8..10, 1..60),
        ) {
            let cfg = LeapConfig::new(12, 8, 4).unwrap();
            let h = StreamHierarchy::new(cfg);
            let start = StreamId::new(start_e, start_p, start_r);
            let mut cursor = h.cursor(start).unwrap();
            for m in moves {
                match m {
                    // Bias toward realization steps: that is the hot path.
                    0..=7 => {
                        let expected = h.realization_stream(cursor.id());
                        match cursor.next_stream() {
                            Ok(mut s) => {
                                let mut e = expected.unwrap();
                                prop_assert_eq!(&s, &e);
                                // A few draws agree too.
                                for _ in 0..4 {
                                    prop_assert_eq!(s.next_raw(), e.next_raw());
                                }
                                prop_assert_eq!(s.drawn(), e.drawn());
                            }
                            Err(err) => prop_assert_eq!(err, expected.unwrap_err()),
                        }
                    }
                    8 => {
                        let before = cursor.clone();
                        if cursor.next_processor().is_err() {
                            prop_assert_eq!(&cursor, &before);
                        }
                    }
                    _ => {
                        let before = cursor.clone();
                        if cursor.next_experiment().is_err() {
                            prop_assert_eq!(&cursor, &before);
                        }
                    }
                }
                // Invariant: the tracked state always matches the
                // from-scratch computation for the current address
                // (checkable only while the address is in capacity).
                if let Ok(expected_state) = h.stream_state(cursor.id()) {
                    prop_assert_eq!(cursor.state(), expected_state);
                }
            }
        }
    }
}
