//! Realization streams: the `rnd128()`-style handle a user routine
//! draws base random numbers from.
//!
//! In the paper the user's sequential routine simply calls
//! `a = rnd128();` and PARMONC has already positioned the generator on
//! the correct "realizations" subsequence (Section 2.4, initialization).
//! In this reproduction the same role is played by a
//! [`RealizationStream`] passed into the user’s `Realize`-style
//! closure: calling [`RealizationStream::next_f64`] is the `rnd128()`
//! call.

use core::fmt;

use crate::hierarchy::StreamId;
use crate::lcg128::Lcg128;

/// A source of i.i.d. `Uniform(0, 1)` base random numbers.
///
/// This is the only interface the statistical layers consume; it is
/// implemented by [`RealizationStream`], by the raw [`Lcg128`], and by
/// the baseline generators, so every workload can be exercised with
/// every generator in benches and statistical tests.
pub trait UniformSource {
    /// Returns the next base random number in the open interval (0, 1).
    fn next_f64(&mut self) -> f64;

    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with base random numbers.
    fn fill_f64(&mut self, dest: &mut [f64]) {
        for d in dest {
            *d = self.next_f64();
        }
    }
}

impl UniformSource for Lcg128 {
    #[inline]
    fn next_f64(&mut self) -> f64 {
        Lcg128::next_f64(self)
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        Lcg128::next_u64(self)
    }

    #[inline]
    fn fill_f64(&mut self, dest: &mut [f64]) {
        Lcg128::fill_f64(self, dest);
    }
}

/// The positioned generator handed to a user realization routine.
///
/// Wraps an [`Lcg128`] that has been leapt to the start of a
/// "realizations" subsequence, remembers its [`StreamId`], and counts
/// how many base random numbers the realization has consumed so that
/// budget exhaustion (more draws than the leap length `n_r`) is
/// detectable instead of silently overlapping the next realization's
/// subsequence.
///
/// # Examples
///
/// ```
/// use parmonc_rng::{StreamHierarchy, StreamId, UniformSource};
///
/// let h = StreamHierarchy::default();
/// let mut s = h.realization_stream(StreamId::new(0, 0, 0)).unwrap();
/// let a = s.next_f64(); // the paper's `a = rnd128();`
/// assert!(a > 0.0 && a < 1.0);
/// assert_eq!(s.drawn(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RealizationStream {
    rng: Lcg128,
    id: StreamId,
    budget: u128,
    drawn: u64,
}

impl RealizationStream {
    /// Assembles a stream from a positioned generator (crate-internal
    /// construction path used by
    /// [`StreamHierarchy`](crate::StreamHierarchy)).
    pub(crate) fn from_parts(rng: Lcg128, id: StreamId, budget: u128) -> Self {
        Self {
            rng,
            id,
            budget,
            drawn: 0,
        }
    }

    /// The address of this stream in the hierarchy.
    #[must_use]
    pub fn id(&self) -> StreamId {
        self.id
    }

    /// How many base random numbers have been drawn so far.
    #[must_use]
    pub fn drawn(&self) -> u64 {
        self.drawn
    }

    /// The number of base random numbers this realization may draw
    /// before it would run into the next realization's subsequence
    /// (`n_r`, default `2^43`).
    #[must_use]
    pub fn budget(&self) -> u128 {
        self.budget
    }

    /// Whether the realization has exceeded its subsequence budget.
    ///
    /// The paper notes a single realization "may demand a quantity of
    /// base random numbers comparable with the whole period" of short
    /// generators — with `n_r = 2^43` exhaustion is practically
    /// impossible, but the check keeps the overlap failure mode visible
    /// for tiny custom leap configurations.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        u128::from(self.drawn) >= self.budget
    }

    /// Advances and returns the raw 128-bit state (test/diagnostic use).
    #[inline]
    pub fn next_raw(&mut self) -> u128 {
        self.drawn += 1;
        self.rng.next_raw()
    }

    /// Returns the next base random number — the `rnd128()` of the
    /// paper.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        self.drawn += 1;
        self.rng.next_f64()
    }

    /// Returns the next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.drawn += 1;
        self.rng.next_u64()
    }

    /// Fills `dest` with consecutive base random numbers using the
    /// batched [`Lcg128::fill_f64`] path — bitwise identical to calling
    /// [`Self::next_f64`] `dest.len()` times, including the draw
    /// accounting against the subsequence budget.
    pub fn fill_f64(&mut self, dest: &mut [f64]) {
        self.rng.fill_f64(dest);
        self.drawn = self
            .drawn
            .saturating_add(u64::try_from(dest.len()).unwrap_or(u64::MAX));
    }
}

impl UniformSource for RealizationStream {
    #[inline]
    fn next_f64(&mut self) -> f64 {
        RealizationStream::next_f64(self)
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        RealizationStream::next_u64(self)
    }

    #[inline]
    fn fill_f64(&mut self, dest: &mut [f64]) {
        RealizationStream::fill_f64(self, dest);
    }
}

impl Iterator for RealizationStream {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        if self.is_exhausted() {
            None
        } else {
            Some(RealizationStream::next_f64(self))
        }
    }
}

impl fmt::Display for RealizationStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stream {} ({} drawn)", self.id, self.drawn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::{LeapConfig, StreamHierarchy};

    fn stream(e: u64, p: u64, r: u64) -> RealizationStream {
        StreamHierarchy::default()
            .realization_stream(StreamId::new(e, p, r))
            .unwrap()
    }

    #[test]
    fn counts_draws() {
        let mut s = stream(0, 0, 0);
        assert_eq!(s.drawn(), 0);
        let _ = s.next_f64();
        let _ = s.next_u64();
        let _ = s.next_raw();
        assert_eq!(s.drawn(), 3);
    }

    #[test]
    fn budget_is_realization_leap() {
        let s = stream(0, 0, 0);
        assert_eq!(s.budget(), 1u128 << 43);
        assert!(!s.is_exhausted());
    }

    #[test]
    fn iterator_stops_at_budget() {
        let cfg = LeapConfig::new(12, 8, 3).unwrap(); // budget 2^3 = 8
        let h = StreamHierarchy::new(cfg);
        let s = h.realization_stream(StreamId::new(0, 0, 0)).unwrap();
        let drawn: Vec<f64> = s.collect();
        assert_eq!(drawn.len(), 8);
    }

    #[test]
    fn fill_f64_default_impl() {
        let mut s = stream(0, 0, 0);
        let mut buf = [0.0f64; 16];
        s.fill_f64(&mut buf);
        assert!(buf.iter().all(|a| *a > 0.0 && *a < 1.0));
        assert_eq!(s.drawn(), 16);
    }

    #[test]
    fn fill_f64_matches_scalar_draws_and_accounting() {
        // Lengths straddling the 4-lane boundary, on a stream that has
        // already consumed a few draws.
        for len in [0usize, 1, 3, 4, 5, 7, 8, 63, 64, 65, 100] {
            let mut batched = stream(1, 2, 3);
            let _ = batched.next_f64();
            let mut scalar = batched.clone();
            let mut buf = vec![0.0f64; len];
            batched.fill_f64(&mut buf);
            for (i, x) in buf.iter().enumerate() {
                assert_eq!(*x, scalar.next_f64(), "len={len} draw {i} differs");
            }
            assert_eq!(batched, scalar, "len={len} state/accounting diverged");
        }
    }

    #[test]
    fn fill_f64_respects_exhaustion_accounting() {
        let cfg = LeapConfig::new(12, 8, 3).unwrap(); // budget 2^3 = 8
        let h = StreamHierarchy::new(cfg);
        let mut s = h.realization_stream(StreamId::new(0, 0, 0)).unwrap();
        let mut buf = [0.0f64; 8];
        s.fill_f64(&mut buf);
        assert_eq!(s.drawn(), 8);
        assert!(s.is_exhausted());
    }

    #[test]
    fn different_streams_differ() {
        let a: Vec<u128> = {
            let mut s = stream(0, 0, 0);
            (0..8).map(|_| s.next_raw()).collect()
        };
        let b: Vec<u128> = {
            let mut s = stream(0, 0, 1);
            (0..8).map(|_| s.next_raw()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn display_mentions_id_and_draws() {
        let mut s = stream(1, 2, 3);
        let _ = s.next_f64();
        assert_eq!(s.to_string(), "stream e1/p2/r3 (1 drawn)");
    }

    #[test]
    fn uniform_source_is_object_safe() {
        // The trait is used as `&mut dyn UniformSource` in generic
        // workload plumbing; keep it object safe.
        let mut s = stream(0, 0, 0);
        let dynamic: &mut dyn UniformSource = &mut s;
        assert!(dynamic.next_f64() > 0.0);
    }
}
