//! Precomputed jump-ahead tables for `A^n mod 2^128`.
//!
//! The leapfrog hierarchy addresses a stream by jumping the base
//! generator `n` positions ahead, which needs the power `A^n mod 2^128`.
//! [`modpow`] computes it by binary
//! exponentiation — up to 127 squarings *plus* up to 127 multiplies,
//! every time. But `A` is fixed for the lifetime of a hierarchy, so the
//! squarings can be paid **once**: this module caches
//!
//! * `pow2[k] = A^(2^k) mod 2^128` for `k = 0..128` (127 squarings), and
//! * a radix-256 ladder `byte[k][j-1] = A^(j · 256^k)` for `j = 1..256`,
//!   `k = 0..16` (255 multiplies per byte position),
//!
//! after which **any** `A^n` is at most 16 table multiplies — one per
//! nonzero byte of `n` — with no squarings at all. Stream addressing
//! (three such powers per [`StreamId`](crate::StreamId)) and mid-run
//! budget reassignment jumps become cheap enough to sit on the hot path.
//!
//! One table serves *all three* hierarchy levels: the level multipliers
//! are themselves powers of the base (`A(n_e) = A^(2^n_e) = pow2[n_e]`),
//! and `A(n_e)^e · A(n_p)^p · A(n_r)^r = A^((e<<n_e)+(p<<n_p)+(r<<n_r))`
//! where the exponent is taken mod `2^128` — valid because the
//! multiplicative order of `A` (`2^126`) divides `2^128`.

use crate::multiplier::{modpow, DEFAULT_MULTIPLIER};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of 8-bit digits in a 128-bit exponent.
const BYTES: usize = 16;

/// Precomputed powers of one (odd) multiplier `A` modulo `2^128`.
///
/// Build cost is a one-time ~4200 multiplications (microseconds) and
/// ~66 KB of table; afterwards [`power`](Self::power) needs at most one
/// multiply per nonzero byte of the exponent. Obtain a process-wide
/// shared instance with [`JumpTable::shared`] — the table for
/// [`DEFAULT_MULTIPLIER`] is built exactly once and reused by every
/// hierarchy.
pub struct JumpTable {
    multiplier: u128,
    /// `pow2[k] = A^(2^k) mod 2^128`.
    pow2: [u128; 128],
    /// `byte[k][j-1] = A^(j * 256^k) mod 2^128`, `j = 1..256`.
    byte: Box<[[u128; 255]; BYTES]>,
}

impl JumpTable {
    /// Builds the table for `multiplier` (must be odd).
    ///
    /// # Panics
    ///
    /// Panics if `multiplier` is even — even multipliers collapse the
    /// generator and have no multiplicative order.
    pub fn new(multiplier: u128) -> Self {
        assert!(
            multiplier & 1 == 1,
            "jump table multiplier must be odd, got {multiplier:#x}"
        );
        let mut pow2 = [0u128; 128];
        pow2[0] = multiplier;
        for k in 1..128 {
            pow2[k] = pow2[k - 1].wrapping_mul(pow2[k - 1]);
        }
        let mut byte = Box::new([[0u128; 255]; BYTES]);
        for k in 0..BYTES {
            // A^(256^k) is pow2[8k]; the rest of the row is its powers.
            let base = pow2[8 * k];
            let mut acc = base;
            for j in 0..255 {
                byte[k][j] = acc;
                acc = acc.wrapping_mul(base);
            }
        }
        Self {
            multiplier,
            pow2,
            byte,
        }
    }

    /// The process-wide shared table for `multiplier`.
    ///
    /// The [`DEFAULT_MULTIPLIER`] table lives in a `OnceLock`; a small
    /// move-to-front cache (8 entries) covers non-default multipliers so
    /// repeated lookups (e.g. test hierarchies) don't rebuild.
    pub fn shared(multiplier: u128) -> Arc<JumpTable> {
        static DEFAULT: OnceLock<Arc<JumpTable>> = OnceLock::new();
        if multiplier == DEFAULT_MULTIPLIER {
            return Arc::clone(
                DEFAULT.get_or_init(|| Arc::new(JumpTable::new(DEFAULT_MULTIPLIER))),
            );
        }
        static CACHE: Mutex<Vec<Arc<JumpTable>>> = Mutex::new(Vec::new());
        let mut cache = CACHE.lock().expect("jump table cache poisoned");
        if let Some(pos) = cache.iter().position(|t| t.multiplier == multiplier) {
            let table = Arc::clone(&cache[pos]);
            // Move-to-front so hot multipliers survive eviction.
            cache.swap(0, pos);
            return table;
        }
        let table = Arc::new(JumpTable::new(multiplier));
        cache.insert(0, Arc::clone(&table));
        cache.truncate(8);
        table
    }

    /// The multiplier this table was built for.
    pub fn multiplier(&self) -> u128 {
        self.multiplier
    }

    /// `A^(2^k) mod 2^128` — the leap multiplier for leap exponent `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= 128`.
    pub fn pow2(&self, k: u32) -> u128 {
        self.pow2[k as usize]
    }

    /// `A^n mod 2^128` in at most one multiply per nonzero byte of `n`.
    ///
    /// Bitwise identical to [`modpow`]`(self.multiplier(), n)`.
    ///
    /// The byte products are accumulated into four independent chains
    /// (striped over byte positions) that only meet in a final
    /// three-multiply reduction: a single chain would serialize every
    /// 128-bit multiply on the previous one's latency, while the striped
    /// chains overlap in the out-of-order window.
    pub fn power(&self, n: u128) -> u128 {
        if n == 0 {
            return 1;
        }
        let mut acc = [1u128; 4];
        // Skip trailing zero bytes outright: stream offsets are level
        // indices shifted left by the leap exponent, so the low bytes
        // are zero far more often than not.
        let mut k = (n.trailing_zeros() / 8) as usize;
        let mut rest = n >> (8 * k);
        while rest != 0 {
            let digit = (rest & 0xff) as usize;
            if digit != 0 {
                let lane = &mut acc[k & 3];
                *lane = lane.wrapping_mul(self.byte[k][digit - 1]);
            }
            rest >>= 8;
            k += 1;
        }
        (acc[0].wrapping_mul(acc[1])).wrapping_mul(acc[2].wrapping_mul(acc[3]))
    }

    /// Jumps `state` ahead `n` positions: `state · A^n mod 2^128`.
    pub fn jump(&self, state: u128, n: u128) -> u128 {
        state.wrapping_mul(self.power(n))
    }
}

impl std::fmt::Debug for JumpTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JumpTable")
            .field("multiplier", &format_args!("{:#x}", self.multiplier))
            .finish_non_exhaustive()
    }
}

/// `multiplier^n mod 2^128`, via the shared table when `multiplier` is
/// the default (the overwhelmingly common case) and plain [`modpow`]
/// otherwise — custom multipliers from property tests shouldn't churn
/// the table cache.
#[inline]
pub(crate) fn power_for(multiplier: u128, n: u128) -> u128 {
    if multiplier == DEFAULT_MULTIPLIER {
        JumpTable::shared(DEFAULT_MULTIPLIER).power(n)
    } else {
        modpow(multiplier, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::{LeapConfig, StreamHierarchy, StreamId};
    use crate::multiplier::leap_multiplier;
    use parmonc_testkit::prelude::*;

    #[test]
    fn pow2_matches_leap_multiplier() {
        let table = JumpTable::new(DEFAULT_MULTIPLIER);
        for k in [0u32, 1, 43, 98, 115, 127] {
            assert_eq!(
                table.pow2(k),
                leap_multiplier(DEFAULT_MULTIPLIER, k),
                "k={k}"
            );
        }
    }

    #[test]
    fn power_of_zero_is_identity() {
        let table = JumpTable::new(DEFAULT_MULTIPLIER);
        assert_eq!(table.power(0), 1);
        assert_eq!(table.jump(42, 0), 42);
    }

    #[test]
    fn power_of_small_exponents_is_repeated_multiplication() {
        let table = JumpTable::new(DEFAULT_MULTIPLIER);
        let mut acc = 1u128;
        for n in 0..200u128 {
            assert_eq!(table.power(n), acc, "n={n}");
            acc = acc.wrapping_mul(DEFAULT_MULTIPLIER);
        }
    }

    #[test]
    fn shared_default_table_is_reused() {
        let a = JumpTable::shared(DEFAULT_MULTIPLIER);
        let b = JumpTable::shared(DEFAULT_MULTIPLIER);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn shared_custom_table_is_cached() {
        let m = 0x5851_f42d_4c95_7f2d_1405_7b7e_f767_814f_u128;
        let a = JumpTable::shared(m);
        let b = JumpTable::shared(m);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.multiplier(), m);
    }

    #[test]
    fn even_multiplier_rejected() {
        let result = std::panic::catch_unwind(|| JumpTable::new(2));
        assert!(result.is_err());
    }

    proptest! {
        /// The table walk is bitwise identical to binary exponentiation
        /// for arbitrary exponents.
        #[test]
        fn power_matches_modpow(n in any::<u128>()) {
            let table = JumpTable::shared(DEFAULT_MULTIPLIER);
            prop_assert_eq!(table.power(n), modpow(DEFAULT_MULTIPLIER, n));
        }

        /// Same, for arbitrary odd multipliers.
        #[test]
        fn power_matches_modpow_for_custom_multipliers(
            m in any::<u128>(),
            n in any::<u128>(),
        ) {
            let m = m | 1;
            let table = JumpTable::new(m);
            prop_assert_eq!(table.power(n), modpow(m, n));
        }

        /// The single-table identity behind hierarchy addressing: the
        /// per-level power `A(n_x)^i` equals `A^(i << n_x)` at all three
        /// hierarchy levels.
        #[test]
        fn level_powers_collapse_to_base_exponents(
            e in 0u64..1024,
            p in 0u64..131_072,
            r in 0u64..1_000_000,
        ) {
            let config = LeapConfig::default();
            let table = JumpTable::shared(DEFAULT_MULTIPLIER);
            let (ne, np, nr) = (config.ne(), config.np(), config.nr());
            prop_assert_eq!(
                table.power((e as u128) << ne),
                modpow(leap_multiplier(DEFAULT_MULTIPLIER, ne), e as u128)
            );
            prop_assert_eq!(
                table.power((p as u128) << np),
                modpow(leap_multiplier(DEFAULT_MULTIPLIER, np), p as u128)
            );
            prop_assert_eq!(
                table.power((r as u128) << nr),
                modpow(leap_multiplier(DEFAULT_MULTIPLIER, nr), r as u128)
            );
            // And the composite offset reproduces the full stream state.
            let h = StreamHierarchy::default();
            let id = StreamId::new(e, p, r);
            let offset = ((e as u128) << ne)
                .wrapping_add((p as u128) << np)
                .wrapping_add((r as u128) << nr);
            prop_assert_eq!(table.jump(1, offset), h.stream_state(id).unwrap());
        }
    }
}
