//! Transformations of base random numbers into the distributions the
//! workloads need.
//!
//! The paper (formula (2)) represents a complex random variable as a
//! function `zeta = zeta(alpha_1, ..., alpha_k)` of i.i.d. `U(0,1)` base
//! random numbers; this module supplies the standard transformations
//! used by the SDE substrate and the application workloads: normal
//! (Box–Muller and Marsaglia polar), exponential, Poisson, Bernoulli,
//! integer ranges, and discrete distributions by inverse CDF.

use crate::stream::UniformSource;

/// The Box–Muller transform: two `U(0,1)` draws into two independent
/// standard normals. All normal sampling paths (scalar, pair, batched)
/// go through this one function, so they agree bitwise.
#[inline]
fn box_muller(u1: f64, u2: f64) -> (f64, f64) {
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * core::f64::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

/// Samples a standard normal `N(0, 1)` using the Box–Muller transform.
///
/// Consumes exactly two base random numbers and discards the second
/// variate, matching how a FORTRAN Monte Carlo code with a scalar
/// `gauss()` routine typically behaves — reproducibility counts draws.
///
/// # Examples
///
/// ```
/// use parmonc_rng::{distributions::standard_normal, Lcg128};
///
/// let mut rng = Lcg128::new();
/// let z = standard_normal(&mut rng);
/// assert!(z.is_finite());
/// ```
pub fn standard_normal<R: UniformSource + ?Sized>(rng: &mut R) -> f64 {
    let u1 = rng.next_f64();
    let u2 = rng.next_f64();
    box_muller(u1, u2).0
}

/// Samples a *pair* of independent standard normals with one Box–Muller
/// transform (two base random numbers, no waste).
pub fn standard_normal_pair<R: UniformSource + ?Sized>(rng: &mut R) -> (f64, f64) {
    let u1 = rng.next_f64();
    let u2 = rng.next_f64();
    box_muller(u1, u2)
}

/// Fills `dest` with independent standard normals, drawing base random
/// numbers through the batched [`UniformSource::fill_f64`] path.
///
/// Bitwise identical to filling `dest` with repeated
/// [`standard_normal_pair`] calls (odd lengths end with one
/// [`standard_normal`] call, i.e. the final pair's second variate is
/// discarded) — but the uniforms come from `fill_f64`, so an [`Lcg128`]
/// source draws them through the wide-lane engine instead of the serial
/// scalar recurrence.
///
/// # Examples
///
/// ```
/// use parmonc_rng::{distributions::fill_standard_normal, Lcg128};
///
/// let mut rng = Lcg128::new();
/// let mut z = [0.0f64; 1000];
/// fill_standard_normal(&mut rng, &mut z);
/// let mean = z.iter().sum::<f64>() / z.len() as f64;
/// assert!(mean.abs() < 0.2);
/// ```
///
/// [`Lcg128`]: crate::Lcg128
pub fn fill_standard_normal<R: UniformSource + ?Sized>(rng: &mut R, dest: &mut [f64]) {
    // Uniform staging buffer: big enough to amortize the batched fill,
    // small enough to stay in L1 and off the heap.
    const CHUNK: usize = 256;
    let mut uniforms = [0.0f64; CHUNK];
    let mut chunks = dest.chunks_exact_mut(CHUNK);
    for chunk in &mut chunks {
        rng.fill_f64(&mut uniforms);
        for (pair, u) in chunk.chunks_exact_mut(2).zip(uniforms.chunks_exact(2)) {
            let (z1, z2) = box_muller(u[0], u[1]);
            pair[0] = z1;
            pair[1] = z2;
        }
    }
    let tail = chunks.into_remainder();
    if !tail.is_empty() {
        // Draw exactly the uniforms the scalar calls would: two per
        // pair, plus two for a trailing odd element (second discarded).
        let need = (tail.len() / 2) * 2 + if tail.len() % 2 == 1 { 2 } else { 0 };
        let uniforms = &mut uniforms[..need];
        rng.fill_f64(uniforms);
        let mut pairs = tail.chunks_exact_mut(2);
        let mut us = uniforms.chunks_exact(2);
        for (pair, u) in (&mut pairs).zip(&mut us) {
            let (z1, z2) = box_muller(u[0], u[1]);
            pair[0] = z1;
            pair[1] = z2;
        }
        if let ([last], Some(u)) = (pairs.into_remainder(), us.next()) {
            *last = box_muller(u[0], u[1]).0;
        }
    }
}

/// Samples a standard normal with the Marsaglia polar method
/// (rejection-based; consumes a random *number* of base draws).
pub fn standard_normal_polar<R: UniformSource + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let x = 2.0 * rng.next_f64() - 1.0;
        let y = 2.0 * rng.next_f64() - 1.0;
        let s = x * x + y * y;
        if s > 0.0 && s < 1.0 {
            return x * ((-2.0 * s.ln()) / s).sqrt();
        }
    }
}

/// Samples `N(mean, std_dev^2)`.
///
/// # Panics
///
/// Panics (debug builds) if `std_dev` is negative.
pub fn normal<R: UniformSource + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    debug_assert!(std_dev >= 0.0, "standard deviation must be non-negative");
    mean + std_dev * standard_normal(rng)
}

/// Samples `Exp(rate)` by inversion: `-ln(u) / rate`.
///
/// # Panics
///
/// Panics if `rate` is not strictly positive.
pub fn exponential<R: UniformSource + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "exponential rate must be positive, got {rate}");
    -rng.next_f64().ln() / rate
}

/// Samples `Uniform(lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn uniform<R: UniformSource + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    assert!(
        lo < hi,
        "uniform bounds must satisfy lo < hi, got [{lo}, {hi})"
    );
    lo + (hi - lo) * rng.next_f64()
}

/// Samples a Bernoulli trial with success probability `p`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn bernoulli<R: UniformSource + ?Sized>(rng: &mut R, p: f64) -> bool {
    assert!(
        (0.0..=1.0).contains(&p),
        "probability must be in [0,1], got {p}"
    );
    rng.next_f64() < p
}

/// Samples `Poisson(lambda)` by Knuth's product-of-uniforms method.
///
/// Fine for the moderate rates the workloads use; O(lambda) draws.
///
/// # Panics
///
/// Panics if `lambda` is not strictly positive.
pub fn poisson<R: UniformSource + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(lambda > 0.0, "Poisson rate must be positive, got {lambda}");
    let threshold = (-lambda).exp();
    let mut k = 0u64;
    let mut product = 1.0;
    loop {
        product *= rng.next_f64();
        if product <= threshold {
            return k;
        }
        k += 1;
    }
}

/// Samples an integer uniformly from `0..n` using rejection-free
/// fixed-point multiplication on the high 64 bits.
///
/// The modulo bias of this method is below `n / 2^64`, negligible for
/// every workload in this repository.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn uniform_index<R: UniformSource + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    ((u128::from(rng.next_u64()) * u128::from(n)) >> 64) as u64
}

/// Samples an index from a discrete distribution given by (unnormalized)
/// non-negative `weights`, by inverse CDF over the running sum.
///
/// # Panics
///
/// Panics if `weights` is empty, contains a negative entry, or sums to
/// zero.
pub fn discrete<R: UniformSource + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "discrete distribution needs weights");
    let mut total = 0.0;
    for (i, w) in weights.iter().enumerate() {
        assert!(*w >= 0.0, "weight {i} is negative: {w}");
        total += w;
    }
    assert!(total > 0.0, "weights sum to zero");
    let target = rng.next_f64() * total;
    let mut acc = 0.0;
    for (i, w) in weights.iter().enumerate() {
        acc += w;
        if target < acc {
            return i;
        }
    }
    weights.len() - 1 // numerical edge: target == total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcg128::Lcg128;

    fn rng() -> Lcg128 {
        Lcg128::new()
    }

    fn sample_stats(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let xs: Vec<f64> = (0..200_000).map(|_| standard_normal(&mut r)).collect();
        let (mean, var) = sample_stats(&xs);
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn normal_pair_components_uncorrelated() {
        let mut r = rng();
        let pairs: Vec<(f64, f64)> = (0..100_000).map(|_| standard_normal_pair(&mut r)).collect();
        let n = pairs.len() as f64;
        let cov = pairs.iter().map(|(a, b)| a * b).sum::<f64>() / n;
        assert!(cov.abs() < 0.02, "cov {cov}");
    }

    #[test]
    fn polar_normal_moments() {
        let mut r = rng();
        let xs: Vec<f64> = (0..100_000)
            .map(|_| standard_normal_polar(&mut r))
            .collect();
        let (mean, var) = sample_stats(&xs);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn shifted_normal() {
        let mut r = rng();
        let xs: Vec<f64> = (0..100_000).map(|_| normal(&mut r, 3.0, 2.0)).collect();
        let (mean, var) = sample_stats(&xs);
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let mut r = rng();
        let xs: Vec<f64> = (0..200_000).map(|_| exponential(&mut r, 2.0)).collect();
        let (mean, var) = sample_stats(&xs);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        assert!((var - 0.25).abs() < 0.01, "var {var}");
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let mut r = rng();
        let xs: Vec<f64> = (0..100_000).map(|_| uniform(&mut r, -2.0, 4.0)).collect();
        assert!(xs.iter().all(|x| (-2.0..4.0).contains(x)));
        let (mean, _) = sample_stats(&xs);
        assert!((mean - 1.0).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn bernoulli_rate() {
        let mut r = rng();
        let hits = (0..100_000).filter(|_| bernoulli(&mut r, 0.3)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.3).abs() < 0.01, "p {p}");
    }

    #[test]
    fn poisson_mean_and_variance_match_lambda() {
        let mut r = rng();
        let xs: Vec<f64> = (0..50_000).map(|_| poisson(&mut r, 4.0) as f64).collect();
        let (mean, var) = sample_stats(&xs);
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn uniform_index_covers_range_uniformly() {
        let mut r = rng();
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[uniform_index(&mut r, 7) as usize] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            assert!((*c as f64 - 10_000.0).abs() < 500.0, "bucket {i} count {c}");
        }
    }

    #[test]
    fn discrete_follows_weights() {
        let mut r = rng();
        let weights = [1.0, 2.0, 7.0];
        let mut counts = [0u32; 3];
        for _ in 0..100_000 {
            counts[discrete(&mut r, &weights)] += 1;
        }
        assert!((counts[0] as f64 / 100_000.0 - 0.1).abs() < 0.01);
        assert!((counts[1] as f64 / 100_000.0 - 0.2).abs() < 0.01);
        assert!((counts[2] as f64 / 100_000.0 - 0.7).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_zero_rate() {
        let _ = exponential(&mut rng(), 0.0);
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn uniform_rejects_inverted_bounds() {
        let _ = uniform(&mut rng(), 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "in [0,1]")]
    fn bernoulli_rejects_bad_probability() {
        let _ = bernoulli(&mut rng(), 1.5);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn uniform_index_rejects_zero() {
        let _ = uniform_index(&mut rng(), 0);
    }

    #[test]
    #[should_panic(expected = "sum to zero")]
    fn discrete_rejects_zero_mass() {
        let _ = discrete(&mut rng(), &[0.0, 0.0]);
    }

    #[test]
    fn fill_standard_normal_matches_scalar_pairs_bitwise() {
        // Even lengths are pairs; odd lengths end with a discarded
        // second variate — exactly the scalar call sequence.
        for len in [
            0usize, 1, 2, 3, 7, 8, 255, 256, 257, 511, 512, 513, 1000, 1001,
        ] {
            let mut batched_rng = rng();
            let mut scalar_rng = rng();
            let mut batched = vec![0.0f64; len];
            fill_standard_normal(&mut batched_rng, &mut batched);
            let mut scalar = Vec::with_capacity(len);
            while scalar.len() + 2 <= len {
                let (z1, z2) = standard_normal_pair(&mut scalar_rng);
                scalar.push(z1);
                scalar.push(z2);
            }
            if scalar.len() < len {
                scalar.push(standard_normal(&mut scalar_rng));
            }
            assert_eq!(batched, scalar, "len={len}");
            assert_eq!(batched_rng.state(), scalar_rng.state(), "state len={len}");
        }
    }

    #[test]
    fn fill_standard_normal_moments() {
        let mut r = rng();
        let mut xs = vec![0.0f64; 200_000];
        fill_standard_normal(&mut r, &mut xs);
        let (mean, var) = sample_stats(&xs);
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn deterministic_across_runs() {
        // Same stream position → identical variates: the reproducibility
        // contract resumption relies on.
        let mut a = rng();
        let mut b = rng();
        for _ in 0..100 {
            assert_eq!(standard_normal(&mut a), standard_normal(&mut b));
        }
    }
}
