//! The base 128-bit multiplicative congruential generator.
//!
//! Paper formula (6):
//!
//! ```text
//! u_0 = 1,  u_{k+1} = u_k · A (mod 2^128),  alpha_k = u_k · 2^{-128}
//! ```
//!
//! The state is an odd 128-bit integer; the sequence of states walks a
//! cycle of length `2^126` (formula (7)), of which the paper recommends
//! using the first half (`2^125` numbers).

#[cfg(test)]
use crate::multiplier::PERIOD_EXPONENT;
use crate::multiplier::{DEFAULT_MULTIPLIER, MODULUS_BITS};

/// Scale factor turning the top 53 bits of the state into a double in
/// the *open* interval (0, 1): `alpha = (top53 + 0.5) · 2^-53`.
const F64_SCALE: f64 = 1.0 / (1u64 << 53) as f64;

/// The base 128-bit multiplicative congruential generator (paper
/// formula (6)) with multiplier `A = 5^101 mod 2^128`.
///
/// `Lcg128` is deliberately small and `Copy`-free: cloning one is an
/// explicit act of forking the stream, which in PARMONC is only ever
/// done through the leapfrog hierarchy.
///
/// # Examples
///
/// ```
/// use parmonc_rng::Lcg128;
///
/// let mut rng = Lcg128::new();
/// let a = rng.next_f64();
/// assert!(a > 0.0 && a < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Lcg128 {
    state: u128,
    multiplier: u128,
}

impl Lcg128 {
    /// Creates the generator at the head of the general sequence
    /// (`u_0 = 1`, default multiplier).
    #[must_use]
    pub fn new() -> Self {
        Self::with_state(1)
    }

    /// Creates the generator at a given state with the default
    /// multiplier.
    ///
    /// # Panics
    ///
    /// Panics if `state` is even: even states are outside the group of
    /// units modulo `2^128` and would collapse to a shorter cycle.
    #[must_use]
    pub fn with_state(state: u128) -> Self {
        Self::with_state_and_multiplier(state, DEFAULT_MULTIPLIER)
    }

    /// Creates the generator at a given state with a caller-supplied
    /// multiplier (for `genparam`-style overrides and for tests).
    ///
    /// # Panics
    ///
    /// Panics if `state` or `multiplier` is even.
    #[must_use]
    pub fn with_state_and_multiplier(state: u128, multiplier: u128) -> Self {
        assert!(state & 1 == 1, "LCG state must be odd, got {state:#x}");
        assert!(
            multiplier & 1 == 1,
            "LCG multiplier must be odd, got {multiplier:#x}"
        );
        Self { state, multiplier }
    }

    /// Creates the generator positioned `k` steps into the general
    /// sequence, i.e. at state `u_k = A^k mod 2^128`, via the shared
    /// precomputed [`JumpTable`](crate::JumpTable) (at most one multiply
    /// per nonzero nibble of `k`).
    ///
    /// # Examples
    ///
    /// ```
    /// use parmonc_rng::Lcg128;
    ///
    /// let mut stepped = Lcg128::new();
    /// for _ in 0..1000 {
    ///     stepped.next_raw();
    /// }
    /// let jumped = Lcg128::at_position(1000);
    /// assert_eq!(stepped.state(), jumped.state());
    /// ```
    #[must_use]
    pub fn at_position(k: u128) -> Self {
        Self::with_state(crate::jump::power_for(DEFAULT_MULTIPLIER, k))
    }

    /// Current 128-bit state `u_k`.
    #[must_use]
    pub fn state(&self) -> u128 {
        self.state
    }

    /// The multiplier `A` this generator steps with.
    #[must_use]
    pub fn multiplier(&self) -> u128 {
        self.multiplier
    }

    /// Advances the recurrence once and returns the new raw state
    /// `u_{k+1}`.
    #[inline]
    pub fn next_raw(&mut self) -> u128 {
        self.state = self.state.wrapping_mul(self.multiplier);
        self.state
    }

    /// Returns the next base random number `alpha ∈ (0, 1)`.
    ///
    /// The paper defines `alpha_k = u_k · 2^-128`; converting the full
    /// 128-bit state to `f64` could round up to exactly `1.0`, so we take
    /// the top 53 bits and centre within the bin:
    /// `alpha = (⌊u/2^75⌋ + 0.5) · 2^-53`, which is always strictly inside
    /// `(0, 1)` and differs from the exact value by less than `2^-53`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        let u = self.next_raw();
        ((u >> (MODULUS_BITS - 53)) as u64 as f64 + 0.5) * F64_SCALE
    }

    /// Fills `dest` with consecutive base random numbers, bitwise
    /// identical to calling [`Self::next_f64`] `dest.len()` times.
    ///
    /// The recurrence `u_{k+1} = u_k · A` is a serial dependency chain,
    /// so a naive loop is bounded by the latency of one 128-bit
    /// multiply per draw. Batched fills instead drain the wide-lane
    /// engine ([`LaneLcg128`](crate::LaneLcg128)): eight leapfrogged
    /// lanes stepped by `A^8`, whose independent multiplies the CPU
    /// retires at multiplier-port throughput. With the `simd` cargo
    /// feature, fills of 64+ values on CPUs with AVX-512 IFMA dispatch
    /// to a 16-lane 52-bit-limb kernel that clears even the throughput
    /// bound (see `docs/performance.md`). Every path emits the exact
    /// sequential sequence and leaves `self` where the scalar loop
    /// would.
    ///
    /// # Examples
    ///
    /// ```
    /// use parmonc_rng::Lcg128;
    ///
    /// let mut a = Lcg128::new();
    /// let mut b = a.clone();
    /// let mut buf = [0.0f64; 10];
    /// a.fill_f64(&mut buf);
    /// for x in &buf {
    ///     assert_eq!(*x, b.next_f64());
    /// }
    /// assert_eq!(a.state(), b.state());
    /// ```
    pub fn fill_f64(&mut self, dest: &mut [f64]) {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if dest.len() >= crate::simd::MIN_SIMD_LEN {
            if let Some(state) = crate::simd::fill_f64(self.state, self.multiplier, dest) {
                self.state = state;
                return;
            }
        }
        let mut lanes = crate::lanes::LaneLcg128::<8>::from_parts(self.state, self.multiplier);
        lanes.fill_f64(dest);
        self.state = lanes.state();
    }

    /// Returns the next 64 high bits of the state as a `u64`.
    ///
    /// High bits of an MCG modulo a power of two have the best
    /// equidistribution (the low bit never changes); all integer output
    /// is therefore taken from the top.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        (self.next_raw() >> 64) as u64
    }

    /// Returns the next 32 high bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_raw() >> 96) as u32
    }

    /// Jumps the generator forward by `n` steps (paper formula (8):
    /// multiply the state by `A(n) = A^n`).
    ///
    /// For the default multiplier the power comes from the shared
    /// precomputed [`JumpTable`](crate::JumpTable) — at most one
    /// multiply per nonzero nibble of `n`, no squarings; custom
    /// multipliers fall back to `O(log n)` binary exponentiation.
    ///
    /// # Examples
    ///
    /// ```
    /// use parmonc_rng::Lcg128;
    ///
    /// let mut a = Lcg128::new();
    /// let mut b = a.clone();
    /// for _ in 0..12345 {
    ///     a.next_raw();
    /// }
    /// b.jump(12345);
    /// assert_eq!(a.state(), b.state());
    /// ```
    pub fn jump(&mut self, n: u128) {
        self.state = self
            .state
            .wrapping_mul(crate::jump::power_for(self.multiplier, n));
    }

    /// Returns a clone jumped `n` steps ahead, leaving `self` unchanged.
    #[must_use]
    pub fn leaped(&self, n: u128) -> Self {
        let mut c = self.clone();
        c.jump(n);
        c
    }

    /// The period of the generator, as the exponent `t` of `2^t`.
    ///
    /// For the default multiplier this is `126` (paper formula (7)).
    #[must_use]
    pub fn period_exponent(&self) -> u32 {
        crate::multiplier::order_exponent(self.multiplier)
            .expect("multiplier is validated odd at construction")
    }
}

impl Default for Lcg128 {
    fn default() -> Self {
        Self::new()
    }
}

impl Iterator for Lcg128 {
    type Item = f64;

    /// Yields base random numbers forever (the cycle length `2^126`
    /// is unreachable in practice).
    fn next(&mut self) -> Option<f64> {
        Some(self.next_f64())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (usize::MAX, None)
    }
}

/// A convenience free function mirroring the paper's `a = rnd128();`
/// call style for a caller-managed generator.
///
/// # Examples
///
/// ```
/// use parmonc_rng::lcg128::{rnd128, Lcg128};
///
/// let mut rng = Lcg128::new();
/// let a = rnd128(&mut rng);
/// assert!(a > 0.0 && a < 1.0);
/// ```
#[inline]
pub fn rnd128(rng: &mut Lcg128) -> f64 {
    rng.next_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::limbs::U128Limbs;
    use parmonc_testkit::prelude::*;

    /// First states of the sequence, computed independently with Python
    /// bignums: u_k = (5^101)^k mod 2^128 for k = 1..=3.
    const KNOWN_STATES: [u128; 3] = [
        0xbc1b_6074_2c6a_5846_f557_b4f2_b48e_8cb5,
        0xbb72_99b4_870b_2934_67bf_5372_ee22_77f9,
        0xd82e_e807_acb4_e04a_80a8_ab58_d818_ff0d,
    ];

    #[test]
    fn matches_reference_states() {
        let mut rng = Lcg128::new();
        for expected in KNOWN_STATES {
            assert_eq!(rng.next_raw(), expected);
        }
    }

    #[test]
    fn first_alpha_matches_reference_value() {
        // u_1 / 2^128 = 0.7347927363993362 (Python reference); our open
        // interval mapping agrees to < 2^-53 relative placement.
        let mut rng = Lcg128::new();
        let a = rng.next_f64();
        assert!((a - 0.734_792_736_399_336_2).abs() < 1e-12);
    }

    #[test]
    fn outputs_stay_in_open_unit_interval() {
        let mut rng = Lcg128::new();
        for _ in 0..10_000 {
            let a = rng.next_f64();
            assert!(a > 0.0 && a < 1.0, "alpha out of (0,1): {a}");
        }
    }

    #[test]
    fn state_stays_odd() {
        let mut rng = Lcg128::new();
        for _ in 0..1_000 {
            assert_eq!(rng.next_raw() & 1, 1);
        }
    }

    #[test]
    fn period_exponent_reports_126() {
        assert_eq!(Lcg128::new().period_exponent(), PERIOD_EXPONENT);
    }

    #[test]
    #[should_panic(expected = "must be odd")]
    fn even_state_rejected() {
        let _ = Lcg128::with_state(2);
    }

    #[test]
    #[should_panic(expected = "must be odd")]
    fn even_multiplier_rejected() {
        let _ = Lcg128::with_state_and_multiplier(1, 4);
    }

    #[test]
    fn iterator_yields_f64s() {
        let rng = Lcg128::new();
        let v: Vec<f64> = rng.take(5).collect();
        assert_eq!(v.len(), 5);
        assert!(v.iter().all(|a| *a > 0.0 && *a < 1.0));
    }

    #[test]
    fn limb_path_agrees_with_native_path_along_the_sequence() {
        // The paper's 64-bit-arithmetic implementation and our u128 fast
        // path must walk the same orbit.
        let mut rng = Lcg128::new();
        let a = U128Limbs::from_u128(DEFAULT_MULTIPLIER);
        let mut u = U128Limbs::from_u128(1);
        for _ in 0..1_000 {
            u = crate::limbs::limb_step(u, a);
            assert_eq!(rng.next_raw(), u.to_u128());
        }
    }

    #[test]
    fn mean_of_outputs_is_one_half() {
        // Coarse sanity: the first 100k alphas average to ~0.5.
        let mut rng = Lcg128::new();
        let n = 100_000;
        let mean = (0..n).map(|_| rng.next_f64()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    proptest! {
        /// fill_f64 is bitwise identical to repeated next_f64 for any
        /// buffer length (full lanes plus remainder) and any starting
        /// position, and leaves the generator in the same state.
        #[test]
        fn fill_f64_matches_scalar_draws(len in 0usize..260, skip in 0u128..10_000) {
            let mut filled = Lcg128::new();
            filled.jump(skip);
            let mut scalar = filled.clone();
            let mut buf = vec![0.0f64; len];
            filled.fill_f64(&mut buf);
            for x in &buf {
                prop_assert_eq!(*x, scalar.next_f64());
            }
            prop_assert_eq!(filled.state(), scalar.state());
        }

        /// jump(n) lands exactly where n sequential steps land.
        #[test]
        fn jump_equals_stepping(n in 0u32..3_000) {
            let mut stepped = Lcg128::new();
            for _ in 0..n {
                stepped.next_raw();
            }
            let mut jumped = Lcg128::new();
            jumped.jump(u128::from(n));
            prop_assert_eq!(stepped.state(), jumped.state());
        }

        /// jump(a); jump(b) == jump(a + b).
        #[test]
        fn jumps_compose(a in 0u128..1u128 << 60, b in 0u128..1u128 << 60) {
            let mut two = Lcg128::new();
            two.jump(a);
            two.jump(b);
            let mut one = Lcg128::new();
            one.jump(a + b);
            prop_assert_eq!(two.state(), one.state());
        }

        /// at_position(k) == new().jump(k).
        #[test]
        fn at_position_is_jump_from_origin(k in any::<u128>()) {
            let mut j = Lcg128::new();
            j.jump(k);
            prop_assert_eq!(Lcg128::at_position(k).state(), j.state());
        }

        /// leaped() does not mutate the source generator.
        #[test]
        fn leaped_is_pure(n in any::<u128>()) {
            let rng = Lcg128::new();
            let before = rng.state();
            let _forked = rng.leaped(n);
            prop_assert_eq!(rng.state(), before);
        }
    }
}
