//! The Milstein scheme and order-of-convergence measurement.
//!
//! The paper's performance test uses the generalized Euler method
//! (formula (9)); for *additive* noise (its `D` is constant) Euler is
//! already strong order 1. For multiplicative noise (GBM and friends)
//! Euler drops to strong order 1/2 while Milstein's correction term
//! `½ b b' (Δw² − h)` restores order 1. This module implements Milstein
//! for scalar SDEs and the measurement harness that verifies both
//! orders empirically — the kind of validation a production SDE
//! substrate must ship.

use parmonc_rng::distributions::standard_normal;
use parmonc_rng::UniformSource;

/// A scalar Itô SDE `dX = a(X) dt + b(X) dw` with the diffusion
/// derivative `b'(X)` needed by Milstein.
pub trait ScalarSde {
    /// Drift `a(x)`.
    fn drift(&self, x: f64) -> f64;
    /// Diffusion `b(x)`.
    fn diffusion(&self, x: f64) -> f64;
    /// Diffusion derivative `b'(x)`.
    fn diffusion_derivative(&self, x: f64) -> f64;
    /// Initial condition.
    fn initial(&self) -> f64;
}

/// Scalar geometric Brownian motion `dX = μX dt + σX dw`, the standard
/// multiplicative-noise test problem with the exact solution
/// `X_T = X_0 exp((μ − σ²/2)T + σ w_T)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalarGbm {
    /// Drift rate μ.
    pub mu: f64,
    /// Volatility σ.
    pub sigma: f64,
    /// Initial value.
    pub x0: f64,
}

impl ScalarGbm {
    /// Exact strong solution for a given Brownian endpoint `w_t`.
    #[must_use]
    pub fn exact_solution(&self, t: f64, w_t: f64) -> f64 {
        self.x0 * ((self.mu - 0.5 * self.sigma * self.sigma) * t + self.sigma * w_t).exp()
    }

    /// Exact mean `E X_t = X_0 e^{μt}`.
    #[must_use]
    pub fn exact_mean(&self, t: f64) -> f64 {
        self.x0 * (self.mu * t).exp()
    }
}

impl ScalarSde for ScalarGbm {
    fn drift(&self, x: f64) -> f64 {
        self.mu * x
    }
    fn diffusion(&self, x: f64) -> f64 {
        self.sigma * x
    }
    fn diffusion_derivative(&self, _x: f64) -> f64 {
        self.sigma
    }
    fn initial(&self) -> f64 {
        self.x0
    }
}

/// Integrates one trajectory to time `T = n·h` with Euler–Maruyama,
/// returning `(X_T, w_T)` (the Brownian endpoint enables strong-error
/// comparison against the exact solution).
pub fn euler_maruyama<S, R>(sde: &S, h: f64, n: usize, rng: &mut R) -> (f64, f64)
where
    S: ScalarSde + ?Sized,
    R: UniformSource + ?Sized,
{
    let sqrt_h = h.sqrt();
    let mut x = sde.initial();
    let mut w = 0.0;
    for _ in 0..n {
        let dw = sqrt_h * standard_normal(rng);
        x += sde.drift(x) * h + sde.diffusion(x) * dw;
        w += dw;
    }
    (x, w)
}

/// Integrates one trajectory with the Milstein scheme.
pub fn milstein<S, R>(sde: &S, h: f64, n: usize, rng: &mut R) -> (f64, f64)
where
    S: ScalarSde + ?Sized,
    R: UniformSource + ?Sized,
{
    let sqrt_h = h.sqrt();
    let mut x = sde.initial();
    let mut w = 0.0;
    for _ in 0..n {
        let dw = sqrt_h * standard_normal(rng);
        let b = sde.diffusion(x);
        x += sde.drift(x) * h + b * dw + 0.5 * b * sde.diffusion_derivative(x) * (dw * dw - h);
        w += dw;
    }
    (x, w)
}

/// Measures the root-mean-square strong error at `T` for a scheme,
/// comparing against the exact GBM solution driven by the *same*
/// Brownian path.
pub fn strong_error<R, Scheme>(
    gbm: &ScalarGbm,
    t: f64,
    steps: usize,
    trials: usize,
    rng: &mut R,
    scheme: Scheme,
) -> f64
where
    R: UniformSource,
    Scheme: Fn(&ScalarGbm, f64, usize, &mut dyn UniformSource) -> (f64, f64),
{
    let h = t / steps as f64;
    let mut sum_sq = 0.0;
    // The scheme consumes a `&mut dyn UniformSource`; re-borrow per call.
    let rng: &mut dyn UniformSource = rng;
    for _ in 0..trials {
        let (x_h, w_t) = scheme(gbm, h, steps, rng);
        let exact = gbm.exact_solution(t, w_t);
        sum_sq += (x_h - exact).powi(2);
    }
    (sum_sq / trials as f64).sqrt()
}

/// Fits the empirical convergence order: the slope of
/// `log2(error)` against `log2(h)` over halving step sizes.
pub fn convergence_order(errors: &[(f64, f64)]) -> f64 {
    assert!(errors.len() >= 2, "need at least two (h, error) points");
    // Least-squares slope of log(err) vs log(h).
    let n = errors.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(h, e) in errors {
        let x = h.ln();
        let y = e.ln();
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
    }
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parmonc_rng::Lcg128;

    fn gbm() -> ScalarGbm {
        ScalarGbm {
            mu: 0.1,
            sigma: 0.5,
            x0: 1.0,
        }
    }

    fn error_curve(
        scheme: fn(&ScalarGbm, f64, usize, &mut dyn UniformSource) -> (f64, f64),
    ) -> Vec<(f64, f64)> {
        let g = gbm();
        let t = 1.0;
        let mut rng = Lcg128::new();
        [8usize, 16, 32, 64, 128]
            .iter()
            .map(|&steps| {
                let h = t / steps as f64;
                (h, strong_error(&g, t, steps, 4_000, &mut rng, scheme))
            })
            .collect()
    }

    #[test]
    fn euler_strong_order_is_one_half() {
        let errors = error_curve(|g, h, n, rng| euler_maruyama(g, h, n, rng));
        let order = convergence_order(&errors);
        assert!(
            (order - 0.5).abs() < 0.15,
            "Euler order {order}, errors {errors:?}"
        );
    }

    #[test]
    fn milstein_strong_order_is_one() {
        let errors = error_curve(|g, h, n, rng| milstein(g, h, n, rng));
        let order = convergence_order(&errors);
        assert!(
            (order - 1.0).abs() < 0.15,
            "Milstein order {order}, errors {errors:?}"
        );
    }

    #[test]
    fn milstein_beats_euler_at_equal_h() {
        let g = gbm();
        let mut rng = Lcg128::new();
        let e_euler = strong_error(&g, 1.0, 32, 4_000, &mut rng, |g, h, n, r| {
            euler_maruyama(g, h, n, r)
        });
        let e_milstein = strong_error(&g, 1.0, 32, 4_000, &mut rng, |g, h, n, r| {
            milstein(g, h, n, r)
        });
        assert!(
            e_milstein < 0.5 * e_euler,
            "milstein {e_milstein} vs euler {e_euler}"
        );
    }

    #[test]
    fn both_schemes_hit_the_exact_mean() {
        let g = gbm();
        let mut rng = Lcg128::new();
        let trials = 20_000;
        let mean_euler: f64 = (0..trials)
            .map(|_| euler_maruyama(&g, 1.0 / 64.0, 64, &mut rng).0)
            .sum::<f64>()
            / trials as f64;
        let mean_milstein: f64 = (0..trials)
            .map(|_| milstein(&g, 1.0 / 64.0, 64, &mut rng).0)
            .sum::<f64>()
            / trials as f64;
        let exact = g.exact_mean(1.0);
        assert!((mean_euler - exact).abs() < 0.02, "{mean_euler} vs {exact}");
        assert!(
            (mean_milstein - exact).abs() < 0.02,
            "{mean_milstein} vs {exact}"
        );
    }

    #[test]
    fn exact_solution_consistency() {
        let g = gbm();
        // At w_t = 0 the exact solution is the deterministic part.
        let x = g.exact_solution(2.0, 0.0);
        assert!((x - ((g.mu - 0.125) * 2.0).exp()).abs() < 1e-12);
        assert_eq!(g.exact_solution(0.0, 0.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "two (h, error) points")]
    fn order_fit_needs_points() {
        let _ = convergence_order(&[(0.1, 0.01)]);
    }
}
