//! The generalized Euler method (paper formula (9)) with trajectory
//! recording on an output grid.

use parmonc_rng::UniformSource;

use crate::{euler_step, Sde};

/// The output grid of the performance test: record the state at
/// `t_i = i · stride · h` for `i = 1..=points`.
///
/// For the paper's setup `h = 10⁻⁶`, `points = 1000`, `stride = 10⁵`
/// (so `t_i = i · 0.1`, final time 100).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutputGrid {
    /// Number of recorded time points (`nrow` of the realization
    /// matrix).
    pub points: usize,
    /// Integrator steps between consecutive recorded points.
    pub stride: usize,
}

impl OutputGrid {
    /// Creates a grid.
    ///
    /// # Panics
    ///
    /// Panics if `points` or `stride` is zero.
    #[must_use]
    pub fn new(points: usize, stride: usize) -> Self {
        assert!(points > 0, "need at least one output point");
        assert!(stride > 0, "stride must be positive");
        Self { points, stride }
    }

    /// Total number of integrator steps (`points * stride`).
    #[must_use]
    pub fn total_steps(&self) -> usize {
        self.points * self.stride
    }

    /// The time of output point `i` (0-based) for mesh `h`:
    /// `t = (i + 1) · stride · h`.
    #[must_use]
    pub fn time(&self, i: usize, h: f64) -> f64 {
        ((i + 1) * self.stride) as f64 * h
    }
}

/// Euler integrator bound to an SDE, a mesh size and an output grid.
///
/// # Examples
///
/// ```
/// use parmonc_rng::Lcg128;
/// use parmonc_sde::{EulerScheme, OutputGrid, PaperDiffusion};
///
/// // A laptop-scale version of the paper's run: 100 points, h = 1e-3.
/// let scheme = EulerScheme::new(PaperDiffusion::default(), 1e-3, OutputGrid::new(100, 10));
/// let mut rng = Lcg128::new();
/// let mut out = vec![0.0; 100 * 2];
/// scheme.realize_into(&mut rng, &mut out);
/// assert!(out.iter().all(|x| x.is_finite()));
/// ```
#[derive(Debug, Clone)]
pub struct EulerScheme<S> {
    sde: S,
    h: f64,
    grid: OutputGrid,
}

impl<S> EulerScheme<S> {
    /// Binds `sde` to mesh `h` and the output `grid`.
    ///
    /// # Panics
    ///
    /// Panics if `h` is not strictly positive.
    pub fn new(sde: S, h: f64, grid: OutputGrid) -> Self {
        assert!(h > 0.0, "mesh size must be positive, got {h}");
        Self { sde, h, grid }
    }

    /// The bound SDE.
    pub fn sde(&self) -> &S {
        &self.sde
    }

    /// The mesh size `h`.
    pub fn h(&self) -> f64 {
        self.h
    }

    /// The output grid.
    pub fn grid(&self) -> OutputGrid {
        self.grid
    }
}

impl<S: Sde<2>> EulerScheme<S> {
    /// Simulates one trajectory, writing the `points × 2` realization
    /// matrix (row-major: `out[2*i] = ξ₁(t_i)`, `out[2*i+1] = ξ₂(t_i)`)
    /// — the paper's `difftraj` routine.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != points * 2`.
    pub fn realize_into<R: UniformSource + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        assert_eq!(
            out.len(),
            self.grid.points * 2,
            "output buffer must be points x 2"
        );
        let mut x = self.sde.initial();
        let sqrt_h = self.h.sqrt();
        for i in 0..self.grid.points {
            for _ in 0..self.grid.stride {
                euler_step(&self.sde, &mut x, self.h, sqrt_h, rng);
            }
            out[2 * i] = x[0];
            out[2 * i + 1] = x[1];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::PaperDiffusion;
    use parmonc_rng::Lcg128;

    #[test]
    fn grid_arithmetic() {
        let g = OutputGrid::new(1000, 100_000);
        assert_eq!(g.total_steps(), 100_000_000); // the paper's 10^8
        assert!((g.time(0, 1e-6) - 0.1).abs() < 1e-12);
        assert!((g.time(999, 1e-6) - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one output point")]
    fn grid_rejects_zero_points() {
        let _ = OutputGrid::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn grid_rejects_zero_stride() {
        let _ = OutputGrid::new(1, 0);
    }

    #[test]
    #[should_panic(expected = "mesh size must be positive")]
    fn scheme_rejects_zero_h() {
        let _ = EulerScheme::new(PaperDiffusion::default(), 0.0, OutputGrid::new(1, 1));
    }

    #[test]
    fn trajectory_mean_tracks_drift() {
        // Over many trajectories the recorded mean at t must approach
        // ξ0 + C t (exact for this linear SDE even at finite h).
        let problem = PaperDiffusion::default();
        let c = problem.drift_vector();
        let scheme = EulerScheme::new(problem, 1e-2, OutputGrid::new(10, 10)); // t_i = 0.1 i
        let mut rng = Lcg128::new();
        let trials = 4000;
        let mut sums = [0.0; 20];
        let mut out = vec![0.0; 20];
        for _ in 0..trials {
            scheme.realize_into(&mut rng, &mut out);
            for (s, o) in sums.iter_mut().zip(&out) {
                *s += o;
            }
        }
        for i in 0..10 {
            let t = scheme.grid().time(i, scheme.h());
            let mean1 = sums[2 * i] / trials as f64;
            let mean2 = sums[2 * i + 1] / trials as f64;
            // Standard error ≈ D sqrt(t)/sqrt(trials) ≈ 0.016 at t=1.
            assert!((mean1 - c[0] * t).abs() < 0.1, "t={t} mean1={mean1}");
            assert!((mean2 - c[1] * t).abs() < 0.1, "t={t} mean2={mean2}");
        }
    }

    #[test]
    fn deterministic_for_fixed_stream() {
        let scheme = EulerScheme::new(PaperDiffusion::default(), 1e-3, OutputGrid::new(5, 7));
        let mut out1 = vec![0.0; 10];
        let mut out2 = vec![0.0; 10];
        scheme.realize_into(&mut Lcg128::new(), &mut out1);
        scheme.realize_into(&mut Lcg128::new(), &mut out2);
        assert_eq!(out1, out2);
    }

    #[test]
    #[should_panic(expected = "points x 2")]
    fn wrong_buffer_size_panics() {
        let scheme = EulerScheme::new(PaperDiffusion::default(), 1e-3, OutputGrid::new(5, 1));
        let mut out = vec![0.0; 4];
        scheme.realize_into(&mut Lcg128::new(), &mut out);
    }
}
