//! Concrete SDE problems: the paper's performance-test diffusion and
//! two extra processes for the examples.

use crate::Sde;

/// The 2-D linear SDE of the paper's performance test (Section 4):
/// `dξ = C dt + D dw`, `D` diagonal.
///
/// The printed constants are partially unreadable in the available
/// text (see DESIGN.md); this reproduction fixes `ξ(0) = (0, 0)ᵀ`,
/// `C = (1.5, −0.5)ᵀ`, `D = diag(1.002, 1.002)` — the same structure,
/// with the bonus that `Eξ(t) = ξ(0) + C·t` and
/// `Var ξ_j(t) = D_jj² · t` are closed-form, so the estimator pipeline
/// is validated against exact answers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperDiffusion {
    c: [f64; 2],
    d: [f64; 2],
    x0: [f64; 2],
}

impl PaperDiffusion {
    /// Creates the diffusion with explicit constants.
    #[must_use]
    pub fn new(x0: [f64; 2], c: [f64; 2], d: [f64; 2]) -> Self {
        Self { c, d, x0 }
    }

    /// The drift vector `C`.
    #[must_use]
    pub fn drift_vector(&self) -> [f64; 2] {
        self.c
    }

    /// The diffusion diagonal `diag(D)`.
    #[must_use]
    pub fn diffusion_vector(&self) -> [f64; 2] {
        self.d
    }

    /// Exact mean `Eξ_j(t) = ξ_j(0) + C_j t`.
    #[must_use]
    pub fn exact_mean(&self, j: usize, t: f64) -> f64 {
        self.x0[j] + self.c[j] * t
    }

    /// Exact variance `Var ξ_j(t) = D_jj² t`.
    #[must_use]
    pub fn exact_variance(&self, j: usize, t: f64) -> f64 {
        self.d[j] * self.d[j] * t
    }
}

impl Default for PaperDiffusion {
    /// The reproduction's canonical constants (see DESIGN.md).
    fn default() -> Self {
        Self {
            x0: [0.0, 0.0],
            c: [1.5, -0.5],
            d: [1.002, 1.002],
        }
    }
}

impl Sde<2> for PaperDiffusion {
    fn drift(&self, _x: &[f64; 2]) -> [f64; 2] {
        self.c
    }

    fn diffusion_diag(&self, _x: &[f64; 2]) -> [f64; 2] {
        self.d
    }

    fn initial(&self) -> [f64; 2] {
        self.x0
    }
}

/// Two independent geometric Brownian motions
/// `dS_j = μ_j S_j dt + σ_j S_j dw_j` — the financial-mathematics
/// workload the paper's introduction motivates.
///
/// `E S_j(t) = S_j(0) e^{μ_j t}` gives a closed-form check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeometricBrownian {
    /// Initial values.
    pub s0: [f64; 2],
    /// Drift rates μ.
    pub mu: [f64; 2],
    /// Volatilities σ.
    pub sigma: [f64; 2],
}

impl GeometricBrownian {
    /// Exact mean `E S_j(t)`.
    #[must_use]
    pub fn exact_mean(&self, j: usize, t: f64) -> f64 {
        self.s0[j] * (self.mu[j] * t).exp()
    }
}

impl Default for GeometricBrownian {
    fn default() -> Self {
        Self {
            s0: [1.0, 1.0],
            mu: [0.05, 0.02],
            sigma: [0.2, 0.3],
        }
    }
}

impl Sde<2> for GeometricBrownian {
    fn drift(&self, x: &[f64; 2]) -> [f64; 2] {
        [self.mu[0] * x[0], self.mu[1] * x[1]]
    }

    fn diffusion_diag(&self, x: &[f64; 2]) -> [f64; 2] {
        [self.sigma[0] * x[0], self.sigma[1] * x[1]]
    }

    fn initial(&self) -> [f64; 2] {
        self.s0
    }
}

/// A 2-D Ornstein–Uhlenbeck process
/// `dX_j = θ_j (μ_j − X_j) dt + σ_j dw_j`, mean-reverting with
/// `E X_j(t) = μ_j + (X_j(0) − μ_j) e^{−θ_j t}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrnsteinUhlenbeck {
    /// Initial values.
    pub x0: [f64; 2],
    /// Mean-reversion rates θ.
    pub theta: [f64; 2],
    /// Long-run means μ.
    pub mu: [f64; 2],
    /// Volatilities σ.
    pub sigma: [f64; 2],
}

impl OrnsteinUhlenbeck {
    /// Exact mean `E X_j(t)`.
    #[must_use]
    pub fn exact_mean(&self, j: usize, t: f64) -> f64 {
        self.mu[j] + (self.x0[j] - self.mu[j]) * (-self.theta[j] * t).exp()
    }

    /// Exact stationary variance `σ_j² / (2 θ_j)`.
    #[must_use]
    pub fn stationary_variance(&self, j: usize) -> f64 {
        self.sigma[j] * self.sigma[j] / (2.0 * self.theta[j])
    }
}

impl Default for OrnsteinUhlenbeck {
    fn default() -> Self {
        Self {
            x0: [2.0, -2.0],
            theta: [1.0, 0.5],
            mu: [0.0, 1.0],
            sigma: [0.5, 0.5],
        }
    }
}

impl Sde<2> for OrnsteinUhlenbeck {
    fn drift(&self, x: &[f64; 2]) -> [f64; 2] {
        [
            self.theta[0] * (self.mu[0] - x[0]),
            self.theta[1] * (self.mu[1] - x[1]),
        ]
    }

    fn diffusion_diag(&self, _x: &[f64; 2]) -> [f64; 2] {
        [self.sigma[0], self.sigma[1]]
    }

    fn initial(&self) -> [f64; 2] {
        self.x0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euler::{EulerScheme, OutputGrid};
    use parmonc_rng::Lcg128;
    use parmonc_stats::MatrixAccumulator;

    /// Runs `trials` trajectories and returns the matrix accumulator of
    /// the realization matrices.
    fn estimate<S: Sde<2> + Clone>(
        sde: S,
        h: f64,
        grid: OutputGrid,
        trials: usize,
    ) -> MatrixAccumulator {
        let scheme = EulerScheme::new(sde, h, grid);
        let mut rng = Lcg128::new();
        let mut acc = MatrixAccumulator::new(grid.points, 2).unwrap();
        let mut out = vec![0.0; grid.points * 2];
        for _ in 0..trials {
            scheme.realize_into(&mut rng, &mut out);
            acc.add(&out).unwrap();
        }
        acc
    }

    #[test]
    fn paper_diffusion_matches_exact_mean_and_variance() {
        let problem = PaperDiffusion::default();
        let grid = OutputGrid::new(5, 20); // t_i = 0.02*20*i... h=1e-2 → t_i = 0.2 i
        let acc = estimate(problem, 1e-2, grid, 8000);
        let s = acc.summary();
        for i in 0..5 {
            let t = grid.time(i, 1e-2);
            for j in 0..2 {
                let mean = s.mean(i, j);
                let exact = problem.exact_mean(j, t);
                assert!(
                    (mean - exact).abs()
                        < 4.0 * (problem.exact_variance(j, t) / 8000.0).sqrt() + 1e-9,
                    "t={t} j={j}: {mean} vs {exact}"
                );
                let var = s.variances[i * 2 + j];
                let exact_var = problem.exact_variance(j, t);
                assert!(
                    (var - exact_var).abs() < 0.15 * exact_var + 0.01,
                    "t={t} j={j}: var {var} vs {exact_var}"
                );
            }
        }
    }

    #[test]
    fn gbm_mean_grows_exponentially() {
        let gbm = GeometricBrownian::default();
        let grid = OutputGrid::new(4, 25); // h=1e-2 → t_i = 0.25 i
        let acc = estimate(gbm, 1e-2, grid, 8000);
        let s = acc.summary();
        for i in 0..4 {
            let t = grid.time(i, 1e-2);
            for j in 0..2 {
                let mean = s.mean(i, j);
                let exact = gbm.exact_mean(j, t);
                assert!(
                    (mean - exact).abs() < 0.02 * exact + 0.02,
                    "t={t} j={j}: {mean} vs {exact}"
                );
            }
        }
        // GBM stays positive.
        assert!(s.means.iter().all(|m| *m > 0.0));
    }

    #[test]
    fn ou_reverts_to_long_run_mean() {
        let ou = OrnsteinUhlenbeck::default();
        let grid = OutputGrid::new(3, 100); // h=1e-2 → t = 1, 2, 3
        let acc = estimate(ou, 1e-2, grid, 4000);
        let s = acc.summary();
        for i in 0..3 {
            let t = grid.time(i, 1e-2);
            for j in 0..2 {
                let mean = s.mean(i, j);
                let exact = ou.exact_mean(j, t);
                assert!(
                    (mean - exact).abs() < 0.06,
                    "t={t} j={j}: {mean} vs {exact}"
                );
            }
        }
        // By t = 3 the first component is near its long-run mean 0.
        assert!(s.mean(2, 0).abs() < 0.15);
    }

    #[test]
    fn exact_formulas_self_consistency() {
        let p = PaperDiffusion::default();
        assert_eq!(p.exact_mean(0, 0.0), 0.0);
        assert!((p.exact_mean(0, 2.0) - 3.0).abs() < 1e-12);
        assert!((p.exact_mean(1, 2.0) + 1.0).abs() < 1e-12);
        assert!((p.exact_variance(0, 1.0) - 1.002 * 1.002).abs() < 1e-12);

        let ou = OrnsteinUhlenbeck::default();
        assert!((ou.exact_mean(0, 0.0) - 2.0).abs() < 1e-12);
        assert!((ou.stationary_variance(0) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn custom_constants_respected() {
        let p = PaperDiffusion::new([1.0, 2.0], [0.0, 0.0], [0.5, 0.25]);
        assert_eq!(p.initial(), [1.0, 2.0]);
        assert_eq!(p.exact_mean(1, 10.0), 2.0);
        assert_eq!(p.diffusion_vector(), [0.5, 0.25]);
    }
}
