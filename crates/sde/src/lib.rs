//! SDE simulation substrate for the PARMONC performance test
//! (paper Section 4).
//!
//! The paper's benchmark workload is a 2-dimensional system of
//! stochastic differential equations
//!
//! ```text
//! dξ(t) = C dt + D dw(t),   t ∈ [0, 100]
//! ```
//!
//! integrated by the *generalized Euler method* (formula (9))
//!
//! ```text
//! ξ^{n+1} = ξ^n + h·C + √h·D·ε^n,   ε^n ~ N(0, I)
//! ```
//!
//! with mesh `h = 10⁻⁶` (10⁸ steps per realization ≈ 7.7 s of compute on
//! the paper's cluster), recording `Eξ₁(t_i), Eξ₂(t_i)` at the 1000
//! output points `t_i = i·10⁻¹` — a 1000×2 realization matrix.
//!
//! This crate provides the scheme for arbitrary drift/diffusion
//! ([`Sde`], [`EulerScheme`]), the paper's linear problem with its
//! closed-form moments ([`problems::PaperDiffusion`]), and two extra
//! processes (GBM, Ornstein–Uhlenbeck) used by the examples.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod euler;
pub mod milstein;
pub mod problems;
pub mod wiener;

pub use euler::{EulerScheme, OutputGrid};
pub use milstein::{milstein, ScalarGbm, ScalarSde};
pub use problems::{GeometricBrownian, OrnsteinUhlenbeck, PaperDiffusion};

use parmonc_rng::UniformSource;

/// A time-homogeneous Itô SDE `dξ = a(ξ) dt + B(ξ) dw` with diagonal
/// diffusion.
///
/// `DIM` is the state dimension; the diffusion matrix is restricted to
/// diagonal (independent noise per component), which covers the paper's
/// problem (`D = diag(1.002, 1.002)`) and the example processes.
pub trait Sde<const DIM: usize> {
    /// Drift `a(x)`.
    fn drift(&self, x: &[f64; DIM]) -> [f64; DIM];

    /// Diagonal of the diffusion matrix `B(x)`.
    fn diffusion_diag(&self, x: &[f64; DIM]) -> [f64; DIM];

    /// Initial condition `ξ(0)`.
    fn initial(&self) -> [f64; DIM];
}

/// One generalized-Euler step (paper formula (9)) for any [`Sde`].
///
/// Exposed as a free function so benches can measure the per-step cost
/// in isolation.
#[inline]
pub fn euler_step<const DIM: usize, S, R>(
    sde: &S,
    x: &mut [f64; DIM],
    h: f64,
    sqrt_h: f64,
    rng: &mut R,
) where
    S: Sde<DIM> + ?Sized,
    R: UniformSource + ?Sized,
{
    let drift = sde.drift(x);
    let diff = sde.diffusion_diag(x);
    let mut i = 0;
    while i < DIM {
        // Pairs of normals from one Box–Muller transform: no wasted
        // base random numbers for even DIM.
        let (z1, z2) = parmonc_rng::distributions::standard_normal_pair(rng);
        x[i] += h * drift[i] + sqrt_h * diff[i] * z1;
        if i + 1 < DIM {
            x[i + 1] += h * drift[i + 1] + sqrt_h * diff[i + 1] * z2;
        }
        i += 2;
    }
}
