//! Wiener process increments.
//!
//! A standard Wiener process `w(t)` has independent Gaussian increments
//! `w(t+h) − w(t) ~ N(0, h)`. The Euler scheme consumes them as
//! `√h · ε` with `ε ~ N(0, 1)`; this module also exposes a direct path
//! sampler used by tests to validate increment statistics.

use parmonc_rng::distributions::{fill_standard_normal, standard_normal_pair};
use parmonc_rng::UniformSource;

/// Samples one Wiener increment `Δw ~ N(0, h)`.
///
/// # Panics
///
/// Panics if `h` is not strictly positive.
///
/// # Examples
///
/// ```
/// use parmonc_rng::Lcg128;
/// use parmonc_sde::wiener::increment;
///
/// let mut rng = Lcg128::new();
/// let dw = increment(&mut rng, 0.01);
/// assert!(dw.is_finite());
/// ```
pub fn increment<R: UniformSource + ?Sized>(rng: &mut R, h: f64) -> f64 {
    assert!(h > 0.0, "step size must be positive, got {h}");
    let (z, _) = standard_normal_pair(rng);
    h.sqrt() * z
}

/// Samples a discrete Wiener path `w(0), w(h), …, w(n·h)` (length
/// `n + 1`, starting at 0).
///
/// The `n` increments are drawn with
/// [`fill_standard_normal`] — i.e. through the generator's batched
/// wide-lane fill — and accumulated in place with the same left-to-right
/// summation (and the same odd-`n` discarded second variate) as the
/// original pairwise loop, so paths are bitwise reproducible across
/// versions.
///
/// # Panics
///
/// Panics if `h` is not strictly positive.
pub fn sample_path<R: UniformSource + ?Sized>(rng: &mut R, h: f64, n: usize) -> Vec<f64> {
    assert!(h > 0.0, "step size must be positive, got {h}");
    let sqrt_h = h.sqrt();
    let mut path = vec![0.0f64; n + 1];
    fill_standard_normal(rng, &mut path[1..]);
    let mut w = 0.0;
    for p in &mut path[1..] {
        w += sqrt_h * *p;
        *p = w;
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use parmonc_rng::Lcg128;

    #[test]
    fn increments_have_variance_h() {
        let mut rng = Lcg128::new();
        let h = 0.25;
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| increment(&mut rng, h)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - h).abs() < 0.01, "var {var}");
    }

    #[test]
    fn path_starts_at_zero_with_right_length() {
        let mut rng = Lcg128::new();
        for n in [0, 1, 2, 7, 100] {
            let p = sample_path(&mut rng, 0.1, n);
            assert_eq!(p.len(), n + 1);
            assert_eq!(p[0], 0.0);
        }
    }

    #[test]
    fn path_endpoint_variance_is_t() {
        // Var w(T) = T = n*h.
        let mut rng = Lcg128::new();
        let (h, n) = (0.01, 100); // T = 1
        let ends: Vec<f64> = (0..20_000)
            .map(|_| *sample_path(&mut rng, h, n).last().unwrap())
            .collect();
        let var = ends.iter().map(|x| x * x).sum::<f64>() / ends.len() as f64;
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn non_overlapping_increments_uncorrelated() {
        let mut rng = Lcg128::new();
        let mut cov = 0.0;
        let n = 50_000;
        for _ in 0..n {
            let p = sample_path(&mut rng, 1.0, 2);
            let d1 = p[1] - p[0];
            let d2 = p[2] - p[1];
            cov += d1 * d2;
        }
        cov /= n as f64;
        assert!(cov.abs() < 0.02, "cov {cov}");
    }

    #[test]
    fn sample_path_matches_pairwise_loop_bitwise() {
        // Reproducibility pin: the batched-fill path must emit exactly
        // what the original pairwise Box–Muller loop emitted, and leave
        // the generator at the same position.
        for n in [0usize, 1, 2, 3, 7, 100, 255, 256, 257, 1001] {
            let mut batched_rng = Lcg128::new();
            let mut scalar_rng = Lcg128::new();
            let got = sample_path(&mut batched_rng, 0.1, n);

            let sqrt_h = 0.1f64.sqrt();
            let mut expected = Vec::with_capacity(n + 1);
            let mut w = 0.0;
            expected.push(w);
            let mut i = 0;
            while i < n {
                let (z1, z2) = standard_normal_pair(&mut scalar_rng);
                w += sqrt_h * z1;
                expected.push(w);
                i += 1;
                if i < n {
                    w += sqrt_h * z2;
                    expected.push(w);
                    i += 1;
                }
            }
            assert_eq!(got, expected, "n={n}");
            assert_eq!(batched_rng.state(), scalar_rng.state(), "state n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_zero_step() {
        let _ = increment(&mut Lcg128::new(), 0.0);
    }
}
