//! A zero-dependency property-testing shim exposing the small subset of
//! the `proptest` API this workspace uses.
//!
//! The build environment for this repository has no access to crates.io
//! (and nothing vendored), so every third-party crate must be replaced
//! by std or by in-repo code. The test suites leaned on `proptest` for
//! randomized invariant checks; this crate keeps those tests almost
//! verbatim by re-implementing the used surface:
//!
//! * [`Strategy`] — value generators: numeric ranges (`-1e6f64..1e6`),
//!   [`any`] for primitive types, [`collection::vec`], and tuples;
//! * the [`proptest!`] macro — wraps `fn name(x in strategy, ...)`
//!   test bodies in a deterministic multi-case runner;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`];
//! * [`TestRunner`] — the explicit-runner API.
//!
//! Unlike real proptest there is **no shrinking**: a failing case
//! reports the generated inputs (via `Debug`) and the seed, which is
//! deterministic per test name, so failures reproduce exactly.
//!
//! # Example
//!
//! ```
//! use parmonc_testkit::prelude::*;
//!
//! // In a test module the function would also carry `#[test]`.
//! proptest! {
//!     fn addition_commutes(a in -1e6f64..1e6, b in -1e6f64..1e6) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! addition_commutes();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use std::fmt;
use std::ops::Range;

/// Number of random cases each `proptest!` test executes.
pub const DEFAULT_CASES: u32 = 96;

/// A deterministic 64-bit generator (splitmix64) driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `u64` below `bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift rejection-free mapping is fine for tests.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// The error a property case can raise: a failed assertion or a
/// rejected (assumed-away) case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// A `prop_assert*` failed with this message.
    Fail(String),
    /// The case was rejected by `prop_assume!` and does not count.
    Reject,
}

impl TestCaseError {
    /// Builds a failure with a message.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Fail(m) => write!(f, "{m}"),
            Self::Reject => write!(f, "case rejected by prop_assume!"),
        }
    }
}

/// A value generator. Mirrors `proptest::strategy::Strategy` minus
/// shrinking: one method producing a value from the test RNG.
pub trait Strategy {
    /// The generated value type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn draw(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn draw(&self, rng: &mut TestRng) -> Self::Value {
        (**self).draw(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn draw(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.abs_diff(self.start);
                // Wide types draw twice to cover all 128 bits.
                let wide = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
                #[allow(clippy::cast_lossless)]
                let off = (wide % (span as u128)) as $t;
                // Offsets stay in range, so plain wrapping add is exact.
                self.start.wrapping_add(off)
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, u128, usize);

macro_rules! signed_range_strategy {
    ($($t:ty : $u:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn draw(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.abs_diff(self.start);
                let wide = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
                #[allow(clippy::cast_lossless)]
                let off = (wide % (span as u128)) as $u;
                self.start.wrapping_add(off as $t)
            }
        }
    )+};
}

signed_range_strategy!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn draw(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let u = rng.next_f64();
        let v = self.start + u * (self.end - self.start);
        // Floating rounding can land exactly on `end`; fold back inside.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Types with a default "anything goes" strategy (`proptest::arbitrary`).
pub trait Arbitrary: Sized + fmt::Debug {
    /// Draws an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Arbitrary bit patterns, like proptest's `any::<f64>()`: covers
        // subnormals, infinities and NaN payloads. Callers that cannot
        // tolerate NaN filter it themselves (as with real proptest).
        f64::from_bits(rng.next_u64())
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn draw(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `proptest`'s `any::<T>()`: the type's default full-range strategy.
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn draw(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.draw(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (S0 / 0),
    (S0 / 0, S1 / 1),
    (S0 / 0, S1 / 1, S2 / 2),
    (S0 / 0, S1 / 1, S2 / 2, S3 / 3),
    (S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4)
);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// How many elements a [`fn@vec`] strategy draws: an exact size or a
    /// half-open range, mirroring `proptest::collection::SizeRange`.
    #[derive(Debug, Clone)]
    pub enum SizeRange {
        /// Exactly this many elements.
        Exact(usize),
        /// A size drawn uniformly from the range.
        Span(Range<usize>),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self::Exact(n)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self::Span(r)
        }
    }

    /// The strategy returned by [`fn@vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn draw(&self, rng: &mut TestRng) -> Self::Value {
            let len = match &self.size {
                SizeRange::Exact(n) => *n,
                SizeRange::Span(r) => {
                    assert!(r.start < r.end, "empty vec size range");
                    r.start + rng.below((r.end - r.start) as u64) as usize
                }
            };
            (0..len).map(|_| self.element.draw(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: a vector of `element` draws with a
    /// size from `size` (an exact `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Drives a strategy through many cases (`proptest::test_runner`).
#[derive(Debug)]
pub struct TestRunner {
    cases: u32,
    seed: u64,
}

/// The fixed base seed: ASCII "parmonc". Per-test sequences fold the
/// test name in, so every test is deterministic and distinct.
const BASE_SEED: u64 = 0x70_61_72_6d_6f_6e_63;

impl Default for TestRunner {
    fn default() -> Self {
        Self {
            cases: DEFAULT_CASES,
            seed: BASE_SEED,
        }
    }
}

impl TestRunner {
    /// A runner with an explicit case count.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            seed: BASE_SEED,
        }
    }

    /// Runs `test` against `cases` draws from `strategy`, panicking on
    /// the first failure (after reporting the generated inputs).
    ///
    /// # Errors
    ///
    /// Returns the failure message of the first failing case.
    pub fn run<S, F>(&mut self, strategy: &S, mut test: F) -> Result<(), String>
    where
        S: Strategy,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        self.run_named("testkit", strategy, &mut test)
    }

    /// Like [`TestRunner::run`], with a test name folded into the seed
    /// so distinct tests explore distinct sequences.
    ///
    /// # Errors
    ///
    /// Returns the failure message of the first failing case.
    pub fn run_named<S, F>(&mut self, name: &str, strategy: &S, test: &mut F) -> Result<(), String>
    where
        S: Strategy,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        let mut seed = self.seed;
        for b in name.bytes() {
            seed = seed
                .wrapping_mul(0x100_0000_01b3)
                .wrapping_add(u64::from(b));
        }
        let mut executed = 0u32;
        let mut attempts = 0u32;
        let max_attempts = self.cases.saturating_mul(16).max(64);
        while executed < self.cases {
            if attempts >= max_attempts {
                return Err(format!(
                    "{name}: too many rejected cases ({attempts} attempts for {} executed)",
                    executed
                ));
            }
            let mut rng = TestRng::new(seed ^ u64::from(attempts).wrapping_mul(0x9e3779b1));
            attempts += 1;
            let value = strategy.draw(&mut rng);
            let shown = format!("{value:?}");
            match test(value) {
                Ok(()) => executed += 1,
                Err(TestCaseError::Reject) => {}
                Err(TestCaseError::Fail(msg)) => {
                    return Err(format!(
                        "{name}: case #{attempts} failed: {msg}\n  input: {shown}\n  seed: {seed:#x}"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Everything a `proptest`-style test module needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Strategy, TestCaseError,
        TestRunner,
    };
}

/// Asserts a condition inside a property body, failing the case (not
/// panicking) so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Rejects the current case without failing the test.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// The `proptest!` macro: wraps `fn name(x in strategy, ...) { body }`
/// items into deterministic multi-case tests.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::TestRunner::default();
                let strategy = ($($strat,)+);
                let result = runner.run_named(
                    stringify!($name),
                    &strategy,
                    &mut |($($arg,)+)| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    },
                );
                if let Err(msg) = result {
                    panic!("{msg}");
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = (10u64..20).draw(&mut rng);
            assert!((10..20).contains(&v));
            let f = (-2.0f64..3.0).draw(&mut rng);
            assert!((-2.0..3.0).contains(&f));
            let i = (-5i32..5).draw(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = TestRng::new(9);
        let exact = collection::vec(0u64..10, 6).draw(&mut rng);
        assert_eq!(exact.len(), 6);
        for _ in 0..100 {
            let v = collection::vec(0.0f64..1.0, 0..5).draw(&mut rng);
            assert!(v.len() < 5);
        }
    }

    #[test]
    fn runner_reports_failures() {
        let mut runner = TestRunner::with_cases(16);
        let err = runner
            .run(&(0u64..100), |v| {
                if v < 1000 {
                    Err(TestCaseError::fail("always fails"))
                } else {
                    Ok(())
                }
            })
            .unwrap_err();
        assert!(err.contains("always fails"));
        assert!(err.contains("input:"));
    }

    proptest! {
        #[test]
        fn macro_draws_are_in_range(x in 1u64..50, y in -1.0f64..1.0) {
            prop_assert!((1..50).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y), "y out of range: {y}");
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }
}
