//! Event traces of simulated runs: a Gantt-style record of what every
//! processor was doing when, plus derived utilization statistics.
//!
//! The plain [`simulate`](crate::sim::simulate) returns only the
//! aggregate `T_comp`; [`simulate_traced`] additionally records the
//! collector's activity segments and per-worker completion profile, so
//! the EXPERIMENTS.md ablations can show *why* a configuration is slow
//! (collector saturation vs straggling workers) rather than just that
//! it is.

use crate::event::EventQueue;
use crate::model::ClusterConfig;
use crate::sim::SimResult;

/// What processor 0 was doing during a trace segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectorActivity {
    /// Simulating its own realizations.
    Computing,
    /// Receiving and folding worker subtotals.
    Receiving,
    /// Averaging and writing a save-point.
    Saving,
    /// Idle, waiting for messages.
    Waiting,
}

/// One contiguous activity segment on processor 0's timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Segment start, virtual seconds.
    pub start: f64,
    /// Segment end, virtual seconds.
    pub end: f64,
    /// What was happening.
    pub activity: CollectorActivity,
}

impl Segment {
    /// Segment duration.
    #[must_use]
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// A traced simulation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct TracedRun {
    /// The aggregate result (identical to [`crate::sim::simulate`]).
    pub result: SimResult,
    /// Processor 0's timeline, in order, gap-free from 0 to `t_comp`.
    pub collector_timeline: Vec<Segment>,
}

impl TracedRun {
    /// Total time processor 0 spent in the given activity.
    #[must_use]
    pub fn time_in(&self, activity: CollectorActivity) -> f64 {
        self.collector_timeline
            .iter()
            .filter(|s| s.activity == activity)
            .map(Segment::duration)
            .sum()
    }

    /// Fraction of the run processor 0 spent computing realizations
    /// (its "useful" utilization; the paper's optimality argument is
    /// that this stays ≈ 1).
    #[must_use]
    pub fn compute_utilization(&self) -> f64 {
        self.time_in(CollectorActivity::Computing) / self.result.t_comp
    }
}

/// Like [`crate::sim::simulate`], but records processor 0's timeline.
///
/// # Panics
///
/// Panics under the same conditions as `simulate`.
#[must_use]
pub fn simulate_traced(config: &ClusterConfig, total: u64) -> TracedRun {
    config.validate();
    assert!(total > 0, "need at least one realization");

    let m = config.processors;
    let mut worker_finish = vec![0.0f64; m];
    let mut messages = 0u64;
    let mut arrivals: EventQueue<usize> = EventQueue::new();
    for (rank, finish) in worker_finish.iter_mut().enumerate().skip(1) {
        let quota = config.quota(rank, total);
        *finish = quota as f64 * config.realization_duration(rank);
        for t in crate::sim::worker_arrival_times(config, rank, quota) {
            arrivals.push(t, rank);
            messages += 1;
        }
    }

    let q0 = config.quota(0, total);
    let d0 = config.realization_duration(0);
    let mut t = 0.0f64;
    let mut overhead = 0.0f64;
    let mut timeline: Vec<Segment> = Vec::new();
    let push = |timeline: &mut Vec<Segment>, start: f64, end: f64, activity| {
        if end > start {
            timeline.push(Segment {
                start,
                end,
                activity,
            });
        }
    };

    let drain = |t: &mut f64,
                     overhead: &mut f64,
                     timeline: &mut Vec<Segment>,
                     arrivals: &mut EventQueue<usize>| {
        let mut drained = false;
        let recv_start = *t;
        while arrivals.peek_time().is_some_and(|a| a <= *t) {
            arrivals.pop();
            *t += config.receive_cost_seconds;
            *overhead += config.receive_cost_seconds;
            drained = true;
        }
        if drained {
            push(timeline, recv_start, *t, CollectorActivity::Receiving);
            let save_start = *t;
            *t += config.save_cost_seconds;
            *overhead += config.save_cost_seconds;
            push(timeline, save_start, *t, CollectorActivity::Saving);
        }
    };

    for _ in 0..q0 {
        let start = t;
        t += d0;
        push(&mut timeline, start, t, CollectorActivity::Computing);
        drain(&mut t, &mut overhead, &mut timeline, &mut arrivals);
    }
    worker_finish[0] = t;

    while let Some(next) = arrivals.peek_time() {
        if next > t {
            push(&mut timeline, t, next, CollectorActivity::Waiting);
            t = next;
        }
        drain(&mut t, &mut overhead, &mut timeline, &mut arrivals);
    }

    let save_start = t;
    t += config.save_cost_seconds;
    overhead += config.save_cost_seconds;
    push(&mut timeline, save_start, t, CollectorActivity::Saving);

    TracedRun {
        result: SimResult {
            t_comp: t,
            messages,
            collector_overhead: overhead,
            worker_finish,
            realizations: total,
        },
        collector_timeline: timeline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::simulate;

    #[test]
    fn traced_result_matches_plain_simulate() {
        for m in [1usize, 4, 16, 64] {
            let c = ClusterConfig::paper_testbed(m);
            let plain = simulate(&c, 512);
            let traced = simulate_traced(&c, 512);
            assert_eq!(traced.result, plain, "M = {m}");
        }
    }

    #[test]
    fn timeline_is_gap_free_and_ordered() {
        let c = ClusterConfig::paper_testbed(8);
        let traced = simulate_traced(&c, 400);
        let mut cursor = 0.0;
        for seg in &traced.collector_timeline {
            assert!((seg.start - cursor).abs() < 1e-9, "gap at {cursor}");
            assert!(seg.end > seg.start);
            cursor = seg.end;
        }
        assert!((cursor - traced.result.t_comp).abs() < 1e-9);
    }

    #[test]
    fn activity_times_account_for_everything() {
        let c = ClusterConfig::paper_testbed(16);
        let traced = simulate_traced(&c, 800);
        let total: f64 = [
            CollectorActivity::Computing,
            CollectorActivity::Receiving,
            CollectorActivity::Saving,
            CollectorActivity::Waiting,
        ]
        .into_iter()
        .map(|a| traced.time_in(a))
        .sum();
        assert!((total - traced.result.t_comp).abs() < 1e-6);
    }

    #[test]
    fn healthy_testbed_has_high_compute_utilization() {
        // tau >> per-message costs: the collector mostly computes.
        let c = ClusterConfig::paper_testbed(64);
        let traced = simulate_traced(&c, 6_400);
        assert!(
            traced.compute_utilization() > 0.95,
            "utilization {}",
            traced.compute_utilization()
        );
    }

    #[test]
    fn tiny_tau_shows_collector_saturation_in_the_trace() {
        // The ablation regime: the trace must reveal receive-dominance.
        let mut c = ClusterConfig::paper_testbed(64);
        c.realization_seconds = 0.0008;
        let traced = simulate_traced(&c, 64_000);
        let receiving = traced.time_in(CollectorActivity::Receiving);
        let computing = traced.time_in(CollectorActivity::Computing);
        assert!(
            receiving > 2.0 * computing,
            "receive {receiving} vs compute {computing}"
        );
    }

    #[test]
    fn single_processor_has_no_receive_or_wait_segments() {
        let c = ClusterConfig::paper_testbed(1);
        let traced = simulate_traced(&c, 100);
        assert_eq!(traced.time_in(CollectorActivity::Receiving), 0.0);
        assert_eq!(traced.time_in(CollectorActivity::Waiting), 0.0);
    }
}
