//! Event traces of simulated runs: a Gantt-style record of what every
//! processor was doing when, plus derived utilization statistics.
//!
//! The plain [`simulate`](crate::sim::simulate) returns only the
//! aggregate `T_comp`; [`simulate_traced`] additionally records the
//! collector's activity segments and per-worker completion profile, so
//! the EXPERIMENTS.md ablations can show *why* a configuration is slow
//! (collector saturation vs straggling workers) rather than just that
//! it is.
//!
//! [`simulate_monitored`] goes one further: it streams the run through
//! a [`parmonc_obs::Monitor`] using the *same* event schema as the
//! real-thread runner (`docs/observability.md`), with virtual-time
//! stamps. A simulated and a real trace of the same configuration are
//! therefore directly comparable, kind for kind.

use parmonc_obs::{EventKind, Monitor, RunMode};

use crate::event::EventQueue;
use crate::model::ClusterConfig;
use crate::sim::SimResult;

// The activity vocabulary moved to `parmonc-obs` so the real-thread
// runner labels collector time identically; re-exported here for
// source compatibility.
pub use parmonc_obs::CollectorActivity;

/// One contiguous activity segment on processor 0's timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Segment start, virtual seconds.
    pub start: f64,
    /// Segment end, virtual seconds.
    pub end: f64,
    /// What was happening.
    pub activity: CollectorActivity,
}

impl Segment {
    /// Segment duration.
    #[must_use]
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// A traced simulation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct TracedRun {
    /// The aggregate result (identical to [`crate::sim::simulate`]).
    pub result: SimResult,
    /// Processor 0's timeline, in order, gap-free from 0 to `t_comp`.
    pub collector_timeline: Vec<Segment>,
}

impl TracedRun {
    /// Total time processor 0 spent in the given activity.
    #[must_use]
    pub fn time_in(&self, activity: CollectorActivity) -> f64 {
        self.collector_timeline
            .iter()
            .filter(|s| s.activity == activity)
            .map(Segment::duration)
            .sum()
    }

    /// Fraction of the run processor 0 spent computing realizations
    /// (its "useful" utilization; the paper's optimality argument is
    /// that this stays ≈ 1).
    #[must_use]
    pub fn compute_utilization(&self) -> f64 {
        self.time_in(CollectorActivity::Computing) / self.result.t_comp
    }
}

/// Like [`crate::sim::simulate`], but records processor 0's timeline.
///
/// # Panics
///
/// Panics under the same conditions as `simulate`.
#[must_use]
pub fn simulate_traced(config: &ClusterConfig, total: u64) -> TracedRun {
    simulate_monitored(config, total, &Monitor::disabled())
}

/// Age of the stalest per-rank snapshot at virtual time `now`;
/// `None` until at least one rank has reported (`NaN` = never).
fn max_snapshot_age(last_update: &[f64], now: f64) -> Option<f64> {
    last_update
        .iter()
        .filter(|u| !u.is_nan())
        .map(|u| now - u)
        .fold(None, |acc, age| Some(acc.map_or(age, |m: f64| m.max(age))))
}

/// Like [`simulate_traced`], but additionally streams the run through
/// `monitor` as schema events (virtual-time stamps, `mode =
/// "simcluster"`). With a disabled monitor this is exactly
/// `simulate_traced`; the returned [`SimResult`] is bit-identical
/// either way.
///
/// Emission points mirror the real runner: workers emit
/// `message_sent` when a subtotal leaves and `realizations` when their
/// quota completes; the collector emits `message_received` (with queue
/// depth) per folded message, `queue_high_water` on new depth maxima,
/// `averaging_pass` + `save_point` per save, and `collector_segment`
/// for its timeline. A `run_completed` event closes the trace at
/// `T_comp`.
///
/// # Panics
///
/// Panics under the same conditions as `simulate`.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn simulate_monitored(config: &ClusterConfig, total: u64, monitor: &Monitor) -> TracedRun {
    config.validate();
    assert!(total > 0, "need at least one realization");

    let m = config.processors;
    monitor.emit_at(
        0.0,
        None,
        EventKind::RunStarted {
            mode: RunMode::SimCluster,
            processors: m,
            max_sample_volume: total,
            seqnum: None,
            nrow: None,
            ncol: None,
            transport: None,
        },
    );

    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
    let bytes_per_msg = config.message_bytes.max(0.0) as u64;
    let mut worker_finish = vec![0.0f64; m];
    let mut messages = 0u64;
    let mut arrivals: EventQueue<(usize, u64, u32)> = EventQueue::new();
    for (rank, finish) in worker_finish.iter_mut().enumerate().skip(1) {
        let quota = config.quota(rank, total);
        *finish = quota as f64 * config.realization_duration(rank);
        for send in crate::sim::worker_arrival_schedule(config, rank, quota) {
            if monitor.is_enabled() {
                // The message left the worker one transfer earlier.
                monitor.emit_at(
                    (send.arrival - config.transfer_seconds()).max(0.0),
                    Some(rank),
                    EventKind::MessageSent {
                        dest: 0,
                        tag: send.tag,
                        bytes: bytes_per_msg,
                    },
                );
            }
            arrivals.push(send.arrival, (rank, send.covered, send.tag));
            messages += 1;
        }
        if monitor.is_enabled() {
            monitor.emit_at(
                *finish,
                Some(rank),
                EventKind::Realizations {
                    completed: quota,
                    compute_seconds: *finish,
                },
            );
        }
    }

    let q0 = config.quota(0, total);
    let d0 = config.realization_duration(0);
    let mut t = 0.0f64;
    let mut overhead = 0.0f64;
    let mut timeline: Vec<Segment> = Vec::new();
    // Realizations whose results the collector holds, per rank
    // (cumulative message semantics), and when each rank's snapshot
    // last changed (NaN = never).
    let mut covered = vec![0u64; m];
    let mut last_update = vec![f64::NAN; m];
    let mut high_water = 0u64;

    let push = |timeline: &mut Vec<Segment>, start: f64, end: f64, activity| {
        if end > start {
            monitor.emit_at(
                end,
                Some(0),
                EventKind::CollectorSegment {
                    activity,
                    start_s: start,
                    end_s: end,
                },
            );
            timeline.push(Segment {
                start,
                end,
                activity,
            });
        }
    };

    let drain = |t: &mut f64,
                 overhead: &mut f64,
                 timeline: &mut Vec<Segment>,
                 arrivals: &mut EventQueue<(usize, u64, u32)>,
                 covered: &mut [u64],
                 last_update: &mut [f64],
                 high_water: &mut u64| {
        let mut drained = false;
        let recv_start = *t;
        while arrivals.peek_time().is_some_and(|a| a <= *t) {
            if monitor.is_enabled() {
                let depth = arrivals.pending_at(*t) as u64;
                if depth > *high_water {
                    *high_water = depth;
                    monitor.emit_at(*t, Some(0), EventKind::QueueHighWater { depth });
                }
            }
            let (_, (rank, cov, tag)) = arrivals.pop().expect("peeked above");
            *t += config.receive_cost_seconds;
            *overhead += config.receive_cost_seconds;
            covered[rank] = covered[rank].max(cov);
            last_update[rank] = *t;
            drained = true;
            if monitor.is_enabled() {
                monitor.emit_at(
                    *t,
                    Some(0),
                    EventKind::MessageReceived {
                        source: rank,
                        tag,
                        bytes: bytes_per_msg,
                        queue_depth: arrivals.pending_at(*t) as u64,
                    },
                );
            }
        }
        if drained {
            push(timeline, recv_start, *t, CollectorActivity::Receiving);
            let save_start = *t;
            *t += config.save_cost_seconds;
            *overhead += config.save_cost_seconds;
            push(timeline, save_start, *t, CollectorActivity::Saving);
            if monitor.is_enabled() {
                let volume: u64 = covered.iter().sum();
                monitor.emit_at(
                    *t,
                    Some(0),
                    EventKind::SavePoint {
                        volume,
                        duration_seconds: config.save_cost_seconds,
                    },
                );
                // The virtual model charges the subtotal fold to each
                // receive; the pass itself costs one save.
                monitor.emit_at(
                    *t,
                    Some(0),
                    EventKind::AveragingPass {
                        volume,
                        duration_seconds: config.save_cost_seconds,
                        eps_max: None,
                        max_snapshot_age_seconds: max_snapshot_age(last_update, *t),
                    },
                );
                // The virtual model carries no estimate values, but it
                // reports the same metrics-plane cadence as the real
                // runner: one snapshot per subtotal merge.
                monitor.emit_at(
                    *t,
                    Some(0),
                    EventKind::MetricsSnapshot {
                        functional: 0,
                        n: volume,
                        mean: None,
                        err: None,
                    },
                );
            }
        }
    };

    for i in 0..q0 {
        let start = t;
        t += d0;
        covered[0] = i + 1;
        last_update[0] = t;
        push(&mut timeline, start, t, CollectorActivity::Computing);
        drain(
            &mut t,
            &mut overhead,
            &mut timeline,
            &mut arrivals,
            &mut covered,
            &mut last_update,
            &mut high_water,
        );
    }
    worker_finish[0] = t;
    if monitor.is_enabled() {
        monitor.emit_at(
            worker_finish[0],
            Some(0),
            EventKind::Realizations {
                completed: q0,
                compute_seconds: q0 as f64 * d0,
            },
        );
    }

    while let Some(next) = arrivals.peek_time() {
        if next > t {
            push(&mut timeline, t, next, CollectorActivity::Waiting);
            t = next;
        }
        drain(
            &mut t,
            &mut overhead,
            &mut timeline,
            &mut arrivals,
            &mut covered,
            &mut last_update,
            &mut high_water,
        );
    }

    let save_start = t;
    t += config.save_cost_seconds;
    overhead += config.save_cost_seconds;
    push(&mut timeline, save_start, t, CollectorActivity::Saving);
    if monitor.is_enabled() {
        let volume: u64 = covered.iter().sum();
        monitor.emit_at(
            t,
            Some(0),
            EventKind::SavePoint {
                volume,
                duration_seconds: config.save_cost_seconds,
            },
        );
        monitor.emit_at(
            t,
            Some(0),
            EventKind::AveragingPass {
                volume,
                duration_seconds: config.save_cost_seconds,
                eps_max: None,
                max_snapshot_age_seconds: max_snapshot_age(&last_update, t),
            },
        );
        monitor.emit_at(
            t,
            Some(0),
            EventKind::MetricsSnapshot {
                functional: 0,
                n: volume,
                mean: None,
                err: None,
            },
        );
        monitor.emit_at(
            t,
            None,
            EventKind::RunCompleted {
                realizations: total,
                t_comp_seconds: t,
                messages,
                bytes: messages * bytes_per_msg,
            },
        );
        monitor.flush();
    }

    TracedRun {
        result: SimResult {
            t_comp: t,
            messages,
            collector_overhead: overhead,
            worker_finish,
            realizations: total,
        },
        collector_timeline: timeline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::simulate;
    use parmonc_obs::{MemorySink, Monitor};
    use std::collections::BTreeSet;
    use std::sync::Arc;

    #[test]
    fn traced_result_matches_plain_simulate() {
        for m in [1usize, 4, 16, 64] {
            let c = ClusterConfig::paper_testbed(m);
            let plain = simulate(&c, 512);
            let traced = simulate_traced(&c, 512);
            assert_eq!(traced.result, plain, "M = {m}");
        }
    }

    #[test]
    fn timeline_is_gap_free_and_ordered() {
        let c = ClusterConfig::paper_testbed(8);
        let traced = simulate_traced(&c, 400);
        let mut cursor = 0.0;
        for seg in &traced.collector_timeline {
            assert!((seg.start - cursor).abs() < 1e-9, "gap at {cursor}");
            assert!(seg.end > seg.start);
            cursor = seg.end;
        }
        assert!((cursor - traced.result.t_comp).abs() < 1e-9);
    }

    #[test]
    fn activity_times_account_for_everything() {
        let c = ClusterConfig::paper_testbed(16);
        let traced = simulate_traced(&c, 800);
        let total: f64 = [
            CollectorActivity::Computing,
            CollectorActivity::Receiving,
            CollectorActivity::Saving,
            CollectorActivity::Waiting,
        ]
        .into_iter()
        .map(|a| traced.time_in(a))
        .sum();
        assert!((total - traced.result.t_comp).abs() < 1e-6);
    }

    #[test]
    fn healthy_testbed_has_high_compute_utilization() {
        // tau >> per-message costs: the collector mostly computes.
        let c = ClusterConfig::paper_testbed(64);
        let traced = simulate_traced(&c, 6_400);
        assert!(
            traced.compute_utilization() > 0.95,
            "utilization {}",
            traced.compute_utilization()
        );
    }

    #[test]
    fn tiny_tau_shows_collector_saturation_in_the_trace() {
        // The ablation regime: the trace must reveal receive-dominance.
        let mut c = ClusterConfig::paper_testbed(64);
        c.realization_seconds = 0.0008;
        let traced = simulate_traced(&c, 64_000);
        let receiving = traced.time_in(CollectorActivity::Receiving);
        let computing = traced.time_in(CollectorActivity::Computing);
        assert!(
            receiving > 2.0 * computing,
            "receive {receiving} vs compute {computing}"
        );
    }

    #[test]
    fn single_processor_has_no_receive_or_wait_segments() {
        let c = ClusterConfig::paper_testbed(1);
        let traced = simulate_traced(&c, 100);
        assert_eq!(traced.time_in(CollectorActivity::Receiving), 0.0);
        assert_eq!(traced.time_in(CollectorActivity::Waiting), 0.0);
    }

    #[test]
    fn monitored_run_matches_unmonitored() {
        let c = ClusterConfig::paper_testbed(8);
        let plain = simulate_traced(&c, 256);
        let sink = Arc::new(MemorySink::new());
        let monitored =
            simulate_monitored(&c, 256, &Monitor::new(vec![Box::new(Arc::clone(&sink))]));
        assert_eq!(monitored, plain);
        assert!(!sink.is_empty());
    }

    #[test]
    fn monitored_run_emits_every_event_kind() {
        let c = ClusterConfig::paper_testbed(4);
        let sink = Arc::new(MemorySink::new());
        let _ = simulate_monitored(&c, 64, &Monitor::new(vec![Box::new(Arc::clone(&sink))]));
        let kinds: BTreeSet<&'static str> = sink.snapshot().iter().map(|e| e.kind.name()).collect();
        // A healthy run emits every non-fault, unconditional kind:
        // fault kinds only appear under injection (see `crate::faults`)
        // and conditional kinds only when their trigger (a precision
        // target) is configured.
        let base: BTreeSet<&'static str> = parmonc_obs::EventKind::ALL_KINDS
            .into_iter()
            .filter(|k| !parmonc_obs::EventKind::FAULT_KINDS.contains(k))
            .filter(|k| !parmonc_obs::EventKind::CONDITIONAL_KINDS.contains(k))
            .collect();
        assert_eq!(kinds, base);
    }

    #[test]
    fn monitored_events_validate_and_tally() {
        let c = ClusterConfig::paper_testbed(4);
        let sink = Arc::new(MemorySink::new());
        let run = simulate_monitored(&c, 100, &Monitor::new(vec![Box::new(Arc::clone(&sink))]));
        let events = sink.snapshot();
        for e in &events {
            parmonc_obs::schema::validate_line(&e.to_json_line()).unwrap();
        }
        let summary = parmonc_obs::MonitorSummary::from_events(&events);
        assert_eq!(summary.total_realizations, Some(100));
        assert_eq!(summary.messages_received, run.result.messages);
        let t_comp = summary.t_comp_seconds.expect("run_completed present");
        assert!((t_comp - run.result.t_comp).abs() < 1e-9);
        // Collector segment seconds reconstruct the timeline totals.
        for activity in [
            CollectorActivity::Computing,
            CollectorActivity::Receiving,
            CollectorActivity::Saving,
            CollectorActivity::Waiting,
        ] {
            let from_summary = summary
                .collector_seconds
                .get(activity.as_str())
                .copied()
                .unwrap_or(0.0);
            assert!(
                (from_summary - run.time_in(activity)).abs() < 1e-9,
                "{activity:?}: {from_summary} vs {}",
                run.time_in(activity)
            );
        }
    }

    #[test]
    fn final_save_volume_covers_every_realization() {
        let c = ClusterConfig::paper_testbed(8);
        let sink = Arc::new(MemorySink::new());
        let _ = simulate_monitored(&c, 333, &Monitor::new(vec![Box::new(Arc::clone(&sink))]));
        let last_save = sink
            .snapshot()
            .iter()
            .rev()
            .find_map(|e| match e.kind {
                EventKind::SavePoint { volume, .. } => Some(volume),
                _ => None,
            })
            .expect("at least one save_point");
        assert_eq!(last_save, 333);
    }
}
