//! Fault modeling in virtual time: the same [`FaultPlan`] that drives
//! the real-thread runner's chaos tests replayed against the
//! discrete-event cluster model.
//!
//! [`simulate_faulted`] mirrors the runner's recovery policy —
//! cumulative subtotals make drops and duplicates harmless, a rank
//! that goes quiet past the liveness timeout is declared lost and its
//! uncovered budget reassigned — so a chaos scenario can be checked
//! against both engines, event kind for event kind. One documented
//! simplification: the virtual collector reassigns a lost rank's
//! budget to itself in a single wave (processor 0 is the only rank
//! whose remaining schedule the model can cheaply extend), whereas the
//! real runner spreads it over surviving workers first.

use parmonc_faults::{FaultKind, FaultPlan, SendAction};
use parmonc_obs::{EventKind, Monitor, RunMode};

use crate::event::EventQueue;
use crate::model::ClusterConfig;
use crate::sim::SimResult;

/// Outcome of a fault-injected virtual run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultedRun {
    /// Aggregate timing result. `realizations` counts what the
    /// collector actually holds at the end: covered realizations from
    /// every rank plus the reassigned budget it re-simulated.
    pub result: SimResult,
    /// Ranks declared dead, in detection order.
    pub lost_workers: Vec<usize>,
    /// Realizations the collector re-simulated for lost ranks.
    pub reassigned_realizations: u64,
}

/// One in-flight message after fault filtering.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
struct Delivery {
    arrival: f64,
    rank: usize,
    covered: u64,
    tag: u32,
}

/// Simulates `total` realizations with the scripted `plan` applied to
/// every worker message and worker lifetime, in virtual time.
///
/// A crashed rank stops simulating at its crash point and never sends
/// its final message; a rank whose final message was dropped looks
/// identical to the collector. Either way the rank is declared lost
/// `liveness_timeout` virtual seconds after it was last heard from,
/// and its uncovered budget is re-simulated by the collector.
///
/// # Panics
///
/// Panics if the configuration is invalid, `total == 0`, or
/// `liveness_timeout` is not positive and finite.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn simulate_faulted(
    config: &ClusterConfig,
    total: u64,
    plan: &FaultPlan,
    liveness_timeout: f64,
    monitor: &Monitor,
) -> FaultedRun {
    config.validate();
    assert!(total > 0, "need at least one realization");
    assert!(
        liveness_timeout > 0.0 && liveness_timeout.is_finite(),
        "liveness_timeout must be positive and finite"
    );

    let m = config.processors;
    monitor.emit_at(
        0.0,
        None,
        EventKind::RunStarted {
            mode: RunMode::SimCluster,
            processors: m,
            max_sample_volume: total,
            seqnum: None,
            nrow: None,
            ncol: None,
            transport: None,
        },
    );
    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
    let bytes_per_msg = config.message_bytes.max(0.0) as u64;
    let transfer = config.transfer_seconds();

    let mut worker_finish = vec![0.0f64; m];
    let mut messages = 0u64;
    let mut final_expected = vec![false; m];
    let mut final_scheduled_arrival = vec![f64::NAN; m];
    let mut arrivals: EventQueue<Delivery> = EventQueue::new();

    for (rank, finish) in worker_finish.iter_mut().enumerate().skip(1) {
        let quota = config.quota(rank, total);
        let crash = plan.crash_point(rank);
        let effective = crash.map_or(quota, |n| n.min(quota));
        let crashed = effective < quota;
        *finish = effective as f64 * config.realization_duration(rank);

        let mut schedule = crate::sim::worker_arrival_schedule(config, rank, effective);
        if crashed {
            // The crash happens before the final message leaves.
            schedule.pop();
            monitor.emit_at(
                *finish,
                Some(rank),
                EventKind::FaultInjected {
                    fault: FaultKind::RankCrash.as_str().to_string(),
                    detail: Some(effective),
                },
            );
        } else {
            final_expected[rank] = true;
            monitor.emit_at(
                *finish,
                Some(rank),
                EventKind::Realizations {
                    completed: effective,
                    compute_seconds: *finish,
                },
            );
        }

        // Per-(src, dst, tag) sequence counters, mirroring the message
        // substrate's fault plane.
        let mut seq_by_tag = [0u64; 3];
        for send in schedule {
            let tag = send.tag;
            let seq = seq_by_tag[tag as usize];
            seq_by_tag[tag as usize] += 1;
            let send_time = (send.arrival - transfer).max(0.0);
            let action = plan.message_action(rank, 0, tag, seq);
            let mut deliveries: Vec<f64> = Vec::new();
            match action {
                SendAction::Deliver => deliveries.push(send.arrival),
                SendAction::Drop => {
                    monitor.emit_at(
                        send_time,
                        Some(rank),
                        EventKind::FaultInjected {
                            fault: FaultKind::MessageDrop.as_str().to_string(),
                            detail: Some(seq),
                        },
                    );
                }
                SendAction::Duplicate => {
                    deliveries.push(send.arrival);
                    deliveries.push(send.arrival + transfer);
                    monitor.emit_at(
                        send_time,
                        Some(rank),
                        EventKind::FaultInjected {
                            fault: FaultKind::MessageDuplicate.as_str().to_string(),
                            detail: Some(seq),
                        },
                    );
                }
                SendAction::Delay { hold_sends } => {
                    deliveries.push(send.arrival + f64::from(hold_sends) * transfer);
                    monitor.emit_at(
                        send_time,
                        Some(rank),
                        EventKind::FaultInjected {
                            fault: FaultKind::MessageDelay.as_str().to_string(),
                            detail: Some(seq),
                        },
                    );
                }
            }
            for arrival in deliveries {
                monitor.emit_at(
                    send_time,
                    Some(rank),
                    EventKind::MessageSent {
                        dest: 0,
                        tag,
                        bytes: bytes_per_msg,
                    },
                );
                if tag == 2 {
                    final_scheduled_arrival[rank] = arrival;
                }
                arrivals.push(
                    arrival,
                    Delivery {
                        arrival,
                        rank,
                        covered: send.covered,
                        tag,
                    },
                );
                messages += 1;
            }
        }
    }

    // Processor 0's serial timeline, as in the plain simulation.
    let q0 = config.quota(0, total);
    let d0 = config.realization_duration(0);
    let mut t = 0.0f64;
    let mut overhead = 0.0f64;
    let mut covered = vec![0u64; m];
    let mut final_received = vec![false; m];
    let mut last_heard = vec![0.0f64; m];

    let drain = |t: &mut f64,
                 overhead: &mut f64,
                 arrivals: &mut EventQueue<Delivery>,
                 covered: &mut [u64],
                 final_received: &mut [bool],
                 last_heard: &mut [f64]| {
        let mut drained = false;
        while arrivals.peek_time().is_some_and(|a| a <= *t) {
            let (_, d) = arrivals.pop().expect("peeked above");
            *t += config.receive_cost_seconds;
            *overhead += config.receive_cost_seconds;
            covered[d.rank] = covered[d.rank].max(d.covered);
            last_heard[d.rank] = last_heard[d.rank].max(d.arrival);
            if d.tag == 2 {
                final_received[d.rank] = true;
            }
            monitor.emit_at(
                *t,
                Some(0),
                EventKind::MessageReceived {
                    source: d.rank,
                    tag: d.tag,
                    bytes: bytes_per_msg,
                    queue_depth: arrivals.pending_at(*t) as u64,
                },
            );
            drained = true;
        }
        if drained {
            *t += config.save_cost_seconds;
            *overhead += config.save_cost_seconds;
        }
    };

    for i in 0..q0 {
        t += d0;
        covered[0] = i + 1;
        drain(
            &mut t,
            &mut overhead,
            &mut arrivals,
            &mut covered,
            &mut final_received,
            &mut last_heard,
        );
    }
    worker_finish[0] = t;
    monitor.emit_at(
        t,
        Some(0),
        EventKind::Realizations {
            completed: q0,
            compute_seconds: q0 as f64 * d0,
        },
    );

    while let Some(next) = arrivals.peek_time() {
        if next > t {
            t = next;
        }
        drain(
            &mut t,
            &mut overhead,
            &mut arrivals,
            &mut covered,
            &mut final_received,
            &mut last_heard,
        );
    }

    // Liveness sweep: every rank whose final never arrived is declared
    // lost once it has been quiet for the timeout, and the collector
    // re-simulates its uncovered budget on its own (fresh) schedule.
    let mut lost_workers = Vec::new();
    let mut reassigned = 0u64;
    for rank in 1..m {
        if final_received[rank] {
            continue;
        }
        let detect_t = (last_heard[rank] + liveness_timeout).max(t);
        t = detect_t;
        monitor.emit_at(
            t,
            Some(0),
            EventKind::WorkerLost {
                worker: rank,
                received_realizations: covered[rank],
            },
        );
        lost_workers.push(rank);
        let budget = config.quota(rank, total).saturating_sub(covered[rank]);
        if budget > 0 {
            monitor.emit_at(
                t,
                Some(0),
                EventKind::WorkReassigned {
                    from_worker: rank,
                    to_worker: 0,
                    realizations: budget,
                },
            );
            t += budget as f64 * d0;
            reassigned += budget;
        }
    }

    // Final averaging and save of the result files.
    t += config.save_cost_seconds;
    overhead += config.save_cost_seconds;
    let volume: u64 = covered.iter().sum::<u64>() + reassigned;
    monitor.emit_at(
        t,
        Some(0),
        EventKind::SavePoint {
            volume,
            duration_seconds: config.save_cost_seconds,
        },
    );
    monitor.emit_at(
        t,
        Some(0),
        EventKind::AveragingPass {
            volume,
            duration_seconds: config.save_cost_seconds,
            eps_max: None,
            max_snapshot_age_seconds: None,
        },
    );
    monitor.emit_at(
        t,
        None,
        EventKind::RunCompleted {
            realizations: volume,
            t_comp_seconds: t,
            messages,
            bytes: messages * bytes_per_msg,
        },
    );
    monitor.flush();

    FaultedRun {
        result: SimResult {
            t_comp: t,
            messages,
            collector_overhead: overhead,
            worker_finish,
            realizations: volume,
        },
        lost_workers,
        reassigned_realizations: reassigned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::simulate;
    use parmonc_obs::{MemorySink, Monitor};
    use std::sync::Arc;

    fn testbed(m: usize) -> ClusterConfig {
        ClusterConfig::paper_testbed(m)
    }

    #[test]
    fn empty_plan_matches_plain_simulate() {
        for m in [1usize, 4, 16] {
            let c = testbed(m);
            let plain = simulate(&c, 512);
            let faulted =
                simulate_faulted(&c, 512, &FaultPlan::none(), 1_000.0, &Monitor::disabled());
            assert_eq!(faulted.result.t_comp, plain.t_comp, "M = {m}");
            assert_eq!(faulted.result.messages, plain.messages);
            assert_eq!(faulted.result.realizations, plain.realizations);
            assert!(faulted.lost_workers.is_empty());
            assert_eq!(faulted.reassigned_realizations, 0);
        }
    }

    #[test]
    fn crashed_rank_is_detected_and_its_budget_recovered() {
        let c = testbed(4);
        let plan = FaultPlan::new(3).crash_rank(2, 5);
        let run = simulate_faulted(&c, 400, &plan, 50.0, &Monitor::disabled());
        assert_eq!(run.lost_workers, vec![2]);
        // quota 100, crashed after 5: under per-realization exchange
        // the collector holds 4 (the 5th subtotal is never sent: the
        // message covering realization 5 would have been the crash
        // victim's next send) or 5 realizations; either way the
        // reassigned budget tops the volume back up to the target.
        assert_eq!(run.result.realizations, 400);
        assert!(run.reassigned_realizations >= 95);
        // Recovery costs time: slower than the fault-free run.
        assert!(run.result.t_comp > simulate(&c, 400).t_comp);
    }

    #[test]
    fn dropped_final_is_recovered_like_a_crash() {
        let c = testbed(4);
        // Worker 3's final message (tag 2, seq 0) is dropped.
        let plan = FaultPlan::new(3).drop_message(3, 0, 2, 0);
        let run = simulate_faulted(&c, 400, &plan, 50.0, &Monitor::disabled());
        assert_eq!(run.lost_workers, vec![3]);
        // All but the last realization were covered by subtotals, so
        // only the shortfall is re-simulated.
        assert_eq!(run.reassigned_realizations, 1);
        assert_eq!(run.result.realizations, 400);
    }

    #[test]
    fn drops_and_duplicates_of_subtotals_are_harmless() {
        let c = testbed(4);
        let plan = FaultPlan::new(11)
            .drop_message(1, 0, 1, 3)
            .duplicate_message(2, 0, 1, 4)
            .delay_message(3, 0, 1, 2, 5);
        let run = simulate_faulted(&c, 400, &plan, 50.0, &Monitor::disabled());
        assert!(run.lost_workers.is_empty());
        assert_eq!(run.reassigned_realizations, 0);
        assert_eq!(run.result.realizations, 400);
    }

    #[test]
    fn fault_events_are_schema_valid() {
        let c = testbed(4);
        let plan = FaultPlan::new(7).crash_rank(1, 3).drop_message(2, 0, 1, 0);
        let sink = Arc::new(MemorySink::new());
        let run = simulate_faulted(
            &c,
            200,
            &plan,
            50.0,
            &Monitor::new(vec![Box::new(Arc::clone(&sink))]),
        );
        let events = sink.snapshot();
        for e in &events {
            parmonc_obs::schema::validate_line(&e.to_json_line()).unwrap();
        }
        let kinds: Vec<&str> = events.iter().map(|e| e.kind.name()).collect();
        assert!(kinds.contains(&"fault_injected"));
        assert!(kinds.contains(&"worker_lost"));
        assert!(kinds.contains(&"work_reassigned"));
        assert_eq!(run.lost_workers, vec![1]);
    }

    #[test]
    fn hash_based_drop_fraction_still_reaches_the_target_volume() {
        let c = testbed(8);
        let plan = FaultPlan::new(99).drop_fraction(0.05);
        let run = simulate_faulted(&c, 800, &plan, 50.0, &Monitor::disabled());
        // Some ranks may lose their final and be "recovered", but the
        // end volume never falls short of the request.
        assert!(run.result.realizations >= 800);
    }
}
