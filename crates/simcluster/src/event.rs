//! A minimal deterministic event queue over virtual time.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a virtual time, with a deterministic
/// tie-breaking sequence number.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Scheduled<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E: PartialEq> Eq for Scheduled<E> {}

impl<E: PartialEq> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E: PartialEq> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (time, seq). Virtual times are
        // always finite (asserted on push).
        other
            .time
            .partial_cmp(&self.time)
            .expect("virtual times are finite")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-heap event queue: pops by ascending time, FIFO
/// among equal times.
#[derive(Debug)]
pub struct EventQueue<E: PartialEq> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E: PartialEq> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is not finite or is negative.
    pub fn push(&mut self, time: f64, event: E) {
        assert!(time.is_finite() && time >= 0.0, "bad virtual time {time}");
        self.heap.push(Scheduled {
            time,
            seq: self.next_seq,
            event,
        });
        self.next_seq += 1;
    }

    /// Pops the earliest event, returning `(time, event)`.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// The time of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Number of pending events scheduled at or before `time` — the
    /// "queue depth" an observer at that virtual time would see.
    #[must_use]
    pub fn pending_at(&self, time: f64) -> usize {
        self.heap.iter().filter(|s| s.time <= time).count()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E: PartialEq> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(5.0, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((5.0, i)));
        }
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(2.5, ());
        q.push(1.5, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(1.5));
    }

    #[test]
    #[should_panic(expected = "bad virtual time")]
    fn rejects_nan_time() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, ());
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(1.0, 1);
        q.push(4.0, 4);
        assert_eq!(q.pop(), Some((1.0, 1)));
        q.push(2.0, 2);
        q.push(3.0, 3);
        assert_eq!(q.pop(), Some((2.0, 2)));
        assert_eq!(q.pop(), Some((3.0, 3)));
        assert_eq!(q.pop(), Some((4.0, 4)));
    }
}
