//! A discrete-event cluster simulator for the PARMONC performance
//! experiments.
//!
//! The paper's evaluation (Section 4, Fig. 2) measures the wall-clock
//! time `T_comp(L)` to simulate `L` realizations of the 2-D diffusion
//! problem on `M ∈ {1, 8, 16, 32, 64, 128, 256, 512}` processors of the
//! Siberian Supercomputer Center, under the *strictest* exchange
//! conditions: every processor sends its subtotals to processor 0
//! after *every* realization (τ_ζ ≈ 7.7 s per realization, ≈ 120 KB per
//! message). We cannot requisition 512 physical processors, so this
//! crate models the experiment in virtual time (DESIGN.md substitution
//! table):
//!
//! * each processor is a serial resource that alternates between
//!   simulating realizations (duration `τ / speed_m`) and — for
//!   processor 0 — receiving, averaging, and saving;
//! * the network charges `latency + bytes / bandwidth` per message;
//! * processor 0 interleaves message processing between its own
//!   realizations, exactly like the real runner in `parmonc::runner`.
//!
//! `T_comp(L)` is read off when processor 0 has folded in every
//! worker's final message and saved — the same instant the paper
//! measures. The [`figure2`] module packages the paper's panels; the
//! model also exposes the knobs (tiny τ, slow links, heterogeneous
//! processors) used for the ablations in EXPERIMENTS.md.
//!
//! # Example
//!
//! Simulate the paper's testbed and stream the run through a monitor
//! using the same event schema as the real runner (see
//! `docs/observability.md`):
//!
//! ```
//! use std::sync::Arc;
//! use parmonc_obs::{MemorySink, Monitor, MonitorSummary};
//! use parmonc_simcluster::{simulate_monitored, ClusterConfig};
//!
//! let config = ClusterConfig::paper_testbed(8);
//! let sink = Arc::new(MemorySink::new());
//! let monitor = Monitor::new(vec![Box::new(Arc::clone(&sink))]);
//! let run = simulate_monitored(&config, 256, &monitor);
//!
//! // T_comp ≈ L·τ/M on the healthy testbed, and the trace agrees.
//! let summary = MonitorSummary::from_events(&sink.snapshot());
//! assert_eq!(summary.total_realizations, Some(256));
//! assert_eq!(summary.messages_received, run.result.messages);
//! assert!(run.compute_utilization() > 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod event;
pub mod faults;
pub mod figure2;
pub mod hybrid;
pub mod model;
pub mod sim;
pub mod trace;

pub use faults::{simulate_faulted, FaultedRun};
pub use model::{ClusterConfig, ExchangePolicy, QuotaMode};
pub use sim::{simulate, SimResult};
pub use trace::{simulate_monitored, simulate_traced, CollectorActivity, Segment, TracedRun};
