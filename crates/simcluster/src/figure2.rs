//! The paper's Figure 2, as data: `T_comp(L)` series for the four
//! panels.
//!
//! Panel layout (read off the published graphs):
//!
//! * (a) `M ∈ {1, 8}`,        `L ∈ {200, 400, 600, 800, 1000}`
//! * (b) `M ∈ {8, 16, 32}`,   `L ∈ {1500, 3000, 4500, 6000, 7500}`
//! * (c) `M ∈ {32, 64, 128}`, `L ∈ {5000, 10000, 15000, 20000, 25000}`
//! * (d) `M ∈ {128, 256, 512}`, `L ∈ {15000, 30000, 45000, 60000, 75000}`
//!
//! all under the strictest exchange conditions (send after every
//! realization, τ_ζ ≈ 7.7 s, ≈ 120 KB per message).

use crate::model::ClusterConfig;
use crate::sim::simulate;

/// One panel of Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Panel {
    /// Panel (a): M ∈ {1, 8}.
    A,
    /// Panel (b): M ∈ {8, 16, 32}.
    B,
    /// Panel (c): M ∈ {32, 64, 128}.
    C,
    /// Panel (d): M ∈ {128, 256, 512}.
    D,
}

impl Panel {
    /// All four panels in paper order.
    pub const ALL: [Panel; 4] = [Panel::A, Panel::B, Panel::C, Panel::D];

    /// The processor counts plotted in this panel.
    #[must_use]
    pub fn processor_counts(&self) -> &'static [usize] {
        match self {
            Panel::A => &[1, 8],
            Panel::B => &[8, 16, 32],
            Panel::C => &[32, 64, 128],
            Panel::D => &[128, 256, 512],
        }
    }

    /// The total-sample-volume axis of this panel.
    #[must_use]
    pub fn sample_volumes(&self) -> &'static [u64] {
        match self {
            Panel::A => &[200, 400, 600, 800, 1000],
            Panel::B => &[1500, 3000, 4500, 6000, 7500],
            Panel::C => &[5000, 10_000, 15_000, 20_000, 25_000],
            Panel::D => &[15_000, 30_000, 45_000, 60_000, 75_000],
        }
    }

    /// Panel letter.
    #[must_use]
    pub fn letter(&self) -> char {
        match self {
            Panel::A => 'a',
            Panel::B => 'b',
            Panel::C => 'c',
            Panel::D => 'd',
        }
    }
}

/// One `T_comp(L)` series (a single curve of a panel).
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Processor count `M` of the curve.
    pub processors: usize,
    /// `(L, T_comp seconds)` points.
    pub points: Vec<(u64, f64)>,
}

/// Simulates every curve of a panel on the paper-testbed model.
#[must_use]
pub fn panel_series(panel: Panel) -> Vec<Series> {
    panel
        .processor_counts()
        .iter()
        .map(|&m| {
            let config = ClusterConfig::paper_testbed(m);
            let points = panel
                .sample_volumes()
                .iter()
                .map(|&l| (l, simulate(&config, l).t_comp))
                .collect();
            Series {
                processors: m,
                points,
            }
        })
        .collect()
}

/// Renders a panel as the table the paper's graph encodes: one row per
/// `L`, one `T_comp` column per `M`.
#[must_use]
pub fn render_panel(panel: Panel) -> String {
    let series = panel_series(panel);
    let mut out = format!("Figure 2{}): T_comp(L) in seconds\n", panel.letter());
    out.push_str("       L");
    for s in &series {
        out.push_str(&format!("  M={:<10}", s.processors));
    }
    out.push('\n');
    for (row, &l) in panel.sample_volumes().iter().enumerate() {
        out.push_str(&format!("{l:>8}"));
        for s in &series {
            out.push_str(&format!("  {:>12.1}", s.points[row].1));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_axes_match_paper() {
        assert_eq!(Panel::A.processor_counts(), &[1, 8]);
        assert_eq!(Panel::D.processor_counts(), &[128, 256, 512]);
        assert_eq!(Panel::A.sample_volumes().len(), 5);
        assert_eq!(*Panel::D.sample_volumes().last().unwrap(), 75_000);
    }

    #[test]
    fn panel_a_magnitudes_match_figure() {
        // The published graph: M=1 reaches ~7700 s at L=1000 (1000
        // realizations × 7.7 s); M=8 reaches ~1000 s.
        let series = panel_series(Panel::A);
        let m1 = &series[0];
        let m8 = &series[1];
        let t1_at_1000 = m1.points[4].1;
        let t8_at_1000 = m8.points[4].1;
        assert!((t1_at_1000 - 7700.0).abs() < 50.0, "{t1_at_1000}");
        assert!((t8_at_1000 - 7700.0 / 8.0).abs() < 50.0, "{t8_at_1000}");
    }

    #[test]
    fn all_panels_show_linear_speedup() {
        // "the speedup of parallelization is in direct proportion to
        // the number of processors" — every adjacent curve pair in each
        // panel must scale by the processor ratio within 7%.
        for panel in Panel::ALL {
            let series = panel_series(panel);
            for w in series.windows(2) {
                let (small, big) = (&w[0], &w[1]);
                let ratio_m = big.processors as f64 / small.processors as f64;
                for (i, &(l, t_small)) in small.points.iter().enumerate() {
                    let t_big = big.points[i].1;
                    let ratio_t = t_small / t_big;
                    assert!(
                        (ratio_t - ratio_m).abs() < 0.07 * ratio_m,
                        "panel {} L={l}: M{}→M{} time ratio {ratio_t:.2} vs {ratio_m}",
                        panel.letter(),
                        small.processors,
                        big.processors
                    );
                }
            }
        }
    }

    #[test]
    fn curves_increase_in_l() {
        for panel in Panel::ALL {
            for s in panel_series(panel) {
                for w in s.points.windows(2) {
                    assert!(w[1].1 > w[0].1, "T_comp must grow with L");
                }
            }
        }
    }

    #[test]
    fn render_contains_all_columns() {
        let text = render_panel(Panel::B);
        assert!(text.contains("M=8"));
        assert!(text.contains("M=16"));
        assert!(text.contains("M=32"));
        assert!(text.contains("7500"));
        assert_eq!(text.lines().count(), 2 + 5);
    }
}
