//! The virtual-time simulation of a PARMONC run.

use crate::event::EventQueue;
use crate::model::{ClusterConfig, ExchangePolicy};

/// Outcome of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Wall-clock (virtual) time at which processor 0 has received,
    /// averaged and saved everything — the paper's `T_comp`.
    pub t_comp: f64,
    /// Total subtotal messages that crossed the network.
    pub messages: u64,
    /// Seconds processor 0 spent receiving/averaging/saving rather than
    /// simulating.
    pub collector_overhead: f64,
    /// Virtual time each worker finished its own quota (index = rank).
    pub worker_finish: Vec<f64>,
    /// Realizations simulated (= requested L).
    pub realizations: u64,
}

impl SimResult {
    /// Parallel efficiency against a perfectly linear machine:
    /// `(L · τ / M) / T_comp` for the homogeneous configuration.
    #[must_use]
    pub fn efficiency(&self, config: &ClusterConfig) -> f64 {
        let ideal =
            self.realizations as f64 * config.realization_seconds / config.processors as f64;
        ideal / self.t_comp
    }
}

/// One scheduled worker message: when it arrives at processor 0, how
/// many of the worker's realizations its cumulative subtotal covers,
/// and its tag (1 = subtotal, 2 = final, mirroring the runner's
/// `TAG_SUBTOTAL`/`TAG_FINAL`).
pub(crate) struct ScheduledSend {
    pub arrival: f64,
    pub covered: u64,
    pub tag: u32,
}

/// Worker-side message timeline: every message worker `m` sends, in
/// send order, final message last.
pub(crate) fn worker_arrival_schedule(
    config: &ClusterConfig,
    m: usize,
    quota: u64,
) -> Vec<ScheduledSend> {
    let d = config.realization_duration(m);
    let transfer = config.transfer_seconds();
    let finish = quota as f64 * d;
    let mut sends: Vec<(f64, u64)> = match config.exchange {
        ExchangePolicy::EveryRealization => (1..=quota).map(|i| (i as f64 * d, i)).collect(),
        ExchangePolicy::Periodic { period } => {
            let mut s: Vec<(f64, u64)> = (1..)
                .map(|j| j as f64 * period)
                .take_while(|t| *t < finish)
                .map(|t| (t, ((t / d) as u64).min(quota)))
                .collect();
            s.push((finish, quota)); // the final message
            s
        }
    };
    if sends.is_empty() {
        sends.push((finish, quota));
    }
    let last = sends.len() - 1;
    sends
        .into_iter()
        .enumerate()
        .map(|(i, (t, covered))| ScheduledSend {
            arrival: t + transfer,
            covered,
            tag: if i == last { 2 } else { 1 },
        })
        .collect()
}

/// Arrival times at processor 0 of every message worker `m` sends.
pub(crate) fn worker_arrival_times(config: &ClusterConfig, m: usize, quota: u64) -> Vec<f64> {
    worker_arrival_schedule(config, m, quota)
        .into_iter()
        .map(|s| s.arrival)
        .collect()
}

/// Simulates a run of `total` realizations on the configured cluster.
///
/// # Panics
///
/// Panics if the configuration is invalid (see
/// [`ClusterConfig::validate`]) or `total == 0`.
#[must_use]
pub fn simulate(config: &ClusterConfig, total: u64) -> SimResult {
    config.validate();
    assert!(total > 0, "need at least one realization");

    let m = config.processors;
    let mut worker_finish = vec![0.0f64; m];
    let mut messages = 0u64;

    // Gather every worker message arrival into one deterministic queue
    // (worker rank used only for bookkeeping).
    let mut arrivals: EventQueue<usize> = EventQueue::new();
    for (rank, finish) in worker_finish.iter_mut().enumerate().skip(1) {
        let quota = config.quota(rank, total);
        *finish = quota as f64 * config.realization_duration(rank);
        for t in worker_arrival_times(config, rank, quota) {
            arrivals.push(t, rank);
            messages += 1;
        }
    }

    // Processor 0's serial timeline: alternate computing realizations
    // with draining arrived messages (mirroring parmonc::runner's
    // rank 0 loop), then wait out the stragglers.
    let q0 = config.quota(0, total);
    let d0 = config.realization_duration(0);
    let mut t = 0.0f64;
    let mut overhead = 0.0f64;

    let drain = |t: &mut f64, overhead: &mut f64, arrivals: &mut EventQueue<usize>| {
        let mut drained = false;
        while arrivals.peek_time().is_some_and(|a| a <= *t) {
            arrivals.pop();
            *t += config.receive_cost_seconds;
            *overhead += config.receive_cost_seconds;
            drained = true;
        }
        if drained {
            // Average + save-point after folding in a batch.
            *t += config.save_cost_seconds;
            *overhead += config.save_cost_seconds;
        }
    };

    for _ in 0..q0 {
        t += d0;
        drain(&mut t, &mut overhead, &mut arrivals);
    }
    worker_finish[0] = t;

    // Wait for the remaining messages.
    while let Some(next) = arrivals.peek_time() {
        if next > t {
            t = next;
        }
        drain(&mut t, &mut overhead, &mut arrivals);
    }

    // Final averaging and save of the result files.
    t += config.save_cost_seconds;
    overhead += config.save_cost_seconds;

    SimResult {
        t_comp: t,
        messages,
        collector_overhead: overhead,
        worker_finish,
        realizations: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strict(m: usize) -> ClusterConfig {
        ClusterConfig::paper_testbed(m)
    }

    #[test]
    fn single_processor_time_is_serial_compute() {
        let c = strict(1);
        let r = simulate(&c, 100);
        // No messages; T = 100 * 7.7 + one save.
        assert_eq!(r.messages, 0);
        assert!((r.t_comp - (100.0 * 7.7 + c.save_cost_seconds)).abs() < 1e-9);
    }

    #[test]
    fn message_count_strict_mode() {
        let c = strict(4);
        let r = simulate(&c, 100);
        // Workers 1..3 send one message per realization (quota 25 each).
        assert_eq!(r.messages, 75);
    }

    #[test]
    fn speedup_is_nearly_linear_on_paper_testbed() {
        // The paper's headline claim (Fig. 2): T_comp ∝ 1/M even under
        // per-realization exchange, because τ dominates transfer costs.
        let l = 1024;
        let t1 = simulate(&strict(1), l).t_comp;
        for m in [8usize, 16, 32, 64, 128, 256, 512] {
            let tm = simulate(&strict(m), l).t_comp;
            let speedup = t1 / tm;
            assert!(
                speedup > 0.93 * m as f64,
                "M={m}: speedup {speedup:.1} not ~{m}"
            );
            assert!(
                speedup <= m as f64 + 1e-6,
                "M={m}: superlinear {speedup:.1}"
            );
        }
    }

    #[test]
    fn t_comp_scales_linearly_in_l() {
        let c = strict(8);
        let t1 = simulate(&c, 200).t_comp;
        let t5 = simulate(&c, 1000).t_comp;
        let ratio = t5 / t1;
        assert!((ratio - 5.0).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn tiny_realizations_break_linear_speedup() {
        // Ablation: when τ is comparable to the per-message cost, the
        // collector saturates and speedup collapses — the regime the
        // paper's periodic exchange (perpass) exists to avoid.
        let mut c = strict(64);
        c.realization_seconds = 0.004; // τ ≈ receive cost
        let t1 = {
            let mut c1 = c.clone();
            c1.processors = 1;
            simulate(&c1, 64_000).t_comp
        };
        let t64 = simulate(&c, 64_000).t_comp;
        let speedup = t1 / t64;
        assert!(
            speedup < 32.0,
            "with tiny τ the collector must bottleneck: speedup {speedup:.1}"
        );
    }

    #[test]
    fn periodic_exchange_rescues_tiny_realizations() {
        // Same tiny τ, but perpass-style batching: far fewer messages,
        // speedup restored. This is §2.2's argument, quantified.
        let mut c = strict(64);
        c.realization_seconds = 0.004;
        c.exchange = ExchangePolicy::Periodic { period: 10.0 };
        let t1 = {
            let mut c1 = c.clone();
            c1.processors = 1;
            simulate(&c1, 64_000).t_comp
        };
        let r = simulate(&c, 64_000);
        let speedup = t1 / r.t_comp;
        assert!(
            speedup > 50.0,
            "periodic exchange must restore speedup: {speedup:.1}"
        );
        assert!(r.messages < 1000, "messages {}", r.messages);
    }

    #[test]
    fn heterogeneous_processors_no_load_balancing_needed() {
        // §2.2: "no need to use any load balancing techniques" — with
        // static quotas a 2x-slow processor *does* stretch T_comp; the
        // claim holds in the paper because realizations are equal-cost.
        // Verify the model exposes exactly that sensitivity.
        let mut c = strict(4);
        c.speeds = vec![1.0, 1.0, 1.0, 0.5];
        let r = simulate(&c, 400);
        let homogeneous = simulate(&strict(4), 400);
        assert!(r.t_comp > 1.8 * homogeneous.t_comp / 1.0_f64.max(1.0));
        // The slow worker is the straggler.
        let slow_finish = r.worker_finish[3];
        assert!(slow_finish >= r.worker_finish[1] * 1.9);
    }

    #[test]
    fn collector_overhead_accounted() {
        let c = strict(16);
        let r = simulate(&c, 1600);
        assert!(r.collector_overhead > 0.0);
        assert!(r.collector_overhead < 0.1 * r.t_comp, "overhead small");
    }

    #[test]
    fn efficiency_metric() {
        let c = strict(8);
        let r = simulate(&c, 800);
        let e = r.efficiency(&c);
        assert!(e > 0.9 && e <= 1.0, "efficiency {e}");
    }

    #[test]
    fn worker_finish_before_t_comp() {
        let c = strict(32);
        let r = simulate(&c, 3200);
        for (rank, f) in r.worker_finish.iter().enumerate() {
            assert!(*f <= r.t_comp + 1e-9, "rank {rank} finished after T_comp");
        }
    }

    #[test]
    #[should_panic(expected = "at least one realization")]
    fn zero_realizations_rejected() {
        let _ = simulate(&strict(1), 0);
    }

    mod properties {
        use super::*;
        use parmonc_testkit::prelude::*;

        proptest! {
            /// T_comp is bounded below by the critical path: rank 0's
            /// own compute plus the final save, and every worker's
            /// compute plus one transfer.
            #[test]
            fn t_comp_respects_critical_path(m in 1usize..64, l in 1u64..5_000) {
                let c = strict(m);
                let r = simulate(&c, l);
                let own = c.quota(0, l) as f64 * c.realization_seconds;
                prop_assert!(r.t_comp + 1e-9 >= own + c.save_cost_seconds);
                for rank in 1..m {
                    let worker = c.quota(rank, l) as f64 * c.realization_seconds
                        + c.transfer_seconds();
                    prop_assert!(
                        r.t_comp + 1e-9 >= worker,
                        "rank {rank}: T={} < {worker}",
                        r.t_comp
                    );
                }
            }

            /// Strict mode sends exactly one message per worker
            /// realization — plus the empty final message a zero-quota
            /// worker still sends (mirroring the runner, where every
            /// rank always reports a final subtotal).
            #[test]
            fn strict_message_count(m in 1usize..64, l in 1u64..5_000) {
                let c = strict(m);
                let r = simulate(&c, l);
                let expected: u64 = (1..m).map(|rank| c.quota(rank, l).max(1)).sum();
                prop_assert_eq!(r.messages, expected);
            }

            /// T_comp is monotone in L up to save-batch granularity:
            /// adding a realization can *re-batch* message draining
            /// (e.g. a zero-quota worker's early final message forces
            /// an extra receive+save batch at L-1 that disappears at
            /// L), so strict monotonicity only holds modulo a few
            /// batch costs.
            #[test]
            fn monotone_in_l(m in 1usize..32, l in 2u64..3_000) {
                let c = strict(m);
                let slack = 3.0 * (c.save_cost_seconds
                    + c.receive_cost_seconds * m as f64
                    + c.transfer_seconds());
                prop_assert!(
                    simulate(&c, l).t_comp >= simulate(&c, l - 1).t_comp - slack
                );
            }

            /// Quotas sum to L in both modes, for arbitrary speed mixes.
            #[test]
            fn quotas_conserve_volume(
                m in 1usize..16,
                l in 1u64..100_000,
                fast in 1usize..16,
                weighted in any::<bool>()
            ) {
                let mut c = strict(m);
                c.speeds = (0..m).map(|i| if i < fast { 8.0 } else { 1.0 }).collect();
                c.quota_mode = if weighted {
                    crate::model::QuotaMode::SpeedWeighted
                } else {
                    crate::model::QuotaMode::Uniform
                };
                let sum: u64 = (0..m).map(|rank| c.quota(rank, l)).sum();
                prop_assert_eq!(sum, l);
            }
        }
    }
}
