//! The cluster model: processors, network, collector costs.

/// How the total sample volume is split into per-processor quotas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QuotaMode {
    /// Equal split (the paper's static distribution; optimal when all
    /// processors are identical, Section 2.2).
    #[default]
    Uniform,
    /// Split proportionally to processor speed — the extension needed
    /// for the "GPU and hybrid clusters" the paper's conclusion points
    /// to, where node speeds differ by orders of magnitude.
    SpeedWeighted,
}

/// When workers ship subtotals (mirrors `parmonc::Exchange`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExchangePolicy {
    /// After every realization — the paper's "strictest conditions".
    EveryRealization,
    /// Every `period` virtual seconds of the worker's clock
    /// (the `perpass` production mode).
    Periodic {
        /// The pass period in virtual seconds.
        period: f64,
    },
}

/// Configuration of a simulated cluster run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of processors `M` (processor 0 is also the collector).
    pub processors: usize,
    /// Mean compute time per realization τ_ζ, seconds (paper: 7.7 s).
    pub realization_seconds: f64,
    /// Per-processor speed factors (duration = τ / speed). Empty means
    /// homogeneous speed 1.0; otherwise must have `processors` entries.
    pub speeds: Vec<f64>,
    /// Bytes per subtotal message (paper: ≈ 120 KB).
    pub message_bytes: f64,
    /// Network latency per message, seconds.
    pub latency_seconds: f64,
    /// Network bandwidth, bytes/second.
    pub bandwidth_bytes_per_sec: f64,
    /// Collector CPU cost to receive + average one message, seconds.
    pub receive_cost_seconds: f64,
    /// Collector CPU cost of one periodic save of the result files,
    /// seconds.
    pub save_cost_seconds: f64,
    /// Exchange policy.
    pub exchange: ExchangePolicy,
    /// Quota distribution mode.
    pub quota_mode: QuotaMode,
}

impl ClusterConfig {
    /// A model of the paper's testbed: τ = 7.7 s, 120 KB messages over
    /// a gigabit-class interconnect, millisecond-scale collector costs,
    /// exchange after every realization.
    #[must_use]
    pub fn paper_testbed(processors: usize) -> Self {
        Self {
            processors,
            realization_seconds: 7.7,
            speeds: Vec::new(),
            message_bytes: 120_000.0,
            latency_seconds: 50e-6,
            bandwidth_bytes_per_sec: 125e6, // ~1 Gbit/s
            // Folding one 120 KB subtotal (memcpy + 2000-entry merge)
            // costs ~0.2 ms of collector CPU; a periodic save ~5 ms.
            receive_cost_seconds: 0.2e-3,
            save_cost_seconds: 5e-3,
            exchange: ExchangePolicy::EveryRealization,
            quota_mode: QuotaMode::Uniform,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on zero processors, non-positive τ/bandwidth, negative
    /// costs, or a `speeds` vector of the wrong length / with
    /// non-positive entries.
    pub fn validate(&self) {
        assert!(self.processors > 0, "need at least one processor");
        assert!(
            self.realization_seconds > 0.0,
            "realization time must be positive"
        );
        assert!(
            self.bandwidth_bytes_per_sec > 0.0,
            "bandwidth must be positive"
        );
        assert!(
            self.message_bytes >= 0.0,
            "message size must be non-negative"
        );
        assert!(self.latency_seconds >= 0.0, "latency must be non-negative");
        assert!(
            self.receive_cost_seconds >= 0.0 && self.save_cost_seconds >= 0.0,
            "collector costs must be non-negative"
        );
        if !self.speeds.is_empty() {
            assert_eq!(
                self.speeds.len(),
                self.processors,
                "speeds must have one entry per processor"
            );
            assert!(
                self.speeds.iter().all(|s| *s > 0.0),
                "speed factors must be positive"
            );
        }
        if let ExchangePolicy::Periodic { period } = self.exchange {
            assert!(period > 0.0, "pass period must be positive");
        }
    }

    /// The speed factor of processor `m`.
    #[must_use]
    pub fn speed(&self, m: usize) -> f64 {
        if self.speeds.is_empty() {
            1.0
        } else {
            self.speeds[m]
        }
    }

    /// Duration of one realization on processor `m`.
    #[must_use]
    pub fn realization_duration(&self, m: usize) -> f64 {
        self.realization_seconds / self.speed(m)
    }

    /// Transfer time of one subtotal message.
    #[must_use]
    pub fn transfer_seconds(&self) -> f64 {
        self.latency_seconds + self.message_bytes / self.bandwidth_bytes_per_sec
    }

    /// Per-worker realization quota.
    ///
    /// [`QuotaMode::Uniform`]: the runner's rule, `L / M` plus one of
    /// the first `L mod M` remainders. [`QuotaMode::SpeedWeighted`]:
    /// proportional to `speed(m)`, with the rounding remainder assigned
    /// to the lowest ranks; quotas always sum exactly to `total`.
    #[must_use]
    pub fn quota(&self, m: usize, total: u64) -> u64 {
        match self.quota_mode {
            QuotaMode::Uniform => {
                let procs = self.processors as u64;
                total / procs + u64::from((m as u64) < total % procs)
            }
            QuotaMode::SpeedWeighted => {
                let total_speed: f64 = (0..self.processors).map(|i| self.speed(i)).sum();
                // Floor shares, then distribute the remainder.
                let share = |i: usize| (total as f64 * self.speed(i) / total_speed).floor() as u64;
                let assigned: u64 = (0..self.processors).map(share).sum();
                let remainder = total - assigned;
                share(m) + u64::from((m as u64) < remainder)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_numbers() {
        let c = ClusterConfig::paper_testbed(8);
        c.validate();
        assert_eq!(c.processors, 8);
        assert_eq!(c.realization_seconds, 7.7);
        // 120 KB over 1 Gbit/s ≈ 0.96 ms + 50 µs latency ≈ 1 ms.
        let t = c.transfer_seconds();
        assert!(t > 0.5e-3 && t < 2e-3, "transfer {t}");
        // Exchange cost per realization (~3 ms) << τ (7.7 s): the
        // precondition for the paper's linear-speedup claim.
        assert!(t + c.receive_cost_seconds < 0.01 * c.realization_seconds);
    }

    #[test]
    fn quotas_sum_to_total() {
        let c = ClusterConfig::paper_testbed(8);
        for total in [1u64, 7, 8, 1000, 1003] {
            let sum: u64 = (0..8).map(|m| c.quota(m, total)).sum();
            assert_eq!(sum, total);
        }
    }

    #[test]
    fn heterogeneous_speeds() {
        let mut c = ClusterConfig::paper_testbed(2);
        c.speeds = vec![1.0, 2.0];
        c.validate();
        assert_eq!(c.realization_duration(0), 7.7);
        assert_eq!(c.realization_duration(1), 3.85);
    }

    #[test]
    #[should_panic(expected = "one entry per processor")]
    fn wrong_speed_count_rejected() {
        let mut c = ClusterConfig::paper_testbed(4);
        c.speeds = vec![1.0];
        c.validate();
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_rejected() {
        let mut c = ClusterConfig::paper_testbed(1);
        c.processors = 0;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "pass period")]
    fn zero_period_rejected() {
        let mut c = ClusterConfig::paper_testbed(2);
        c.exchange = ExchangePolicy::Periodic { period: 0.0 };
        c.validate();
    }
}
