//! Hybrid (CPU + GPU) cluster modelling — the paper's stated future
//! direction ("it is desirable to adapt the PARMONC to modern powerful
//! GPU computer clusters and, also, to hybrid computer clusters",
//! Section 5).
//!
//! A hybrid machine is described as a list of [`NodeClass`]es with
//! per-class speed factors (a GPU node simulating realizations tens of
//! times faster than a CPU node). Two findings fall out of the model:
//!
//! 1. The paper's static *uniform* quota — optimal for homogeneous
//!    clusters and requiring "no load balancing techniques" — collapses
//!    on hybrid machines: every fast node idles while the slowest class
//!    finishes its equal share.
//! 2. Weighting the static quota by node speed
//!    ([`QuotaMode::SpeedWeighted`](crate::model::QuotaMode)) restores
//!    near-ideal efficiency with *no* dynamic load balancing, i.e. the
//!    PARMONC design carries over to hybrid clusters with a one-line
//!    scheduling change.

use crate::model::{ClusterConfig, QuotaMode};
use crate::sim::{simulate, SimResult};

/// A class of identical nodes within a hybrid cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeClass {
    /// How many processors of this class.
    pub count: usize,
    /// Speed factor relative to the baseline CPU node (a realization
    /// takes `τ / speed`).
    pub speed: f64,
}

impl NodeClass {
    /// Creates a node class.
    ///
    /// # Panics
    ///
    /// Panics unless `count > 0` and `speed > 0`.
    #[must_use]
    pub fn new(count: usize, speed: f64) -> Self {
        assert!(count > 0, "node class needs at least one node");
        assert!(speed > 0.0, "speed factor must be positive");
        Self { count, speed }
    }
}

/// Builds a cluster configuration from node classes (rank 0 belongs to
/// the *first* class).
///
/// # Panics
///
/// Panics if `classes` is empty.
#[must_use]
pub fn hybrid_config(classes: &[NodeClass], quota_mode: QuotaMode) -> ClusterConfig {
    assert!(!classes.is_empty(), "need at least one node class");
    let mut speeds = Vec::new();
    for class in classes {
        speeds.extend(std::iter::repeat_n(class.speed, class.count));
    }
    let mut config = ClusterConfig::paper_testbed(speeds.len());
    config.speeds = speeds;
    config.quota_mode = quota_mode;
    config
}

/// Outcome of the uniform-vs-weighted comparison on one hybrid
/// machine.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridComparison {
    /// Result with the paper's uniform quota.
    pub uniform: SimResult,
    /// Result with speed-weighted quotas.
    pub weighted: SimResult,
    /// Aggregate cluster speed (sum of factors) — the ideal-speedup
    /// denominator.
    pub total_speed: f64,
    /// `T_comp` of a single baseline node, for speedup computation.
    pub t_serial: f64,
}

impl HybridComparison {
    /// Speedup of the uniform-quota run over one baseline node.
    #[must_use]
    pub fn uniform_speedup(&self) -> f64 {
        self.t_serial / self.uniform.t_comp
    }

    /// Speedup of the weighted-quota run.
    #[must_use]
    pub fn weighted_speedup(&self) -> f64 {
        self.t_serial / self.weighted.t_comp
    }
}

/// Runs the comparison: `total` realizations on the hybrid machine
/// described by `classes`, under both quota modes.
#[must_use]
pub fn compare_quota_modes(classes: &[NodeClass], total: u64) -> HybridComparison {
    let uniform = simulate(&hybrid_config(classes, QuotaMode::Uniform), total);
    let weighted = simulate(&hybrid_config(classes, QuotaMode::SpeedWeighted), total);
    let total_speed = classes.iter().map(|c| c.count as f64 * c.speed).sum();
    let t_serial = simulate(&ClusterConfig::paper_testbed(1), total).t_comp;
    HybridComparison {
        uniform,
        weighted,
        total_speed,
        t_serial,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 8 CPU nodes + 8 GPU nodes 40x faster.
    fn cpu_gpu() -> Vec<NodeClass> {
        vec![NodeClass::new(8, 1.0), NodeClass::new(8, 40.0)]
    }

    #[test]
    fn hybrid_config_expands_classes() {
        let c = hybrid_config(&cpu_gpu(), QuotaMode::Uniform);
        assert_eq!(c.processors, 16);
        assert_eq!(c.speeds[..8], [1.0; 8]);
        assert_eq!(c.speeds[8..], [40.0; 8]);
        c.validate();
    }

    #[test]
    fn weighted_quotas_sum_and_favour_fast_nodes() {
        let c = hybrid_config(&cpu_gpu(), QuotaMode::SpeedWeighted);
        let total = 32_801u64;
        let sum: u64 = (0..16).map(|m| c.quota(m, total)).sum();
        assert_eq!(sum, total);
        // A GPU node gets ~40x the realizations of a CPU node.
        let cpu = c.quota(0, total) as f64;
        let gpu = c.quota(8, total) as f64;
        assert!((gpu / cpu - 40.0).abs() < 1.0, "cpu {cpu} gpu {gpu}");
    }

    #[test]
    fn uniform_quota_wastes_the_gpus() {
        let cmp = compare_quota_modes(&cpu_gpu(), 32_800);
        // Ideal speedup = total speed = 8 + 320 = 328. Uniform split
        // is limited by the CPU nodes finishing L/16 realizations:
        // speedup ≈ 16·harmonic... in fact ≈ M·(avg rate limited by
        // slowest) = 16.
        assert!(
            cmp.uniform_speedup() < 0.1 * cmp.total_speed,
            "uniform speedup {:.1} vs ideal {:.0}",
            cmp.uniform_speedup(),
            cmp.total_speed
        );
        // Weighted restores ≥ 90% of the ideal.
        assert!(
            cmp.weighted_speedup() > 0.9 * cmp.total_speed,
            "weighted speedup {:.1} vs ideal {:.0}",
            cmp.weighted_speedup(),
            cmp.total_speed
        );
    }

    #[test]
    fn homogeneous_cluster_is_indifferent_to_quota_mode() {
        let classes = vec![NodeClass::new(16, 1.0)];
        let cmp = compare_quota_modes(&classes, 16_000);
        let ratio = cmp.uniform.t_comp / cmp.weighted.t_comp;
        assert!((ratio - 1.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn estimator_volume_is_preserved_either_way() {
        for mode in [QuotaMode::Uniform, QuotaMode::SpeedWeighted] {
            let c = hybrid_config(&cpu_gpu(), mode);
            let r = simulate(&c, 10_007);
            assert_eq!(r.realizations, 10_007);
        }
    }

    #[test]
    #[should_panic(expected = "at least one node class")]
    fn rejects_empty_cluster() {
        let _ = hybrid_config(&[], QuotaMode::Uniform);
    }

    #[test]
    #[should_panic(expected = "speed factor")]
    fn rejects_zero_speed() {
        let _ = NodeClass::new(1, 0.0);
    }
}
