//! Run configuration: the arguments of `parmoncc`/`parmoncf`
//! (paper Section 3.2) plus the knobs this reproduction adds.

use std::path::{Path, PathBuf};
use std::time::Duration;

use parmonc_faults::FaultPlan;
use parmonc_ipc::ReconnectPolicy;
use parmonc_mpi::Topology;
use parmonc_rng::LeapConfig;

use crate::error::ParmoncError;

/// The resumption flag `res` of `parmoncc`/`parmoncf`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Resume {
    /// `res = 0`: a new simulation; brand-new result files are created.
    #[default]
    New,
    /// `res = 1`: resume the previous simulation; its results are loaded
    /// from the files and averaged in by formula (5). Requires a fresh
    /// `seqnum`.
    Resume,
}

/// Which substrate carries rank traffic.
///
/// All backends implement the same [`parmonc_mpi::Transport`] trait
/// and run the identical collector/worker code, so for a fixed
/// configuration and seed the estimates are bit-identical across
/// backends — only the isolation (and its costs) differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Transport {
    /// Ranks are OS threads in this process exchanging envelopes over
    /// channels (`parmonc-mpi`). The default: fastest, and the whole
    /// world shares one address space.
    #[default]
    Threads,
    /// Ranks are separate *processes*: rank 0 re-executes the current
    /// binary once per worker and exchanges the same length-prefixed
    /// envelopes over Unix-domain sockets (`parmonc-ipc`) — the
    /// paper's actual deployment shape, one address space per rank.
    ///
    /// The re-execution runs the user program's `main` again in every
    /// worker up to the `run()` call, where the runtime diverts into
    /// the worker loop; guard side effects before that call with
    /// [`crate::ipc::is_worker`].
    Processes,
    /// Ranks are remote *hosts*: rank 0 listens on a TCP address
    /// ([`ParmoncBuilder::listen`]) and workers started independently
    /// — typically on other machines — dial in with
    /// [`ParmoncBuilder::run_worker`], complete a versioned handshake
    /// (see `docs/wire-protocol.md`), and lease an untouched leapfrog
    /// stream range. Membership is elastic: workers may join mid-run,
    /// and because every rank's streams are fixed by `(seqnum, rank)`,
    /// the estimates stay bit-identical to a fixed-membership run.
    Tcp,
}

/// When workers ship subtotals to rank 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Exchange {
    /// Ship after every completed realization — the "strictest
    /// conditions" of the paper's performance test (Section 4).
    EveryRealization,
    /// Ship when `perpass` has elapsed since the last send (the normal
    /// production mode, Section 3.2).
    #[default]
    Periodic,
}

/// Validated run configuration. Build one with [`crate::Parmonc::builder`].
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Realization matrix rows (`nrow`).
    pub nrow: usize,
    /// Realization matrix columns (`ncol`).
    pub ncol: usize,
    /// Maximal total sample volume (`maxsv`).
    pub max_sample_volume: u64,
    /// Resumption flag (`res`).
    pub resume: Resume,
    /// The "experiments" subsequence number (`seqnum`).
    pub seqnum: u64,
    /// Number of processors `M` (ranks; rank 0 both simulates and
    /// collects, as in the paper's performance test).
    pub processors: usize,
    /// Period of data passing from workers (`perpass`). Ignored when
    /// `exchange` is [`Exchange::EveryRealization`].
    pub pass_period: Duration,
    /// Period of averaging/saving on rank 0 (`peraver`).
    pub averaging_period: Duration,
    /// Exchange mode.
    pub exchange: Exchange,
    /// Wall-clock budget, emulating the cluster job time limit; `None`
    /// means run until `max_sample_volume`.
    pub deadline: Option<Duration>,
    /// Stop early once `eps_max` (the largest absolute stochastic
    /// error over the matrix) falls to or below this target — the
    /// error control that Section 2.2 motivates periodic averaging
    /// with. `None` disables error-targeted stopping. Checked on
    /// rank 0 at every averaging point; workers are told to stop via a
    /// broadcast and still send their final subtotals.
    pub target_abs_error: Option<f64>,
    /// Root of the output tree; `parmonc_data/` is created inside.
    pub output_dir: PathBuf,
    /// Leap configuration (`genparam` override or default).
    pub leaps: LeapConfig,
    /// Whether `leaps` was set explicitly through the builder; when
    /// `false`, [`ParmoncBuilder::build`] consults
    /// `parmonc_genparam.dat` in the output directory, as the paper's
    /// routines do (Section 3.5).
    pub leaps_explicit: bool,
    /// Whether the run-monitor observability layer is on. A monitored
    /// run writes `parmonc_data/monitor/run_metrics.jsonl` (one JSON
    /// event per line; schema in `docs/observability.md`) and attaches
    /// a [`parmonc_obs::MonitorSummary`] to the report. Off by default;
    /// monitoring never changes the estimates.
    pub monitor: bool,
    /// Deterministic fault plan for chaos testing. Empty (the default)
    /// compiles to a zero-cost no-op handle; see `parmonc-faults` and
    /// `docs/fault-tolerance.md`.
    pub faults: FaultPlan,
    /// How often a worker sends a liveness heartbeat when it has not
    /// otherwise contacted the collector (checked between
    /// realizations).
    pub heartbeat_period: Duration,
    /// How long the collector waits without hearing from a worker
    /// before declaring it dead and reassigning its remaining budget.
    /// Must comfortably exceed both `heartbeat_period` and the longest
    /// single realization, or slow workers are declared dead falsely.
    pub liveness_timeout: Duration,
    /// If `true`, a detected worker loss aborts the run with
    /// [`ParmoncError::WorkerLost`] instead of degrading gracefully.
    pub fail_on_worker_loss: bool,
    /// Which substrate carries rank traffic (threads in-process,
    /// forked worker processes over Unix-domain sockets, or remote
    /// workers over TCP).
    pub transport: Transport,
    /// TCP backend, collector side: the address rank 0 listens on
    /// (e.g. `"0.0.0.0:7070"`; port 0 picks an ephemeral port, written
    /// to `parmonc_data/collector.addr`). Required when `transport` is
    /// [`Transport::Tcp`] and [`ParmoncBuilder::run`] is called.
    pub listen_addr: Option<String>,
    /// TCP backend, worker side: the collector address a
    /// [`ParmoncBuilder::run_worker`] call dials (e.g.
    /// `"collector.example:7070"`). Ignored by [`ParmoncBuilder::run`].
    pub join_addr: Option<String>,
    /// TCP backend: per-connection I/O timeout. Writes that stall this
    /// long fail the connection; the worker is then caught by the
    /// liveness plane. Reads are bounded by the liveness timeout
    /// instead (see `docs/wire-protocol.md`).
    pub tcp_io_timeout: Duration,
    /// TCP backend, worker side: the seeded backoff schedule for the
    /// initial dial and every automatic reconnect after a broken
    /// connection. Deterministic — jitter is drawn from a hash of
    /// `(rank, attempt)`, never the wall clock — so a scripted network
    /// fault replays the same recovery bit-identically. Tune with the
    /// `reconnect_*` builder methods; see `docs/cluster.md`.
    pub reconnect: ReconnectPolicy,
    /// TCP backend, collector side: `true` resumes a *crashed*
    /// collector session instead of starting a fresh one — the lease
    /// table and session epoch are reloaded from
    /// `parmonc_data/results/leases.dat`, rejoining workers keep their
    /// ranks and sequence dedup state, and accumulation restarts from
    /// the original baseline (the cumulative-subtotal discipline makes
    /// re-sent subtotals idempotent). Set via
    /// [`ParmoncBuilder::resume_listen`].
    pub resume_collector: bool,
    /// Arguments the process backend passes to the re-executed worker
    /// binary (excluding the program name; the hidden worker flag is
    /// appended automatically). `None` — the default — inherits this
    /// process's own arguments, which is right for CLI binaries; test
    /// harnesses set this to the filter that reaches the spawning test
    /// function. Ignored by the thread backend.
    pub worker_args: Option<Vec<String>>,
    /// Whether the run emits causal *spans* (`span_started`/
    /// `span_ended` events bracketing the implicit phases — stream
    /// positioning, realization batches, subtotal sends, collector
    /// merges, checkpoints, reconnects) into the monitor stream, for
    /// `parmonc-trace timeline` / `critical-path`. Requires
    /// [`RunConfig::monitor`]; off by default. Purely observational —
    /// spans never change the estimates — and deliberately *excluded*
    /// from [`RunConfig::wire_digest`], so a collector with spans on
    /// accepts workers that were built without the flag (they are told
    /// through the handshake grant instead).
    pub trace_spans: bool,
    /// The shape of the collection plane: [`Topology::Star`] (every
    /// worker reports straight to the collector — the default) or
    /// [`Topology::Tree`] (a k-ary reduction tree with relay ranks
    /// coalescing their subtree's envelopes). Part of
    /// [`RunConfig::wire_digest`] — star and tree workers must not mix
    /// in one world, or they would disagree about who their parent is.
    /// Estimates are bit-identical across topologies: relays forward
    /// raw subtotal bytes, never pre-merged floating-point state.
    pub topology: Topology,
    /// TCP backend, worker side: a deterministic offset (seconds) added
    /// to every local monitor timestamp *before* it leaves the worker —
    /// a test-only knob that emulates an unsynchronized host clock so
    /// the collector's clock-alignment plane can be exercised
    /// deterministically. The offset skews only the observability
    /// timestamps; seeds, payload math, and control flow are untouched,
    /// so estimates stay bit-identical. Excluded from
    /// [`RunConfig::wire_digest`]. Default `0.0`.
    pub clock_skew_s: f64,
}

impl RunConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ParmoncError::Config`] for zero dimensions, zero
    /// volume, zero processors, a processor count exceeding the leap
    /// capacity, or a seqnum exceeding the experiment capacity.
    pub fn validate(&self) -> Result<(), ParmoncError> {
        if self.nrow == 0 || self.ncol == 0 {
            return Err(ParmoncError::Config(format!(
                "matrix dimensions must be positive, got {}x{}",
                self.nrow, self.ncol
            )));
        }
        if self.max_sample_volume == 0 {
            return Err(ParmoncError::Config(
                "max_sample_volume must be positive".into(),
            ));
        }
        if self.processors == 0 {
            return Err(ParmoncError::Config("processors must be at least 1".into()));
        }
        if self.processors as u64 > self.leaps.processors() {
            return Err(ParmoncError::Config(format!(
                "{} processors exceed the leap capacity of {} per experiment",
                self.processors,
                self.leaps.processors()
            )));
        }
        if let Some(target) = self.target_abs_error {
            if target <= 0.0 || target.is_nan() {
                return Err(ParmoncError::Config(format!(
                    "target_abs_error must be positive, got {target}"
                )));
            }
        }
        if self.liveness_timeout <= self.heartbeat_period {
            return Err(ParmoncError::Config(format!(
                "liveness_timeout ({:?}) must exceed heartbeat_period ({:?}) or live workers are declared dead",
                self.liveness_timeout, self.heartbeat_period
            )));
        }
        if self.seqnum >= self.leaps.experiments() {
            return Err(ParmoncError::Config(format!(
                "seqnum {} exceeds the experiment capacity {}",
                self.seqnum,
                self.leaps.experiments()
            )));
        }
        if self.transport == Transport::Tcp && self.processors < 2 {
            return Err(ParmoncError::Config(
                "the TCP transport needs processors >= 2: rank 0 collects locally and every \
                 other rank is a lease for a remote worker"
                    .into(),
            ));
        }
        if self.transport != Transport::Tcp && self.listen_addr.is_some() {
            return Err(ParmoncError::Config(
                "listen_addr is only meaningful with the TCP transport".into(),
            ));
        }
        if self.resume_collector && self.transport != Transport::Tcp {
            return Err(ParmoncError::Config(
                "resume_listen is only meaningful with the TCP transport".into(),
            ));
        }
        if self.trace_spans && !self.monitor {
            return Err(ParmoncError::Config(
                "trace_spans requires the monitor: spans are monitor events, so call \
                 .monitor() as well"
                    .into(),
            ));
        }
        if !self.clock_skew_s.is_finite() {
            return Err(ParmoncError::Config(format!(
                "clock_skew_s must be finite, got {}",
                self.clock_skew_s
            )));
        }
        if self.reconnect.attempts == 0 {
            return Err(ParmoncError::Config(
                "reconnect_attempts must be at least 1 (the initial dial counts as an attempt)"
                    .into(),
            ));
        }
        if let Topology::Tree { arity } = self.topology {
            if arity == 0 {
                return Err(ParmoncError::Config(
                    "tree topology arity must be at least 1".into(),
                ));
            }
        }
        Ok(())
    }

    /// The parent/children assignment the configured topology induces
    /// over this run's ranks, rooted at the collector (rank 0).
    #[must_use]
    pub fn collection_plan(&self) -> parmonc_mpi::CollectionPlan {
        parmonc_mpi::CollectionPlan::new(self.topology, 0, self.processors)
    }

    /// Per-worker realization quota: worker `m` of `M` simulates
    /// `maxsv / M` realizations plus one of the first `maxsv % M`
    /// remainders — so the quotas sum exactly to `maxsv`.
    #[must_use]
    pub fn quota(&self, worker: usize) -> u64 {
        let m = self.processors as u64;
        let base = self.max_sample_volume / m;
        let extra = u64::from((worker as u64) < self.max_sample_volume % m);
        base + extra
    }

    /// Digest of every configuration field that determines the wire
    /// conversation and the estimate: the TCP handshake exchanges it so
    /// a worker started with a mismatched configuration (different
    /// matrix shape, volume, seed, world size, exchange mode, or leap
    /// parameters) is rejected instead of silently corrupting the
    /// stream bookkeeping. FNV-1a over the little-endian field bytes;
    /// see `docs/wire-protocol.md` for the exact layout.
    #[must_use]
    pub fn wire_digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(&(self.nrow as u64).to_le_bytes());
        eat(&(self.ncol as u64).to_le_bytes());
        eat(&self.max_sample_volume.to_le_bytes());
        eat(&self.seqnum.to_le_bytes());
        eat(&(self.processors as u64).to_le_bytes());
        eat(&[match self.exchange {
            Exchange::EveryRealization => 0,
            Exchange::Periodic => 1,
        }]);
        eat(&self.leaps.ne().to_le_bytes());
        eat(&self.leaps.np().to_le_bytes());
        eat(&self.leaps.nr().to_le_bytes());
        eat(&[self.topology.digest_tag()]);
        eat(&self.topology.digest_arity().to_le_bytes());
        h
    }
}

/// The TCP networking surface in one struct: address, role, timeouts,
/// and the reconnect schedule. Built with one of the role constructors
/// ([`NetOptions::listen`], [`NetOptions::join`],
/// [`NetOptions::resume_listen`]), refined with the chained setters,
/// and applied with [`ParmoncBuilder::net`] — which also selects
/// [`Transport::Tcp`]. This replaces the scattered `listen`/`join`/
/// `resume_listen`/`tcp_io_timeout`/`reconnect_*` builder setters, so
/// transport and topology configuration read as one surface.
///
/// ```
/// use std::time::Duration;
/// use parmonc::prelude::*;
/// use parmonc::NetOptions;
///
/// let cfg = Parmonc::builder(10, 2)
///     .max_sample_volume(1000)
///     .processors(4)
///     .net(
///         NetOptions::listen("127.0.0.1:0")
///             .io_timeout(Duration::from_secs(5))
///             .reconnect_attempts(20),
///     )
///     .build()
///     .unwrap();
/// assert_eq!(cfg.transport, Transport::Tcp);
/// assert_eq!(cfg.reconnect.attempts, 20);
/// ```
#[derive(Debug, Clone)]
pub struct NetOptions {
    /// Collector side: the address rank 0 listens on, e.g.
    /// `"0.0.0.0:7070"` (port 0 picks an ephemeral port, published in
    /// `parmonc_data/collector.addr`).
    pub listen_addr: Option<String>,
    /// Worker side: the collector address
    /// [`ParmoncBuilder::run_worker`] dials.
    pub join_addr: Option<String>,
    /// Collector side: resume a crashed collector session (lease table
    /// and epoch reloaded from `parmonc_data/results/leases.dat`).
    pub resume_collector: bool,
    /// Per-connection I/O timeout (default 10 s).
    pub io_timeout: Duration,
    /// The seeded backoff schedule for dials and reconnects.
    pub reconnect: ReconnectPolicy,
}

impl Default for NetOptions {
    fn default() -> Self {
        Self {
            listen_addr: None,
            join_addr: None,
            resume_collector: false,
            io_timeout: Duration::from_secs(10),
            reconnect: ReconnectPolicy::default(),
        }
    }
}

impl NetOptions {
    /// Collector role: listen on `addr` for dialing workers.
    #[must_use]
    pub fn listen(addr: impl Into<String>) -> Self {
        Self {
            listen_addr: Some(addr.into()),
            ..Self::default()
        }
    }

    /// Worker role: dial the collector at `addr` (consumed by
    /// [`ParmoncBuilder::run_worker`]).
    #[must_use]
    pub fn join(addr: impl Into<String>) -> Self {
        Self {
            join_addr: Some(addr.into()),
            ..Self::default()
        }
    }

    /// Collector role: resume a crashed collector session on `addr`
    /// (see [`RunConfig::resume_collector`] for the semantics).
    #[must_use]
    pub fn resume_listen(addr: impl Into<String>) -> Self {
        Self {
            listen_addr: Some(addr.into()),
            resume_collector: true,
            ..Self::default()
        }
    }

    /// Sets the per-connection I/O timeout. Writes that stall this
    /// long fail the connection and hand the worker to the liveness
    /// plane.
    #[must_use]
    pub fn io_timeout(mut self, timeout: Duration) -> Self {
        self.io_timeout = timeout;
        self
    }

    /// Replaces the whole reconnect schedule at once.
    #[must_use]
    pub fn reconnect(mut self, policy: ReconnectPolicy) -> Self {
        self.reconnect = policy;
        self
    }

    /// Sets the maximum dial attempts per (re)connection (default 10;
    /// must be at least 1 — the initial dial counts).
    #[must_use]
    pub fn reconnect_attempts(mut self, attempts: u32) -> Self {
        self.reconnect.attempts = attempts;
        self
    }

    /// Sets the delay before the second dial attempt (default 25 ms);
    /// it doubles per attempt up to the ceiling.
    #[must_use]
    pub fn reconnect_base_delay(mut self, delay: Duration) -> Self {
        self.reconnect.base_delay = delay;
        self
    }

    /// Sets the ceiling on the (pre-jitter) reconnect delay (default
    /// 1 s).
    #[must_use]
    pub fn reconnect_max_delay(mut self, delay: Duration) -> Self {
        self.reconnect.max_delay = delay;
        self
    }

    /// Sets the timeout for each individual dial attempt (default
    /// 2 s).
    #[must_use]
    pub fn reconnect_attempt_timeout(mut self, timeout: Duration) -> Self {
        self.reconnect.attempt_timeout = timeout;
        self
    }
}

/// Builder for a PARMONC run (C-BUILDER): configure, then
/// [`ParmoncBuilder::run`].
#[derive(Debug, Clone)]
pub struct ParmoncBuilder {
    config: RunConfig,
}

impl ParmoncBuilder {
    pub(crate) fn new(nrow: usize, ncol: usize) -> Self {
        Self {
            config: RunConfig {
                nrow,
                ncol,
                max_sample_volume: 1,
                resume: Resume::New,
                seqnum: 0,
                processors: 1,
                pass_period: Duration::from_secs(600),
                averaging_period: Duration::from_secs(1200),
                exchange: Exchange::Periodic,
                deadline: None,
                target_abs_error: None,
                output_dir: PathBuf::from("."),
                leaps: LeapConfig::default(),
                leaps_explicit: false,
                monitor: false,
                faults: FaultPlan::none(),
                heartbeat_period: Duration::from_millis(250),
                liveness_timeout: Duration::from_secs(30),
                fail_on_worker_loss: false,
                transport: Transport::Threads,
                listen_addr: None,
                join_addr: None,
                tcp_io_timeout: Duration::from_secs(10),
                reconnect: ReconnectPolicy::default(),
                resume_collector: false,
                worker_args: None,
                trace_spans: false,
                topology: Topology::Star,
                clock_skew_s: 0.0,
            },
        }
    }

    /// Sets `maxsv`, the maximal total sample volume.
    #[must_use]
    pub fn max_sample_volume(mut self, maxsv: u64) -> Self {
        self.config.max_sample_volume = maxsv;
        self
    }

    /// Sets the resumption flag `res`.
    #[must_use]
    pub fn resume(mut self, resume: Resume) -> Self {
        self.config.resume = resume;
        self
    }

    /// Sets `seqnum`, the "experiments" subsequence number.
    #[must_use]
    pub fn seqnum(mut self, seqnum: u64) -> Self {
        self.config.seqnum = seqnum;
        self
    }

    /// Sets the number of processors `M`.
    #[must_use]
    pub fn processors(mut self, m: usize) -> Self {
        self.config.processors = m;
        self
    }

    /// Sets `perpass`, the period of data passing.
    #[must_use]
    pub fn pass_period(mut self, period: Duration) -> Self {
        self.config.pass_period = period;
        self
    }

    /// Sets `peraver`, the period of averaging and saving.
    #[must_use]
    pub fn averaging_period(mut self, period: Duration) -> Self {
        self.config.averaging_period = period;
        self
    }

    /// Sets the exchange mode (periodic vs after every realization).
    #[must_use]
    pub fn exchange(mut self, exchange: Exchange) -> Self {
        self.config.exchange = exchange;
        self
    }

    /// Sets a wall-clock budget emulating the cluster job time limit.
    #[must_use]
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.config.deadline = Some(deadline);
        self
    }

    /// Stops the simulation early once the largest absolute stochastic
    /// error `eps_max` reaches `target` (error-controlled stopping,
    /// Section 2.2's motivation for periodic averaging).
    #[must_use]
    pub fn target_abs_error(mut self, target: f64) -> Self {
        self.config.target_abs_error = Some(target);
        self
    }

    /// Sets the output directory (where `parmonc_data/` is created).
    #[must_use]
    pub fn output_dir(mut self, dir: impl AsRef<Path>) -> Self {
        self.config.output_dir = dir.as_ref().to_path_buf();
        self
    }

    /// Enables the run monitor: the run writes its event trace to
    /// `parmonc_data/monitor/run_metrics.jsonl` and the report carries
    /// a [`parmonc_obs::MonitorSummary`]. Purely observational — the
    /// estimates are bitwise identical with the monitor on or off.
    #[must_use]
    pub fn monitor(mut self) -> Self {
        self.config.monitor = true;
        self
    }

    /// Enables causal span tracing: the run brackets its implicit
    /// phases (stream positioning, realization batches, subtotal
    /// sends, collector merges, checkpoints, reconnects) in
    /// `span_started`/`span_ended` events so `parmonc-trace timeline`
    /// and `parmonc-trace critical-path` can reconstruct where the
    /// wall time went. Implies nothing about the estimates — they are
    /// bitwise identical with spans on or off — but requires
    /// [`ParmoncBuilder::monitor`] (validated at build time).
    #[must_use]
    pub fn trace_spans(mut self) -> Self {
        self.config.trace_spans = true;
        self
    }

    /// Adds a deterministic offset (seconds) to this worker's monitor
    /// timestamps, emulating an unsynchronized host clock for testing
    /// the TCP clock-alignment plane. Only meaningful for
    /// [`ParmoncBuilder::run_worker`]; purely observational.
    #[must_use]
    pub fn clock_skew(mut self, skew_s: f64) -> Self {
        self.config.clock_skew_s = skew_s;
        self
    }

    /// Overrides the leap configuration explicitly, bypassing any
    /// `parmonc_genparam.dat` in the output directory.
    #[must_use]
    pub fn leaps(mut self, leaps: LeapConfig) -> Self {
        self.config.leaps = leaps;
        self.config.leaps_explicit = true;
        self
    }

    /// Attaches a deterministic fault plan for chaos testing. An empty
    /// plan is free; a non-empty one makes the run inject exactly the
    /// scripted faults (see `docs/fault-tolerance.md`).
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.config.faults = plan;
        self
    }

    /// Sets the worker heartbeat period (liveness signalling).
    #[must_use]
    pub fn heartbeat_period(mut self, period: Duration) -> Self {
        self.config.heartbeat_period = period;
        self
    }

    /// Sets how long the collector tolerates silence from a worker
    /// before declaring it dead. Must exceed the heartbeat period and
    /// the longest single realization.
    #[must_use]
    pub fn liveness_timeout(mut self, timeout: Duration) -> Self {
        self.config.liveness_timeout = timeout;
        self
    }

    /// Makes a detected worker loss fatal ([`ParmoncError::WorkerLost`])
    /// instead of triggering graceful degradation.
    #[must_use]
    pub fn fail_on_worker_loss(mut self) -> Self {
        self.config.fail_on_worker_loss = true;
        self
    }

    /// Selects the transport substrate: [`Transport::Threads`] (the
    /// default, in-process), [`Transport::Processes`] (forked worker
    /// processes over Unix-domain sockets), or [`Transport::Tcp`]
    /// (remote workers dialing in; see [`ParmoncBuilder::listen`]).
    /// Estimates are bit-identical across backends for the same
    /// configuration and seed.
    #[must_use]
    pub fn transport(mut self, transport: Transport) -> Self {
        self.config.transport = transport;
        self
    }

    /// Applies the whole TCP networking surface at once and selects
    /// [`Transport::Tcp`]: address and role, I/O timeout, reconnect
    /// schedule, and the resume flag. See [`NetOptions`] for the role
    /// constructors and an example.
    #[must_use]
    pub fn net(mut self, net: NetOptions) -> Self {
        self.config.transport = Transport::Tcp;
        self.config.listen_addr = net.listen_addr;
        self.config.join_addr = net.join_addr;
        self.config.resume_collector = net.resume_collector;
        self.config.tcp_io_timeout = net.io_timeout;
        self.config.reconnect = net.reconnect;
        self
    }

    /// Sets the collection topology: [`Topology::Star`] (the default)
    /// or [`Topology::Tree`] with the given arity. With a tree, the
    /// interior worker ranks act as *relays*: they absorb their
    /// children's subtotal envelopes and forward one coalesced batch
    /// per pass upstream, so the collector's per-pass receive cost is
    /// bounded by the arity instead of the worker count. Estimates are
    /// bit-identical across topologies. The shape is part of the
    /// handshake digest — all workers of a TCP run must configure the
    /// same topology.
    #[must_use]
    pub fn topology(mut self, topology: Topology) -> Self {
        self.config.topology = topology;
        self
    }

    /// Selects the TCP transport and sets the address rank 0 listens
    /// on, e.g. `"0.0.0.0:7070"`. Port 0 binds an ephemeral port; the
    /// actually bound address is written to
    /// `parmonc_data/collector.addr` so scripts can discover it. See
    /// `docs/cluster.md` for a multi-host walkthrough.
    #[deprecated(since = "0.2.0", note = "use `net(NetOptions::listen(addr))`")]
    #[must_use]
    pub fn listen(mut self, addr: impl Into<String>) -> Self {
        self.config.transport = Transport::Tcp;
        self.config.listen_addr = Some(addr.into());
        self
    }

    /// Selects the TCP transport and sets the collector address a
    /// worker dials, e.g. `"collector.example:7070"`. Only consumed by
    /// [`ParmoncBuilder::run_worker`]; [`ParmoncBuilder::run`] ignores
    /// it.
    #[deprecated(since = "0.2.0", note = "use `net(NetOptions::join(addr))`")]
    #[must_use]
    pub fn join(mut self, addr: impl Into<String>) -> Self {
        self.config.transport = Transport::Tcp;
        self.config.join_addr = Some(addr.into());
        self
    }

    /// Sets the TCP per-connection I/O timeout (default 10 s). Writes
    /// that stall this long fail the connection and hand the worker to
    /// the liveness plane.
    #[deprecated(since = "0.2.0", note = "use `NetOptions::io_timeout` via `net(..)`")]
    #[must_use]
    pub fn tcp_io_timeout(mut self, timeout: Duration) -> Self {
        self.config.tcp_io_timeout = timeout;
        self
    }

    /// Selects the TCP transport and *resumes* a crashed collector
    /// session on `addr` instead of starting a fresh one: the lease
    /// table and session epoch are reloaded from
    /// `parmonc_data/results/leases.dat` and accumulation restarts
    /// from the original baseline, so workers that survived the crash
    /// rejoin with their ranks intact and the run completes with
    /// bit-identical estimates. `addr` must be the address the crashed
    /// collector's workers are redialing (see `docs/cluster.md` for
    /// the restart runbook).
    ///
    /// # Errors (at run time)
    ///
    /// The run fails with [`ParmoncError::NothingToResume`] if no
    /// lease table or baseline from the crashed session exists in the
    /// output directory.
    #[deprecated(since = "0.2.0", note = "use `net(NetOptions::resume_listen(addr))`")]
    #[must_use]
    pub fn resume_listen(mut self, addr: impl Into<String>) -> Self {
        self.config.transport = Transport::Tcp;
        self.config.listen_addr = Some(addr.into());
        self.config.resume_collector = true;
        self
    }

    /// Sets the maximum TCP dial attempts per (re)connection (default
    /// 10; must be at least 1 — the initial dial counts).
    #[deprecated(
        since = "0.2.0",
        note = "use `NetOptions::reconnect_attempts` via `net(..)`"
    )]
    #[must_use]
    pub fn reconnect_attempts(mut self, attempts: u32) -> Self {
        self.config.reconnect.attempts = attempts;
        self
    }

    /// Sets the delay before the second dial attempt (default 25 ms);
    /// it doubles per attempt up to the ceiling.
    #[deprecated(
        since = "0.2.0",
        note = "use `NetOptions::reconnect_base_delay` via `net(..)`"
    )]
    #[must_use]
    pub fn reconnect_base_delay(mut self, delay: Duration) -> Self {
        self.config.reconnect.base_delay = delay;
        self
    }

    /// Sets the ceiling on the (pre-jitter) reconnect delay (default
    /// 1 s).
    #[deprecated(
        since = "0.2.0",
        note = "use `NetOptions::reconnect_max_delay` via `net(..)`"
    )]
    #[must_use]
    pub fn reconnect_max_delay(mut self, delay: Duration) -> Self {
        self.config.reconnect.max_delay = delay;
        self
    }

    /// Sets the timeout for each individual dial attempt (default 2 s).
    #[deprecated(
        since = "0.2.0",
        note = "use `NetOptions::reconnect_attempt_timeout` via `net(..)`"
    )]
    #[must_use]
    pub fn reconnect_attempt_timeout(mut self, timeout: Duration) -> Self {
        self.config.reconnect.attempt_timeout = timeout;
        self
    }

    /// Overrides the arguments the process backend passes to the
    /// re-executed worker binary (see [`RunConfig::worker_args`]).
    /// Needed inside test harnesses, where the workers must re-run the
    /// exact test function that spawned them.
    #[must_use]
    pub fn worker_args<I, S>(mut self, args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.config.worker_args = Some(args.into_iter().map(Into::into).collect());
        self
    }

    /// Finalizes the configuration without running (for inspection and
    /// tests).
    ///
    /// Unless [`ParmoncBuilder::leaps`] was called, this consults
    /// `parmonc_genparam.dat` in the output directory — the paper's
    /// lookup path for `genparam` overrides (Section 3.5).
    ///
    /// # Errors
    ///
    /// Returns [`ParmoncError::Config`] if validation fails or the
    /// genparam file is malformed.
    pub fn build(mut self) -> Result<RunConfig, ParmoncError> {
        if !self.config.leaps_explicit {
            self.config.leaps = crate::genparam::load_genparam(&self.config.output_dir)?;
        }
        self.config.validate()?;
        Ok(self.config)
    }

    /// Validates and runs the simulation with the user realization
    /// routine; equivalent to the `parmoncc` call of the paper.
    ///
    /// # Errors
    ///
    /// Propagates configuration, I/O, and transport errors.
    pub fn run<R>(self, realize: R) -> Result<crate::runner::RunReport, ParmoncError>
    where
        R: crate::realize::Realize + Sync,
    {
        crate::runner::run(self.build()?, realize)
    }

    /// Runs as a remote *worker* of a TCP run: dials the collector set
    /// with [`ParmoncBuilder::join`], leases a rank via the versioned
    /// handshake (`docs/wire-protocol.md`), simulates the granted
    /// leapfrog stream range with `realize`, and returns when the
    /// quota is done or the collector tells it to stop.
    ///
    /// The builder must be configured *identically* to the collector's
    /// (same matrix shape, volume, seed, processors, exchange mode, and
    /// leaps): the handshake exchanges a digest of those fields and the
    /// collector rejects a mismatch. See `docs/cluster.md` for the
    /// multi-host walkthrough.
    ///
    /// # Errors
    ///
    /// Propagates configuration and I/O errors; a collector rejection
    /// (wrong version, mismatched configuration, exhausted budget)
    /// surfaces as [`ParmoncError::Io`] with the collector's reason.
    pub fn run_worker<R>(self, realize: R) -> Result<(), ParmoncError>
    where
        R: crate::realize::Realize + Sync,
    {
        let config = self.build()?;
        crate::runner::run_tcp_worker(config, &realize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Parmonc;

    #[test]
    fn builder_defaults_mirror_paper() {
        let cfg = Parmonc::builder(10, 2)
            .max_sample_volume(100)
            .build()
            .unwrap();
        assert_eq!(cfg.nrow, 10);
        assert_eq!(cfg.ncol, 2);
        assert_eq!(cfg.resume, Resume::New);
        assert_eq!(cfg.exchange, Exchange::Periodic);
        assert_eq!(cfg.processors, 1);
        assert_eq!(cfg.leaps, LeapConfig::default());
    }

    #[test]
    fn rejects_zero_dimensions() {
        assert!(Parmonc::builder(0, 2).max_sample_volume(1).build().is_err());
        assert!(Parmonc::builder(2, 0).max_sample_volume(1).build().is_err());
    }

    #[test]
    fn rejects_zero_volume_and_processors() {
        assert!(Parmonc::builder(1, 1).max_sample_volume(0).build().is_err());
        assert!(Parmonc::builder(1, 1)
            .max_sample_volume(1)
            .processors(0)
            .build()
            .is_err());
    }

    #[test]
    fn rejects_seqnum_beyond_capacity() {
        let err = Parmonc::builder(1, 1)
            .max_sample_volume(1)
            .seqnum(1 << 10) // capacity is 2^10
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("seqnum"));
    }

    #[test]
    fn rejects_processor_count_beyond_capacity() {
        let tiny = LeapConfig::new(12, 8, 4).unwrap(); // 2^4 = 16 processors
        let err = Parmonc::builder(1, 1)
            .max_sample_volume(1)
            .leaps(tiny)
            .processors(17)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("capacity"));
    }

    #[test]
    fn build_picks_up_genparam_file() {
        let dir =
            std::env::temp_dir().join(format!("parmonc-config-genparam-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        crate::genparam::write_genparam(&dir, 105, 85, 42).unwrap();

        // Implicit: the file wins.
        let cfg = Parmonc::builder(1, 1)
            .max_sample_volume(10)
            .output_dir(&dir)
            .build()
            .unwrap();
        assert_eq!(
            (cfg.leaps.ne(), cfg.leaps.np(), cfg.leaps.nr()),
            (105, 85, 42)
        );

        // Explicit: the builder wins.
        let cfg = Parmonc::builder(1, 1)
            .max_sample_volume(10)
            .output_dir(&dir)
            .leaps(LeapConfig::default())
            .build()
            .unwrap();
        assert_eq!(cfg.leaps, LeapConfig::default());
    }

    #[test]
    fn rejects_liveness_timeout_not_exceeding_heartbeat() {
        let err = Parmonc::builder(1, 1)
            .max_sample_volume(1)
            .heartbeat_period(Duration::from_secs(5))
            .liveness_timeout(Duration::from_secs(5))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("liveness_timeout"));
    }

    #[test]
    fn fault_plan_defaults_to_empty() {
        let cfg = Parmonc::builder(1, 1).max_sample_volume(1).build().unwrap();
        assert!(cfg.faults.is_empty());
        assert!(!cfg.fail_on_worker_loss);
        let cfg = Parmonc::builder(1, 1)
            .max_sample_volume(1)
            .faults(parmonc_faults::FaultPlan::new(1).crash_rank(1, 5))
            .fail_on_worker_loss()
            .build()
            .unwrap();
        assert!(!cfg.faults.is_empty());
        assert!(cfg.fail_on_worker_loss);
    }

    #[test]
    fn reconnect_policy_is_tunable_and_validated() {
        let cfg = Parmonc::builder(1, 1)
            .max_sample_volume(10)
            .processors(2)
            .net(
                NetOptions::listen("127.0.0.1:0")
                    .reconnect_attempts(40)
                    .reconnect_base_delay(Duration::from_millis(5))
                    .reconnect_max_delay(Duration::from_millis(80))
                    .reconnect_attempt_timeout(Duration::from_secs(1)),
            )
            .build()
            .unwrap();
        assert_eq!(cfg.reconnect.attempts, 40);
        assert_eq!(cfg.reconnect.base_delay, Duration::from_millis(5));
        assert_eq!(cfg.reconnect.max_delay, Duration::from_millis(80));
        assert_eq!(cfg.reconnect.attempt_timeout, Duration::from_secs(1));

        let err = Parmonc::builder(1, 1)
            .max_sample_volume(10)
            .processors(2)
            .net(NetOptions::default().reconnect_attempts(0))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("reconnect_attempts"));
    }

    #[test]
    fn resume_listen_selects_tcp_and_flags_the_resume() {
        let cfg = Parmonc::builder(1, 1)
            .max_sample_volume(10)
            .processors(2)
            .net(NetOptions::resume_listen("127.0.0.1:7070"))
            .build()
            .unwrap();
        assert_eq!(cfg.transport, Transport::Tcp);
        assert_eq!(cfg.listen_addr.as_deref(), Some("127.0.0.1:7070"));
        assert!(cfg.resume_collector);
        // The default remains a fresh session.
        let cfg = Parmonc::builder(1, 1)
            .max_sample_volume(10)
            .build()
            .unwrap();
        assert!(!cfg.resume_collector);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_setters_still_configure_the_same_fields() {
        let cfg = Parmonc::builder(1, 1)
            .max_sample_volume(10)
            .processors(2)
            .listen("127.0.0.1:0")
            .tcp_io_timeout(Duration::from_secs(3))
            .reconnect_attempts(7)
            .build()
            .unwrap();
        assert_eq!(cfg.transport, Transport::Tcp);
        assert_eq!(cfg.listen_addr.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(cfg.tcp_io_timeout, Duration::from_secs(3));
        assert_eq!(cfg.reconnect.attempts, 7);
    }

    #[test]
    fn topology_is_validated_and_digested() {
        let star = Parmonc::builder(1, 1)
            .max_sample_volume(10)
            .processors(8)
            .build()
            .unwrap();
        assert_eq!(star.topology, Topology::Star);

        let tree = Parmonc::builder(1, 1)
            .max_sample_volume(10)
            .processors(8)
            .topology(Topology::Tree { arity: 2 })
            .build()
            .unwrap();
        assert_eq!(tree.topology, Topology::Tree { arity: 2 });
        // The shape is part of the handshake digest: a star worker must
        // not be admitted into a tree run (it would compute the wrong
        // parent for everyone).
        assert_ne!(star.wire_digest(), tree.wire_digest());
        let wider = Parmonc::builder(1, 1)
            .max_sample_volume(10)
            .processors(8)
            .topology(Topology::Tree { arity: 4 })
            .build()
            .unwrap();
        assert_ne!(tree.wire_digest(), wider.wire_digest());

        let plan = tree.collection_plan();
        assert_eq!(plan.root(), 0);
        assert_eq!(plan.size(), 8);
        assert!(plan.is_relay(1));

        let err = Parmonc::builder(1, 1)
            .max_sample_volume(10)
            .topology(Topology::Tree { arity: 0 })
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("arity"));
    }

    #[test]
    fn trace_spans_requires_monitor_and_skips_the_digest() {
        let err = Parmonc::builder(1, 1)
            .max_sample_volume(1)
            .trace_spans()
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("trace_spans"));

        let plain = Parmonc::builder(2, 3)
            .max_sample_volume(10)
            .processors(2)
            .build()
            .unwrap();
        let traced = Parmonc::builder(2, 3)
            .max_sample_volume(10)
            .processors(2)
            .monitor()
            .trace_spans()
            .clock_skew(1.5)
            .build()
            .unwrap();
        assert!(traced.trace_spans);
        assert_eq!(traced.clock_skew_s, 1.5);
        // Neither observability flag may perturb the handshake digest:
        // a worker built without them must still be admitted.
        assert_eq!(plain.wire_digest(), traced.wire_digest());

        let err = Parmonc::builder(1, 1)
            .max_sample_volume(1)
            .clock_skew(f64::NAN)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("clock_skew"));
    }

    #[test]
    fn quotas_sum_to_maxsv() {
        for (maxsv, m) in [(100u64, 8usize), (7, 3), (1, 4), (1000, 1), (13, 13)] {
            let cfg = Parmonc::builder(1, 1)
                .max_sample_volume(maxsv)
                .processors(m)
                .build()
                .unwrap();
            let total: u64 = (0..m).map(|w| cfg.quota(w)).sum();
            assert_eq!(total, maxsv, "maxsv={maxsv} m={m}");
            // Quotas are balanced within 1.
            let quotas: Vec<u64> = (0..m).map(|w| cfg.quota(w)).collect();
            let min = quotas.iter().min().unwrap();
            let max = quotas.iter().max().unwrap();
            assert!(max - min <= 1);
        }
    }
}
