//! The on-disk layout of simulation results (paper Section 3.6).
//!
//! When a job starts, PARMONC creates `parmonc_data/` in the user's
//! working directory:
//!
//! ```text
//! <output_dir>/parmonc_data/
//!     results/func.dat        matrix of sample means
//!     results/func_ci.dat     means + absolute/relative errors + variances
//!     results/func_log.dat    volume, mean time per realization, upper bounds
//!     results/checkpoint.dat  raw sums (exact resumption state)
//!     parmonc_exp.dat         journal of experiments started here
//!     workers/worker_NNNN.dat per-processor cumulative subtotals (manaver input)
//! ```
//!
//! `func*.dat` match the paper's files; `checkpoint.dat` holds the raw
//! `(Σζ, Σζ², l)` sums so `res = 1` resumption is exact rather than
//! reconstructed from rounded means, and `workers/` is what the
//! `manaver` command averages after an aborted job (Section 3.4).
//!
//! All writes go through a uniquely named temp file that is fsynced,
//! renamed into place, and followed by an fsync of the parent
//! directory — so a crash mid-write never corrupts a save-point and
//! two concurrent runs in one directory cannot collide on the temp
//! name. Checkpoint-format files additionally carry an FNV-1a 64
//! checksum + length footer; [`ResultsDir::load_checkpoint`] falls
//! back to the last-good `.bak` generation when the primary fails its
//! integrity check.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use parmonc_faults::{FaultHandle, IoFault};
use parmonc_stats::report::{self, LogReport};
use parmonc_stats::{MatrixAccumulator, MatrixSummary};

use crate::error::{IoContext, ParmoncError};
use crate::messages::Subtotal;

/// Name of the data directory created in the working directory.
pub const DATA_DIR: &str = "parmonc_data";

/// Distinguishes concurrent writers within one process so temp names
/// never collide (the process id distinguishes processes).
static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Handle to a `parmonc_data` directory tree.
#[derive(Debug, Clone)]
pub struct ResultsDir {
    root: PathBuf,
    /// Fault plane for I/O fault injection; disabled outside chaos
    /// tests.
    faults: FaultHandle,
}

impl PartialEq for ResultsDir {
    fn eq(&self, other: &Self) -> bool {
        // Identity is the directory; the fault plane is run plumbing.
        self.root == other.root
    }
}

impl Eq for ResultsDir {}

/// One line of the experiment journal `parmonc_exp.dat`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentRecord {
    /// The "experiments" subsequence number used.
    pub seqnum: u64,
    /// The `maxsv` of the run.
    pub max_sample_volume: u64,
    /// Processor count.
    pub processors: usize,
    /// Whether the run was a resumption.
    pub resumed: bool,
    /// Total sample volume already on disk when the run started.
    pub volume_before: u64,
}

impl ResultsDir {
    /// Creates (or opens) the `parmonc_data` tree under `output_dir`.
    ///
    /// # Errors
    ///
    /// Returns [`ParmoncError::Io`] if the directories cannot be
    /// created.
    pub fn create(output_dir: impl AsRef<Path>) -> Result<Self, ParmoncError> {
        let root = output_dir.as_ref().join(DATA_DIR);
        fs::create_dir_all(root.join("results"))
            .io_ctx(format!("creating {}", root.join("results").display()))?;
        fs::create_dir_all(root.join("workers"))
            .io_ctx(format!("creating {}", root.join("workers").display()))?;
        Ok(Self {
            root,
            faults: FaultHandle::disabled(),
        })
    }

    /// Opens an existing `parmonc_data` tree under `output_dir`.
    ///
    /// # Errors
    ///
    /// Returns [`ParmoncError::NothingToResume`] if the tree does not
    /// exist.
    pub fn open(output_dir: impl AsRef<Path>) -> Result<Self, ParmoncError> {
        let root = output_dir.as_ref().join(DATA_DIR);
        if !root.is_dir() {
            return Err(ParmoncError::NothingToResume { dir: root });
        }
        Ok(Self {
            root,
            faults: FaultHandle::disabled(),
        })
    }

    /// Attaches a fault plane so chaos tests can inject I/O faults
    /// (torn writes, bit flips, interrupts) into this directory's
    /// writes. The disabled handle (the default) costs one branch.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultHandle) -> Self {
        self.faults = faults;
        self
    }

    /// The root of the tree (`.../parmonc_data`).
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of `results/func.dat`.
    #[must_use]
    pub fn func_path(&self) -> PathBuf {
        self.root.join("results/func.dat")
    }

    /// Path of `results/func_ci.dat`.
    #[must_use]
    pub fn func_ci_path(&self) -> PathBuf {
        self.root.join("results/func_ci.dat")
    }

    /// Path of `results/func_log.dat`.
    #[must_use]
    pub fn func_log_path(&self) -> PathBuf {
        self.root.join("results/func_log.dat")
    }

    /// Path of `results/checkpoint.dat`.
    #[must_use]
    pub fn checkpoint_path(&self) -> PathBuf {
        self.root.join("results/checkpoint.dat")
    }

    /// Path of the last-good checkpoint generation
    /// (`results/checkpoint.dat.bak`), rotated on every
    /// [`ResultsDir::save_checkpoint`] and used as the fallback when
    /// the primary fails its integrity check.
    #[must_use]
    pub fn checkpoint_backup_path(&self) -> PathBuf {
        self.root.join("results/checkpoint.dat.bak")
    }

    /// Path of `results/baseline.dat` — the state carried over from
    /// completed previous runs, against which `manaver` re-averages the
    /// worker subtotals of a crashed job.
    #[must_use]
    pub fn baseline_path(&self) -> PathBuf {
        self.root.join("results/baseline.dat")
    }

    /// Path of the experiment journal `parmonc_exp.dat`.
    #[must_use]
    pub fn journal_path(&self) -> PathBuf {
        self.root.join("parmonc_exp.dat")
    }

    /// Path of the TCP collector's bound address file
    /// `collector.addr`, written when a run listens on an ephemeral
    /// port (port 0) so scripts can discover where to point
    /// `--join` workers.
    #[must_use]
    pub fn collector_addr_path(&self) -> PathBuf {
        self.root.join("collector.addr")
    }

    /// Records the TCP collector's actually bound address (one line).
    ///
    /// # Errors
    ///
    /// Returns [`ParmoncError::Io`] if the write fails.
    pub fn write_collector_addr(&self, addr: &str) -> Result<(), ParmoncError> {
        self.write_atomic(&self.collector_addr_path(), &format!("{addr}\n"))
    }

    /// Path of `results/leases.dat` — the TCP collector's persisted
    /// lease table (session epoch, per-rank lease/retire flags, and
    /// sequence-dedup watermarks), rewritten before every grant so a
    /// `resume_listen` restart recognizes every lease a worker holds.
    #[must_use]
    pub fn lease_table_path(&self) -> PathBuf {
        self.root.join("results/leases.dat")
    }

    /// Writes the TCP collector's encoded lease table.
    ///
    /// # Errors
    ///
    /// Returns [`ParmoncError::Io`] if the write fails.
    pub fn save_lease_table(&self, encoded: &str) -> Result<(), ParmoncError> {
        self.write_atomic(&self.lease_table_path(), encoded)
    }

    /// Loads the persisted lease table, or `None` if absent.
    ///
    /// # Errors
    ///
    /// Returns [`ParmoncError::Io`] if the file exists but cannot be
    /// read.
    pub fn load_lease_table(&self) -> Result<Option<String>, ParmoncError> {
        let path = self.lease_table_path();
        if !path.exists() {
            return Ok(None);
        }
        fs::read_to_string(&path)
            .map(Some)
            .io_ctx(format!("reading {}", path.display()))
    }

    /// Directory of run-monitor output (`monitor/`).
    #[must_use]
    pub fn monitor_dir(&self) -> PathBuf {
        self.root.join("monitor")
    }

    /// Path of the monitor event trace `monitor/run_metrics.jsonl`
    /// (one JSON event per line; schema in `docs/observability.md`).
    #[must_use]
    pub fn run_metrics_path(&self) -> PathBuf {
        self.monitor_dir().join("run_metrics.jsonl")
    }

    /// Path of the Prometheus text exposition `monitor/metrics.prom`,
    /// rewritten periodically by the metrics plane and rendered once
    /// more at exit.
    #[must_use]
    pub fn metrics_prom_path(&self) -> PathBuf {
        self.monitor_dir().join("metrics.prom")
    }

    /// Path of worker `m`'s subtotal file.
    #[must_use]
    pub fn worker_path(&self, worker: usize) -> PathBuf {
        self.root.join(format!("workers/worker_{worker:04}.dat"))
    }

    /// Atomically replaces `path` with `contents`: write a uniquely
    /// named temp file (pid + counter, so concurrent runs in one
    /// directory never collide), fsync it, rename it into place, and
    /// fsync the parent directory so the rename itself is durable.
    ///
    /// With an attached fault plane this is also where I/O faults are
    /// injected: an `Interrupted` write is retried (as callers of raw
    /// `write` must), a bit flip corrupts the contents in place, and a
    /// torn write leaves a truncated file at the final path — exactly
    /// the crash-mid-save the checksum footer exists to catch.
    fn write_atomic(&self, path: &Path, contents: &str) -> Result<(), ParmoncError> {
        let mut contents = std::borrow::Cow::Borrowed(contents.as_bytes());
        if self.faults.is_enabled() {
            let mut interrupts = 0u32;
            loop {
                match self.faults.on_write(path) {
                    None => break,
                    Some(IoFault::Interrupted) => {
                        // A real Interrupted write is transient; model
                        // the caller-visible retry, but never spin.
                        interrupts += 1;
                        if interrupts > 3 {
                            return Err(std::io::Error::from(std::io::ErrorKind::Interrupted))
                                .io_ctx(format!("writing {}", path.display()));
                        }
                    }
                    Some(IoFault::BitFlip) => {
                        let mut corrupted = contents.into_owned();
                        let _ = parmonc_faults::flip_one_bit(
                            path.as_os_str().len() as u64,
                            &mut corrupted,
                        );
                        contents = std::borrow::Cow::Owned(corrupted);
                        break;
                    }
                    Some(IoFault::TornWrite) => {
                        // Model a crash mid-save: a truncated file at
                        // the final path, bypassing the atomic rename.
                        let torn = &contents[..contents.len() / 2];
                        fs::write(path, torn).io_ctx(format!("writing {}", path.display()))?;
                        return Ok(());
                    }
                }
            }
        }
        let tmp = path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        {
            let mut f = fs::File::create(&tmp).io_ctx(format!("creating {}", tmp.display()))?;
            f.write_all(&contents)
                .io_ctx(format!("writing {}", tmp.display()))?;
            f.sync_all().io_ctx(format!("syncing {}", tmp.display()))?;
        }
        fs::rename(&tmp, path).io_ctx(format!("renaming into {}", path.display()))?;
        // Make the rename durable: fsync the parent directory. Some
        // platforms cannot open directories for syncing; that is not a
        // data-loss path, so only a failed sync of an opened dir is an
        // error.
        if let Some(parent) = path.parent() {
            if let Ok(dir) = fs::File::open(parent) {
                dir.sync_all()
                    .io_ctx(format!("syncing directory {}", parent.display()))?;
            }
        }
        Ok(())
    }

    /// Writes the three human-readable result files from a summary and
    /// run metadata.
    ///
    /// # Errors
    ///
    /// Returns [`ParmoncError::Io`] on write failure.
    pub fn save_results(
        &self,
        summary: &MatrixSummary,
        log: &LogReport,
    ) -> Result<(), ParmoncError> {
        self.write_atomic(&self.func_path(), &report::render_func(summary))?;
        self.write_atomic(&self.func_ci_path(), &report::render_func_ci(summary))?;
        self.write_atomic(&self.func_log_path(), &report::render_func_log(log))
    }

    /// Writes the exact resumption state (raw sums), first rotating
    /// the previous checkpoint to `.bak` so a torn write of the new
    /// generation can always fall back to the last good one.
    ///
    /// # Errors
    ///
    /// Returns [`ParmoncError::Io`] on write failure.
    pub fn save_checkpoint(&self, acc: &MatrixAccumulator) -> Result<(), ParmoncError> {
        let path = self.checkpoint_path();
        if path.exists() {
            let backup = self.checkpoint_backup_path();
            fs::rename(&path, &backup)
                .io_ctx(format!("rotating checkpoint to {}", backup.display()))?;
        }
        self.write_atomic(&path, &encode_checkpoint(acc, 0.0))
    }

    /// Loads the resumption state, or `None` if no checkpoint exists.
    /// A corrupt (torn, bit-flipped, unparseable) primary silently
    /// falls back to the last-good `.bak` generation; use
    /// [`ResultsDir::load_checkpoint_recovering`] to observe the
    /// fallback.
    ///
    /// # Errors
    ///
    /// Returns [`ParmoncError::CorruptCheckpoint`] when both the
    /// primary and the backup fail their integrity checks, or
    /// [`ParmoncError::Io`] for unreadable files.
    pub fn load_checkpoint(&self) -> Result<Option<MatrixAccumulator>, ParmoncError> {
        Ok(self.load_checkpoint_recovering()?.map(|(acc, _)| acc))
    }

    /// [`ResultsDir::load_checkpoint`], also reporting whether the
    /// state came from the `.bak` fallback (`true` = the primary was
    /// corrupt or missing and the last-good generation was used).
    ///
    /// # Errors
    ///
    /// As for [`ResultsDir::load_checkpoint`].
    pub fn load_checkpoint_recovering(
        &self,
    ) -> Result<Option<(MatrixAccumulator, bool)>, ParmoncError> {
        let primary = self.checkpoint_path();
        let backup = self.checkpoint_backup_path();
        match Self::load_acc_file(&primary) {
            Ok(Some(acc)) => Ok(Some((acc, false))),
            Ok(None) => match Self::load_acc_file(&backup)? {
                Some(acc) => Ok(Some((acc, true))),
                None => Ok(None),
            },
            Err(err @ ParmoncError::CorruptCheckpoint { .. }) => {
                match Self::load_acc_file(&backup) {
                    Ok(Some(acc)) => Ok(Some((acc, true))),
                    // No good backup: report the primary's corruption.
                    Ok(None) | Err(_) => Err(err),
                }
            }
            Err(e) => Err(e),
        }
    }

    /// Writes the baseline state (sums carried over from completed
    /// previous runs).
    ///
    /// # Errors
    ///
    /// Returns [`ParmoncError::Io`] on write failure.
    pub fn save_baseline(&self, acc: &MatrixAccumulator) -> Result<(), ParmoncError> {
        self.write_atomic(&self.baseline_path(), &encode_checkpoint(acc, 0.0))
    }

    /// Loads the baseline state, or `None` if absent.
    ///
    /// # Errors
    ///
    /// Returns [`ParmoncError::Parse`] / [`ParmoncError::Io`] as for
    /// [`ResultsDir::load_checkpoint`].
    pub fn load_baseline(&self) -> Result<Option<MatrixAccumulator>, ParmoncError> {
        Self::load_acc_file(&self.baseline_path())
    }

    fn load_acc_file(path: &Path) -> Result<Option<MatrixAccumulator>, ParmoncError> {
        if !path.exists() {
            return Ok(None);
        }
        let text = fs::read_to_string(path).io_ctx(format!("reading {}", path.display()))?;
        let (acc, _secs) = decode_checkpoint(&text, path)?;
        Ok(Some(acc))
    }

    /// Appends one record to the experiment journal.
    ///
    /// # Errors
    ///
    /// Returns [`ParmoncError::Io`] on write failure.
    pub fn append_experiment(&self, rec: &ExperimentRecord) -> Result<(), ParmoncError> {
        let line = format!(
            "seqnum={} maxsv={} processors={} res={} volume_before={}\n",
            rec.seqnum,
            rec.max_sample_volume,
            rec.processors,
            u8::from(rec.resumed),
            rec.volume_before
        );
        let path = self.journal_path();
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .io_ctx(format!("opening {}", path.display()))?;
        f.write_all(line.as_bytes())
            .io_ctx(format!("appending to {}", path.display()))
    }

    /// Reads the experiment journal (empty if none exists).
    ///
    /// # Errors
    ///
    /// Returns [`ParmoncError::Io`] for unreadable files; malformed
    /// lines are skipped (the journal is informational).
    pub fn read_experiments(&self) -> Result<Vec<ExperimentRecord>, ParmoncError> {
        let path = self.journal_path();
        if !path.exists() {
            return Ok(Vec::new());
        }
        let text = fs::read_to_string(&path).io_ctx(format!("reading {}", path.display()))?;
        let mut records = Vec::new();
        for line in text.lines() {
            let mut seqnum = None;
            let mut maxsv = None;
            let mut procs = None;
            let mut res = None;
            let mut before = None;
            for field in line.split_whitespace() {
                if let Some((k, v)) = field.split_once('=') {
                    match k {
                        "seqnum" => seqnum = v.parse().ok(),
                        "maxsv" => maxsv = v.parse().ok(),
                        "processors" => procs = v.parse().ok(),
                        "res" => res = v.parse::<u8>().ok(),
                        "volume_before" => before = v.parse().ok(),
                        _ => {}
                    }
                }
            }
            if let (Some(seqnum), Some(maxsv), Some(procs), Some(res), Some(before)) =
                (seqnum, maxsv, procs, res, before)
            {
                records.push(ExperimentRecord {
                    seqnum,
                    max_sample_volume: maxsv,
                    processors: procs,
                    resumed: res != 0,
                    volume_before: before,
                });
            }
        }
        Ok(records)
    }

    /// Writes worker `m`'s cumulative subtotal (the `manaver` input).
    ///
    /// # Errors
    ///
    /// Returns [`ParmoncError::Io`] on write failure.
    pub fn save_worker_subtotal(
        &self,
        worker: usize,
        subtotal: &Subtotal,
    ) -> Result<(), ParmoncError> {
        self.save_worker_state(worker, &subtotal.acc, subtotal.compute_seconds)
    }

    /// [`ResultsDir::save_worker_subtotal`] from borrowed accumulator
    /// state — lets the simulation loop checkpoint its running
    /// accumulator without cloning it into a [`Subtotal`] first.
    ///
    /// # Errors
    ///
    /// Returns [`ParmoncError::Io`] on write failure.
    pub fn save_worker_state(
        &self,
        worker: usize,
        acc: &MatrixAccumulator,
        compute_seconds: f64,
    ) -> Result<(), ParmoncError> {
        self.write_atomic(
            &self.worker_path(worker),
            &encode_checkpoint(acc, compute_seconds),
        )
    }

    /// Loads every worker subtotal present on disk, sorted by worker
    /// index.
    ///
    /// # Errors
    ///
    /// Returns [`ParmoncError::Io`] / [`ParmoncError::Parse`] on
    /// unreadable or corrupt files.
    pub fn load_worker_subtotals(&self) -> Result<Vec<(usize, Subtotal)>, ParmoncError> {
        let dir = self.root.join("workers");
        let mut out = Vec::new();
        let entries = fs::read_dir(&dir).io_ctx(format!("listing {}", dir.display()))?;
        for entry in entries {
            let entry = entry.io_ctx("reading directory entry")?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let Some(idx) = name
                .strip_prefix("worker_")
                .and_then(|s| s.strip_suffix(".dat"))
                .and_then(|s| s.parse::<usize>().ok())
            else {
                continue;
            };
            let path = entry.path();
            let text = fs::read_to_string(&path).io_ctx(format!("reading {}", path.display()))?;
            let (acc, compute_seconds) = decode_checkpoint(&text, &path)?;
            out.push((
                idx,
                Subtotal {
                    acc,
                    compute_seconds,
                },
            ));
        }
        out.sort_by_key(|(idx, _)| *idx);
        Ok(out)
    }

    /// Removes all worker subtotal files (done when a run completes
    /// cleanly and they are folded into the checkpoint).
    ///
    /// # Errors
    ///
    /// Returns [`ParmoncError::Io`] on removal failure.
    pub fn clear_worker_subtotals(&self) -> Result<(), ParmoncError> {
        let dir = self.root.join("workers");
        let entries = fs::read_dir(&dir).io_ctx(format!("listing {}", dir.display()))?;
        for entry in entries {
            let entry = entry.io_ctx("reading directory entry")?;
            fs::remove_file(entry.path()).io_ctx(format!("removing {}", entry.path().display()))?;
        }
        Ok(())
    }
}

/// FNV-1a 64-bit hash — the checkpoint integrity checksum. Hand-rolled
/// (8 lines) to keep the workspace dependency-free.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Encodes an accumulator (plus compute seconds) as the checkpoint /
/// worker-file text format:
///
/// ```text
/// nrow ncol count compute_seconds
/// sum sum_sq          (one line per matrix entry, row-major)
/// # fnv64 <16-hex checksum> len <body bytes>
/// ```
///
/// The footer line covers every byte before it; a torn write truncates
/// it (length mismatch or missing footer) and a bit flip breaks the
/// checksum, so [`decode_checkpoint`] detects both.
fn encode_checkpoint(acc: &MatrixAccumulator, compute_seconds: f64) -> String {
    let (nrow, ncol) = acc.shape();
    let mut out = format!(
        "{} {} {} {:.16e}\n",
        nrow,
        ncol,
        acc.count(),
        compute_seconds
    );
    for (s, q) in acc.sums().iter().zip(acc.sums_sq()) {
        out.push_str(&format!("{s:.16e} {q:.16e}\n"));
    }
    let footer = format!(
        "# fnv64 {:016x} len {}\n",
        fnv1a64(out.as_bytes()),
        out.len()
    );
    out.push_str(&footer);
    out
}

/// Decodes the checkpoint text format, verifying and stripping the
/// integrity footer first. Every failure — missing or malformed
/// footer, checksum or length mismatch, unparseable body — is a
/// [`ParmoncError::CorruptCheckpoint`] naming `path` and the reason.
fn decode_checkpoint(text: &str, path: &Path) -> Result<(MatrixAccumulator, f64), ParmoncError> {
    let corrupt = |reason: String| ParmoncError::CorruptCheckpoint {
        path: path.to_path_buf(),
        reason,
    };

    // Verify and strip the footer: it must be the final line and cover
    // exactly the bytes before it.
    let body_start = text
        .rfind("# fnv64 ")
        .ok_or_else(|| corrupt("missing integrity footer".into()))?;
    if body_start != 0 && !text[..body_start].ends_with('\n') {
        return Err(corrupt("integrity footer is not on its own line".into()));
    }
    let footer = text[body_start..].trim_end();
    let body = &text[..body_start];
    let fields: Vec<&str> = footer.split_whitespace().collect();
    if fields.len() != 5 || fields[0] != "#" || fields[1] != "fnv64" || fields[3] != "len" {
        return Err(corrupt(format!("malformed integrity footer {footer:?}")));
    }
    let expected_sum = u64::from_str_radix(fields[2], 16)
        .map_err(|_| corrupt(format!("bad checksum token {:?}", fields[2])))?;
    let expected_len: usize = fields[4]
        .parse()
        .map_err(|_| corrupt(format!("bad length token {:?}", fields[4])))?;
    if body.len() != expected_len {
        return Err(corrupt(format!(
            "length mismatch: footer says {expected_len} bytes, found {} (torn write?)",
            body.len()
        )));
    }
    let actual_sum = fnv1a64(body.as_bytes());
    if actual_sum != expected_sum {
        return Err(corrupt(format!(
            "fnv64 mismatch: footer says {expected_sum:016x}, contents hash to {actual_sum:016x}"
        )));
    }

    let mut lines = body.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| corrupt("empty body".into()))?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() != 4 {
        return Err(corrupt(format!(
            "header must have 4 fields, got {}",
            fields.len()
        )));
    }
    let bad = |line: usize, token: &str| corrupt(format!("bad number {token:?} on line {line}"));
    let nrow: usize = fields[0].parse().map_err(|_| bad(1, fields[0]))?;
    let ncol: usize = fields[1].parse().map_err(|_| bad(1, fields[1]))?;
    let count: u64 = fields[2].parse().map_err(|_| bad(1, fields[2]))?;
    let secs: f64 = fields[3].parse().map_err(|_| bad(1, fields[3]))?;

    let mut sums = Vec::with_capacity(nrow * ncol);
    let mut sums_sq = Vec::with_capacity(nrow * ncol);
    for (lineno, line) in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 2 {
            return Err(corrupt(format!(
                "data line {} must have 2 fields, got {}",
                lineno + 1,
                fields.len()
            )));
        }
        sums.push(
            fields[0]
                .parse::<f64>()
                .map_err(|_| bad(lineno + 1, fields[0]))?,
        );
        sums_sq.push(
            fields[1]
                .parse::<f64>()
                .map_err(|_| bad(lineno + 1, fields[1]))?,
        );
    }
    let acc = MatrixAccumulator::from_parts(nrow, ncol, sums, sums_sq, count)
        .map_err(|e| corrupt(format!("inconsistent contents: {e}")))?;
    Ok((acc, secs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("parmonc-files-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_acc() -> MatrixAccumulator {
        let mut acc = MatrixAccumulator::new(2, 3).unwrap();
        acc.add(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        acc.add(&[0.5, -1.5, 2.5, 0.0, 1e-9, 1e9]).unwrap();
        acc
    }

    #[test]
    fn create_builds_tree() {
        let dir = tempdir("create");
        let rd = ResultsDir::create(&dir).unwrap();
        assert!(rd.root().is_dir());
        assert!(rd.root().join("results").is_dir());
        assert!(rd.root().join("workers").is_dir());
        // Creating again is idempotent.
        ResultsDir::create(&dir).unwrap();
    }

    #[test]
    fn open_missing_reports_nothing_to_resume() {
        let dir = tempdir("open-missing");
        let err = ResultsDir::open(dir.join("nope")).unwrap_err();
        assert!(matches!(err, ParmoncError::NothingToResume { .. }));
    }

    #[test]
    fn lease_table_round_trips_and_is_optional() {
        let dir = tempdir("leases");
        let rd = ResultsDir::create(&dir).unwrap();
        assert!(rd.load_lease_table().unwrap().is_none());
        let encoded = "parmonc-leases v1\nepoch 00000000deadbeef\nsize 2\nrank 1 1 0 7\n";
        rd.save_lease_table(encoded).unwrap();
        assert_eq!(rd.load_lease_table().unwrap().as_deref(), Some(encoded));
    }

    #[test]
    fn checkpoint_round_trip_is_exact() {
        let dir = tempdir("ckpt");
        let rd = ResultsDir::create(&dir).unwrap();
        assert!(rd.load_checkpoint().unwrap().is_none());
        let acc = sample_acc();
        rd.save_checkpoint(&acc).unwrap();
        let loaded = rd.load_checkpoint().unwrap().unwrap();
        assert_eq!(loaded.shape(), acc.shape());
        assert_eq!(loaded.count(), acc.count());
        // Bitwise equality: checkpoints must be exact for resumption.
        for (a, b) in loaded.sums().iter().zip(acc.sums()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in loaded.sums_sq().iter().zip(acc.sums_sq()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn results_files_written_and_parseable() {
        let dir = tempdir("results");
        let rd = ResultsDir::create(&dir).unwrap();
        let summary = sample_acc().summary();
        let log = LogReport {
            sample_volume: 2,
            mean_time_per_realization: 0.5,
            eps_max: summary.eps_max,
            rho_max: summary.rho_max,
            sigma2_max: summary.sigma2_max,
            processors: 4,
            seqnum: 1,
        };
        rd.save_results(&summary, &log).unwrap();
        let func = fs::read_to_string(rd.func_path()).unwrap();
        let (nrow, ncol, means) = report::parse_func(&func).unwrap();
        assert_eq!((nrow, ncol), (2, 3));
        assert_eq!(means, summary.means);
        let parsed_log =
            report::parse_func_log(&fs::read_to_string(rd.func_log_path()).unwrap()).unwrap();
        assert_eq!(parsed_log, log);
        let ci = fs::read_to_string(rd.func_ci_path()).unwrap();
        assert_eq!(report::parse_func_ci(&ci).unwrap().len(), 6);
    }

    #[test]
    fn journal_append_and_read() {
        let dir = tempdir("journal");
        let rd = ResultsDir::create(&dir).unwrap();
        assert!(rd.read_experiments().unwrap().is_empty());
        let rec1 = ExperimentRecord {
            seqnum: 0,
            max_sample_volume: 100,
            processors: 4,
            resumed: false,
            volume_before: 0,
        };
        let rec2 = ExperimentRecord {
            seqnum: 2,
            max_sample_volume: 200,
            processors: 8,
            resumed: true,
            volume_before: 100,
        };
        rd.append_experiment(&rec1).unwrap();
        rd.append_experiment(&rec2).unwrap();
        assert_eq!(rd.read_experiments().unwrap(), vec![rec1, rec2]);
    }

    #[test]
    fn worker_subtotals_round_trip_and_clear() {
        let dir = tempdir("workers");
        let rd = ResultsDir::create(&dir).unwrap();
        let sub = Subtotal {
            acc: sample_acc(),
            compute_seconds: 3.25,
        };
        rd.save_worker_subtotal(3, &sub).unwrap();
        rd.save_worker_subtotal(1, &sub).unwrap();
        let loaded = rd.load_worker_subtotals().unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].0, 1); // sorted
        assert_eq!(loaded[1].0, 3);
        assert_eq!(loaded[0].1.compute_seconds, 3.25);
        assert_eq!(loaded[0].1.acc.count(), 2);
        rd.clear_worker_subtotals().unwrap();
        assert!(rd.load_worker_subtotals().unwrap().is_empty());
    }

    #[test]
    fn corrupt_checkpoint_without_backup_errors() {
        let dir = tempdir("corrupt");
        let rd = ResultsDir::create(&dir).unwrap();
        fs::write(rd.checkpoint_path(), "2 3 nonsense 0.0\n").unwrap();
        let err = rd.load_checkpoint().unwrap_err();
        assert!(matches!(err, ParmoncError::CorruptCheckpoint { .. }));
        assert!(err.to_string().contains("checkpoint.dat"));
    }

    #[test]
    fn footer_detects_truncation_and_bit_flips() {
        let acc = sample_acc();
        let good = encode_checkpoint(&acc, 2.0);
        decode_checkpoint(&good, Path::new("t.dat")).unwrap();

        // Torn write: a prefix that loses data must be rejected. (Losing
        // only the final newline keeps body and footer intact, so that
        // single case legitimately still decodes.)
        for cut in [0, 1, good.len() / 2, good.len() - 2] {
            let err = decode_checkpoint(&good[..cut], Path::new("t.dat")).unwrap_err();
            assert!(
                matches!(err, ParmoncError::CorruptCheckpoint { .. }),
                "prefix of {cut} bytes must be corrupt"
            );
        }

        // Bit flip in the body: checksum mismatch.
        let mut bytes = good.clone().into_bytes();
        bytes[4] ^= 0x01;
        if let Ok(flipped) = String::from_utf8(bytes) {
            let err = decode_checkpoint(&flipped, Path::new("t.dat")).unwrap_err();
            assert!(matches!(err, ParmoncError::CorruptCheckpoint { .. }));
        }
    }

    #[test]
    fn save_checkpoint_rotates_a_backup_generation() {
        let dir = tempdir("rotate");
        let rd = ResultsDir::create(&dir).unwrap();
        let mut acc = MatrixAccumulator::new(1, 1).unwrap();
        acc.add(&[1.0]).unwrap();
        rd.save_checkpoint(&acc).unwrap();
        assert!(!rd.checkpoint_backup_path().exists());
        acc.add(&[2.0]).unwrap();
        rd.save_checkpoint(&acc).unwrap();
        assert!(rd.checkpoint_backup_path().exists());
        // The backup holds the previous generation.
        let text = fs::read_to_string(rd.checkpoint_backup_path()).unwrap();
        let (old, _) = decode_checkpoint(&text, &rd.checkpoint_backup_path()).unwrap();
        assert_eq!(old.count(), 1);
    }

    #[test]
    fn load_checkpoint_recovers_from_backup_when_primary_is_torn() {
        let dir = tempdir("recover");
        let rd = ResultsDir::create(&dir).unwrap();
        let mut acc = MatrixAccumulator::new(1, 1).unwrap();
        acc.add(&[1.0]).unwrap();
        rd.save_checkpoint(&acc).unwrap();
        acc.add(&[2.0]).unwrap();
        rd.save_checkpoint(&acc).unwrap();
        // Tear the primary: keep only the first half of its bytes.
        let full = fs::read_to_string(rd.checkpoint_path()).unwrap();
        fs::write(rd.checkpoint_path(), &full[..full.len() / 2]).unwrap();

        let (recovered, used_backup) = rd.load_checkpoint_recovering().unwrap().unwrap();
        assert!(used_backup);
        assert_eq!(recovered.count(), 1); // last-good generation

        // The plain loader takes the same fallback silently.
        let loaded = rd.load_checkpoint().unwrap().unwrap();
        assert_eq!(loaded.count(), 1);
    }

    #[test]
    fn torn_write_fault_is_caught_on_load() {
        use parmonc_faults::FaultPlan;
        let dir = tempdir("torn-fault");
        let plan = FaultPlan::new(7).torn_write("checkpoint.dat", 0);
        let rd = ResultsDir::create(&dir).unwrap().with_faults(plan.build());
        let mut acc = MatrixAccumulator::new(1, 1).unwrap();
        acc.add(&[1.0]).unwrap();
        // The torn write reports success — the damage is only visible
        // on load, which is exactly what the footer is for.
        rd.save_checkpoint(&acc).unwrap();
        let err = rd.load_checkpoint().unwrap_err();
        assert!(matches!(err, ParmoncError::CorruptCheckpoint { .. }));
    }

    #[test]
    fn bit_flip_fault_is_caught_on_load() {
        use parmonc_faults::FaultPlan;
        let dir = tempdir("flip-fault");
        let plan = FaultPlan::new(11).bit_flip_write("checkpoint.dat", 0);
        let rd = ResultsDir::create(&dir).unwrap().with_faults(plan.build());
        let mut acc = MatrixAccumulator::new(1, 1).unwrap();
        acc.add(&[1.0]).unwrap();
        rd.save_checkpoint(&acc).unwrap();
        let err = rd.load_checkpoint().unwrap_err();
        assert!(matches!(err, ParmoncError::CorruptCheckpoint { .. }));
    }

    #[test]
    fn interrupted_write_is_retried_transparently() {
        use parmonc_faults::FaultPlan;
        let dir = tempdir("eintr-fault");
        let plan = FaultPlan::new(13).interrupt_write("checkpoint.dat", 0);
        let rd = ResultsDir::create(&dir).unwrap().with_faults(plan.build());
        let mut acc = MatrixAccumulator::new(1, 1).unwrap();
        acc.add(&[1.0]).unwrap();
        rd.save_checkpoint(&acc).unwrap();
        assert_eq!(rd.load_checkpoint().unwrap().unwrap().count(), 1);
    }

    #[test]
    fn checkpoint_text_codec_is_bitwise_for_arbitrary_floats() {
        use parmonc_testkit::prelude::*;
        let mut runner = parmonc_testkit::TestRunner::default();
        runner
            .run(
                &(
                    collection::vec(any::<f64>(), 6),
                    collection::vec(any::<f64>(), 6),
                    any::<u64>(),
                ),
                |(sums, sums_sq, count)| {
                    // NaN payloads don't round-trip equality; keep finite
                    // and infinite values, which is what accumulators hold.
                    let clean = |v: &Vec<f64>| -> Vec<f64> {
                        v.iter()
                            .map(|x| if x.is_nan() { 0.0 } else { *x })
                            .collect()
                    };
                    let sums = clean(&sums);
                    let sums_sq = clean(&sums_sq);
                    let acc =
                        MatrixAccumulator::from_parts(2, 3, sums.clone(), sums_sq.clone(), count)
                            .unwrap();
                    let text = encode_checkpoint(&acc, 1.25);
                    let (decoded, secs) = decode_checkpoint(&text, Path::new("prop.dat")).unwrap();
                    prop_assert_eq!(decoded.count(), count);
                    prop_assert_eq!(secs, 1.25);
                    for (a, b) in decoded.sums().iter().zip(&sums) {
                        prop_assert_eq!(a.to_bits(), b.to_bits());
                    }
                    for (a, b) in decoded.sums_sq().iter().zip(&sums_sq) {
                        prop_assert_eq!(a.to_bits(), b.to_bits());
                    }
                    Ok(())
                },
            )
            .unwrap();
    }

    #[test]
    fn overwriting_checkpoint_keeps_latest() {
        let dir = tempdir("overwrite");
        let rd = ResultsDir::create(&dir).unwrap();
        let mut acc = MatrixAccumulator::new(1, 1).unwrap();
        acc.add(&[1.0]).unwrap();
        rd.save_checkpoint(&acc).unwrap();
        acc.add(&[2.0]).unwrap();
        rd.save_checkpoint(&acc).unwrap();
        let loaded = rd.load_checkpoint().unwrap().unwrap();
        assert_eq!(loaded.count(), 2);
    }
}
