//! The `manaver` command (paper Section 3.4): manual averaging of the
//! subtotal sample moments left on disk by a terminated job.
//!
//! When a cluster job is killed, the last periodic save-point on rank 0
//! may lag behind what the workers actually simulated — but each worker
//! kept rewriting its own cumulative subtotal file. `manaver` merges the
//! baseline (results of completed previous runs) with every worker
//! subtotal file, rewrites `func.dat`/`func_ci.dat`/`func_log.dat` and
//! the checkpoint, and removes the worker files.

use std::path::Path;

use parmonc_stats::report::LogReport;
use parmonc_stats::{MatrixAccumulator, MatrixSummary};

use crate::error::ParmoncError;
use crate::files::ResultsDir;

/// Outcome of a manual averaging pass.
#[derive(Debug)]
pub struct ManaverReport {
    /// The averaged estimates after folding in the worker subtotals.
    pub summary: MatrixSummary,
    /// Total sample volume after averaging.
    pub total_volume: u64,
    /// Volume recovered from worker files (beyond the baseline).
    pub recovered_volume: u64,
    /// Number of worker files folded in.
    pub workers_found: usize,
}

/// Runs manual averaging in `output_dir` (which must contain
/// `parmonc_data/`).
///
/// # Errors
///
/// * [`ParmoncError::NothingToResume`] — no `parmonc_data` directory;
/// * [`ParmoncError::NoWorkerData`] — no worker subtotal files to fold
///   in;
/// * I/O, parse and shape errors from the files layer.
pub fn manaver(output_dir: impl AsRef<Path>) -> Result<ManaverReport, ParmoncError> {
    let dir = ResultsDir::open(output_dir)?;
    let subtotals = dir.load_worker_subtotals()?;
    if subtotals.is_empty() {
        return Err(ParmoncError::NoWorkerData {
            dir: dir.root().to_path_buf(),
        });
    }

    let (_, first) = &subtotals[0];
    let shape = first.acc.shape();
    let mut total = match dir.load_baseline()? {
        Some(baseline) => {
            if baseline.shape() != shape {
                return Err(ParmoncError::ResumeShapeMismatch {
                    on_disk: baseline.shape(),
                    requested: shape,
                });
            }
            baseline
        }
        None => MatrixAccumulator::new(shape.0, shape.1)?,
    };
    let baseline_volume = total.count();

    let mut compute_seconds = 0.0;
    for (_, sub) in &subtotals {
        total.merge(&sub.acc)?;
        compute_seconds += sub.compute_seconds;
    }
    let recovered = total.count() - baseline_volume;

    let summary = total.summary();
    let mean_time = if recovered == 0 {
        0.0
    } else {
        compute_seconds / recovered as f64
    };
    // seqnum is unknown to manaver (it post-processes a dead job); the
    // journal's last record is the best available provenance.
    let seqnum = dir.read_experiments()?.last().map_or(0, |rec| rec.seqnum);
    let log = LogReport {
        sample_volume: total.count(),
        mean_time_per_realization: mean_time,
        eps_max: summary.eps_max,
        rho_max: summary.rho_max,
        sigma2_max: summary.sigma2_max,
        processors: subtotals.len(),
        seqnum,
    };
    dir.save_results(&summary, &log)?;
    dir.save_checkpoint(&total)?;
    dir.clear_worker_subtotals()?;

    Ok(ManaverReport {
        summary,
        total_volume: total.count(),
        recovered_volume: recovered,
        workers_found: subtotals.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::Subtotal;
    use std::path::PathBuf;

    fn tempdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("parmonc-manaver-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn subtotal(values: &[f64], secs: f64) -> Subtotal {
        let mut acc = MatrixAccumulator::new(1, 1).unwrap();
        for v in values {
            acc.add(&[*v]).unwrap();
        }
        Subtotal {
            acc,
            compute_seconds: secs,
        }
    }

    #[test]
    fn errors_without_data_dir() {
        let dir = tempdir("nodir");
        assert!(matches!(
            manaver(dir.join("missing")),
            Err(ParmoncError::NothingToResume { .. })
        ));
    }

    #[test]
    fn errors_without_worker_files() {
        let dir = tempdir("noworkers");
        ResultsDir::create(&dir).unwrap();
        assert!(matches!(
            manaver(&dir),
            Err(ParmoncError::NoWorkerData { .. })
        ));
    }

    #[test]
    fn averages_worker_files_without_baseline() {
        let dir = tempdir("fresh");
        let rd = ResultsDir::create(&dir).unwrap();
        rd.save_worker_subtotal(0, &subtotal(&[1.0, 3.0], 2.0))
            .unwrap();
        rd.save_worker_subtotal(1, &subtotal(&[5.0], 1.0)).unwrap();
        let report = manaver(&dir).unwrap();
        assert_eq!(report.total_volume, 3);
        assert_eq!(report.recovered_volume, 3);
        assert_eq!(report.workers_found, 2);
        assert!((report.summary.means[0] - 3.0).abs() < 1e-12);
        // Worker files consumed; checkpoint written.
        assert!(rd.load_worker_subtotals().unwrap().is_empty());
        assert_eq!(rd.load_checkpoint().unwrap().unwrap().count(), 3);
    }

    #[test]
    fn averages_on_top_of_baseline() {
        let dir = tempdir("baseline");
        let rd = ResultsDir::create(&dir).unwrap();
        let mut baseline = MatrixAccumulator::new(1, 1).unwrap();
        for _ in 0..10 {
            baseline.add(&[2.0]).unwrap();
        }
        rd.save_baseline(&baseline).unwrap();
        rd.save_worker_subtotal(0, &subtotal(&[4.0, 4.0], 1.0))
            .unwrap();
        let report = manaver(&dir).unwrap();
        assert_eq!(report.total_volume, 12);
        assert_eq!(report.recovered_volume, 2);
        // mean = (10*2 + 2*4)/12
        assert!((report.summary.means[0] - 28.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_baseline_shape_mismatch() {
        let dir = tempdir("shape");
        let rd = ResultsDir::create(&dir).unwrap();
        rd.save_baseline(&MatrixAccumulator::new(2, 2).unwrap())
            .unwrap();
        rd.save_worker_subtotal(0, &subtotal(&[1.0], 0.5)).unwrap();
        assert!(matches!(
            manaver(&dir),
            Err(ParmoncError::ResumeShapeMismatch { .. })
        ));
    }

    #[test]
    fn manaver_then_resume_is_consistent() {
        // Simulate a crashed job: baseline + worker files; manaver must
        // produce a checkpoint a subsequent res=1 run can consume.
        let dir = tempdir("resume-chain");
        let rd = ResultsDir::create(&dir).unwrap();
        rd.save_worker_subtotal(0, &subtotal(&[1.0, 2.0, 3.0], 1.0))
            .unwrap();
        manaver(&dir).unwrap();
        let loaded = rd.load_checkpoint().unwrap().unwrap();
        assert_eq!(loaded.count(), 3);
        assert_eq!(loaded.sums()[0], 6.0);
    }
}
