//! Error type of the PARMONC runtime.

use core::fmt;

use parmonc_mpi::MpiError;
use parmonc_rng::HierarchyError;
use parmonc_stats::{report::ParseError, StatsError};

/// Errors produced by the PARMONC runtime.
#[derive(Debug)]
pub enum ParmoncError {
    /// A configuration value was invalid.
    Config(String),
    /// The message-passing substrate failed.
    Mpi(MpiError),
    /// The statistics layer rejected data (shape mismatch etc.).
    Stats(StatsError),
    /// The stream hierarchy rejected an address.
    Hierarchy(HierarchyError),
    /// Filesystem I/O failed.
    Io {
        /// What the runtime was doing.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A result file could not be parsed.
    Parse {
        /// Which file.
        file: String,
        /// The underlying parse error.
        source: ParseError,
    },
    /// `res = 1` (resume) was requested but no previous results exist.
    NothingToResume {
        /// The directory that was searched.
        dir: std::path::PathBuf,
    },
    /// The `seqnum` was already used by a previous experiment in this
    /// directory (the paper requires a fresh subsequence on resume).
    SeqnumAlreadyUsed {
        /// The offending seqnum.
        seqnum: u64,
    },
    /// `manaver` found no worker subtotal files to average.
    NoWorkerData {
        /// The directory that was searched.
        dir: std::path::PathBuf,
    },
    /// The previous results have a different matrix shape.
    ResumeShapeMismatch {
        /// Shape found on disk.
        on_disk: (usize, usize),
        /// Shape requested now.
        requested: (usize, usize),
    },
    /// A checkpoint file failed its integrity check (bad checksum,
    /// truncated footer, unparseable contents) and no good `.bak`
    /// generation was available.
    CorruptCheckpoint {
        /// The offending file.
        path: std::path::PathBuf,
        /// What exactly was wrong with it.
        reason: String,
    },
    /// The fault plane's scripted collector crash fired: rank 0 went
    /// down mid-run, leaving the last savepoint and lease table on
    /// disk for a `resume_listen` restart to pick up.
    CollectorCrashed {
        /// Rank 0's own realization count when the crash fired.
        after: u64,
    },
    /// A worker died mid-run and the configuration demanded failure
    /// instead of graceful degradation.
    WorkerLost {
        /// The rank declared dead.
        rank: usize,
        /// Realizations the collector had received from it before the
        /// loss (these are unbiased and would have been kept).
        received_realizations: u64,
    },
}

impl fmt::Display for ParmoncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Config(msg) => write!(f, "invalid configuration: {msg}"),
            Self::Mpi(e) => write!(f, "message passing failed: {e}"),
            Self::Stats(e) => write!(f, "statistics error: {e}"),
            Self::Hierarchy(e) => write!(f, "stream hierarchy error: {e}"),
            Self::Io { context, source } => write!(f, "I/O error while {context}: {source}"),
            Self::Parse { file, source } => write!(f, "cannot parse {file}: {source}"),
            Self::NothingToResume { dir } => {
                write!(f, "res = 1 but no previous results in {}", dir.display())
            }
            Self::NoWorkerData { dir } => {
                write!(f, "no worker subtotal files to average in {}", dir.display())
            }
            Self::SeqnumAlreadyUsed { seqnum } => write!(
                f,
                "seqnum {seqnum} was already used; resuming requires a fresh experiments subsequence"
            ),
            Self::ResumeShapeMismatch { on_disk, requested } => write!(
                f,
                "previous results are {}x{} but this run asks for {}x{}",
                on_disk.0, on_disk.1, requested.0, requested.1
            ),
            Self::CorruptCheckpoint { path, reason } => write!(
                f,
                "checkpoint {} is corrupt ({reason}) and no good backup generation exists",
                path.display()
            ),
            Self::CollectorCrashed { after } => write!(
                f,
                "collector crashed (scripted) after {after} of its own realizations; \
                 restart with resume_listen to complete the run"
            ),
            Self::WorkerLost {
                rank,
                received_realizations,
            } => write!(
                f,
                "worker rank {rank} was lost after contributing {received_realizations} realizations"
            ),
        }
    }
}

impl std::error::Error for ParmoncError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Mpi(e) => Some(e),
            Self::Stats(e) => Some(e),
            Self::Hierarchy(e) => Some(e),
            Self::Io { source, .. } => Some(source),
            Self::Parse { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<MpiError> for ParmoncError {
    fn from(e: MpiError) -> Self {
        Self::Mpi(e)
    }
}

impl From<StatsError> for ParmoncError {
    fn from(e: StatsError) -> Self {
        Self::Stats(e)
    }
}

impl From<HierarchyError> for ParmoncError {
    fn from(e: HierarchyError) -> Self {
        Self::Hierarchy(e)
    }
}

/// Attaches filesystem context to an `io::Result`.
pub(crate) trait IoContext<T> {
    fn io_ctx(self, context: impl Into<String>) -> Result<T, ParmoncError>;
}

impl<T> IoContext<T> for std::io::Result<T> {
    fn io_ctx(self, context: impl Into<String>) -> Result<T, ParmoncError> {
        self.map_err(|source| ParmoncError::Io {
            context: context.into(),
            source,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ParmoncError::Config("bad".into());
        assert!(e.to_string().contains("bad"));
        let e = ParmoncError::from(MpiError::Disconnected);
        assert!(std::error::Error::source(&e).is_some());
        let e = ParmoncError::SeqnumAlreadyUsed { seqnum: 2 };
        assert!(e.to_string().contains("seqnum 2"));
        let e = ParmoncError::ResumeShapeMismatch {
            on_disk: (10, 2),
            requested: (5, 2),
        };
        assert!(e.to_string().contains("10x2"));
        let e = ParmoncError::CorruptCheckpoint {
            path: "data/checkpoint.dat".into(),
            reason: "fnv64 mismatch".into(),
        };
        assert!(e.to_string().contains("checkpoint.dat"));
        assert!(e.to_string().contains("fnv64 mismatch"));
        assert!(std::error::Error::source(&e).is_none());
        let e = ParmoncError::WorkerLost {
            rank: 3,
            received_realizations: 120,
        };
        assert!(e.to_string().contains("rank 3"));
        assert!(e.to_string().contains("120"));
        let e = ParmoncError::CollectorCrashed { after: 7 };
        assert!(e.to_string().contains("after 7"));
        assert!(e.to_string().contains("resume_listen"));
    }

    #[test]
    fn io_ctx_attaches_context() {
        let r: std::io::Result<()> = Err(std::io::Error::other("boom"));
        let e = r.io_ctx("writing func.dat").unwrap_err();
        assert!(e.to_string().contains("writing func.dat"));
    }
}
