//! The parallel runner: the `parmoncc`/`parmoncf` engine
//! (paper Sections 2.2, 3.2).
//!
//! Every rank simulates realizations on its own leapfrogged processor
//! subsequence; rank 0 additionally plays the collector, draining
//! asynchronously arriving subtotal messages, averaging them by
//! formula (5) every `peraver`, and saving the result files as periodic
//! save-points. Workers ship their *cumulative* sums every `perpass`
//! (or after every realization in the performance-test mode) and always
//! finish with a final message, so the run terminates deterministically
//! when the total sample volume reaches `maxsv` or the wall-clock
//! deadline passes.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use parmonc_faults::{FaultHandle, FaultKind};
use parmonc_ipc::{
    ChildTransport, JoinOptions, LeaseSnapshot, ListenOptions, ProcessTransport, SpawnOptions,
    TcpCollectorTransport, TcpWorkerTransport, WorkerInfo,
};
use parmonc_mpi::Transport as Comm;
use parmonc_mpi::{Bytes, CollectionPlan, Envelope, MpiError, World};
use parmonc_obs::{
    CollectorActivity, ConvergenceTracker, EventKind, JsonlSink, MemorySink, MetricsSink, Monitor,
    MonitorSummary, RunMode, RunTransport, SpanEmitter, SpanPhase,
};
use parmonc_rng::{StreamHierarchy, StreamId};
use parmonc_stats::report::LogReport;
use parmonc_stats::{MatrixAccumulator, MatrixSummary};

use crate::config::{Exchange, ParmoncBuilder, Resume, RunConfig, Transport};
use crate::error::{IoContext, ParmoncError};
use crate::files::{ExperimentRecord, ResultsDir};
use crate::messages::{
    decode_batch, encode_batch, Subtotal, TAG_BATCH, TAG_EXTEND, TAG_FINAL, TAG_HEARTBEAT,
    TAG_REPARENT, TAG_STOP, TAG_SUBTOTAL,
};
use crate::realize::Realize;

/// Entry point type: `Parmonc::builder(nrow, ncol)` starts configuring
/// a run, mirroring the argument list of `parmoncc`.
#[derive(Debug)]
pub struct Parmonc;

impl Parmonc {
    /// Starts building a run for realizations shaped `nrow × ncol`.
    #[must_use]
    pub fn builder(nrow: usize, ncol: usize) -> ParmoncBuilder {
        ParmoncBuilder::new(nrow, ncol)
    }
}

/// What a completed run reports back (everything `func_log.dat`
/// records, plus handles for inspection).
#[derive(Debug)]
pub struct RunReport {
    /// Averaged estimates with errors — the contents of
    /// `func.dat`/`func_ci.dat`.
    pub summary: MatrixSummary,
    /// Total sample volume on disk after the run (previous + new).
    pub total_volume: u64,
    /// Realizations simulated by *this* run.
    pub new_volume: u64,
    /// Volume inherited from the resumed previous simulation.
    pub resumed_volume: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Mean compute time per realization, seconds (the paper's τ_ζ).
    pub mean_time_per_realization: f64,
    /// Number of processors used.
    pub processors: usize,
    /// Per-worker realization counts (index = rank).
    pub worker_volumes: Vec<u64>,
    /// The results directory of the run.
    pub results_dir: ResultsDir,
    /// Folded monitor trace of the run; `Some` only when the run was
    /// built with [`ParmoncBuilder::monitor`]. The full event trace is
    /// at `parmonc_data/monitor/run_metrics.jsonl`.
    pub monitor: Option<MonitorSummary>,
    /// Ranks the collector declared dead during the run (empty on a
    /// healthy run). Their last received cumulative subtotals are kept
    /// in the estimate; their unfinished budget was reassigned.
    pub lost_workers: Vec<usize>,
    /// Realizations moved between ranks by fault recovery (the sum of
    /// all `work_reassigned` events).
    pub reassigned_realizations: u64,
    /// Whether the resume baseline had to be read from the last-good
    /// backup generation because the primary checkpoint was corrupt.
    pub checkpoint_recovered: bool,
}

/// Collector-side state: the latest cumulative subtotal per rank, and
/// when each arrived (for the monitor's snapshot-age metric).
struct CollectorState {
    baseline: MatrixAccumulator,
    latest: Vec<Option<Subtotal>>,
    updated_at: Vec<Option<Instant>>,
}

impl CollectorState {
    fn new(baseline: MatrixAccumulator, ranks: usize) -> Self {
        Self {
            baseline,
            latest: vec![None; ranks],
            updated_at: vec![None; ranks],
        }
    }

    /// Decodes a worker's cumulative subtotal *over* its previous
    /// snapshot (same shape ⇒ the matrices are overwritten in place,
    /// no allocation) and stamps its arrival time. The collector's
    /// steady state: every rank re-sends the same shape each pass.
    fn absorb(&mut self, rank: usize, payload: &Bytes, now: Instant) -> Result<(), ParmoncError> {
        Subtotal::decode_into(payload, &mut self.latest[rank])?;
        self.updated_at[rank] = Some(now);
        Ok(())
    }

    /// Refreshes rank 0's own snapshot from its borrowed running
    /// accumulator, reusing the previous snapshot's allocations.
    fn update_own(&mut self, acc: &MatrixAccumulator, compute_seconds: f64, now: Instant) {
        match &mut self.latest[0] {
            Some(sub) => {
                sub.acc.clone_from(acc);
                sub.compute_seconds = compute_seconds;
            }
            slot => {
                *slot = Some(Subtotal {
                    acc: acc.clone(),
                    compute_seconds,
                });
            }
        }
        self.updated_at[0] = Some(now);
    }

    /// Age of the stalest per-rank snapshot folded into an averaging
    /// pass; `None` until at least one rank has reported.
    fn max_snapshot_age(&self) -> Option<f64> {
        self.updated_at
            .iter()
            .flatten()
            .map(|t| t.elapsed().as_secs_f64())
            .fold(None, |acc, age| Some(acc.map_or(age, |m: f64| m.max(age))))
    }

    /// Formula (5): total = baseline + Σ_m latest_m (cumulative sums, so
    /// replace-then-sum, never double counting).
    fn total(&self) -> Result<MatrixAccumulator, ParmoncError> {
        let mut total = self.baseline.clone();
        for sub in self.latest.iter().flatten() {
            total.merge(&sub.acc)?;
        }
        Ok(total)
    }

    fn new_volume(&self) -> u64 {
        self.latest.iter().flatten().map(|s| s.acc.count()).sum()
    }

    fn compute_seconds(&self) -> f64 {
        self.latest
            .iter()
            .flatten()
            .map(|s| s.compute_seconds)
            .sum()
    }
}

/// Validates resume preconditions and returns the baseline accumulator
/// plus whether it was recovered from the backup checkpoint generation.
fn resume_baseline(
    config: &RunConfig,
    dir: &ResultsDir,
) -> Result<(MatrixAccumulator, bool), ParmoncError> {
    match config.resume {
        Resume::New => Ok((MatrixAccumulator::new(config.nrow, config.ncol)?, false)),
        Resume::Resume => {
            let (previous, recovered) =
                dir.load_checkpoint_recovering()?
                    .ok_or_else(|| ParmoncError::NothingToResume {
                        dir: dir.root().to_path_buf(),
                    })?;
            if previous.shape() != (config.nrow, config.ncol) {
                return Err(ParmoncError::ResumeShapeMismatch {
                    on_disk: previous.shape(),
                    requested: (config.nrow, config.ncol),
                });
            }
            // The paper requires a fresh "experiments" subsequence on
            // resumption, otherwise the new realizations would repeat
            // the old base random numbers.
            if dir
                .read_experiments()?
                .iter()
                .any(|rec| rec.seqnum == config.seqnum)
            {
                return Err(ParmoncError::SeqnumAlreadyUsed {
                    seqnum: config.seqnum,
                });
            }
            Ok((previous, recovered))
        }
    }
}

/// Runs the simulation. This is the body behind
/// [`ParmoncBuilder::run`](crate::config::ParmoncBuilder::run).
///
/// With [`Transport::Processes`], this call is also the worker-side
/// entry point: a re-executed worker process runs the user program up
/// to this call, where the `PARMONC_WORKER_*` environment diverts it
/// into the worker loop and the process exits without returning.
///
/// # Errors
///
/// Propagates configuration, resume, I/O and transport errors.
pub fn run<R>(config: RunConfig, realize: R) -> Result<RunReport, ParmoncError>
where
    R: Realize + Sync,
{
    match config.transport {
        Transport::Processes => {
            if let Some(info) = parmonc_ipc::worker_env() {
                run_worker_process(&info, &config, &realize);
            }
            run_processes(config, realize)
        }
        Transport::Tcp => run_tcp_collector(config, realize),
        Transport::Threads => run_threads(config, realize),
    }
}

/// Everything both backends set up before any rank starts simulating.
struct RunSetup {
    faults: FaultHandle,
    dir: ResultsDir,
    monitor: Monitor,
    memory: Option<Arc<MemorySink>>,
    baseline: MatrixAccumulator,
    resumed_volume: u64,
    checkpoint_recovered: bool,
    hierarchy: StreamHierarchy,
}

/// The rank-0-side preamble shared by both backends: results
/// directory, monitor plane, resume baseline, experiment journal.
fn prepare(config: &RunConfig, transport: RunTransport) -> Result<RunSetup, ParmoncError> {
    let faults = config.faults.build();
    let dir = ResultsDir::create(&config.output_dir)?.with_faults(faults.clone());

    // The monitor is disabled (a no-op) unless the builder opted in, in
    // which case events stream to `monitor/run_metrics.jsonl` and into
    // an in-memory sink that feeds the end-of-run summary. It is built
    // before the baseline is loaded so a backup-checkpoint recovery is
    // itself observable.
    let (monitor, memory) = if config.monitor {
        let sink = JsonlSink::create(dir.run_metrics_path())
            .io_ctx("creating monitor/run_metrics.jsonl")?;
        let memory = Arc::new(MemorySink::new());
        // The metrics plane derives counters/gauges/histograms from the
        // same event stream and periodically renders Prometheus text;
        // it adds no call sites of its own.
        let metrics = MetricsSink::new().with_prometheus_output(dir.metrics_prom_path());
        let monitor: Monitor = Monitor::new(vec![
            Box::new(sink),
            Box::new(Arc::clone(&memory)),
            Box::new(metrics),
        ]);
        (monitor, Some(memory))
    } else {
        (Monitor::disabled(), None)
    };
    monitor.emit(
        None,
        EventKind::RunStarted {
            mode: RunMode::Threads,
            processors: config.processors,
            max_sample_volume: config.max_sample_volume,
            seqnum: Some(config.seqnum),
            nrow: Some(config.nrow),
            ncol: Some(config.ncol),
            transport: Some(transport),
        },
    );

    let (baseline, checkpoint_recovered) = if config.resume_collector {
        // A crash-resume continues the *same* experiment, so the
        // accumulation restarts from the original baseline — never the
        // checkpoint, which is baseline + the workers' latest
        // cumulative subtotals: those are exactly what the surviving
        // workers are about to re-send, and loading them here would
        // double-count every one.
        let baseline = dir
            .load_baseline()?
            .ok_or_else(|| ParmoncError::NothingToResume {
                dir: dir.root().to_path_buf(),
            })?;
        if baseline.shape() != (config.nrow, config.ncol) {
            return Err(ParmoncError::ResumeShapeMismatch {
                on_disk: baseline.shape(),
                requested: (config.nrow, config.ncol),
            });
        }
        (baseline, false)
    } else {
        resume_baseline(config, &dir)?
    };
    let resumed_volume = baseline.count();
    if checkpoint_recovered {
        monitor.emit(
            None,
            EventKind::CheckpointRecovered {
                volume: resumed_volume,
            },
        );
    }

    // A crash-resume continues the journal entry the crashed run
    // already wrote, and the worker subtotal files *are* the recovery
    // state — only a fresh session starts the books over.
    if !config.resume_collector {
        dir.append_experiment(&ExperimentRecord {
            seqnum: config.seqnum,
            max_sample_volume: config.max_sample_volume,
            processors: config.processors,
            resumed: config.resume == Resume::Resume,
            volume_before: resumed_volume,
        })?;
        dir.save_baseline(&baseline)?;
        dir.clear_worker_subtotals()?;
    }

    Ok(RunSetup {
        faults,
        dir,
        monitor,
        memory,
        baseline,
        resumed_volume,
        checkpoint_recovered,
        hierarchy: StreamHierarchy::new(config.leaps),
    })
}

/// The thread backend: ranks are scoped OS threads over the
/// `parmonc-mpi` channel world.
fn run_threads<R>(config: RunConfig, realize: R) -> Result<RunReport, ParmoncError>
where
    R: Realize + Sync,
{
    let start = Instant::now();
    let setup = prepare(&config, RunTransport::Threads)?;
    let comms = World::communicators_faulted(
        config.processors,
        setup.monitor.clone(),
        setup.faults.clone(),
    )?;

    // Shared slot for an error raised inside a rank (first one wins).
    let failure: Mutex<Option<ParmoncError>> = Mutex::new(None);
    let config = Arc::new(config);
    let realize = &realize;

    let collector_out: Mutex<Option<CollectorOutcome>> = Mutex::new(None);

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for comm in comms {
            let config = Arc::clone(&config);
            let hierarchy = setup.hierarchy.clone();
            let dir = setup.dir.clone();
            let baseline = setup.baseline.clone();
            let failure = &failure;
            let collector_out = &collector_out;
            let monitor = setup.monitor.clone();
            let faults = setup.faults.clone();
            handles.push(scope.spawn(move || {
                let result = if comm.rank() == 0 {
                    let mut comm = comm;
                    rank0_loop(
                        &mut comm, &config, &hierarchy, &dir, baseline, realize, start, &monitor,
                        &faults, None,
                    )
                    .map(|outcome| {
                        *collector_out.lock().unwrap() = Some(outcome);
                    })
                } else {
                    let parent = config.collection_plan().parent(comm.rank()).unwrap_or(0);
                    worker_loop(
                        comm,
                        &config,
                        &hierarchy,
                        &dir,
                        realize,
                        start,
                        &monitor,
                        &faults,
                        config.trace_spans,
                        parent,
                    )
                };
                if let Err(e) = result {
                    failure.lock().unwrap().get_or_insert(e);
                }
            }));
        }
        for h in handles {
            if h.join().is_err() {
                failure
                    .lock()
                    .unwrap()
                    .get_or_insert(ParmoncError::Mpi(MpiError::RankPanicked {
                        rank: usize::MAX,
                        message: "a rank panicked".into(),
                    }));
            }
        }
    });

    if let Some(e) = failure.into_inner().unwrap() {
        return Err(e);
    }
    let outcome = collector_out
        .into_inner()
        .unwrap()
        .expect("rank 0 always produces collector state on success");
    finish(&config, setup, start, outcome)
}

/// The process backend, parent side: spawn the workers, run the
/// collector loop over the socket world, then tear the world down
/// before folding the report.
fn run_processes<R>(config: RunConfig, realize: R) -> Result<RunReport, ParmoncError>
where
    R: Realize + Sync,
{
    let start = Instant::now();
    let setup = prepare(&config, RunTransport::Processes)?;
    let plan = config.collection_plan();
    let mut transport = ProcessTransport::spawn(SpawnOptions {
        size: config.processors,
        monitor: setup.monitor.clone(),
        faults: setup.faults.clone(),
        worker_args: config.worker_args.clone(),
        trace_spans: config.trace_spans,
        parents: (1..config.processors)
            .map(|r| plan.parent(r).unwrap_or(0))
            .collect(),
    })
    .io_ctx("spawning worker processes")?;
    let result = rank0_loop(
        &mut transport,
        &config,
        &setup.hierarchy,
        &setup.dir,
        setup.baseline.clone(),
        &realize,
        start,
        &setup.monitor,
        &setup.faults,
        None,
    );
    // Reap the children before propagating any collector error, so no
    // failure path leaks worker processes; shutdown also joins the
    // socket readers, guaranteeing every forwarded worker event is in
    // the sinks before the epilogue folds the trace.
    let shutdown = transport.shutdown();
    let outcome = result?;
    shutdown.io_ctx("shutting down worker processes")?;
    finish(&config, setup, start, outcome)
}

/// The TCP backend, collector side: bind the listener, record the
/// actually bound address in `parmonc_data/collector.addr`, then run
/// the identical collector loop over the elastic-membership TCP world.
///
/// Unlike the process backend nobody is spawned here: every worker
/// rank starts life as an *unleased* slot. Remote workers started with
/// [`ParmoncBuilder::run_worker`](crate::config::ParmoncBuilder::run_worker)
/// dial in and lease slots; slots that never join go quiet past the
/// liveness timeout and their budget is reassigned exactly as if a
/// spawned worker had died — the estimate stays bit-identical either
/// way because stream coordinates are fixed by `(seqnum, rank)`.
fn run_tcp_collector<R>(config: RunConfig, realize: R) -> Result<RunReport, ParmoncError>
where
    R: Realize + Sync,
{
    let start = Instant::now();
    let Some(addr) = config.listen_addr.clone() else {
        return Err(ParmoncError::Config(
            "the TCP transport needs a listen address on the collector: use \
             .net(NetOptions::listen(\"host:port\")) (workers use .net(NetOptions::join(addr)) \
             + run_worker)"
                .into(),
        ));
    };
    let setup = prepare(&config, RunTransport::Tcp)?;
    let quotas: Vec<u64> = (1..config.processors).map(|m| config.quota(m)).collect();
    // Crash-resume: reload the crashed session's lease table so the
    // listener comes back with the same epoch, every lease a worker
    // holds is recognized on rejoin, and the sequence dedup state
    // carries over. Rank 0's own progress comes back from its worker
    // subtotal file, exactly like any other rank's.
    let resume = if config.resume_collector {
        let path = setup.dir.lease_table_path();
        let text = setup
            .dir
            .load_lease_table()?
            .ok_or_else(|| ParmoncError::NothingToResume {
                dir: setup.dir.root().to_path_buf(),
            })?;
        let snapshot =
            LeaseSnapshot::decode(&text).ok_or_else(|| ParmoncError::CorruptCheckpoint {
                path,
                reason: "unparseable lease table".into(),
            })?;
        Some(snapshot)
    } else {
        None
    };
    let resumed_leases = resume
        .as_ref()
        .map(|s| s.ever_leased.iter().filter(|leased| **leased).count());
    let resume_own = if config.resume_collector {
        setup
            .dir
            .load_worker_subtotals()?
            .into_iter()
            .find(|(idx, _)| *idx == 0)
            .map(|(_, sub)| sub)
    } else {
        None
    };
    let plan = config.collection_plan();
    let mut transport = TcpCollectorTransport::listen(ListenOptions {
        addr,
        size: config.processors,
        monitor: setup.monitor.clone(),
        faults: setup.faults.clone(),
        config_digest: config.wire_digest(),
        quotas,
        io_timeout: config.tcp_io_timeout,
        resume,
        persist: Some(setup.dir.lease_table_path()),
        trace_spans: config.trace_spans,
        parents: (1..config.processors)
            .map(|r| plan.parent(r).unwrap_or(0))
            .collect(),
    })
    .io_ctx("binding the collector TCP listener")?;
    if let Some(leases) = resumed_leases {
        setup.monitor.emit(
            Some(0),
            EventKind::CollectorResumed {
                epoch: format!("{:016x}", transport.epoch()),
                leases,
            },
        );
    }
    setup
        .dir
        .write_collector_addr(&transport.local_addr().to_string())?;
    let result = rank0_loop(
        &mut transport,
        &config,
        &setup.hierarchy,
        &setup.dir,
        setup.baseline.clone(),
        &realize,
        start,
        &setup.monitor,
        &setup.faults,
        resume_own,
    );
    // Tear the world down before folding the report, mirroring the
    // process backend: shutdown joins the per-connection readers, so
    // every forwarded worker event is in the sinks before the epilogue
    // folds the trace.
    let shutdown = transport.shutdown();
    let outcome = result?;
    shutdown.io_ctx("shutting down the TCP listener")?;
    finish(&config, setup, start, outcome)
}

/// The TCP backend, worker side: dial the collector, lease a rank via
/// the versioned handshake, then run the identical worker loop. This
/// is the body behind
/// [`ParmoncBuilder::run_worker`](crate::config::ParmoncBuilder::run_worker).
pub(crate) fn run_tcp_worker<R: Realize>(
    config: RunConfig,
    realize: &R,
) -> Result<(), ParmoncError> {
    let start = Instant::now();
    let Some(addr) = config.join_addr.clone() else {
        return Err(ParmoncError::Config(
            "run_worker needs a collector address: use .join(\"host:port\")".into(),
        ));
    };
    let faults = config.faults.build();
    let dir = ResultsDir::create(&config.output_dir)?.with_faults(faults.clone());
    let hierarchy = StreamHierarchy::new(config.leaps);
    let comm = TcpWorkerTransport::join(JoinOptions {
        addr,
        config_digest: config.wire_digest(),
        faults: faults.clone(),
        io_timeout: config.tcp_io_timeout,
        reconnect: config.reconnect,
        clock_skew_s: config.clock_skew_s,
    })
    .io_ctx("joining the TCP collector")?;
    // The digest already proved both sides agree on the configuration;
    // this cross-check catches quota-dealing bugs, where agreement on
    // the inputs still produced a different split.
    let rank = Comm::rank(&comm);
    let granted = comm.granted_quota();
    if granted != config.quota(rank) {
        return Err(ParmoncError::Config(format!(
            "collector granted rank {rank} a quota of {granted} realizations, but this \
             configuration deals it {}: the two sides disagree on the budget split",
            config.quota(rank)
        )));
    }
    let monitor = comm.monitor();
    // Span tracing is the *collector's* choice, carried to the worker
    // in the handshake grant — a worker built without the flag still
    // traces when the collector asks. The collection parent rides the
    // same grant: the collector owns the topology.
    let trace_spans = comm.spans().is_enabled();
    let parent = comm.granted_parent();
    worker_loop(
        comm,
        &config,
        &hierarchy,
        &dir,
        realize,
        start,
        &monitor,
        &faults,
        trace_spans,
        parent,
    )
}

/// The process backend, worker side: never returns — the worker loop
/// runs to completion and the process exits, so the re-executed user
/// `main` continues past `run()` in the parent only.
fn run_worker_process<R: Realize>(info: &WorkerInfo, config: &RunConfig, realize: &R) -> ! {
    let code = match worker_process_body(info, config, realize) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("parmonc worker rank {}: {e}", info.rank);
            1
        }
    };
    std::process::exit(code);
}

fn worker_process_body<R: Realize>(
    info: &WorkerInfo,
    config: &RunConfig,
    realize: &R,
) -> Result<(), ParmoncError> {
    let start = Instant::now();
    // Each worker builds its own fault handle from the same seeded
    // plan; fault sequence counters are per-(src, dst, tag) channel,
    // and this process only ever *sends* on its own rank's channels,
    // so the decisions match the shared-handle thread backend exactly.
    let faults = config.faults.build();
    let dir = ResultsDir::create(&config.output_dir)?.with_faults(faults.clone());
    let hierarchy = StreamHierarchy::new(config.leaps);
    let comm = ChildTransport::connect(info, faults.clone())
        .io_ctx("connecting to the collector socket")?;
    let monitor = comm.monitor();
    worker_loop(
        comm,
        config,
        &hierarchy,
        &dir,
        realize,
        start,
        &monitor,
        &faults,
        info.spans,
        info.parent,
    )
}

/// The rank-0-side epilogue shared by both backends: the final
/// averaging pass, result files, and the report.
fn finish(
    config: &RunConfig,
    setup: RunSetup,
    start: Instant,
    outcome: CollectorOutcome,
) -> Result<RunReport, ParmoncError> {
    let RunSetup {
        dir,
        monitor,
        memory,
        resumed_volume,
        checkpoint_recovered,
        ..
    } = setup;
    let CollectorOutcome {
        state,
        lost_workers,
        reassigned_realizations,
        mut convergence,
    } = outcome;

    // Final averaging and save. This path always runs (unlike the
    // in-loop save-points, which only fire when `averaging_period`
    // elapses), so every monitored run records at least one
    // averaging_pass and one save_point event.
    let spans = SpanEmitter::new(&monitor, 0, config.trace_spans);
    let sp_merge = spans.start(SpanPhase::CollectorMerge, None);
    let pass_started = Instant::now();
    let max_age = state.max_snapshot_age();
    let total = state.total()?;
    let summary = total.summary();
    let new_volume = state.new_volume();
    let elapsed = start.elapsed();
    let mean_time = if new_volume == 0 {
        0.0
    } else {
        state.compute_seconds() / new_volume as f64
    };
    let log = LogReport {
        sample_volume: total.count(),
        mean_time_per_realization: mean_time,
        eps_max: summary.eps_max,
        rho_max: summary.rho_max,
        sigma2_max: summary.sigma2_max,
        processors: config.processors,
        seqnum: config.seqnum,
    };
    let save_started = Instant::now();
    let sp_ck = spans.start(SpanPhase::Checkpoint, Some(sp_merge));
    dir.save_results(&summary, &log)?;
    dir.save_checkpoint(&total)?;
    dir.clear_worker_subtotals()?;
    spans.end(sp_ck, SpanPhase::Checkpoint);
    if monitor.is_enabled() {
        monitor.emit(
            Some(0),
            EventKind::SavePoint {
                volume: total.count(),
                duration_seconds: save_started.elapsed().as_secs_f64(),
            },
        );
        monitor.emit(
            Some(0),
            EventKind::AveragingPass {
                volume: total.count(),
                duration_seconds: pass_started.elapsed().as_secs_f64(),
                eps_max: Some(summary.eps_max),
                max_snapshot_age_seconds: max_age,
            },
        );
        let eps_max = if total.count() < 2 {
            f64::INFINITY
        } else {
            summary.eps_max
        };
        convergence.observe(
            &monitor,
            Some(0),
            total.count(),
            &summary.means,
            &summary.abs_errors,
            eps_max,
        );
    }
    spans.end(sp_merge, SpanPhase::CollectorMerge);

    let worker_volumes: Vec<u64> = state
        .latest
        .iter()
        .map(|s| s.as_ref().map_or(0, |s| s.acc.count()))
        .collect();

    let monitor_summary = memory.map(|memory| {
        // Count the collector's inbound traffic from the trace itself,
        // so run_completed agrees with the message_received lines.
        let (messages, bytes) = memory
            .snapshot()
            .iter()
            .fold((0u64, 0u64), |(m, b), ev| match ev.kind {
                EventKind::MessageReceived { bytes, .. } if ev.rank == Some(0) => {
                    (m + 1, b + bytes)
                }
                _ => (m, b),
            });
        monitor.emit(
            None,
            EventKind::RunCompleted {
                realizations: new_volume,
                t_comp_seconds: elapsed.as_secs_f64(),
                messages,
                bytes,
            },
        );
        let dropped = monitor.flush();
        let mut summary = MonitorSummary::from_events(&memory.snapshot());
        summary.dropped_events = dropped;
        summary
    });

    Ok(RunReport {
        total_volume: total.count(),
        new_volume,
        resumed_volume,
        summary,
        elapsed,
        mean_time_per_realization: mean_time,
        processors: config.processors,
        worker_volumes,
        results_dir: dir,
        monitor: monitor_summary,
        lost_workers,
        reassigned_realizations,
        checkpoint_recovered,
    })
}

/// How often, at most, a worker rewrites its on-disk subtotal file.
const WORKER_FILE_PERIOD: Duration = Duration::from_millis(500);

/// What a worker's control-message poll found: a stop broadcast and/or
/// extra realizations reassigned to it from a lost rank.
#[derive(Debug, Default)]
struct WorkerControl {
    stop: bool,
    extra: u64,
}

/// The simulation loop common to every rank: simulate the quota,
/// periodically emitting cumulative subtotals via `emit`, heartbeating
/// through quiet stretches, and growing the quota when `poll_control`
/// reports reassigned work (extension realizations run on this rank's
/// *own* stream coordinates past its original quota, so no leapfrog
/// subsequence is ever reused).
///
/// `emit` returns whether the send counted as contact with rank 0:
/// under a tree topology a worker's subtotals flow to a relay, which
/// keeps the *collector* blind to the send — the heartbeat cadence
/// must not be reset by it, or the liveness plane would starve.
///
/// Returns `None` when a scripted fault crashed the rank first: no
/// final subtotal is emitted and the caller lets the rank vanish.
#[allow(clippy::too_many_arguments)] // internal: one call site per rank kind
fn simulate_quota<R: Realize + ?Sized>(
    rank: usize,
    config: &RunConfig,
    hierarchy: &StreamHierarchy,
    dir: &ResultsDir,
    realize: &R,
    start: Instant,
    crash_after: Option<u64>,
    spans: &SpanEmitter,
    mut emit: impl FnMut(&MatrixAccumulator, f64, bool) -> Result<bool, ParmoncError>,
    mut heartbeat: impl FnMut() -> Result<(), ParmoncError>,
    mut poll_control: impl FnMut() -> Result<WorkerControl, ParmoncError>,
) -> Result<Option<Subtotal>, ParmoncError> {
    let mut quota = config.quota(rank);
    let mut acc = MatrixAccumulator::new(config.nrow, config.ncol)?;
    let mut out = vec![0.0f64; config.nrow * config.ncol];
    let mut compute_seconds = 0.0f64;
    let mut last_pass = Instant::now();
    let mut last_contact = Instant::now();
    let mut last_file_write: Option<Instant> = None;
    // One incremental cursor instead of a fresh three-level leapfrog
    // positioning (three 128-bit modpows) per realization; advancing to
    // the next realization stream is a single 128-bit multiply and
    // yields bit-identical streams (see `parmonc_rng::StreamCursor`).
    let sp_position = spans.start(SpanPhase::StreamPosition, None);
    let mut cursor = hierarchy.cursor(StreamId::new(config.seqnum, rank as u64, 0))?;
    spans.end(sp_position, SpanPhase::StreamPosition);
    // The currently open realization-batch span (0 between batches or
    // with spans off — `start`/`end` treat 0 as "nothing open").
    let mut batch_span: u64 = 0;

    let mut r: u64 = 0;
    loop {
        let ctl = poll_control()?;
        quota += ctl.extra;
        if ctl.stop || r >= quota {
            break;
        }
        if let Some(deadline) = config.deadline {
            if start.elapsed() >= deadline {
                break;
            }
        }
        if crash_after.is_some_and(|n| r >= n) {
            return Ok(None);
        }
        if spans.is_enabled() && batch_span == 0 {
            batch_span = spans.start(SpanPhase::RealizationBatch, None);
        }
        out.fill(0.0);
        let mut stream = cursor.next_stream()?;
        // Two clock reads per realization: the pair timing the user
        // routine. Every other time-gated check below reuses `now` via
        // `duration_since`, which is pure arithmetic — clock reads are
        // syscalls and used to dominate the runtime's per-realization
        // overhead in the strictest exchange mode.
        let t0 = Instant::now();
        realize.realize(&mut stream, &mut out);
        let now = Instant::now();
        compute_seconds += now.duration_since(t0).as_secs_f64();
        acc.add(&out)?;
        r += 1;

        let due = match config.exchange {
            Exchange::EveryRealization => true,
            Exchange::Periodic => now.duration_since(last_pass) >= config.pass_period,
        };
        if due && r < quota {
            let sp_send = spans.start(SpanPhase::SubtotalSend, Some(batch_span));
            let contacted_collector = emit(&acc, compute_seconds, false)?;
            spans.end(sp_send, SpanPhase::SubtotalSend);
            if contacted_collector {
                last_contact = now;
            }
            if last_file_write.is_none_or(|t| now.duration_since(t) >= WORKER_FILE_PERIOD) {
                let sp_ck = spans.start(SpanPhase::Checkpoint, Some(batch_span));
                dir.save_worker_state(rank, &acc, compute_seconds)?;
                spans.end(sp_ck, SpanPhase::Checkpoint);
                last_file_write = Some(now);
            }
            spans.end(batch_span, SpanPhase::RealizationBatch);
            batch_span = 0;
            last_pass = now;
        }
        // Not an `else`: a tree worker's emit goes to its relay, not
        // to rank 0, so the heartbeat must still fire on schedule even
        // in the every-realization exchange mode where emits are due
        // on every iteration.
        if now.duration_since(last_contact) >= config.heartbeat_period {
            heartbeat()?;
            last_contact = now;
        }
    }

    let sp_ck = spans.start(SpanPhase::Checkpoint, Some(batch_span));
    dir.save_worker_state(rank, &acc, compute_seconds)?;
    spans.end(sp_ck, SpanPhase::Checkpoint);
    let sp_send = spans.start(SpanPhase::SubtotalSend, Some(batch_span));
    emit(&acc, compute_seconds, true)?;
    spans.end(sp_send, SpanPhase::SubtotalSend);
    spans.end(batch_span, SpanPhase::RealizationBatch);
    Ok(Some(Subtotal {
        acc,
        compute_seconds,
    }))
}

/// How often a lingering relay (own quota done, descendants still
/// computing) services its inbox between forwards.
const RELAY_LINGER_POLL: Duration = Duration::from_millis(2);

/// An interior relay rank's store-and-forward state under a tree
/// collection topology: the latest raw subtotal payload seen from each
/// rank below it, forwarded upstream as one coalesced [`TAG_BATCH`]
/// per service pass. Payloads are kept *verbatim* — a relay never
/// decodes or pre-folds the floating-point state, so the collector's
/// rank-ordered fold (and with it the estimate) stays bit-identical to
/// the star topology's. Empty (and inert) for leaf ranks and under
/// [`parmonc_mpi::Topology::Star`].
struct RelayBuffer {
    /// `rank -> (raw subtotal payload, final seen)`; a `BTreeMap` so
    /// every flush is in ascending rank order.
    latest: std::collections::BTreeMap<usize, (Bytes, bool)>,
    /// Whether anything changed since the last successful flush.
    dirty: bool,
    /// Ranks whose subtotals are expected to flow through this rank.
    descendants: Vec<usize>,
    /// Ranks whose final flag has been flushed upstream.
    finals_flushed: std::collections::BTreeSet<usize>,
}

impl RelayBuffer {
    fn new(descendants: Vec<usize>) -> Self {
        Self {
            latest: std::collections::BTreeMap::new(),
            dirty: false,
            descendants,
            finals_flushed: std::collections::BTreeSet::new(),
        }
    }

    /// Whether this rank has relay duties at all.
    fn is_relay(&self) -> bool {
        !self.descendants.is_empty()
    }

    /// Replaces the stored payload for `rank` (cumulative subtotals:
    /// newest wins). The final flag is sticky — a retransmit after the
    /// final must not demote it.
    fn absorb(&mut self, rank: usize, payload: Bytes, is_final: bool) {
        let sticky = is_final || self.latest.get(&rank).is_some_and(|(_, f)| *f);
        self.latest.insert(rank, (payload, sticky));
        self.dirty = true;
    }

    /// One coalesced batch of everything held, in ascending rank order.
    fn encode(&self) -> Bytes {
        encode_batch(
            self.latest
                .iter()
                .map(|(&rank, (payload, fin))| (rank, *fin, &payload[..])),
        )
    }

    fn note_flushed(&mut self) {
        self.dirty = false;
        for (&rank, (_, fin)) in &self.latest {
            if *fin {
                self.finals_flushed.insert(rank);
            }
        }
    }

    /// Whether every descendant's final has been forwarded upstream —
    /// the relay's linger loop is done. Descendants that never report
    /// (crashed, never joined) keep this false; the linger loop exits
    /// on stop/disconnect instead.
    fn all_finals_forwarded(&self) -> bool {
        self.descendants
            .iter()
            .all(|d| self.finals_flushed.contains(d))
    }
}

/// Flushes the relay buffer upstream as one [`TAG_BATCH`], if dirty.
/// A vanished upstream relay degrades to the collector (retrying the
/// same cumulative state, which cannot double-count); a vanished
/// collector raises `lost_collector`.
fn flush_relay<C: Comm>(
    comm: &std::cell::RefCell<C>,
    parent: &std::cell::Cell<usize>,
    relay: &std::cell::RefCell<RelayBuffer>,
    lost_collector: &std::cell::Cell<bool>,
    spans: &SpanEmitter,
) -> Result<(), ParmoncError> {
    let mut rb = relay.borrow_mut();
    if !rb.dirty {
        return Ok(());
    }
    let sp = spans.start(SpanPhase::RelayMerge, None);
    let c = comm.borrow();
    let dest = parent.get();
    let mut sent = c.send_bytes(dest, TAG_BATCH, rb.encode());
    if matches!(sent, Err(MpiError::Disconnected)) && dest != 0 {
        parent.set(0);
        sent = c.send_bytes(0, TAG_BATCH, rb.encode());
    }
    let result = match sent {
        Ok(()) => {
            rb.note_flushed();
            Ok(())
        }
        Err(MpiError::Disconnected) => {
            lost_collector.set(true);
            Ok(())
        }
        Err(e) => Err(e.into()),
    };
    spans.end(sp, SpanPhase::RelayMerge);
    result
}

/// One control/relay service pass, shared by the in-simulation poll
/// and the post-final linger loop: drain every pending envelope —
/// control orders from rank 0, subtotals from the subtree — then flush
/// one coalesced batch upstream if anything changed.
#[allow(clippy::too_many_arguments)] // internal plumbing
fn relay_service<C: Comm>(
    comm: &std::cell::RefCell<C>,
    rank: usize,
    size: usize,
    parent: &std::cell::Cell<usize>,
    relay: &std::cell::RefCell<RelayBuffer>,
    lost_collector: &std::cell::Cell<bool>,
    spans: &SpanEmitter,
) -> Result<WorkerControl, ParmoncError> {
    let mut ctl = WorkerControl::default();
    {
        let mut c = comm.borrow_mut();
        while let Some(env) = c.try_recv(None, None) {
            match env.tag {
                // Control is always the collector's voice; a routed
                // frame from a sibling cannot stop or extend us.
                TAG_STOP if env.source == 0 => ctl.stop = true,
                TAG_EXTEND if env.source == 0 && env.payload.len() == 8 => {
                    let mut buf = [0u8; 8];
                    buf.copy_from_slice(&env.payload);
                    ctl.extra += u64::from_le_bytes(buf);
                }
                TAG_REPARENT if env.source == 0 && env.payload.len() == 8 => {
                    let mut buf = [0u8; 8];
                    buf.copy_from_slice(&env.payload);
                    let new_parent = u64::from_le_bytes(buf) as usize;
                    parent.set(if new_parent == rank || new_parent >= size {
                        0
                    } else {
                        new_parent
                    });
                }
                TAG_SUBTOTAL | TAG_FINAL if env.source != 0 && env.source < size => {
                    relay
                        .borrow_mut()
                        .absorb(env.source, env.payload, env.tag == TAG_FINAL);
                }
                TAG_BATCH if env.source != 0 => {
                    // A deeper tree: a child relay's own coalesced
                    // batch folds entry-by-entry into this one.
                    for entry in decode_batch(&env.payload)? {
                        if entry.rank != 0 && entry.rank < size {
                            relay
                                .borrow_mut()
                                .absorb(entry.rank, entry.payload, entry.is_final);
                        }
                    }
                }
                _ => {}
            }
        }
    }
    flush_relay(comm, parent, relay, lost_collector, spans)?;
    Ok(ctl)
}

#[allow(clippy::too_many_arguments)] // internal: one call site per backend
fn worker_loop<C: Comm, R: Realize + ?Sized>(
    comm: C,
    config: &RunConfig,
    hierarchy: &StreamHierarchy,
    dir: &ResultsDir,
    realize: &R,
    start: Instant,
    monitor: &Monitor,
    faults: &FaultHandle,
    trace_spans: bool,
    parent: usize,
) -> Result<(), ParmoncError> {
    let rank = comm.rank();
    let size = comm.size();
    let crash_after = faults.crash_after(rank);
    let spans = SpanEmitter::new(monitor, rank, trace_spans);
    // `emit` only needs `&Communicator` (sends), while the control poll
    // needs `&mut`; a RefCell arbitrates between the closures, which
    // never run concurrently. A vanished collector (it aborted the run)
    // is never the worker's error: the worker just winds down.
    let comm = std::cell::RefCell::new(comm);
    let lost_collector = std::cell::Cell::new(false);
    // Where this rank's subtotals flow: rank 0 under a star, an
    // interior relay under a tree. Mutable — a vanished or reparented
    // relay degrades the route to the collector, never the estimate.
    let parent = std::cell::Cell::new(if parent == rank || parent >= size {
        0
    } else {
        parent
    });
    let relay =
        std::cell::RefCell::new(RelayBuffer::new(config.collection_plan().descendants(rank)));
    let finished = simulate_quota(
        rank,
        config,
        hierarchy,
        dir,
        realize,
        start,
        crash_after,
        &spans,
        |acc, compute_seconds, is_final| {
            // Skip event construction (and the timestamp it takes)
            // entirely when no monitor sink is attached — this runs
            // once per realization in the strictest exchange mode.
            if monitor.is_enabled() {
                monitor.emit(
                    Some(rank),
                    EventKind::Realizations {
                        completed: acc.count(),
                        compute_seconds,
                    },
                );
            }
            let tag = if is_final { TAG_FINAL } else { TAG_SUBTOTAL };
            let c = comm.borrow();
            let dest = parent.get();
            // Encode straight from the borrowed accumulator into a
            // recycled send buffer: no `acc.clone()`, and in steady
            // state no allocation either.
            let payload = Subtotal::encode_state_pooled(acc, compute_seconds, c.pool());
            match c.send_bytes(dest, tag, payload) {
                Ok(()) => Ok(dest == 0),
                Err(MpiError::Disconnected) if dest != 0 => {
                    // The relay is gone: degrade to reporting straight
                    // to the collector and retry once — the subtotal
                    // is cumulative, so the retry cannot double-count.
                    parent.set(0);
                    let payload = Subtotal::encode_state_pooled(acc, compute_seconds, c.pool());
                    match c.send_bytes(0, tag, payload) {
                        Ok(()) => Ok(true),
                        Err(MpiError::Disconnected) => {
                            lost_collector.set(true);
                            Ok(false)
                        }
                        Err(e) => Err(e.into()),
                    }
                }
                Err(MpiError::Disconnected) => {
                    lost_collector.set(true);
                    Ok(false)
                }
                Err(e) => Err(e.into()),
            }
        },
        // Heartbeats always run straight to rank 0 on every topology:
        // liveness is judged centrally, and a relay must not be able
        // to silence its whole subtree by dying.
        || match comm.borrow().send(0, TAG_HEARTBEAT, &[]) {
            Ok(()) => Ok(()),
            Err(MpiError::Disconnected) => {
                lost_collector.set(true);
                Ok(())
            }
            Err(e) => Err(e.into()),
        },
        || {
            if lost_collector.get() {
                return Ok(WorkerControl {
                    stop: true,
                    ..WorkerControl::default()
                });
            }
            relay_service(&comm, rank, size, &parent, &relay, &lost_collector, &spans)
        },
    )?;
    // A relay's own quota is done, but descendants may still be
    // computing and their subtotals flow through this rank: keep
    // servicing until every descendant's final is flushed upstream,
    // the collector says stop, or the uplink goes away (teardown or
    // loss). Heartbeats keep this rank visible to the liveness plane
    // meanwhile — a silent relay would be declared lost and its
    // children reparented for nothing.
    if finished.is_some() && relay.borrow().is_relay() {
        let mut last_beat = Instant::now();
        while !relay.borrow().all_finals_forwarded() && !lost_collector.get() {
            if config.deadline.is_some_and(|d| start.elapsed() >= d) {
                break;
            }
            let ctl = relay_service(&comm, rank, size, &parent, &relay, &lost_collector, &spans)?;
            if ctl.stop {
                break;
            }
            if last_beat.elapsed() >= config.heartbeat_period {
                match comm.borrow().send(0, TAG_HEARTBEAT, &[]) {
                    Ok(()) => last_beat = Instant::now(),
                    Err(MpiError::Disconnected) => break,
                    Err(e) => return Err(e.into()),
                }
            }
            std::thread::sleep(RELAY_LINGER_POLL);
        }
    }
    if finished.is_none() {
        // Scripted crash: record it, then vanish without a final
        // message — the collector must notice via the liveness sweep.
        let after = crash_after.unwrap_or(0);
        monitor.emit(
            Some(rank),
            EventKind::FaultInjected {
                fault: FaultKind::RankCrash.as_str().to_string(),
                detail: Some(after),
            },
        );
        faults.note_crash(rank, after);
    }
    Ok(())
}

/// Collector-side liveness and reassignment bookkeeping.
struct Liveness {
    /// Whether each rank is believed alive (rank 0 always is).
    alive: Vec<bool>,
    /// When the collector last heard *anything* from each rank.
    last_heard: Vec<Instant>,
    /// Extra realizations assigned to each rank beyond its base quota.
    extended: Vec<u64>,
    /// Ranks declared dead, in detection order.
    lost: Vec<usize>,
    /// Total realizations moved by reassignment.
    reassigned: u64,
    /// Reassigned realizations the collector itself must absorb.
    self_extra: u64,
}

impl Liveness {
    fn new(size: usize) -> Self {
        Self {
            alive: vec![true; size],
            last_heard: vec![Instant::now(); size],
            extended: vec![0; size],
            lost: Vec::new(),
            reassigned: 0,
            self_extra: 0,
        }
    }

    fn heard_from(&mut self, rank: usize, now: Instant) {
        self.last_heard[rank] = now;
    }
}

/// What `rank0_loop` hands back to `run`.
struct CollectorOutcome {
    state: CollectorState,
    lost_workers: Vec<usize>,
    reassigned_realizations: u64,
    /// Error-bar trajectory recorder, handed back so the final
    /// averaging pass in [`run`] lands in the same trajectory.
    convergence: ConvergenceTracker,
}

/// Splits `budget` realizations dropped by `from` as evenly as possible
/// across surviving workers that are still simulating; shares that
/// cannot be delivered (no survivors, or the survivor exited between
/// the liveness check and the send) fall to the collector itself.
fn reassign<C: Comm>(
    live: &mut Liveness,
    from: usize,
    budget: u64,
    finals: &[bool],
    comm: &C,
    monitor: &Monitor,
) {
    live.reassigned += budget;
    let survivors: Vec<usize> = (1..live.alive.len())
        .filter(|&m| m != from && live.alive[m] && !finals[m])
        .collect();
    let mut self_share = 0u64;
    if survivors.is_empty() {
        self_share = budget;
    } else {
        let per = budget / survivors.len() as u64;
        let mut rem = budget % survivors.len() as u64;
        for &m in &survivors {
            let share = per + u64::from(rem > 0);
            rem = rem.saturating_sub(1);
            if share == 0 {
                continue;
            }
            match comm.send(m, TAG_EXTEND, &share.to_le_bytes()) {
                Ok(()) => {
                    live.extended[m] += share;
                    monitor.emit(
                        Some(0),
                        EventKind::WorkReassigned {
                            from_worker: from,
                            to_worker: m,
                            realizations: share,
                        },
                    );
                }
                Err(_) => self_share += share,
            }
        }
    }
    if self_share > 0 {
        live.extended[0] += self_share;
        live.self_extra += self_share;
        monitor.emit(
            Some(0),
            EventKind::WorkReassigned {
                from_worker: from,
                to_worker: 0,
                realizations: self_share,
            },
        );
    }
}

/// Declares `dead` lost: keeps its last cumulative subtotal (those
/// realizations are complete and unbiased), reassigns the rest of its
/// budget, and records the loss — or fails the whole run when the
/// configuration demands that. Under a tree topology the dead rank may
/// have been a relay: its still-live children are reparented straight
/// to the collector so their subtotals keep flowing (cumulative
/// semantics make anything buffered in the dead relay redundant with
/// the child's next send).
#[allow(clippy::too_many_arguments)] // internal plumbing
fn declare_lost<C: Comm>(
    live: &mut Liveness,
    dead: usize,
    config: &RunConfig,
    plan: &CollectionPlan,
    state: &CollectorState,
    finals: &[bool],
    comm: &C,
    monitor: &Monitor,
    stopping: bool,
) -> Result<(), ParmoncError> {
    let received = state.latest[dead].as_ref().map_or(0, |s| s.acc.count());
    if config.fail_on_worker_loss {
        return Err(ParmoncError::WorkerLost {
            rank: dead,
            received_realizations: received,
        });
    }
    live.alive[dead] = false;
    live.lost.push(dead);
    // On an elastic-membership substrate (TCP), the dead rank's lease
    // must never be granted again: its remaining budget is about to be
    // reassigned, so a late joiner on this rank would double-count.
    comm.retire_rank(dead);
    monitor.emit(
        Some(0),
        EventKind::WorkerLost {
            worker: dead,
            received_realizations: received,
        },
    );
    for child in plan.children(dead) {
        if live.alive[child] && !finals[child] {
            // Best-effort: a child that cannot be reached will fall
            // back to the collector on its own Disconnected error.
            let _ = comm.send(child, TAG_REPARENT, &0u64.to_le_bytes());
        }
    }
    let budget = (config.quota(dead) + live.extended[dead]).saturating_sub(received);
    if budget > 0 && !stopping {
        reassign(live, dead, budget, finals, comm, monitor);
    }
    Ok(())
}

/// Sweeps for ranks that have gone quiet past the liveness timeout and
/// declares them lost. With `force`, every still-awaited rank is
/// declared immediately — used when the transport reports all senders
/// disconnected, so no further message can ever arrive.
#[allow(clippy::too_many_arguments)] // internal plumbing
fn check_liveness<C: Comm>(
    live: &mut Liveness,
    finals: &[bool],
    config: &RunConfig,
    plan: &CollectionPlan,
    state: &CollectorState,
    comm: &C,
    monitor: &Monitor,
    stopping: bool,
    force: bool,
    now: Instant,
) -> Result<(), ParmoncError> {
    let dead: Vec<usize> = (1..live.alive.len())
        .filter(|&m| {
            live.alive[m]
                && !finals[m]
                && (force
                    || now
                        .checked_duration_since(live.last_heard[m])
                        .is_some_and(|age| age >= config.liveness_timeout))
        })
        .collect();
    for m in dead {
        declare_lost(
            live, m, config, plan, state, finals, comm, monitor, stopping,
        )?;
    }
    Ok(())
}

/// Marks `rank`'s final received. A final from a rank that was
/// extended but fell short (the extension raced its exit) gets the
/// shortfall re-reassigned so the budget is never silently dropped;
/// base-quota shortfalls (deadline, stop broadcast) are left alone.
/// Idempotent at the call sites: a relay re-flushing a batch can
/// replay a final flag, so callers guard on `!finals[rank]`.
#[allow(clippy::too_many_arguments)] // internal plumbing
fn note_final<C: Comm>(
    rank: usize,
    state: &CollectorState,
    finals: &mut [bool],
    live: &mut Liveness,
    config: &RunConfig,
    comm: &C,
    monitor: &Monitor,
    start: Instant,
    stopping: bool,
) {
    finals[rank] = true;
    let count = state.latest[rank].as_ref().map_or(0, |s| s.acc.count());
    let expected = config.quota(rank) + live.extended[rank];
    let shortfall = expected.saturating_sub(count).min(live.extended[rank]);
    let deadline_passed = config.deadline.is_some_and(|d| start.elapsed() >= d);
    if shortfall > 0 && live.alive[rank] && !stopping && !deadline_passed {
        reassign(live, rank, shortfall, finals, comm, monitor);
    }
}

/// Folds one inbound envelope into the collector state. Returns `true`
/// for data messages (heartbeats only refresh liveness). Under a tree
/// topology the envelope may be a relay's [`TAG_BATCH`]: each entry is
/// credited to its *original* rank — liveness, subtotal, and final
/// alike — so the estimate and the loss accounting are independent of
/// how subtotals were routed.
#[allow(clippy::too_many_arguments)] // internal plumbing
fn collector_handle<C: Comm>(
    env: Envelope,
    state: &mut CollectorState,
    finals: &mut [bool],
    live: &mut Liveness,
    config: &RunConfig,
    comm: &C,
    monitor: &Monitor,
    start: Instant,
    stopping: bool,
    now: Instant,
) -> Result<bool, ParmoncError> {
    let source = env.source;
    live.heard_from(source, now);
    if env.tag == TAG_HEARTBEAT {
        return Ok(false);
    }
    if env.tag == TAG_BATCH {
        for entry in decode_batch(&env.payload)? {
            if entry.rank == 0 || entry.rank >= finals.len() || finals[entry.rank] {
                // After a rank's final, anything still in flight for it
                // is a relay's stale copy or a retransmitted final —
                // never newer state. Absorbing it could *regress* the
                // rank's cumulative subtotal when the final took a
                // different path (e.g. the hub's route fallback).
                continue;
            }
            // The entry's payload reached us via the relay, but it is
            // the origin rank's own recent subtotal: proof of life.
            live.heard_from(entry.rank, now);
            state.absorb(entry.rank, &entry.payload, now)?;
            if entry.is_final {
                note_final(
                    entry.rank, state, finals, live, config, comm, monitor, start, stopping,
                );
            }
            // Batch entry payloads alias one shared frame buffer —
            // never recycle them into the pool.
        }
        return Ok(true);
    }
    if finals[source] {
        comm.recycle(env.payload);
        return Ok(true);
    }
    let is_final = env.tag == TAG_FINAL;
    state.absorb(source, &env.payload, now)?;
    comm.recycle(env.payload);
    if is_final {
        note_final(
            source, state, finals, live, config, comm, monitor, start, stopping,
        );
    }
    Ok(true)
}

/// Notifies every worker of error-controlled stopping. A worker that
/// already sent its final and exited has dropped its inbox; that is
/// not an error for a stop notification.
fn broadcast_stop<C: Comm>(comm: &C, size: usize) -> Result<(), ParmoncError> {
    for dest in 1..size {
        match comm.send(dest, TAG_STOP, &[]) {
            Ok(()) | Err(MpiError::Disconnected) => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)] // internal: one call site per backend
#[allow(clippy::too_many_lines)]
fn rank0_loop<C: Comm, R: Realize + ?Sized>(
    comm: &mut C,
    config: &RunConfig,
    hierarchy: &StreamHierarchy,
    dir: &ResultsDir,
    baseline: MatrixAccumulator,
    realize: &R,
    start: Instant,
    monitor: &Monitor,
    faults: &FaultHandle,
    resume_own: Option<Subtotal>,
) -> Result<CollectorOutcome, ParmoncError> {
    let crash_after = faults.crash_after(0);
    let size = comm.size();
    let plan = config.collection_plan();
    let mut state = CollectorState::new(baseline, size);
    let mut finals = vec![false; size];
    let mut live = Liveness::new(size);
    let mut last_average = Instant::now();
    let mut tracker = SegmentTracker::new(monitor);
    let spans = SpanEmitter::new(monitor, 0, config.trace_spans);
    // Strictly read-only with respect to estimation: it observes
    // already-computed summaries, so estimates stay bit-identical with
    // the metrics plane on or off.
    let mut convergence = ConvergenceTracker::with_target(config.target_abs_error);

    // Rank 0 simulates its own quota inline, draining asynchronously
    // arriving worker messages between realizations and writing
    // periodic save-points every `peraver`.
    let mut quota = config.quota(0);
    // On a crash-resume, rank 0's own progress comes back from its
    // worker subtotal file: `r` realizations are already accumulated,
    // so the stream cursor starts at realization `r` — the exact
    // coordinates the crashed run would have simulated next — and the
    // continuation is bit-identical. (A stale file merely replays some
    // realizations; same coordinates, same values, replaced not
    // summed.)
    let (mut acc, mut compute_seconds) = match resume_own {
        Some(own) => (own.acc, own.compute_seconds),
        None => (MatrixAccumulator::new(config.nrow, config.ncol)?, 0.0),
    };
    let mut r: u64 = acc.count();
    let mut out = vec![0.0f64; config.nrow * config.ncol];
    let mut last_pass = Instant::now();
    let mut last_file_write: Option<Instant> = None;
    let mut stop_broadcast = false;
    // Incremental stream cursor for rank 0's own simulation; persists
    // across the main loop *and* the reassignment-absorbing loop below,
    // so every advance is one 128-bit multiply instead of three
    // modpows, on exactly the same stream coordinates.
    let sp_position = spans.start(SpanPhase::StreamPosition, None);
    let mut cursor = hierarchy.cursor(StreamId::new(config.seqnum, 0, r))?;
    spans.end(sp_position, SpanPhase::StreamPosition);

    loop {
        // Absorb work reassigned to the collector itself: it continues
        // on its own stream coordinates past its original quota, so no
        // subsequence is reused.
        quota += std::mem::take(&mut live.self_extra);
        if r >= quota || stop_broadcast {
            break;
        }
        if let Some(deadline) = config.deadline {
            if start.elapsed() >= deadline {
                break;
            }
        }
        if crash_after.is_some_and(|n| r >= n) {
            // Scripted collector crash: record it, then vanish abruptly
            // — no stop broadcast, no final save-point. Workers ride
            // out the outage on their reconnect backoff; the last
            // save-point, lease table, and worker files on disk are
            // exactly what a `resume_listen` restart picks up.
            let after = crash_after.unwrap_or(0);
            monitor.emit(
                Some(0),
                EventKind::FaultInjected {
                    fault: FaultKind::RankCrash.as_str().to_string(),
                    detail: Some(after),
                },
            );
            faults.note_crash(0, after);
            return Err(ParmoncError::CollectorCrashed { after });
        }
        tracker.switch(CollectorActivity::Computing);
        out.fill(0.0);
        let mut stream = cursor.next_stream()?;
        let t0 = Instant::now();
        realize.realize(&mut stream, &mut out);
        // The one post-realization clock read; every time-gated check
        // below reuses it, so the runtime adds exactly two `Instant`
        // syscalls per realization regardless of exchange mode.
        let now = Instant::now();
        compute_seconds += now.duration_since(t0).as_secs_f64();
        acc.add(&out)?;
        r += 1;

        let due = match config.exchange {
            Exchange::EveryRealization => true,
            Exchange::Periodic => now.duration_since(last_pass) >= config.pass_period,
        };
        if due {
            if monitor.is_enabled() {
                monitor.emit(
                    Some(0),
                    EventKind::Realizations {
                        completed: acc.count(),
                        compute_seconds,
                    },
                );
            }
            state.update_own(&acc, compute_seconds, now);
            if last_file_write.is_none_or(|t| now.duration_since(t) >= WORKER_FILE_PERIOD) {
                dir.save_worker_state(0, &acc, compute_seconds)?;
                last_file_write = Some(now);
            }
            last_pass = now;
        }
        let drain_started = monitor.is_enabled().then(Instant::now);
        let mut received = 0usize;
        while let Some(env) = comm.try_recv(None, None) {
            if collector_handle(
                env,
                &mut state,
                &mut finals,
                &mut live,
                config,
                &*comm,
                monitor,
                start,
                stop_broadcast,
                now,
            )? {
                received += 1;
            }
        }
        if received > 0 {
            if let Some(t) = drain_started {
                tracker.punch(CollectorActivity::Receiving, t);
            }
        }
        check_liveness(
            &mut live,
            &finals,
            config,
            &plan,
            &state,
            &*comm,
            monitor,
            stop_broadcast,
            false,
            now,
        )?;
        if now.duration_since(last_average) >= config.averaging_period {
            // The running rank-0 subtotal must be visible to the
            // save-point (and to the error-control check below) even
            // between passes.
            state.update_own(&acc, compute_seconds, now);
            let save_started = Instant::now();
            let eps_max = save_point(
                dir,
                config,
                &state,
                start,
                monitor,
                &spans,
                &mut convergence,
            )?;
            tracker.punch(CollectorActivity::Saving, save_started);
            last_average = Instant::now();
            if let Some(target) = config.target_abs_error {
                if eps_max <= target && !stop_broadcast {
                    broadcast_stop(comm, size)?;
                    stop_broadcast = true;
                }
            }
        }
    }
    if monitor.is_enabled() {
        monitor.emit(
            Some(0),
            EventKind::Realizations {
                completed: acc.count(),
                compute_seconds,
            },
        );
    }
    dir.save_worker_state(0, &acc, compute_seconds)?;
    state.update_own(&acc, compute_seconds, Instant::now());
    finals[0] = true;

    // Wait for every *live* worker's final message, sweeping for dead
    // ranks between arrivals instead of blocking forever, and absorbing
    // any reassignments that land on the collector itself.
    let sweep = config.heartbeat_period;
    loop {
        if live.self_extra > 0 {
            let deadline_passed = config.deadline.is_some_and(|d| start.elapsed() >= d);
            if stop_broadcast || deadline_passed {
                // The run is winding down anyway; forfeit the budget.
                live.self_extra = 0;
            } else {
                let extra = std::mem::take(&mut live.self_extra);
                tracker.switch(CollectorActivity::Computing);
                for _ in 0..extra {
                    if config.deadline.is_some_and(|d| start.elapsed() >= d) {
                        break;
                    }
                    out.fill(0.0);
                    let mut stream = cursor.next_stream()?;
                    let t0 = Instant::now();
                    realize.realize(&mut stream, &mut out);
                    compute_seconds += t0.elapsed().as_secs_f64();
                    acc.add(&out)?;
                }
                if monitor.is_enabled() {
                    monitor.emit(
                        Some(0),
                        EventKind::Realizations {
                            completed: acc.count(),
                            compute_seconds,
                        },
                    );
                }
                dir.save_worker_state(0, &acc, compute_seconds)?;
                state.update_own(&acc, compute_seconds, Instant::now());
                continue;
            }
        }
        if !finals.iter().zip(&live.alive).any(|(f, a)| *a && !*f) {
            break;
        }
        tracker.switch(CollectorActivity::Waiting);
        match comm.recv_timeout(None, None, sweep) {
            Ok(Some(env)) => {
                let received_at = Instant::now();
                if collector_handle(
                    env,
                    &mut state,
                    &mut finals,
                    &mut live,
                    config,
                    &*comm,
                    monitor,
                    start,
                    stop_broadcast,
                    received_at,
                )? {
                    tracker.punch(CollectorActivity::Receiving, received_at);
                }
            }
            Ok(None) => {}
            // Every rank that could still send has exited: nothing more
            // can arrive, so every awaited rank is dead right now.
            Err(MpiError::Disconnected) => {
                check_liveness(
                    &mut live,
                    &finals,
                    config,
                    &plan,
                    &state,
                    &*comm,
                    monitor,
                    stop_broadcast,
                    true,
                    Instant::now(),
                )?;
            }
            Err(e) => return Err(e.into()),
        }
        check_liveness(
            &mut live,
            &finals,
            config,
            &plan,
            &state,
            &*comm,
            monitor,
            stop_broadcast,
            false,
            Instant::now(),
        )?;
        if last_average.elapsed() >= config.averaging_period {
            let save_started = Instant::now();
            let eps_max = save_point(
                dir,
                config,
                &state,
                start,
                monitor,
                &spans,
                &mut convergence,
            )?;
            tracker.punch(CollectorActivity::Saving, save_started);
            last_average = Instant::now();
            if let Some(target) = config.target_abs_error {
                if eps_max <= target && !stop_broadcast {
                    broadcast_stop(comm, size)?;
                    stop_broadcast = true;
                }
            }
        }
    }
    // Drain any stragglers (a worker may have sent subtotals after the
    // message we processed last; cumulative semantics make the newest
    // message authoritative).
    let drain_started = Instant::now();
    let mut drained = false;
    while let Some(env) = comm.try_recv(None, None) {
        if env.tag == TAG_HEARTBEAT {
            continue;
        }
        if env.tag == TAG_BATCH {
            // A relay's last coalesced flush: credit each entry to its
            // origin rank — unless that rank's final is already folded
            // in, which makes the entry stale by definition. Entry
            // payloads alias the batch frame — no recycling.
            for entry in decode_batch(&env.payload)? {
                if entry.rank == 0 || entry.rank >= size || finals[entry.rank] {
                    continue;
                }
                state.absorb(entry.rank, &entry.payload, drain_started)?;
            }
            drained = true;
            continue;
        }
        if env.source < size && !finals[env.source] {
            state.absorb(env.source, &env.payload, drain_started)?;
            drained = true;
        }
        comm.recycle(env.payload);
    }
    if drained {
        tracker.punch(CollectorActivity::Receiving, drain_started);
    }
    tracker.finish();
    Ok(CollectorOutcome {
        state,
        lost_workers: live.lost,
        reassigned_realizations: live.reassigned,
        convergence,
    })
}

/// Builds the collector's [`EventKind::CollectorSegment`] timeline,
/// coalescing consecutive segments of the same activity so that a tight
/// compute loop emits one segment, not one per realization.
struct SegmentTracker<'a> {
    monitor: &'a Monitor,
    /// Currently open segment: (activity, start in monitor time).
    current: Option<(CollectorActivity, f64)>,
}

impl<'a> SegmentTracker<'a> {
    fn new(monitor: &'a Monitor) -> Self {
        Self {
            monitor,
            current: None,
        }
    }

    fn emit_segment(&self, activity: CollectorActivity, start_s: f64, end_s: f64) {
        self.monitor.emit(
            Some(0),
            EventKind::CollectorSegment {
                activity,
                start_s,
                end_s,
            },
        );
    }

    /// The collector is now doing `activity`; a no-op if it already
    /// was, otherwise closes the open segment.
    fn switch(&mut self, activity: CollectorActivity) {
        if !self.monitor.is_enabled() {
            return;
        }
        let now = self.monitor.elapsed_s();
        match self.current {
            Some((open, _)) if open == activity => {}
            Some((open, started)) => {
                self.emit_segment(open, started, now);
                self.current = Some((activity, now));
            }
            None => self.current = Some((activity, now)),
        }
    }

    /// Records a completed `activity` span from `since` until now,
    /// truncating (or replacing) the open segment. Used for bursts —
    /// drains that actually received messages, save-point writes —
    /// whose start is only known in hindsight.
    fn punch(&mut self, activity: CollectorActivity, since: Instant) {
        if !self.monitor.is_enabled() {
            return;
        }
        let now = self.monitor.elapsed_s();
        let from = (now - since.elapsed().as_secs_f64()).max(0.0);
        if let Some((open, started)) = self.current.take() {
            if from > started {
                self.emit_segment(open, started, from);
            }
        }
        self.emit_segment(activity, from, now);
    }

    /// Closes the open segment, if any, at the current time.
    fn finish(mut self) {
        if let Some((open, started)) = self.current.take() {
            self.emit_segment(open, started, self.monitor.elapsed_s());
        }
    }
}

/// Periodic save-point: average everything received so far and rewrite
/// the result files (the paper's "periodically calculates and saves in
/// files the subtotal results"). Returns the current `eps_max` so the
/// caller can apply error-controlled stopping.
#[allow(clippy::too_many_arguments)] // internal plumbing
fn save_point(
    dir: &ResultsDir,
    config: &RunConfig,
    state: &CollectorState,
    start: Instant,
    monitor: &Monitor,
    spans: &SpanEmitter,
    convergence: &mut ConvergenceTracker,
) -> Result<f64, ParmoncError> {
    let sp_merge = spans.start(SpanPhase::CollectorMerge, None);
    let pass_started = Instant::now();
    let max_age = state.max_snapshot_age();
    let total = state.total()?;
    let summary = total.summary();
    let new_volume = state.new_volume();
    let mean_time = if new_volume == 0 {
        0.0
    } else {
        state.compute_seconds() / new_volume as f64
    };
    let _ = start; // wall-clock kept for symmetry with the final report
    let log = LogReport {
        sample_volume: total.count(),
        mean_time_per_realization: mean_time,
        eps_max: summary.eps_max,
        rho_max: summary.rho_max,
        sigma2_max: summary.sigma2_max,
        processors: config.processors,
        seqnum: config.seqnum,
    };
    let save_started = Instant::now();
    let sp_ck = spans.start(SpanPhase::Checkpoint, Some(sp_merge));
    dir.save_results(&summary, &log)?;
    dir.save_checkpoint(&total)?;
    spans.end(sp_ck, SpanPhase::Checkpoint);
    if monitor.is_enabled() {
        monitor.emit(
            Some(0),
            EventKind::SavePoint {
                volume: total.count(),
                duration_seconds: save_started.elapsed().as_secs_f64(),
            },
        );
        monitor.emit(
            Some(0),
            EventKind::AveragingPass {
                volume: total.count(),
                duration_seconds: pass_started.elapsed().as_secs_f64(),
                eps_max: Some(summary.eps_max),
                max_snapshot_age_seconds: max_age,
            },
        );
    }
    spans.end(sp_merge, SpanPhase::CollectorMerge);
    // A near-empty sample reports eps_max = 0 vacuously; never let it
    // trigger error-controlled stopping.
    let eps_max = if total.count() < 2 {
        f64::INFINITY
    } else {
        summary.eps_max
    };
    if monitor.is_enabled() {
        convergence.observe(
            monitor,
            Some(0),
            total.count(),
            &summary.means,
            &summary.abs_errors,
            eps_max,
        );
    }
    Ok(eps_max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::realize::RealizeFn;
    use std::path::PathBuf;

    fn tempdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("parmonc-runner-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn uniform_mean() -> RealizeFn<impl Fn(&mut parmonc_rng::RealizationStream, &mut [f64])> {
        RealizeFn::new(|rng, out| {
            for o in out.iter_mut() {
                *o = rng.next_f64();
            }
        })
    }

    #[test]
    fn single_processor_run_estimates_uniform_mean() {
        let dir = tempdir("single");
        let report = Parmonc::builder(2, 2)
            .max_sample_volume(4000)
            .output_dir(&dir)
            .run(uniform_mean())
            .unwrap();
        assert_eq!(report.total_volume, 4000);
        assert_eq!(report.new_volume, 4000);
        assert_eq!(report.resumed_volume, 0);
        assert_eq!(report.worker_volumes, vec![4000]);
        for m in &report.summary.means {
            assert!((m - 0.5).abs() < 0.03, "mean {m}");
        }
        assert!(report.summary.eps_max > 0.0);
    }

    #[test]
    fn multi_processor_volume_is_exact() {
        let dir = tempdir("multi");
        let report = Parmonc::builder(1, 1)
            .max_sample_volume(1003)
            .processors(4)
            .output_dir(&dir)
            .run(uniform_mean())
            .unwrap();
        assert_eq!(report.total_volume, 1003);
        assert_eq!(report.worker_volumes.iter().sum::<u64>(), 1003);
        assert_eq!(report.worker_volumes.len(), 4);
        // Quota balancing: 251, 251, 251, 250.
        assert_eq!(*report.worker_volumes.iter().max().unwrap(), 251);
    }

    #[test]
    fn parallel_run_matches_merged_streams_deterministically() {
        // The estimate must be a pure function of (seqnum, M, maxsv):
        // run twice and compare bitwise.
        let d1 = tempdir("det1");
        let d2 = tempdir("det2");
        let r1 = Parmonc::builder(2, 1)
            .max_sample_volume(500)
            .processors(3)
            .seqnum(5)
            .output_dir(&d1)
            .run(uniform_mean())
            .unwrap();
        let r2 = Parmonc::builder(2, 1)
            .max_sample_volume(500)
            .processors(3)
            .seqnum(5)
            .output_dir(&d2)
            .run(uniform_mean())
            .unwrap();
        assert_eq!(r1.summary.means, r2.summary.means);
        assert_eq!(r1.summary.variances, r2.summary.variances);
    }

    #[test]
    fn files_exist_after_run() {
        let dir = tempdir("files");
        let report = Parmonc::builder(2, 2)
            .max_sample_volume(100)
            .processors(2)
            .output_dir(&dir)
            .run(uniform_mean())
            .unwrap();
        let rd = &report.results_dir;
        assert!(rd.func_path().is_file());
        assert!(rd.func_ci_path().is_file());
        assert!(rd.func_log_path().is_file());
        assert!(rd.checkpoint_path().is_file());
        assert!(rd.journal_path().is_file());
        // Worker files are folded into the checkpoint on clean exit.
        assert!(rd.load_worker_subtotals().unwrap().is_empty());
    }

    #[test]
    fn resume_accumulates_previous_results() {
        let dir = tempdir("resume");
        let first = Parmonc::builder(1, 1)
            .max_sample_volume(600)
            .processors(2)
            .seqnum(0)
            .output_dir(&dir)
            .run(uniform_mean())
            .unwrap();
        let second = Parmonc::builder(1, 1)
            .max_sample_volume(400)
            .processors(2)
            .seqnum(1)
            .resume(Resume::Resume)
            .output_dir(&dir)
            .run(uniform_mean())
            .unwrap();
        assert_eq!(second.resumed_volume, 600);
        assert_eq!(second.new_volume, 400);
        assert_eq!(second.total_volume, 1000);
        // The resumed mean is the volume-weighted average of both runs.
        let expected = (first.summary.means[0] * 600.0
            + (second.total_volume as f64 * second.summary.means[0]
                - first.summary.means[0] * 600.0))
            / 1000.0;
        assert!((second.summary.means[0] - expected).abs() < 1e-12);
        // And the error bound shrank with the larger volume.
        assert!(second.summary.eps_max < first.summary.eps_max);
    }

    #[test]
    fn resume_requires_existing_results() {
        let dir = tempdir("resume-missing");
        let err = Parmonc::builder(1, 1)
            .max_sample_volume(10)
            .resume(Resume::Resume)
            .output_dir(&dir)
            .run(uniform_mean())
            .unwrap_err();
        assert!(matches!(err, ParmoncError::NothingToResume { .. }));
    }

    #[test]
    fn resume_rejects_reused_seqnum() {
        let dir = tempdir("resume-seqnum");
        Parmonc::builder(1, 1)
            .max_sample_volume(10)
            .seqnum(3)
            .output_dir(&dir)
            .run(uniform_mean())
            .unwrap();
        let err = Parmonc::builder(1, 1)
            .max_sample_volume(10)
            .seqnum(3)
            .resume(Resume::Resume)
            .output_dir(&dir)
            .run(uniform_mean())
            .unwrap_err();
        assert!(matches!(err, ParmoncError::SeqnumAlreadyUsed { seqnum: 3 }));
    }

    #[test]
    fn resume_rejects_shape_change() {
        let dir = tempdir("resume-shape");
        Parmonc::builder(2, 2)
            .max_sample_volume(10)
            .seqnum(0)
            .output_dir(&dir)
            .run(uniform_mean())
            .unwrap();
        let err = Parmonc::builder(3, 2)
            .max_sample_volume(10)
            .seqnum(1)
            .resume(Resume::Resume)
            .output_dir(&dir)
            .run(uniform_mean())
            .unwrap_err();
        assert!(matches!(err, ParmoncError::ResumeShapeMismatch { .. }));
    }

    #[test]
    fn every_realization_exchange_mode_works() {
        let dir = tempdir("strict");
        let report = Parmonc::builder(1, 2)
            .max_sample_volume(300)
            .processors(4)
            .exchange(Exchange::EveryRealization)
            .output_dir(&dir)
            .run(uniform_mean())
            .unwrap();
        assert_eq!(report.total_volume, 300);
        for m in &report.summary.means {
            assert!((m - 0.5).abs() < 0.1);
        }
    }

    #[test]
    fn deadline_stops_early() {
        let dir = tempdir("deadline");
        let slow = RealizeFn::new(|rng, out| {
            std::thread::sleep(Duration::from_millis(5));
            out[0] = rng.next_f64();
        });
        let report = Parmonc::builder(1, 1)
            .max_sample_volume(1_000_000)
            .processors(2)
            .deadline(Duration::from_millis(150))
            .output_dir(&dir)
            .run(slow)
            .unwrap();
        assert!(report.new_volume > 0, "some realizations completed");
        assert!(
            report.new_volume < 1_000_000,
            "deadline must stop the run early"
        );
        // The files still reflect what was simulated.
        assert!(report.results_dir.checkpoint_path().is_file());
    }

    #[test]
    fn mean_time_per_realization_is_positive() {
        let dir = tempdir("tau");
        let report = Parmonc::builder(1, 1)
            .max_sample_volume(200)
            .processors(2)
            .output_dir(&dir)
            .run(uniform_mean())
            .unwrap();
        assert!(report.mean_time_per_realization >= 0.0);
        assert!(report.elapsed > Duration::ZERO);
    }

    #[test]
    fn error_controlled_stopping_halts_before_maxsv() {
        // eps for U(0,1) is 3*sqrt(1/12)/sqrt(L) ≈ 0.866/sqrt(L):
        // target 0.02 needs L ≈ 1900 — far below maxsv = 10^6.
        let dir = tempdir("error-stop");
        let report = Parmonc::builder(1, 1)
            .max_sample_volume(1_000_000)
            .processors(2)
            .target_abs_error(0.02)
            .pass_period(Duration::ZERO)
            .averaging_period(Duration::ZERO)
            .output_dir(&dir)
            .run(uniform_mean())
            .unwrap();
        assert!(
            report.new_volume < 1_000_000,
            "must stop early, got {}",
            report.new_volume
        );
        assert!(
            report.new_volume >= 1_000,
            "needs enough data for the target"
        );
        assert!(
            report.summary.eps_max <= 0.021,
            "target met: eps {}",
            report.summary.eps_max
        );
    }

    #[test]
    fn error_target_unreachable_runs_to_maxsv() {
        let dir = tempdir("error-stop-never");
        let report = Parmonc::builder(1, 1)
            .max_sample_volume(2_000)
            .processors(2)
            .target_abs_error(1e-12)
            .pass_period(Duration::ZERO)
            .averaging_period(Duration::ZERO)
            .output_dir(&dir)
            .run(uniform_mean())
            .unwrap();
        assert_eq!(report.new_volume, 2_000);
    }

    #[test]
    fn invalid_error_target_rejected() {
        let err = Parmonc::builder(1, 1)
            .max_sample_volume(10)
            .target_abs_error(0.0)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("target_abs_error"));
    }

    #[test]
    fn worker_crash_degrades_gracefully() {
        use parmonc_faults::FaultPlan;
        let dir = tempdir("crash");
        let report = Parmonc::builder(1, 1)
            .max_sample_volume(2000)
            .processors(4)
            .faults(FaultPlan::new(42).crash_rank(2, 10))
            .heartbeat_period(Duration::from_millis(10))
            .liveness_timeout(Duration::from_millis(100))
            .output_dir(&dir)
            .run(uniform_mean())
            .unwrap();
        assert_eq!(report.lost_workers, vec![2]);
        assert_eq!(report.reassigned_realizations, 500);
        // The dead rank's whole budget was made up elsewhere.
        assert_eq!(report.new_volume, 2000);
        assert!((report.summary.means[0] - 0.5).abs() < 0.05);
    }

    #[test]
    fn worker_loss_can_fail_the_run() {
        use parmonc_faults::FaultPlan;
        let dir = tempdir("crash-strict");
        let err = Parmonc::builder(1, 1)
            .max_sample_volume(2000)
            .processors(4)
            .faults(FaultPlan::new(42).crash_rank(2, 10))
            .heartbeat_period(Duration::from_millis(10))
            .liveness_timeout(Duration::from_millis(100))
            .fail_on_worker_loss()
            .output_dir(&dir)
            .run(uniform_mean())
            .unwrap_err();
        assert!(matches!(err, ParmoncError::WorkerLost { rank: 2, .. }));
    }

    #[test]
    fn crash_run_emits_fault_events() {
        use parmonc_faults::FaultPlan;
        let dir = tempdir("crash-monitored");
        let report = Parmonc::builder(1, 1)
            .max_sample_volume(1200)
            .processors(3)
            .faults(FaultPlan::new(9).crash_rank(1, 5))
            .heartbeat_period(Duration::from_millis(10))
            .liveness_timeout(Duration::from_millis(100))
            .monitor()
            .output_dir(&dir)
            .run(uniform_mean())
            .unwrap();
        let summary = report.monitor.expect("monitored run");
        assert_eq!(summary.workers_lost, 1);
        assert!(summary.faults_injected >= 1, "rank_crash must be recorded");
        assert_eq!(summary.reassigned_realizations, 400);
        assert_eq!(report.new_volume, 1200);
    }

    #[test]
    fn message_drops_do_not_bias_the_estimate() {
        use parmonc_faults::FaultPlan;
        let dir = tempdir("drops");
        let report = Parmonc::builder(1, 1)
            .max_sample_volume(2000)
            .processors(4)
            .exchange(Exchange::EveryRealization)
            .faults(FaultPlan::new(1234).drop_fraction(0.05))
            .heartbeat_period(Duration::from_millis(10))
            .liveness_timeout(Duration::from_millis(100))
            .output_dir(&dir)
            .run(uniform_mean())
            .unwrap();
        // Cumulative subtotals make drops harmless; lost finals are
        // detected and their shortfall re-simulated, so the volume can
        // only meet or (via duplicated extensions) exceed the target.
        assert!(
            report.new_volume >= 2000,
            "volume {} must reach the target",
            report.new_volume
        );
        assert!((report.summary.means[0] - 0.5).abs() < 0.05);
    }

    #[test]
    fn m1_equals_sum_of_stream_contributions() {
        // With M=2 the estimate uses processor streams 0 and 1;
        // verify against manually accumulating those same streams.
        let dir = tempdir("crosscheck");
        let report = Parmonc::builder(1, 1)
            .max_sample_volume(100)
            .processors(2)
            .seqnum(7)
            .output_dir(&dir)
            .run(uniform_mean())
            .unwrap();

        let h = StreamHierarchy::default();
        let mut manual = MatrixAccumulator::new(1, 1).unwrap();
        for rank in 0..2u64 {
            for r in 0..50u64 {
                let mut s = h.realization_stream(StreamId::new(7, rank, r)).unwrap();
                manual.add(&[s.next_f64()]).unwrap();
            }
        }
        let expected = manual.summary();
        assert!((report.summary.means[0] - expected.means[0]).abs() < 1e-15);
    }
}
