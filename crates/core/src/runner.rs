//! The parallel runner: the `parmoncc`/`parmoncf` engine
//! (paper Sections 2.2, 3.2).
//!
//! Every rank simulates realizations on its own leapfrogged processor
//! subsequence; rank 0 additionally plays the collector, draining
//! asynchronously arriving subtotal messages, averaging them by
//! formula (5) every `peraver`, and saving the result files as periodic
//! save-points. Workers ship their *cumulative* sums every `perpass`
//! (or after every realization in the performance-test mode) and always
//! finish with a final message, so the run terminates deterministically
//! when the total sample volume reaches `maxsv` or the wall-clock
//! deadline passes.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use parmonc_mpi::{Communicator, MpiError, World};
use parmonc_obs::{
    CollectorActivity, EventKind, JsonlSink, MemorySink, Monitor, MonitorSummary, RunMode,
};
use parmonc_rng::{StreamHierarchy, StreamId};
use parmonc_stats::report::LogReport;
use parmonc_stats::{MatrixAccumulator, MatrixSummary};

use crate::config::{Exchange, ParmoncBuilder, Resume, RunConfig};
use crate::error::{IoContext, ParmoncError};
use crate::files::{ExperimentRecord, ResultsDir};
use crate::messages::{Subtotal, TAG_FINAL, TAG_STOP, TAG_SUBTOTAL};
use crate::realize::Realize;

/// Entry point type: `Parmonc::builder(nrow, ncol)` starts configuring
/// a run, mirroring the argument list of `parmoncc`.
#[derive(Debug)]
pub struct Parmonc;

impl Parmonc {
    /// Starts building a run for realizations shaped `nrow × ncol`.
    #[must_use]
    pub fn builder(nrow: usize, ncol: usize) -> ParmoncBuilder {
        ParmoncBuilder::new(nrow, ncol)
    }
}

/// What a completed run reports back (everything `func_log.dat`
/// records, plus handles for inspection).
#[derive(Debug)]
pub struct RunReport {
    /// Averaged estimates with errors — the contents of
    /// `func.dat`/`func_ci.dat`.
    pub summary: MatrixSummary,
    /// Total sample volume on disk after the run (previous + new).
    pub total_volume: u64,
    /// Realizations simulated by *this* run.
    pub new_volume: u64,
    /// Volume inherited from the resumed previous simulation.
    pub resumed_volume: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Mean compute time per realization, seconds (the paper's τ_ζ).
    pub mean_time_per_realization: f64,
    /// Number of processors used.
    pub processors: usize,
    /// Per-worker realization counts (index = rank).
    pub worker_volumes: Vec<u64>,
    /// The results directory of the run.
    pub results_dir: ResultsDir,
    /// Folded monitor trace of the run; `Some` only when the run was
    /// built with [`ParmoncBuilder::monitor`]. The full event trace is
    /// at `parmonc_data/monitor/run_metrics.jsonl`.
    pub monitor: Option<MonitorSummary>,
}

/// Collector-side state: the latest cumulative subtotal per rank, and
/// when each arrived (for the monitor's snapshot-age metric).
struct CollectorState {
    baseline: MatrixAccumulator,
    latest: Vec<Option<Subtotal>>,
    updated_at: Vec<Option<Instant>>,
}

impl CollectorState {
    fn new(baseline: MatrixAccumulator, ranks: usize) -> Self {
        Self {
            baseline,
            latest: vec![None; ranks],
            updated_at: vec![None; ranks],
        }
    }

    fn update(&mut self, rank: usize, subtotal: Subtotal) {
        self.latest[rank] = Some(subtotal);
        self.updated_at[rank] = Some(Instant::now());
    }

    /// Age of the stalest per-rank snapshot folded into an averaging
    /// pass; `None` until at least one rank has reported.
    fn max_snapshot_age(&self) -> Option<f64> {
        self.updated_at
            .iter()
            .flatten()
            .map(|t| t.elapsed().as_secs_f64())
            .fold(None, |acc, age| Some(acc.map_or(age, |m: f64| m.max(age))))
    }

    /// Formula (5): total = baseline + Σ_m latest_m (cumulative sums, so
    /// replace-then-sum, never double counting).
    fn total(&self) -> Result<MatrixAccumulator, ParmoncError> {
        let mut total = self.baseline.clone();
        for sub in self.latest.iter().flatten() {
            total.merge(&sub.acc)?;
        }
        Ok(total)
    }

    fn new_volume(&self) -> u64 {
        self.latest.iter().flatten().map(|s| s.acc.count()).sum()
    }

    fn compute_seconds(&self) -> f64 {
        self.latest
            .iter()
            .flatten()
            .map(|s| s.compute_seconds)
            .sum()
    }
}

/// Validates resume preconditions and returns the baseline accumulator
/// plus its volume.
fn resume_baseline(
    config: &RunConfig,
    dir: &ResultsDir,
) -> Result<MatrixAccumulator, ParmoncError> {
    match config.resume {
        Resume::New => Ok(MatrixAccumulator::new(config.nrow, config.ncol)?),
        Resume::Resume => {
            let previous = dir
                .load_checkpoint()?
                .ok_or_else(|| ParmoncError::NothingToResume {
                    dir: dir.root().to_path_buf(),
                })?;
            if previous.shape() != (config.nrow, config.ncol) {
                return Err(ParmoncError::ResumeShapeMismatch {
                    on_disk: previous.shape(),
                    requested: (config.nrow, config.ncol),
                });
            }
            // The paper requires a fresh "experiments" subsequence on
            // resumption, otherwise the new realizations would repeat
            // the old base random numbers.
            if dir
                .read_experiments()?
                .iter()
                .any(|rec| rec.seqnum == config.seqnum)
            {
                return Err(ParmoncError::SeqnumAlreadyUsed {
                    seqnum: config.seqnum,
                });
            }
            Ok(previous)
        }
    }
}

/// Runs the simulation. This is the body behind
/// [`ParmoncBuilder::run`](crate::config::ParmoncBuilder::run).
///
/// # Errors
///
/// Propagates configuration, resume, I/O and transport errors.
pub fn run<R>(config: RunConfig, realize: R) -> Result<RunReport, ParmoncError>
where
    R: Realize + Sync,
{
    let start = Instant::now();
    let dir = ResultsDir::create(&config.output_dir)?;
    let baseline = resume_baseline(&config, &dir)?;
    let resumed_volume = baseline.count();

    dir.append_experiment(&ExperimentRecord {
        seqnum: config.seqnum,
        max_sample_volume: config.max_sample_volume,
        processors: config.processors,
        resumed: config.resume == Resume::Resume,
        volume_before: resumed_volume,
    })?;
    dir.save_baseline(&baseline)?;
    dir.clear_worker_subtotals()?;

    // The monitor is disabled (a no-op) unless the builder opted in, in
    // which case events stream to `monitor/run_metrics.jsonl` and into
    // an in-memory sink that feeds the end-of-run summary.
    let (monitor, memory) = if config.monitor {
        let sink = JsonlSink::create(dir.run_metrics_path())
            .io_ctx("creating monitor/run_metrics.jsonl")?;
        let memory = Arc::new(MemorySink::new());
        let monitor: Monitor = Monitor::new(vec![Box::new(sink), Box::new(Arc::clone(&memory))]);
        (monitor, Some(memory))
    } else {
        (Monitor::disabled(), None)
    };
    monitor.emit(
        None,
        EventKind::RunStarted {
            mode: RunMode::Threads,
            processors: config.processors,
            max_sample_volume: config.max_sample_volume,
            seqnum: Some(config.seqnum),
            nrow: Some(config.nrow),
            ncol: Some(config.ncol),
        },
    );

    let hierarchy = StreamHierarchy::new(config.leaps);
    let comms = World::communicators_monitored(config.processors, monitor.clone())?;

    // Shared slot for an error raised inside a rank (first one wins).
    let failure: Mutex<Option<ParmoncError>> = Mutex::new(None);
    let config = Arc::new(config);
    let realize = &realize;

    let collector_out: Mutex<Option<CollectorState>> = Mutex::new(None);

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for comm in comms {
            let config = Arc::clone(&config);
            let hierarchy = hierarchy.clone();
            let dir = dir.clone();
            let baseline = baseline.clone();
            let failure = &failure;
            let collector_out = &collector_out;
            let monitor = monitor.clone();
            handles.push(scope.spawn(move || {
                let result = if comm.rank() == 0 {
                    rank0_loop(
                        comm, &config, &hierarchy, &dir, baseline, realize, start, &monitor,
                    )
                    .map(|state| {
                        *collector_out.lock().unwrap() = Some(state);
                    })
                } else {
                    worker_loop(comm, &config, &hierarchy, &dir, realize, start, &monitor)
                };
                if let Err(e) = result {
                    failure.lock().unwrap().get_or_insert(e);
                }
            }));
        }
        for h in handles {
            if h.join().is_err() {
                failure
                    .lock()
                    .unwrap()
                    .get_or_insert(ParmoncError::Mpi(MpiError::RankPanicked {
                        rank: usize::MAX,
                        message: "a rank panicked".into(),
                    }));
            }
        }
    });

    if let Some(e) = failure.into_inner().unwrap() {
        return Err(e);
    }
    let state = collector_out
        .into_inner()
        .unwrap()
        .expect("rank 0 always produces collector state on success");

    // Final averaging and save. This path always runs (unlike the
    // in-loop save-points, which only fire when `averaging_period`
    // elapses), so every monitored run records at least one
    // averaging_pass and one save_point event.
    let pass_started = Instant::now();
    let max_age = state.max_snapshot_age();
    let total = state.total()?;
    let summary = total.summary();
    let new_volume = state.new_volume();
    let elapsed = start.elapsed();
    let mean_time = if new_volume == 0 {
        0.0
    } else {
        state.compute_seconds() / new_volume as f64
    };
    let log = LogReport {
        sample_volume: total.count(),
        mean_time_per_realization: mean_time,
        eps_max: summary.eps_max,
        rho_max: summary.rho_max,
        sigma2_max: summary.sigma2_max,
        processors: config.processors,
        seqnum: config.seqnum,
    };
    let save_started = Instant::now();
    dir.save_results(&summary, &log)?;
    dir.save_checkpoint(&total)?;
    dir.clear_worker_subtotals()?;
    if monitor.is_enabled() {
        monitor.emit(
            Some(0),
            EventKind::SavePoint {
                volume: total.count(),
                duration_seconds: save_started.elapsed().as_secs_f64(),
            },
        );
        monitor.emit(
            Some(0),
            EventKind::AveragingPass {
                volume: total.count(),
                duration_seconds: pass_started.elapsed().as_secs_f64(),
                eps_max: Some(summary.eps_max),
                max_snapshot_age_seconds: max_age,
            },
        );
    }

    let worker_volumes: Vec<u64> = state
        .latest
        .iter()
        .map(|s| s.as_ref().map_or(0, |s| s.acc.count()))
        .collect();

    let monitor_summary = memory.map(|memory| {
        // Count the collector's inbound traffic from the trace itself,
        // so run_completed agrees with the message_received lines.
        let (messages, bytes) = memory
            .snapshot()
            .iter()
            .fold((0u64, 0u64), |(m, b), ev| match ev.kind {
                EventKind::MessageReceived { bytes, .. } if ev.rank == Some(0) => {
                    (m + 1, b + bytes)
                }
                _ => (m, b),
            });
        monitor.emit(
            None,
            EventKind::RunCompleted {
                realizations: new_volume,
                t_comp_seconds: elapsed.as_secs_f64(),
                messages,
                bytes,
            },
        );
        monitor.flush();
        MonitorSummary::from_events(&memory.snapshot())
    });

    Ok(RunReport {
        total_volume: total.count(),
        new_volume,
        resumed_volume,
        summary,
        elapsed,
        mean_time_per_realization: mean_time,
        processors: config.processors,
        worker_volumes,
        results_dir: dir,
        monitor: monitor_summary,
    })
}

/// How often, at most, a worker rewrites its on-disk subtotal file.
const WORKER_FILE_PERIOD: Duration = Duration::from_millis(500);

/// The simulation loop common to every rank: simulate the quota,
/// periodically emitting cumulative subtotals via `emit`.
#[allow(clippy::too_many_arguments)] // internal: one call site per rank kind
fn simulate_quota<R: Realize + ?Sized>(
    rank: usize,
    config: &RunConfig,
    hierarchy: &StreamHierarchy,
    dir: &ResultsDir,
    realize: &R,
    start: Instant,
    mut emit: impl FnMut(&Subtotal, bool) -> Result<(), ParmoncError>,
    mut should_stop: impl FnMut() -> bool,
) -> Result<Subtotal, ParmoncError> {
    let quota = config.quota(rank);
    let mut acc = MatrixAccumulator::new(config.nrow, config.ncol)?;
    let mut out = vec![0.0f64; config.nrow * config.ncol];
    let mut compute_seconds = 0.0f64;
    let mut last_pass = Instant::now();
    let mut last_file_write: Option<Instant> = None;

    for r in 0..quota {
        if let Some(deadline) = config.deadline {
            if start.elapsed() >= deadline {
                break;
            }
        }
        if should_stop() {
            break;
        }
        out.fill(0.0);
        let mut stream =
            hierarchy.realization_stream(StreamId::new(config.seqnum, rank as u64, r))?;
        let t0 = Instant::now();
        realize.realize(&mut stream, &mut out);
        compute_seconds += t0.elapsed().as_secs_f64();
        acc.add(&out)?;

        let due = match config.exchange {
            Exchange::EveryRealization => true,
            Exchange::Periodic => last_pass.elapsed() >= config.pass_period,
        };
        if due && r + 1 < quota {
            let subtotal = Subtotal {
                acc: acc.clone(),
                compute_seconds,
            };
            emit(&subtotal, false)?;
            if last_file_write.is_none_or(|t| t.elapsed() >= WORKER_FILE_PERIOD) {
                dir.save_worker_subtotal(rank, &subtotal)?;
                last_file_write = Some(Instant::now());
            }
            last_pass = Instant::now();
        }
    }

    let final_subtotal = Subtotal {
        acc,
        compute_seconds,
    };
    dir.save_worker_subtotal(rank, &final_subtotal)?;
    emit(&final_subtotal, true)?;
    Ok(final_subtotal)
}

#[allow(clippy::too_many_arguments)] // internal: one call site
fn worker_loop<R: Realize + ?Sized>(
    comm: Communicator,
    config: &RunConfig,
    hierarchy: &StreamHierarchy,
    dir: &ResultsDir,
    realize: &R,
    start: Instant,
    monitor: &Monitor,
) -> Result<(), ParmoncError> {
    let rank = comm.rank();
    // `emit` only needs `&Communicator` (sends), while the stop probe
    // needs `&mut`; a RefCell arbitrates between the two closures,
    // which never run concurrently.
    let comm = std::cell::RefCell::new(comm);
    simulate_quota(
        rank,
        config,
        hierarchy,
        dir,
        realize,
        start,
        |sub, is_final| {
            monitor.emit(
                Some(rank),
                EventKind::Realizations {
                    completed: sub.acc.count(),
                    compute_seconds: sub.compute_seconds,
                },
            );
            let tag = if is_final { TAG_FINAL } else { TAG_SUBTOTAL };
            comm.borrow().send_bytes(0, tag, sub.encode())?;
            Ok(())
        },
        || {
            comm.borrow_mut()
                .try_recv(Some(0), Some(TAG_STOP))
                .is_some()
        },
    )?;
    Ok(())
}

#[allow(clippy::too_many_arguments)] // internal: one call site
#[allow(clippy::too_many_lines)]
fn rank0_loop<R: Realize + ?Sized>(
    mut comm: Communicator,
    config: &RunConfig,
    hierarchy: &StreamHierarchy,
    dir: &ResultsDir,
    baseline: MatrixAccumulator,
    realize: &R,
    start: Instant,
    monitor: &Monitor,
) -> Result<CollectorState, ParmoncError> {
    let size = comm.size();
    let mut state = CollectorState::new(baseline, size);
    let mut finals = vec![false; size];
    let mut last_average = Instant::now();
    let mut tracker = SegmentTracker::new(monitor);

    // Rank 0 simulates its own quota inline, draining asynchronously
    // arriving worker messages between realizations and writing
    // periodic save-points every `peraver`.
    let quota = config.quota(0);
    let mut acc = MatrixAccumulator::new(config.nrow, config.ncol)?;
    let mut out = vec![0.0f64; config.nrow * config.ncol];
    let mut compute_seconds = 0.0f64;
    let mut last_pass = Instant::now();
    let mut last_file_write: Option<Instant> = None;
    let mut stop_broadcast = false;

    for r in 0..quota {
        if let Some(deadline) = config.deadline {
            if start.elapsed() >= deadline {
                break;
            }
        }
        if stop_broadcast {
            break;
        }
        tracker.switch(CollectorActivity::Computing);
        out.fill(0.0);
        let mut stream = hierarchy.realization_stream(StreamId::new(config.seqnum, 0, r))?;
        let t0 = Instant::now();
        realize.realize(&mut stream, &mut out);
        compute_seconds += t0.elapsed().as_secs_f64();
        acc.add(&out)?;

        let due = match config.exchange {
            Exchange::EveryRealization => true,
            Exchange::Periodic => last_pass.elapsed() >= config.pass_period,
        };
        if due {
            monitor.emit(
                Some(0),
                EventKind::Realizations {
                    completed: acc.count(),
                    compute_seconds,
                },
            );
            state.update(
                0,
                Subtotal {
                    acc: acc.clone(),
                    compute_seconds,
                },
            );
            if last_file_write.is_none_or(|t| t.elapsed() >= WORKER_FILE_PERIOD) {
                dir.save_worker_subtotal(
                    0,
                    &Subtotal {
                        acc: acc.clone(),
                        compute_seconds,
                    },
                )?;
                last_file_write = Some(Instant::now());
            }
            last_pass = Instant::now();
        }
        let drain_started = Instant::now();
        if drain_messages(&mut comm, &mut state, &mut finals)? > 0 {
            tracker.punch(CollectorActivity::Receiving, drain_started);
        }
        if last_average.elapsed() >= config.averaging_period {
            // The running rank-0 subtotal must be visible to the
            // save-point (and to the error-control check below) even
            // between passes.
            state.update(
                0,
                Subtotal {
                    acc: acc.clone(),
                    compute_seconds,
                },
            );
            let save_started = Instant::now();
            let eps_max = save_point(dir, config, &state, start, monitor)?;
            tracker.punch(CollectorActivity::Saving, save_started);
            last_average = Instant::now();
            if let Some(target) = config.target_abs_error {
                if eps_max <= target && !stop_broadcast {
                    for dest in 1..size {
                        // A worker that already sent its final and
                        // exited has dropped its inbox; that is not an
                        // error for a stop notification.
                        match comm.send(dest, TAG_STOP, &[]) {
                            Ok(()) | Err(MpiError::Disconnected) => {}
                            Err(e) => return Err(e.into()),
                        }
                    }
                    stop_broadcast = true;
                }
            }
        }
    }
    let own_final = Subtotal {
        acc,
        compute_seconds,
    };
    monitor.emit(
        Some(0),
        EventKind::Realizations {
            completed: own_final.acc.count(),
            compute_seconds: own_final.compute_seconds,
        },
    );
    dir.save_worker_subtotal(0, &own_final)?;
    state.update(0, own_final);
    finals[0] = true;

    // Block until every worker's final message arrives.
    while finals.iter().any(|f| !f) {
        tracker.switch(CollectorActivity::Waiting);
        let env = comm.recv(None, None)?;
        let received_at = Instant::now();
        let sub = Subtotal::decode(env.payload)?;
        if env.tag == TAG_FINAL {
            finals[env.source] = true;
        }
        state.update(env.source, sub);
        tracker.punch(CollectorActivity::Receiving, received_at);
        if last_average.elapsed() >= config.averaging_period {
            let save_started = Instant::now();
            let eps_max = save_point(dir, config, &state, start, monitor)?;
            tracker.punch(CollectorActivity::Saving, save_started);
            last_average = Instant::now();
            if let Some(target) = config.target_abs_error {
                if eps_max <= target && !stop_broadcast {
                    for dest in 1..size {
                        // A worker that already sent its final and
                        // exited has dropped its inbox; that is not an
                        // error for a stop notification.
                        match comm.send(dest, TAG_STOP, &[]) {
                            Ok(()) | Err(MpiError::Disconnected) => {}
                            Err(e) => return Err(e.into()),
                        }
                    }
                    stop_broadcast = true;
                }
            }
        }
    }
    // Drain any stragglers (a worker may have sent subtotals after the
    // message we processed last; cumulative semantics make the newest
    // message authoritative).
    let drain_started = Instant::now();
    let mut drained = false;
    while let Some(env) = comm.try_recv(None, None) {
        let sub = Subtotal::decode(env.payload)?;
        state.update(env.source, sub);
        drained = true;
    }
    if drained {
        tracker.punch(CollectorActivity::Receiving, drain_started);
    }
    tracker.finish();
    Ok(state)
}

/// Drains all pending worker messages into the collector state.
/// Returns how many messages were received.
fn drain_messages(
    comm: &mut Communicator,
    state: &mut CollectorState,
    finals: &mut [bool],
) -> Result<usize, ParmoncError> {
    let mut received = 0;
    while let Some(env) = comm.try_recv(None, None) {
        let sub = Subtotal::decode(env.payload)?;
        if env.tag == TAG_FINAL {
            finals[env.source] = true;
        }
        state.update(env.source, sub);
        received += 1;
    }
    Ok(received)
}

/// Builds the collector's [`EventKind::CollectorSegment`] timeline,
/// coalescing consecutive segments of the same activity so that a tight
/// compute loop emits one segment, not one per realization.
struct SegmentTracker<'a> {
    monitor: &'a Monitor,
    /// Currently open segment: (activity, start in monitor time).
    current: Option<(CollectorActivity, f64)>,
}

impl<'a> SegmentTracker<'a> {
    fn new(monitor: &'a Monitor) -> Self {
        Self {
            monitor,
            current: None,
        }
    }

    fn emit_segment(&self, activity: CollectorActivity, start_s: f64, end_s: f64) {
        self.monitor.emit(
            Some(0),
            EventKind::CollectorSegment {
                activity,
                start_s,
                end_s,
            },
        );
    }

    /// The collector is now doing `activity`; a no-op if it already
    /// was, otherwise closes the open segment.
    fn switch(&mut self, activity: CollectorActivity) {
        if !self.monitor.is_enabled() {
            return;
        }
        let now = self.monitor.elapsed_s();
        match self.current {
            Some((open, _)) if open == activity => {}
            Some((open, started)) => {
                self.emit_segment(open, started, now);
                self.current = Some((activity, now));
            }
            None => self.current = Some((activity, now)),
        }
    }

    /// Records a completed `activity` span from `since` until now,
    /// truncating (or replacing) the open segment. Used for bursts —
    /// drains that actually received messages, save-point writes —
    /// whose start is only known in hindsight.
    fn punch(&mut self, activity: CollectorActivity, since: Instant) {
        if !self.monitor.is_enabled() {
            return;
        }
        let now = self.monitor.elapsed_s();
        let from = (now - since.elapsed().as_secs_f64()).max(0.0);
        if let Some((open, started)) = self.current.take() {
            if from > started {
                self.emit_segment(open, started, from);
            }
        }
        self.emit_segment(activity, from, now);
    }

    /// Closes the open segment, if any, at the current time.
    fn finish(mut self) {
        if let Some((open, started)) = self.current.take() {
            self.emit_segment(open, started, self.monitor.elapsed_s());
        }
    }
}

/// Periodic save-point: average everything received so far and rewrite
/// the result files (the paper's "periodically calculates and saves in
/// files the subtotal results"). Returns the current `eps_max` so the
/// caller can apply error-controlled stopping.
fn save_point(
    dir: &ResultsDir,
    config: &RunConfig,
    state: &CollectorState,
    start: Instant,
    monitor: &Monitor,
) -> Result<f64, ParmoncError> {
    let pass_started = Instant::now();
    let max_age = state.max_snapshot_age();
    let total = state.total()?;
    let summary = total.summary();
    let new_volume = state.new_volume();
    let mean_time = if new_volume == 0 {
        0.0
    } else {
        state.compute_seconds() / new_volume as f64
    };
    let _ = start; // wall-clock kept for symmetry with the final report
    let log = LogReport {
        sample_volume: total.count(),
        mean_time_per_realization: mean_time,
        eps_max: summary.eps_max,
        rho_max: summary.rho_max,
        sigma2_max: summary.sigma2_max,
        processors: config.processors,
        seqnum: config.seqnum,
    };
    let save_started = Instant::now();
    dir.save_results(&summary, &log)?;
    dir.save_checkpoint(&total)?;
    if monitor.is_enabled() {
        monitor.emit(
            Some(0),
            EventKind::SavePoint {
                volume: total.count(),
                duration_seconds: save_started.elapsed().as_secs_f64(),
            },
        );
        monitor.emit(
            Some(0),
            EventKind::AveragingPass {
                volume: total.count(),
                duration_seconds: pass_started.elapsed().as_secs_f64(),
                eps_max: Some(summary.eps_max),
                max_snapshot_age_seconds: max_age,
            },
        );
    }
    // A near-empty sample reports eps_max = 0 vacuously; never let it
    // trigger error-controlled stopping.
    Ok(if total.count() < 2 {
        f64::INFINITY
    } else {
        summary.eps_max
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::realize::RealizeFn;
    use std::path::PathBuf;

    fn tempdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("parmonc-runner-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn uniform_mean() -> RealizeFn<impl Fn(&mut parmonc_rng::RealizationStream, &mut [f64])> {
        RealizeFn::new(|rng, out| {
            for o in out.iter_mut() {
                *o = rng.next_f64();
            }
        })
    }

    #[test]
    fn single_processor_run_estimates_uniform_mean() {
        let dir = tempdir("single");
        let report = Parmonc::builder(2, 2)
            .max_sample_volume(4000)
            .output_dir(&dir)
            .run(uniform_mean())
            .unwrap();
        assert_eq!(report.total_volume, 4000);
        assert_eq!(report.new_volume, 4000);
        assert_eq!(report.resumed_volume, 0);
        assert_eq!(report.worker_volumes, vec![4000]);
        for m in &report.summary.means {
            assert!((m - 0.5).abs() < 0.03, "mean {m}");
        }
        assert!(report.summary.eps_max > 0.0);
    }

    #[test]
    fn multi_processor_volume_is_exact() {
        let dir = tempdir("multi");
        let report = Parmonc::builder(1, 1)
            .max_sample_volume(1003)
            .processors(4)
            .output_dir(&dir)
            .run(uniform_mean())
            .unwrap();
        assert_eq!(report.total_volume, 1003);
        assert_eq!(report.worker_volumes.iter().sum::<u64>(), 1003);
        assert_eq!(report.worker_volumes.len(), 4);
        // Quota balancing: 251, 251, 251, 250.
        assert_eq!(*report.worker_volumes.iter().max().unwrap(), 251);
    }

    #[test]
    fn parallel_run_matches_merged_streams_deterministically() {
        // The estimate must be a pure function of (seqnum, M, maxsv):
        // run twice and compare bitwise.
        let d1 = tempdir("det1");
        let d2 = tempdir("det2");
        let r1 = Parmonc::builder(2, 1)
            .max_sample_volume(500)
            .processors(3)
            .seqnum(5)
            .output_dir(&d1)
            .run(uniform_mean())
            .unwrap();
        let r2 = Parmonc::builder(2, 1)
            .max_sample_volume(500)
            .processors(3)
            .seqnum(5)
            .output_dir(&d2)
            .run(uniform_mean())
            .unwrap();
        assert_eq!(r1.summary.means, r2.summary.means);
        assert_eq!(r1.summary.variances, r2.summary.variances);
    }

    #[test]
    fn files_exist_after_run() {
        let dir = tempdir("files");
        let report = Parmonc::builder(2, 2)
            .max_sample_volume(100)
            .processors(2)
            .output_dir(&dir)
            .run(uniform_mean())
            .unwrap();
        let rd = &report.results_dir;
        assert!(rd.func_path().is_file());
        assert!(rd.func_ci_path().is_file());
        assert!(rd.func_log_path().is_file());
        assert!(rd.checkpoint_path().is_file());
        assert!(rd.journal_path().is_file());
        // Worker files are folded into the checkpoint on clean exit.
        assert!(rd.load_worker_subtotals().unwrap().is_empty());
    }

    #[test]
    fn resume_accumulates_previous_results() {
        let dir = tempdir("resume");
        let first = Parmonc::builder(1, 1)
            .max_sample_volume(600)
            .processors(2)
            .seqnum(0)
            .output_dir(&dir)
            .run(uniform_mean())
            .unwrap();
        let second = Parmonc::builder(1, 1)
            .max_sample_volume(400)
            .processors(2)
            .seqnum(1)
            .resume(Resume::Resume)
            .output_dir(&dir)
            .run(uniform_mean())
            .unwrap();
        assert_eq!(second.resumed_volume, 600);
        assert_eq!(second.new_volume, 400);
        assert_eq!(second.total_volume, 1000);
        // The resumed mean is the volume-weighted average of both runs.
        let expected = (first.summary.means[0] * 600.0
            + (second.total_volume as f64 * second.summary.means[0]
                - first.summary.means[0] * 600.0))
            / 1000.0;
        assert!((second.summary.means[0] - expected).abs() < 1e-12);
        // And the error bound shrank with the larger volume.
        assert!(second.summary.eps_max < first.summary.eps_max);
    }

    #[test]
    fn resume_requires_existing_results() {
        let dir = tempdir("resume-missing");
        let err = Parmonc::builder(1, 1)
            .max_sample_volume(10)
            .resume(Resume::Resume)
            .output_dir(&dir)
            .run(uniform_mean())
            .unwrap_err();
        assert!(matches!(err, ParmoncError::NothingToResume { .. }));
    }

    #[test]
    fn resume_rejects_reused_seqnum() {
        let dir = tempdir("resume-seqnum");
        Parmonc::builder(1, 1)
            .max_sample_volume(10)
            .seqnum(3)
            .output_dir(&dir)
            .run(uniform_mean())
            .unwrap();
        let err = Parmonc::builder(1, 1)
            .max_sample_volume(10)
            .seqnum(3)
            .resume(Resume::Resume)
            .output_dir(&dir)
            .run(uniform_mean())
            .unwrap_err();
        assert!(matches!(err, ParmoncError::SeqnumAlreadyUsed { seqnum: 3 }));
    }

    #[test]
    fn resume_rejects_shape_change() {
        let dir = tempdir("resume-shape");
        Parmonc::builder(2, 2)
            .max_sample_volume(10)
            .seqnum(0)
            .output_dir(&dir)
            .run(uniform_mean())
            .unwrap();
        let err = Parmonc::builder(3, 2)
            .max_sample_volume(10)
            .seqnum(1)
            .resume(Resume::Resume)
            .output_dir(&dir)
            .run(uniform_mean())
            .unwrap_err();
        assert!(matches!(err, ParmoncError::ResumeShapeMismatch { .. }));
    }

    #[test]
    fn every_realization_exchange_mode_works() {
        let dir = tempdir("strict");
        let report = Parmonc::builder(1, 2)
            .max_sample_volume(300)
            .processors(4)
            .exchange(Exchange::EveryRealization)
            .output_dir(&dir)
            .run(uniform_mean())
            .unwrap();
        assert_eq!(report.total_volume, 300);
        for m in &report.summary.means {
            assert!((m - 0.5).abs() < 0.1);
        }
    }

    #[test]
    fn deadline_stops_early() {
        let dir = tempdir("deadline");
        let slow = RealizeFn::new(|rng, out| {
            std::thread::sleep(Duration::from_millis(5));
            out[0] = rng.next_f64();
        });
        let report = Parmonc::builder(1, 1)
            .max_sample_volume(1_000_000)
            .processors(2)
            .deadline(Duration::from_millis(150))
            .output_dir(&dir)
            .run(slow)
            .unwrap();
        assert!(report.new_volume > 0, "some realizations completed");
        assert!(
            report.new_volume < 1_000_000,
            "deadline must stop the run early"
        );
        // The files still reflect what was simulated.
        assert!(report.results_dir.checkpoint_path().is_file());
    }

    #[test]
    fn mean_time_per_realization_is_positive() {
        let dir = tempdir("tau");
        let report = Parmonc::builder(1, 1)
            .max_sample_volume(200)
            .processors(2)
            .output_dir(&dir)
            .run(uniform_mean())
            .unwrap();
        assert!(report.mean_time_per_realization >= 0.0);
        assert!(report.elapsed > Duration::ZERO);
    }

    #[test]
    fn error_controlled_stopping_halts_before_maxsv() {
        // eps for U(0,1) is 3*sqrt(1/12)/sqrt(L) ≈ 0.866/sqrt(L):
        // target 0.02 needs L ≈ 1900 — far below maxsv = 10^6.
        let dir = tempdir("error-stop");
        let report = Parmonc::builder(1, 1)
            .max_sample_volume(1_000_000)
            .processors(2)
            .target_abs_error(0.02)
            .pass_period(Duration::ZERO)
            .averaging_period(Duration::ZERO)
            .output_dir(&dir)
            .run(uniform_mean())
            .unwrap();
        assert!(
            report.new_volume < 1_000_000,
            "must stop early, got {}",
            report.new_volume
        );
        assert!(
            report.new_volume >= 1_000,
            "needs enough data for the target"
        );
        assert!(
            report.summary.eps_max <= 0.021,
            "target met: eps {}",
            report.summary.eps_max
        );
    }

    #[test]
    fn error_target_unreachable_runs_to_maxsv() {
        let dir = tempdir("error-stop-never");
        let report = Parmonc::builder(1, 1)
            .max_sample_volume(2_000)
            .processors(2)
            .target_abs_error(1e-12)
            .pass_period(Duration::ZERO)
            .averaging_period(Duration::ZERO)
            .output_dir(&dir)
            .run(uniform_mean())
            .unwrap();
        assert_eq!(report.new_volume, 2_000);
    }

    #[test]
    fn invalid_error_target_rejected() {
        let err = Parmonc::builder(1, 1)
            .max_sample_volume(10)
            .target_abs_error(0.0)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("target_abs_error"));
    }

    #[test]
    fn m1_equals_sum_of_stream_contributions() {
        // With M=2 the estimate uses processor streams 0 and 1;
        // verify against manually accumulating those same streams.
        let dir = tempdir("crosscheck");
        let report = Parmonc::builder(1, 1)
            .max_sample_volume(100)
            .processors(2)
            .seqnum(7)
            .output_dir(&dir)
            .run(uniform_mean())
            .unwrap();

        let h = StreamHierarchy::default();
        let mut manual = MatrixAccumulator::new(1, 1).unwrap();
        for rank in 0..2u64 {
            for r in 0..50u64 {
                let mut s = h.realization_stream(StreamId::new(7, rank, r)).unwrap();
                manual.add(&[s.next_f64()]).unwrap();
            }
        }
        let expected = manual.summary();
        assert!((report.summary.means[0] - expected.means[0]).abs() < 1e-15);
    }
}
