//! The `genparam` mechanism (paper Section 3.5): overriding the default
//! leap multipliers.
//!
//! Running `genparam ne np nr` writes `parmonc_genparam.dat` into the
//! working directory; thereafter the PARMONC routines pick up the leap
//! exponents (and hence the multipliers `A(n_e)`, `A(n_p)`, `A(n_r)`,
//! recomputed by binary exponentiation) from that file instead of the
//! defaults.

use std::fs;
use std::path::Path;

use parmonc_rng::multiplier::leap_multiplier;
use parmonc_rng::{LeapConfig, DEFAULT_MULTIPLIER};

use crate::error::{IoContext, ParmoncError};

/// File name the paper specifies.
pub const GENPARAM_FILE: &str = "parmonc_genparam.dat";

/// Writes `parmonc_genparam.dat` into `dir` for the given exponents —
/// the body of the `genparam ne np nr` command.
///
/// The file records the exponents and, for human inspection, the
/// resulting multipliers in hex (the multipliers are *recomputed* on
/// load; the exponents are authoritative).
///
/// # Errors
///
/// Returns [`ParmoncError::Hierarchy`] for invalid exponents or
/// [`ParmoncError::Io`] on write failure.
pub fn write_genparam(
    dir: impl AsRef<Path>,
    ne: u32,
    np: u32,
    nr: u32,
) -> Result<LeapConfig, ParmoncError> {
    let config = LeapConfig::new(ne, np, nr)?;
    let path = dir.as_ref().join(GENPARAM_FILE);
    let contents = format!(
        "ne = {ne}\nnp = {np}\nnr = {nr}\n\
         # A(2^ne) = {:#034x}\n# A(2^np) = {:#034x}\n# A(2^nr) = {:#034x}\n",
        leap_multiplier(DEFAULT_MULTIPLIER, ne),
        leap_multiplier(DEFAULT_MULTIPLIER, np),
        leap_multiplier(DEFAULT_MULTIPLIER, nr),
    );
    fs::write(&path, contents).io_ctx(format!("writing {}", path.display()))?;
    Ok(config)
}

/// Loads the leap configuration from `parmonc_genparam.dat` in `dir`,
/// or returns the defaults if the file does not exist — the lookup the
/// PARMONC routines perform at start-up.
///
/// # Errors
///
/// Returns [`ParmoncError::Config`] for a malformed file,
/// [`ParmoncError::Hierarchy`] for invalid exponents, or
/// [`ParmoncError::Io`] for an unreadable file.
pub fn load_genparam(dir: impl AsRef<Path>) -> Result<LeapConfig, ParmoncError> {
    let path = dir.as_ref().join(GENPARAM_FILE);
    if !path.exists() {
        return Ok(LeapConfig::default());
    }
    let text = fs::read_to_string(&path).io_ctx(format!("reading {}", path.display()))?;
    let mut ne = None;
    let mut np = None;
    let mut nr = None;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((k, v)) = line.split_once('=') {
            let v = v.trim().parse::<u32>().map_err(|_| {
                ParmoncError::Config(format!("malformed {GENPARAM_FILE} line: {line:?}"))
            })?;
            match k.trim() {
                "ne" => ne = Some(v),
                "np" => np = Some(v),
                "nr" => nr = Some(v),
                other => {
                    return Err(ParmoncError::Config(format!(
                        "unknown key {other:?} in {GENPARAM_FILE}"
                    )))
                }
            }
        }
    }
    match (ne, np, nr) {
        (Some(ne), Some(np), Some(nr)) => Ok(LeapConfig::new(ne, np, nr)?),
        _ => Err(ParmoncError::Config(format!(
            "{GENPARAM_FILE} must define ne, np and nr"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("parmonc-genparam-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn defaults_when_file_absent() {
        let dir = tempdir("absent");
        assert_eq!(load_genparam(&dir).unwrap(), LeapConfig::default());
    }

    #[test]
    fn write_then_load_round_trips() {
        let dir = tempdir("roundtrip");
        let written = write_genparam(&dir, 100, 80, 40).unwrap();
        let loaded = load_genparam(&dir).unwrap();
        assert_eq!(written, loaded);
        assert_eq!((loaded.ne(), loaded.np(), loaded.nr()), (100, 80, 40));
    }

    #[test]
    fn rejects_invalid_exponents() {
        let dir = tempdir("invalid");
        assert!(write_genparam(&dir, 40, 80, 100).is_err());
        assert!(!dir.join(GENPARAM_FILE).exists());
    }

    #[test]
    fn rejects_malformed_file() {
        let dir = tempdir("malformed");
        fs::write(dir.join(GENPARAM_FILE), "ne = spam\n").unwrap();
        assert!(matches!(load_genparam(&dir), Err(ParmoncError::Config(_))));
        fs::write(dir.join(GENPARAM_FILE), "ne = 100\n").unwrap();
        assert!(load_genparam(&dir).is_err()); // missing np, nr
        fs::write(dir.join(GENPARAM_FILE), "bogus = 1\n").unwrap();
        assert!(load_genparam(&dir).is_err());
    }

    #[test]
    fn file_contains_multiplier_comments() {
        let dir = tempdir("comments");
        write_genparam(&dir, 100, 80, 40).unwrap();
        let text = fs::read_to_string(dir.join(GENPARAM_FILE)).unwrap();
        assert!(text.contains("A(2^ne)"));
        assert!(text.contains("0x"));
    }
}
