//! Wire format of the worker → collector subtotal messages
//! (paper Section 2.2).
//!
//! Each message carries the worker's *cumulative* sums so far: the two
//! matrices `[Σζ_ij]`, `[Σζ²_ij]`, the sample volume `l_m`, and the
//! worker's accumulated compute time (used for the mean-time-per-
//! realization statistic in `func_log.dat`). Because the sums are
//! cumulative, the collector keeps only the *latest* message per worker
//! and replaces rather than adds — making message loss-free retrying
//! idempotent.

use parmonc_mpi::bytes::Bytes;
use parmonc_mpi::envelope::{PayloadReader, PayloadWriter};
use parmonc_mpi::{MpiError, Tag};
use parmonc_stats::MatrixAccumulator;

use crate::error::ParmoncError;

/// Tag of an intermediate subtotal message.
pub const TAG_SUBTOTAL: Tag = Tag(1);
/// Tag of a worker's final subtotal message (its quota is done or the
/// deadline hit).
pub const TAG_FINAL: Tag = Tag(2);
/// Tag of the collector's stop broadcast (error-controlled stopping:
/// the target `eps_max` has been reached).
pub const TAG_STOP: Tag = Tag(3);
/// Tag of a worker's liveness heartbeat (empty payload). Sent between
/// realizations when no subtotal has left the worker recently, so the
/// collector can distinguish "slow" from "dead".
pub const TAG_HEARTBEAT: Tag = Tag(4);
/// Tag of the collector's quota extension (a single `u64` payload:
/// extra realizations). Sent to survivors when a dead worker's
/// remaining budget is reassigned; the survivor simulates the extra
/// realizations on its *own* fresh leapfrog streams.
pub const TAG_EXTEND: Tag = Tag(5);

/// A subtotal snapshot from one worker.
#[derive(Debug, Clone, PartialEq)]
pub struct Subtotal {
    /// Cumulative accumulator state (sums, sums of squares, volume).
    pub acc: MatrixAccumulator,
    /// Total compute seconds the worker has spent simulating.
    pub compute_seconds: f64,
}

impl Subtotal {
    /// Serializes into a message payload.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let (nrow, ncol) = self.acc.shape();
        let n = nrow * ncol;
        let mut w = PayloadWriter::with_capacity(48 + 16 * n);
        w.put_u64(nrow as u64);
        w.put_u64(ncol as u64);
        w.put_u64(self.acc.count());
        w.put_f64(self.compute_seconds);
        w.put_f64_slice(self.acc.sums());
        w.put_f64_slice(self.acc.sums_sq());
        w.finish()
    }

    /// Deserializes from a message payload.
    ///
    /// # Errors
    ///
    /// Returns [`ParmoncError::Mpi`] on a truncated payload or
    /// [`ParmoncError::Stats`] if the decoded shape is inconsistent.
    pub fn decode(payload: Bytes) -> Result<Self, ParmoncError> {
        let mut r = PayloadReader::new(payload);
        let nrow = r.get_u64()? as usize;
        let ncol = r.get_u64()? as usize;
        let count = r.get_u64()?;
        let compute_seconds = r.get_f64()?;
        let sums = r.get_f64_vec()?;
        let sums_sq = r.get_f64_vec()?;
        if r.remaining() != 0 {
            return Err(ParmoncError::Mpi(MpiError::MalformedPayload {
                what: "trailing bytes after subtotal",
            }));
        }
        let acc = MatrixAccumulator::from_parts(nrow, ncol, sums, sums_sq, count)?;
        Ok(Self {
            acc,
            compute_seconds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Subtotal {
        let mut acc = MatrixAccumulator::new(3, 2).unwrap();
        acc.add(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        acc.add(&[-1.0, 0.5, 0.0, 2.0, 8.0, 1.0]).unwrap();
        Subtotal {
            acc,
            compute_seconds: 12.75,
        }
    }

    #[test]
    fn round_trip() {
        let s = sample();
        let decoded = Subtotal::decode(s.encode()).unwrap();
        assert_eq!(decoded, s);
    }

    #[test]
    fn truncated_payload_errors() {
        let s = sample();
        let full = s.encode();
        for cut in [0, 8, 20, full.len() - 1] {
            let err = Subtotal::decode(full.slice(..cut));
            assert!(err.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let s = sample();
        let mut bytes = s.encode().to_vec();
        bytes.push(0);
        assert!(Subtotal::decode(Bytes::from(bytes)).is_err());
    }

    #[test]
    fn shape_mismatch_rejected() {
        // Claim 2x2 but provide 6 sums.
        let mut w = PayloadWriter::new();
        w.put_u64(2);
        w.put_u64(2);
        w.put_u64(1);
        w.put_f64(0.0);
        w.put_f64_slice(&[0.0; 6]);
        w.put_f64_slice(&[0.0; 6]);
        assert!(Subtotal::decode(w.finish()).is_err());
    }

    #[test]
    fn paper_message_size_order() {
        // 1000x2 matrices: the performance test's periodic payload.
        let acc = MatrixAccumulator::new(1000, 2).unwrap();
        let payload = Subtotal {
            acc,
            compute_seconds: 0.0,
        }
        .encode();
        // Two 2000-entry f64 matrices ≈ 32 KB plus framing.
        assert!(payload.len() >= 32_000 && payload.len() <= 33_000);
    }
}
